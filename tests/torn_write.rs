//! Torn-write and media-fault model tests.
//!
//! The clean-crash enumeration (`crash_schedule.rs`) pulls the plug
//! *between* NVM writes. This binary covers the harder failure model of
//! §8 "Data Reliability":
//!
//! * **torn writes** — the fuse fires *mid-write*, leaving an arbitrary
//!   64-byte cache-line prefix of the store applied
//!   (`CrashPoint::TornWrite`), optionally under the ADR persistence
//!   model where a seed-chosen subset of the unfenced reorder window is
//!   also lost;
//! * **media faults** — bit rot and poisoned frames injected directly
//!   into the media, detected by the per-page CRCs, the checksummed
//!   commit records, and the `scrub()` pass.
//!
//! The deterministic tests below corrupt the commit record and backup
//! page images at every cache-line (and byte) offset and assert the
//! degraded-recovery contract: fall back to generation N-1 on a torn
//! commit, fall back to the previous page image on a torn page, and
//! quarantine (never serve) a page with no valid image at all.

mod common;

use std::sync::Arc;

use common::{
    find_process, read_heap, step, stride, DirtyPages, HybridScenario, KvRingScenario,
    Snapshots, HYBRID_HEAP, HYBRID_PAGES,
};
use treesls::{
    enumerate_torn_crashes, run_with_crash_schedule, run_with_crash_schedule_ex, CrashImage,
    CrashScenario, FaultEnv, ObjId, ProcessSpec, System, SystemConfig, ThreadSpec,
};
use treesls_kernel::kernel::global_meta;
use treesls_kernel::oroot::BackupObject;
use treesls_nvm::{CrashPoint, FrameId, PersistMode, PAGE_SIZE};

// ---------------------------------------------------------------------------
// Torn-write enumeration of the PR-1 scenarios (acceptance gate): every
// write index of the workload, every 64 B tear class of that write.
// ---------------------------------------------------------------------------

#[test]
fn kv_ring_survives_torn_crash_at_every_write_and_cut() {
    let report =
        enumerate_torn_crashes(&KvRingScenario::new(9), stride(), PersistMode::Eadr, &[0]);
    eprintln!(
        "kv torn: {} writes, {} runs ({} crashed)",
        report.writes, report.runs, report.injected
    );
    assert!(report.writes > 0, "workload performed no NVM writes");
    assert!(report.injected > 0, "no torn crash ever fired");
    report.assert_clean();
}

#[test]
fn hybrid_round_survives_torn_crash_at_every_write_and_cut() {
    let report = enumerate_torn_crashes(&HybridScenario, stride(), PersistMode::Eadr, &[0]);
    eprintln!(
        "hybrid torn: {} writes, {} runs ({} crashed)",
        report.writes, report.runs, report.injected
    );
    assert!(report.injected > 0, "no torn crash ever fired");
    report.assert_clean();
}

#[test]
fn kv_ring_survives_adr_reorder_window_drops() {
    // Under ADR every unfenced line can be lost at the crash. Three seeds
    // per (write, cut): drop everything (the adversarial worst case) and
    // two hash-chosen subsets.
    let report = enumerate_torn_crashes(
        &KvRingScenario::new(2),
        stride(),
        PersistMode::Adr { reorder_window: 64 },
        &[u64::MAX, 0x9E37_79B9_7F4A_7C15, 0x0123_4567_89AB_CDEF],
    );
    eprintln!(
        "kv adr: {} writes, {} runs ({} crashed)",
        report.writes, report.runs, report.injected
    );
    assert!(report.injected > 0, "no torn crash ever fired");
    report.assert_clean();
}

#[test]
fn hybrid_round_survives_adr_reorder_window_drops() {
    let report = enumerate_torn_crashes(
        &HybridScenario,
        stride().max(3),
        PersistMode::Adr { reorder_window: 64 },
        &[u64::MAX],
    );
    eprintln!(
        "hybrid adr: {} writes, {} runs ({} crashed)",
        report.writes, report.runs, report.injected
    );
    assert!(report.injected > 0, "no torn crash ever fired");
    report.assert_clean();
}

#[test]
fn torn_cut_zero_is_the_clean_pre_write_crash() {
    // `TornWrite { skip, cut: 0 }` (nothing of write `skip` applied) must
    // behave exactly like the clean-crash `AnyWrite(skip)` under eADR —
    // the torn model is a strict refinement of the PR-1 model.
    let scenario = KvRingScenario::new(2);
    let (writes, _) = treesls::crashtest::measure(&scenario);
    let idx = writes / 2;
    let a = run_with_crash_schedule(&scenario, Some(CrashPoint::AnyWrite(idx)))
        .expect("clean-crash run");
    let b = run_with_crash_schedule_ex(
        &scenario,
        Some(CrashPoint::TornWrite { skip: idx, cut: 0 }),
        FaultEnv::eadr(),
    )
    .expect("torn cut-0 run");
    assert_eq!(a.crashed, b.crashed);
    assert_eq!(a.report.version, b.report.version);
    assert_eq!(a.report.objects, b.report.objects);
    assert_eq!(a.report.pages, b.report.pages);
}

// ---------------------------------------------------------------------------
// Deterministic commit-record corruption: fall back one generation.
// ---------------------------------------------------------------------------

const TORN_PAGES: u64 = 2;
const TORN_HEAP: u64 = 2;

fn torn_config() -> SystemConfig {
    let mut c = SystemConfig::small();
    c.checkpoint_interval = None;
    c
}

fn register_torn(reg: &treesls::ProgramRegistry) {
    reg.register("torn-dirty", Arc::new(DirtyPages { pages: TORN_PAGES }));
}

/// Boots a single dirty-page writer and commits `commits` checkpoints,
/// stepping the writer between commits so every generation has distinct
/// heap content. Returns the per-version snapshots for the heap oracle.
fn boot_committed(commits: usize) -> (System, Snapshots, ObjId, ObjId) {
    let sys = System::boot(torn_config());
    register_torn(sys.programs());
    let p = sys
        .spawn(&ProcessSpec::new("torn").heap(TORN_HEAP).thread(ThreadSpec::new("torn-dirty")))
        .expect("spawn");
    let mut snaps = Snapshots::default();
    for _ in 0..commits {
        step(&sys, p.threads[0], TORN_PAGES as usize);
        snaps.checkpoint(&sys, p.vmspace, TORN_HEAP);
    }
    (sys, snaps, p.vmspace, p.threads[0])
}

#[test]
fn torn_commit_record_falls_back_one_generation_at_every_byte() {
    // Corrupt the newest commit-record slot at every byte offset. Bytes
    // 0..28 are covered by the CRC (payload + the CRC itself): any flip
    // there invalidates the record and recovery must fall back to the
    // previous generation. Bytes 28..32 are padding outside the record:
    // flips there must be ignored entirely.
    for byte in 0..global_meta::COMMIT_SLOT_LEN {
        let (sys, snaps, _, _) = boot_committed(3);
        let global = sys.kernel().pers.global_version();
        assert_eq!(global, 3);
        let image = sys.crash();
        image.dev.flip_meta_bit(global_meta::slot_off(global) + byte, (byte % 8) as u8);
        let (sys2, report) =
            System::recover(image, torn_config(), register_torn).expect("degraded recovery");
        let covered = byte < global_meta::REC_CRC + 4;
        if covered {
            assert_eq!(report.version, global - 1, "byte {byte}: must fall back to N-1");
            assert!(report.recovery.commit.fell_back, "byte {byte}: fallback not reported");
            assert_eq!(report.recovery.commit.invalid_slots, 1, "byte {byte}");
            assert!(!report.recovery.is_clean(), "byte {byte}: degraded recovery not flagged");
        } else {
            assert_eq!(report.version, global, "pad byte {byte} must not invalidate the record");
            assert!(!report.recovery.commit.fell_back, "pad byte {byte}");
        }
        // Byte-exact heap oracle against the generation actually restored.
        let (vmspace, _, _) = find_process(&sys2, "torn");
        let expected = snaps.expect_at(report.version).expect("snapshot for restored version");
        assert_eq!(
            &read_heap(&sys2, vmspace, TORN_HEAP),
            expected,
            "byte {byte}: restored heap diverges from v{} commit",
            report.version
        );
    }
}

#[test]
fn both_commit_slots_corrupt_is_unrecoverable_not_silent() {
    let (sys, _, _, _) = boot_committed(3);
    let image = sys.crash();
    image.dev.flip_meta_bit(global_meta::COMMIT_SLOT0_OFF + global_meta::REC_VERSION, 0);
    image.dev.flip_meta_bit(global_meta::COMMIT_SLOT1_OFF + global_meta::REC_VERSION, 0);
    // With both generations' anchors gone there is nothing sound to
    // restore: recovery must refuse, not serve garbage.
    assert!(System::recover(image, torn_config(), register_torn).is_err());
}

#[test]
fn scrub_counts_invalid_commit_slots() {
    let (sys, _, _, _) = boot_committed(2);
    assert_eq!(sys.manager().scrub().invalid_commit_slots, 0);
    let global = sys.kernel().pers.global_version();
    sys.kernel().pers.dev.flip_meta_bit(global_meta::slot_off(global), 5);
    let report = sys.manager().scrub();
    assert_eq!(report.invalid_commit_slots, 1);
    assert!(!report.is_clean());
}

// ---------------------------------------------------------------------------
// Deterministic backup-page corruption: per-page generation fallback and
// quarantine.
// ---------------------------------------------------------------------------

/// Runs the hybrid workload up to (and including) the stop-and-copy
/// commit, so the hybrid data pages hold **two** checksummed generations:
/// the migrate-in tag on the NVM home frame (version N-1) and the
/// speculative-copy tag on the spare frame (version N).
fn boot_hybrid_two_generations() -> (System, Snapshots, ObjId, u64) {
    let scenario = HybridScenario;
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    for _ in 0..2 {
        step(&sys, st.writer, HYBRID_PAGES as usize);
        st.snapshots.checkpoint(&sys, st.vmspace, HYBRID_HEAP);
    }
    step(&sys, st.writer, HYBRID_PAGES as usize);
    st.snapshots.checkpoint(&sys, st.vmspace, HYBRID_HEAP);
    let global = sys.kernel().pers.global_version();
    (sys, st.snapshots, st.vmspace, global)
}

/// A backup page slot holding two committed checksummed images.
struct TwoGenPage {
    index: u64,
    /// `(frame, version)` of the image `restore_pick` selects.
    picked: (FrameId, u64),
    /// `(frame, version)` of the older fallback image.
    older: (FrameId, u64),
}

/// Finds every page in the crash image whose pair entries are **both**
/// committed and checksummed (no untagged runtime image to fall back to).
fn two_generation_pages(image: &CrashImage, global: u64) -> Vec<TwoGenPage> {
    let mut found = Vec::new();
    image.backups.for_each(|_, record| {
        let BackupObject::Pmo { pages, .. } = record else { return };
        pages.for_each(|idx, e| {
            if !e.live_at(global) {
                return;
            }
            let meta = e.slot.meta.lock();
            let tagged: Vec<_> = meta
                .pairs
                .iter()
                .flatten()
                .filter(|p| p.crc.is_some() && p.version > 0 && p.version <= global)
                .map(|p| (p.frame, p.version))
                .collect();
            if tagged.len() == 2 {
                let (hi, lo) = if tagged[0].1 >= tagged[1].1 {
                    (tagged[0], tagged[1])
                } else {
                    (tagged[1], tagged[0])
                };
                found.push(TwoGenPage { index: idx, picked: hi, older: lo });
            }
        });
    });
    found.sort_by_key(|p| p.index);
    found
}

#[test]
fn corrupt_backup_page_falls_back_to_previous_generation() {
    // Flip one bit in the newest image of a two-generation page: restore
    // must serve the *older* checksummed image for that page (and the
    // newest for every other page), reporting the per-page fallback.
    let (sys, snaps, _, global) = boot_hybrid_two_generations();
    let image = sys.crash();
    let pages = two_generation_pages(&image, global);
    assert!(!pages.is_empty(), "hybrid workload produced no two-generation page");
    let victim = &pages[0];
    assert_eq!(victim.picked.1, global, "newest image must carry the committed version");
    image.dev.flip_frame_bit(victim.picked.0, 17, 3);
    let scenario = HybridScenario;
    let (sys2, report) =
        System::recover(image, scenario.config(), |r| scenario.programs(r))
            .expect("degraded recovery");
    assert_eq!(report.version, global);
    assert_eq!(report.recovery.pages_fell_back, 1);
    assert!(report.recovery.quarantined.is_empty());
    assert!(!report.recovery.is_clean());
    // Heap oracle: the victim page reads as its older generation, every
    // other byte as the restored generation.
    let (vmspace, _, _) = find_process(&sys2, "hybrid");
    let heap = read_heap(&sys2, vmspace, HYBRID_HEAP);
    let mut expected = snaps.expect_at(global).expect("newest snapshot").clone();
    let older = snaps.expect_at(victim.older.1).expect("older snapshot");
    let lo = (victim.index * PAGE_SIZE as u64) as usize;
    let hi = lo + PAGE_SIZE;
    expected[lo..hi].copy_from_slice(&older[lo..hi]);
    assert_eq!(heap, expected, "fallback page must serve the older committed image");
}

#[test]
fn backup_page_with_no_valid_image_is_quarantined_at_every_line() {
    // Corrupt *both* generations of a page, one cache line at a time:
    // with no candidate image passing its checksum the page must be
    // quarantined — dropped from the revived PMO, never served — and the
    // rest of the system must still recover.
    for line in 0..(PAGE_SIZE / 64) {
        let (sys, _, _, global) = boot_hybrid_two_generations();
        let image = sys.crash();
        let pages = two_generation_pages(&image, global);
        assert!(!pages.is_empty(), "line {line}: no two-generation page");
        let victim = &pages[0];
        image.dev.flip_frame_bit(victim.picked.0, line * 64, 1);
        image.dev.flip_frame_bit(victim.older.0, line * 64, 1);
        let scenario = HybridScenario;
        let (sys2, report) =
            System::recover(image, scenario.config(), |r| scenario.programs(r))
                .expect("degraded recovery");
        assert_eq!(report.version, global, "line {line}");
        assert_eq!(report.recovery.quarantined.len(), 1, "line {line}");
        assert_eq!(report.recovery.quarantined[0].index, victim.index, "line {line}");
        assert_eq!(report.recovery.pages_fell_back, 0, "line {line}");
        assert!(!report.recovery.is_clean(), "line {line}");
        // The surviving state is still internally consistent.
        sys2.manager().verify_checkpoint().expect("post-quarantine verify");
    }
}

// ---------------------------------------------------------------------------
// Scrub: detects silent media corruption before recovery depends on it.
// ---------------------------------------------------------------------------

/// Every committed checksummed image `(frame, version)` in the running
/// system's backup tree.
fn committed_tagged_images(sys: &System) -> Vec<(FrameId, u64)> {
    let global = sys.kernel().pers.global_version();
    let mut found = Vec::new();
    sys.kernel().pers.backups.for_each(|_, record| {
        let BackupObject::Pmo { pages, .. } = record else { return };
        pages.for_each(|_, e| {
            let meta = e.slot.meta.lock();
            for p in meta.pairs.iter().flatten() {
                if p.crc.is_some() && p.version > 0 && p.version <= global {
                    found.push((p.frame, p.version));
                }
            }
        });
    });
    found
}

#[test]
fn scrub_detects_poisoned_frame() {
    let (sys, _, _, _) = boot_committed(2);
    assert!(sys.manager().scrub().is_clean());
    let images = committed_tagged_images(&sys);
    assert!(!images.is_empty(), "no checksummed committed image to poison");
    let (frame, version) = images[0];
    sys.kernel().pers.dev.poison_frame(frame);
    let report = sys.manager().scrub();
    assert!(report.corrupt_pages.contains(&(frame, version)), "poison not detected");
    assert!(!report.is_clean());
}

mod scrub_prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// `scrub()` detects **every** single-bit flip on a committed
        /// checksummed image, at any byte and bit position, and reports
        /// exactly that frame; undoing the flip makes the pass clean
        /// again.
        #[test]
        fn scrub_detects_every_single_bit_flip(
            pick in 0usize..1 << 16,
            byte in 0usize..treesls_nvm::PAGE_SIZE,
            bit in 0u8..8,
        ) {
            let (sys, _, _, _) = boot_committed(2);
            let baseline = sys.manager().scrub();
            prop_assert!(baseline.is_clean());
            prop_assert!(baseline.pages_scanned > 0);
            let images = committed_tagged_images(&sys);
            prop_assert!(!images.is_empty());
            let (frame, version) = images[pick % images.len()];
            sys.kernel().pers.dev.flip_frame_bit(frame, byte, bit);
            let report = sys.manager().scrub();
            prop_assert!(
                report.corrupt_pages.contains(&(frame, version)),
                "flip at frame {frame:?} byte {byte} bit {bit} went undetected",
            );
            sys.kernel().pers.dev.flip_frame_bit(frame, byte, bit);
            prop_assert!(sys.manager().scrub().is_clean());
        }
    }
}
