//! Crash consistency for multi-key transactions (the `treesls-txn`
//! subsystem).
//!
//! The transactional store lives in checkpointed process memory, so its
//! whole crash story reduces to one claim: a checkpoint image is always
//! transaction-consistent, because a commit becomes visible through a
//! single selector flip. These tests attack the claim from every angle
//! the harness has:
//!
//! * clean-crash enumeration at every NVM write of a transactional
//!   workload (begin / buffered writes / commit with secondary-index
//!   churn and deletes);
//! * named-site enumeration across the commit pipeline
//!   (`txn.index_update`, `txn.pre_publish`, `txn.commit_visible`);
//! * torn-write enumeration (64 B cut classes) over the same workload;
//! * a differential oracle: after every recovery the restored primary
//!   space must equal a *serial replay* of the committed prefix, and the
//!   secondary index must match it exactly — across five seeds;
//! * a mid-commit site crash drill asserting the healing full walk runs
//!   on the first post-restore checkpoint;
//! * a replica-promotion drill: the primary dies mid-ship, the survivor
//!   is promoted, and every externally acknowledged commit is readable
//!   (with a consistent index) on the promoted node.

mod common;

use std::sync::Arc;

use common::{step, stride, tkey, ttag, TxnRingScenario, TXN_NODE_CAP};
use treesls::extsync::HostIo;
use treesls::{
    enumerate_crashes, enumerate_site_crashes, enumerate_torn_crashes, CrashScenario, System,
};
use treesls_nvm::PersistMode;
use treesls_txn::{check_index_consistency, TxnOp, TxnResp, TxnStore};

#[test]
fn txn_ring_survives_crash_at_every_write() {
    let report = enumerate_crashes(&TxnRingScenario::new(3), stride());
    eprintln!(
        "txn: {} writes, {} runs ({} crashed), {} site hits",
        report.writes,
        report.runs,
        report.injected,
        report.sites.len()
    );
    assert!(report.writes > 0, "workload performed no NVM writes");
    assert!(report.injected > 0, "no crash ever fired");
    report.assert_clean();
}

#[test]
fn txn_commit_survives_crash_at_every_site() {
    let report = enumerate_site_crashes(&TxnRingScenario::new(2));
    eprintln!("txn sites: {} runs ({} crashed)", report.runs, report.injected);
    assert!(!report.sites.is_empty(), "workload hit no crash sites");
    let names: std::collections::HashSet<_> = report.sites.iter().map(|s| s.name).collect();
    // The commit pipeline's own cuts must be on the schedule: each index
    // mutation built into the working root, the instant after the
    // inactive meta slot is staged, and the instant after the selector
    // flip makes the commit visible.
    assert!(names.contains("txn.index_update"), "sites: {names:?}");
    assert!(names.contains("txn.pre_publish"), "sites: {names:?}");
    assert!(names.contains("txn.commit_visible"), "sites: {names:?}");
    report.assert_clean();
}

#[test]
fn txn_ring_survives_torn_crash_at_every_write_and_cut() {
    let report =
        enumerate_torn_crashes(&TxnRingScenario::new(2), stride(), PersistMode::Eadr, &[0]);
    eprintln!(
        "txn torn: {} writes, {} runs ({} crashed)",
        report.writes, report.runs, report.injected
    );
    assert!(report.writes > 0, "workload performed no NVM writes");
    assert!(report.injected > 0, "no torn crash ever fired");
    report.assert_clean();
}

/// Differential oracle across seeds: each seed runs a distinct planned
/// history, crashes at a seed-chosen write index, and recovery must
/// restore exactly the serial replay of the committed prefix (primary
/// records, tags, values, and the secondary index — checked inside
/// [`TxnRingScenario::verify`]).
#[test]
fn txn_serial_replay_oracle_holds_across_seeds() {
    for seed in 0..5u64 {
        let scenario = TxnRingScenario::seeded(3, seed);
        let (writes, _) = treesls::crashtest::measure(&scenario);
        assert!(writes > 0, "seed {seed}: no NVM writes");
        // A different cut point per seed, spread across the workload.
        let idx = writes * (seed + 1) / 6;
        let run = treesls::run_with_crash_schedule(
            &scenario,
            Some(treesls_nvm::CrashPoint::AnyWrite(idx)),
        )
        .unwrap_or_else(|e| panic!("seed {seed} (crash at write {idx}): {e}"));
        assert!(run.crashed, "seed {seed}: the scheduled crash never fired");
    }
}

/// Mid-commit site crashes must heal: crash the server inside the commit
/// pipeline, recover, and assert the first post-restore checkpoint runs
/// the healing full walk (the interrupted round's consumed dirty flags
/// force it), with the full transactional oracle green afterwards.
#[test]
fn txn_site_crash_heals_with_full_walk() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    for site in ["txn.index_update", "txn.pre_publish", "txn.commit_visible"] {
        let scenario = TxnRingScenario::new(1);
        let mut sys = System::boot(scenario.config());
        let mut st = scenario.setup(&mut sys);
        // One committed, acknowledged transaction as the baseline.
        scenario.workload(&mut sys, &mut st);
        assert_eq!(st.acked.len(), 1, "{site}: baseline commit not acknowledged");

        // Send the next transaction's frames and cut its commit at the
        // named site.
        for f in scenario.frames(1) {
            st.nic.send_request(1, &f.encode()).expect("rx push");
        }
        st.nic.flush_wire();
        let sched = Arc::clone(sys.kernel().pers.dev.crash_schedule());
        sched.arm(treesls_nvm::CrashPoint::Site { name: site.into(), skip: 0 });
        let unwound = catch_unwind(AssertUnwindSafe(|| st.drive(&sys, 64)));
        sched.disarm();
        let payload = unwound.expect_err(site);
        assert!(
            payload.downcast_ref::<treesls_nvm::InjectedCrash>().is_some(),
            "{site}: server panicked for a reason other than the injected crash"
        );

        // Power failure mid-commit. Recovery must roll back to the
        // baseline round — the uncommitted working root is unreachable
        // garbage the persisted allocator watermark reclaims.
        let image = sys.crash();
        let (mut sys2, report) =
            System::recover(image, scenario.config(), |r| scenario.programs(r))
                .unwrap_or_else(|e| panic!("{site}: recovery failed: {e:?}"));
        scenario.reattach(&mut sys2, &mut st);
        sys2.manager().fire_restore_callbacks(report.version);
        sys2.manager().verify_checkpoint().expect("checkpoint consistent after crash");
        let walks_before = sys2.kernel().metrics.snapshot().tree_full_walks;
        scenario
            .verify(&mut sys2, &mut st, &report)
            .unwrap_or_else(|e| panic!("{site}: oracle after crash: {e}"));
        let walks_after = sys2.kernel().metrics.snapshot().tree_full_walks;
        assert!(
            walks_after > walks_before,
            "{site}: first post-restore checkpoint did not run the healing full walk \
             ({walks_before} -> {walks_after})"
        );
    }
}

/// The durability gate tracks the checkpoint frontier: after a committed
/// round the gate's durable sequence equals the store sequence, and a
/// recovery resyncs it to the restored image (never ahead of it).
#[test]
fn txn_gate_tracks_the_durable_frontier() {
    let scenario = TxnRingScenario::new(2);
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    scenario.workload(&mut sys, &mut st);
    let committed = st.gate.committed_seq().expect("store formatted");
    assert_eq!(committed, 2, "two transactions committed");
    assert_eq!(
        st.gate.durable_seq(),
        committed,
        "checkpoint landed after the last commit, so the frontier covers it"
    );
    assert_eq!(sys.kernel().metrics.snapshot().txn_durable_seq, committed);

    // Crash and recover: the fresh gate resyncs from the restored image.
    let image = sys.crash();
    let (mut sys2, report) =
        System::recover(image, scenario.config(), |r| scenario.programs(r))
            .expect("recovery");
    scenario.reattach(&mut sys2, &mut st);
    sys2.manager().fire_restore_callbacks(report.version);
    let restored = st.gate.durable_seq();
    assert_eq!(restored, st.gate.committed_seq().expect("store restored"));
    assert!(
        st.acked.iter().all(|(_, seq)| *seq <= restored),
        "an acknowledged commit is above the restored durable frontier"
    );
    scenario.verify(&mut sys2, &mut st, &report).expect("oracle after restore");
}

/// Replica-promotion drill for transactions: the primary dies between a
/// shipped delta's data and its commit frame (`repl.mid_ship`), after the
/// local commit but before the NIC released anything for the cut round.
/// The survivor is promoted and must hold every externally acknowledged
/// transaction with an exactly consistent secondary index.
#[test]
fn txn_replica_promotion_preserves_acked_commits() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    use common::find_process_all;
    use treesls::net::VirtualNic;
    use treesls_repl::{Cluster, ClusterConfig};

    let scenario = TxnRingScenario::new(0);
    let sys = System::boot(scenario.config());
    let txd = treesls_bench::ringsetup::deploy_txn(&sys, TXN_NODE_CAP, scenario.nic_config());
    for &srv in &txd.dep.server_threads {
        step(&sys, srv, 4);
    }
    let cluster = Cluster::deploy(&sys, &ClusterConfig::default());
    cluster.attach_gate(&txd.dep.nic);
    let programs: Vec<_> = sys
        .programs()
        .names()
        .into_iter()
        .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
        .collect();
    let layout = txd.dep.nic.layout();

    // Two committed, replicated, externally acknowledged transactions.
    let mut acked: Vec<(u64, u64)> = Vec::new();
    for i in 0..2u64 {
        let frames = scenario.frames(i);
        let mut commit_wire = 0;
        for (j, f) in frames.iter().enumerate() {
            let seq = txd.dep.nic.send_request(i, &f.encode()).expect("rx push");
            if j == frames.len() - 1 {
                commit_wire = seq;
            }
        }
        txd.dep.nic.flush_wire();
        for &srv in &txd.dep.server_threads {
            step(&sys, srv, 8 * frames.len());
        }
        sys.checkpoint_now().expect("checkpoint");
        cluster.replicas[0].poll();
        cluster.replicas[1].poll();
        txd.dep.nic.pump();
        if let Some(resp) = txd.dep.nic.try_take(commit_wire) {
            match TxnResp::decode(&resp) {
                Some(TxnResp::Ok { seq }) => acked.push((i, seq)),
                other => panic!("txn {i} commit rejected: {other:?}"),
            }
        }
    }
    assert!(!acked.is_empty(), "no externally acknowledged commit to protect");

    // One more transaction whose round is cut between the shipped delta's
    // data and its commit frame.
    for f in scenario.frames(2) {
        txd.dep.nic.send_request(9, &f.encode()).expect("rx push");
    }
    txd.dep.nic.flush_wire();
    for &srv in &txd.dep.server_threads {
        step(&sys, srv, 48);
    }
    let sched = Arc::clone(sys.kernel().pers.dev.crash_schedule());
    sched.arm(treesls_nvm::CrashPoint::Site { name: "repl.mid_ship".into(), skip: 0 });
    let unwound = catch_unwind(AssertUnwindSafe(|| sys.checkpoint_now()));
    sched.disarm();
    let payload = unwound.expect_err("repl.mid_ship never fired");
    assert!(
        payload.downcast_ref::<treesls_nvm::InjectedCrash>().is_some(),
        "checkpoint panicked for a reason other than the injected crash"
    );
    txd.dep.nic.pump();

    // The primary is lost; the failover manager drains the wire and
    // promotes the surviving replica.
    cluster.replicas[0].poll();
    let applied = cluster.replicas[0].applied_round();
    assert!(applied >= 2, "replica never applied the baseline rounds");
    txd.dep.nic.close();
    drop(txd);
    drop(sys);

    let (sys2, report) = cluster
        .promote(0, TxnRingScenario::txn_config(), |reg| {
            for (name, prog) in &programs {
                reg.register(name, Arc::clone(prog));
            }
        })
        .unwrap_or_else(|e| panic!("promotion failed: {e:?}"));
    assert_eq!(report.version, applied, "promoted at the mirrored round");
    sys2.manager().verify_checkpoint().expect("promoted tree verifies");

    let (vmspace, servers, notifs) = find_process_all(&sys2, "ring-txn");
    let nic2 = VirtualNic::attach(
        Arc::clone(sys2.kernel()),
        vmspace,
        layout,
        &scenario.nic_config(),
        1_000_000,
    );
    for (q, notif) in notifs.into_iter().enumerate() {
        nic2.set_doorbell(q, notif);
    }
    sys2.manager().register_callback(Arc::clone(&nic2) as _);
    sys2.manager().fire_restore_callbacks(report.version);

    // The promoted store is exactly index-consistent before serving.
    let io = HostIo::new(Arc::clone(sys2.kernel()), vmspace);
    let store = TxnStore::attach(&io, 0).expect("attach").expect("formatted");
    let meta = store.meta(&io).expect("meta");
    for (i, seq) in &acked {
        assert!(
            *seq <= meta.seq,
            "acked txn {i} (commit seq {seq}) lost across failover (promoted seq {})",
            meta.seq
        );
    }
    check_index_consistency(&store, &io)
        .unwrap_or_else(|e| panic!("promoted index inconsistent: {e}"));

    // §5 across failover: every acknowledged transaction's writes are
    // readable on the promoted node, through the NIC.
    for (i, _) in &acked {
        let key = tkey(100 + 2 * i);
        let read = TxnOp::Read { txn: 0, key };
        let seq = nic2.send_request(*i, &read.encode()).expect("rx push");
        nic2.flush_wire();
        for &srv in &servers {
            step(&sys2, srv, 16);
        }
        sys2.checkpoint_now().expect("post-failover checkpoint");
        nic2.pump();
        let resp = nic2.try_take(seq).and_then(|r| TxnResp::decode(&r));
        let expect = format!("a{i}s0").into_bytes();
        match resp {
            Some(TxnResp::Value { val }) if val == expect => {}
            other => panic!("acked txn {i} write lost across failover: {other:?}"),
        }
    }
    // And the promoted node keeps committing fresh transactions.
    let probe = TxnOp::WriteCommit {
        txn: 0,
        key: tkey(555_555),
        tag: ttag(0),
        val: Some(b"promoted".to_vec()),
    };
    let seq = nic2.send_request(3, &probe.encode()).expect("rx push");
    nic2.flush_wire();
    for &srv in &servers {
        step(&sys2, srv, 16);
    }
    sys2.checkpoint_now().expect("probe checkpoint");
    nic2.pump();
    match nic2.try_take(seq).and_then(|r| TxnResp::decode(&r)) {
        Some(TxnResp::Ok { .. }) => {}
        other => panic!("promoted node refused a fresh commit: {other:?}"),
    }
    sys2.manager().verify_checkpoint().expect("promoted tree verifies after new commits");
}
