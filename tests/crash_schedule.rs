//! Exhaustive crash-schedule enumeration (systematic §7.2 fault
//! injection).
//!
//! Each scenario (defined in `common/mod.rs`, shared with the torn-write
//! enumeration) is replayed once per NVM write index of its workload
//! phase, crashing at exactly that write, recovering, and checking:
//!
//! * the backup tree is internally consistent
//!   (`CheckpointManager::verify_checkpoint`, which includes the
//!   allocator's buddy/slab verification);
//! * process memory matches the byte-for-byte snapshot taken when the
//!   restored version originally committed;
//! * the external-visibility contract: every reply an external client
//!   observed before the crash is reproducible afterwards, and no slot
//!   tagged with a rolled-back version survives in a ring
//!   (`check_ext_sync_invariants`).
//!
//! `CRASH_STRIDE` (default 1 = every write) lets CI smoke jobs subsample
//! the index space; a failure report names the exact write index or crash
//! site, which reproduces deterministically with
//! `System::run_with_crash_schedule`.

mod common;

use common::{step, stride, HybridScenario, KvRingScenario, HYBRID_HEAP, HYBRID_PAGES};
use treesls::net::NetFaultConfig;
use treesls::{enumerate_crashes, enumerate_site_crashes, CrashScenario, System};

#[test]
fn hybrid_round_actually_migrates_and_evicts() {
    // Guard that the hybrid scenario exercises what it claims: at least
    // one migration, one speculative copy, and one eviction in a clean
    // run — otherwise the enumeration below would be vacuous.
    let scenario = HybridScenario;
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    scenario.workload(&mut sys, &mut st);
    let rounds = sys.manager().hybrid_rounds.lock().clone();
    let migrated: u64 = rounds.iter().map(|r| r.migrated_in).sum();
    let copied: u64 = rounds.iter().map(|r| r.dirty_cached).sum();
    let evicted: u64 = rounds.iter().map(|r| r.evicted).sum();
    assert!(migrated > 0, "no page was migrated to DRAM");
    assert!(copied > 0, "no dirty page was stop-and-copied");
    assert!(evicted > 0, "no idle page was evicted");
}

#[test]
fn kv_checkpoint_survives_crash_at_every_write() {
    // 9 ops against an 8-slot ring: the slot indices wrap, so crash
    // points also land inside reused slots (the truncate/ack interplay).
    let report = enumerate_crashes(&KvRingScenario::new(9), stride());
    eprintln!(
        "kv: {} writes, {} runs ({} crashed), {} site hits",
        report.writes,
        report.runs,
        report.injected,
        report.sites.len()
    );
    assert!(report.writes > 0, "workload performed no NVM writes");
    assert!(report.injected > 0, "no crash ever fired");
    report.assert_clean();
}

#[test]
fn hybrid_round_survives_crash_at_every_write() {
    let report = enumerate_crashes(&HybridScenario, stride());
    eprintln!(
        "hybrid: {} writes, {} runs ({} crashed), {} site hits",
        report.writes,
        report.runs,
        report.injected,
        report.sites.len()
    );
    assert!(report.writes > 0, "workload performed no NVM writes");
    assert!(report.injected > 0, "no crash ever fired");
    report.assert_clean();
}

#[test]
fn extsync_cycle_survives_crash_at_every_site() {
    // One full push → commit → callback cycle, cut at every named crash
    // site it traverses (checkpoint phases, persistence commit, journal,
    // ring publication, external-synchrony callbacks).
    let report = enumerate_site_crashes(&KvRingScenario::new(1));
    eprintln!("extsync sites: {} runs ({} crashed)", report.runs, report.injected);
    assert!(!report.sites.is_empty(), "workload hit no crash sites");
    let names: std::collections::HashSet<_> = report.sites.iter().map(|s| s.name).collect();
    // The NIC's publish → barrier pipeline must be on the schedule: the
    // server's TX publication, the slot write underneath it, and both
    // halves of the cross-queue visibility barrier (all queues advanced
    // unfenced, then one flush).
    assert!(names.contains("net.tx_published"), "sites: {names:?}");
    assert!(names.contains("ring.slot_written"), "sites: {names:?}");
    assert!(names.contains("ring.pre_visible_store"), "sites: {names:?}");
    assert!(names.contains("net.pre_barrier"), "sites: {names:?}");
    assert!(names.contains("net.pre_barrier_flush"), "sites: {names:?}");
    // Partial quiescence adds two cuts to every checkpoint: right after
    // the dirty-owning cores parked (before any copying), and at the
    // epoch cut-off where external-synchrony callbacks snapshot their TX
    // release barrier.
    assert!(names.contains("stw.partial_gate"), "sites: {names:?}");
    assert!(names.contains("stw.epoch_fence"), "sites: {names:?}");
    // Epoch-concurrent checkpointing adds two more: right after the
    // O(1) epoch flip (dirty cut taken, cores already resumed), and at
    // the start of the concurrent drain where the tree walk races live
    // mutators.
    assert!(names.contains("stw.epoch_flip"), "sites: {names:?}");
    assert!(names.contains("ckpt.concurrent_drain"), "sites: {names:?}");
    report.assert_clean();
}

#[test]
fn extsync_cycle_survives_crashes_over_reordering_wire() {
    // The same site enumeration with the network fault model composed in:
    // two queues, every third packet duplicated, and a 2-packet reorder
    // window. Crash-consistency must not depend on a well-behaved wire.
    let fault = NetFaultConfig { seed: 0xBEEF, drop_1_in: 0, dup_1_in: 3, reorder_window: 2 };
    let report = enumerate_site_crashes(&KvRingScenario::faulty(4, 2, fault));
    eprintln!(
        "extsync sites over faulty wire: {} runs ({} crashed)",
        report.runs, report.injected
    );
    assert!(!report.sites.is_empty(), "workload hit no crash sites");
    report.assert_clean();
}

/// The restore-path re-arm site ("net.pre_rearm") fires during recovery,
/// not during the workload, so site enumeration never schedules it — a
/// dedicated double-crash drill covers it: crash, recover, crash *again*
/// in the middle of the restore reconciliation (after ring truncation,
/// before the doorbells are re-signalled), recover once more, and run the
/// full oracle.
#[test]
fn restore_rearm_crash_is_survivable() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let scenario = KvRingScenario::new(2);
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    scenario.workload(&mut sys, &mut st);
    // Leave one request in the RX ring *after* the last commit: its
    // doorbell signal lives only in rolled-back state, so the restore
    // path must have a queue to re-arm.
    let op = treesls_apps::wire::KvOp::Set {
        key: treesls_apps::wire::make_key(b"straggler"),
        value: b"late".to_vec(),
    };
    st.nic.send_request(0, &op.encode()).expect("rx push");

    // First power failure and recovery, up to the restore callbacks.
    let image = sys.crash();
    let (mut sys2, report) =
        System::recover(image, scenario.config(), |r| scenario.programs(r))
            .expect("first recovery");
    scenario.reattach(&mut sys2, &mut st);
    let sched = std::sync::Arc::clone(sys2.kernel().pers.dev.crash_schedule());
    sched.arm(treesls_nvm::CrashPoint::Site { name: "net.pre_rearm".into(), skip: 0 });
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        sys2.manager().fire_restore_callbacks(report.version);
    }));
    sched.disarm();
    let payload = unwound.expect_err("net.pre_rearm never fired during restore");
    assert!(
        payload.downcast_ref::<treesls_nvm::InjectedCrash>().is_some(),
        "restore panicked for a reason other than the injected crash"
    );

    // Second power failure, mid-restore. Recovery must converge: the
    // ring truncation that already ran is idempotent.
    let image2 = sys2.crash();
    let (mut sys3, report2) =
        System::recover(image2, scenario.config(), |r| scenario.programs(r))
            .expect("second recovery");
    scenario.reattach(&mut sys3, &mut st);
    sys3.manager().fire_restore_callbacks(report2.version);
    sys3.manager().verify_checkpoint().expect("checkpoint consistent after double crash");
    scenario.verify(&mut sys3, &mut st, &report2).expect("oracle after double crash");
}

/// The epoch-fence conflict capture ("stw.clean_core_cow") fires on a
/// *free* core's write racing a partial-quiescence round, a schedule the
/// single-threaded site enumeration never produces — so a dedicated drill
/// covers it: arm the fence the way the checkpoint leader would, issue a
/// host write to a migrated dirty page, crash inside the capture, and
/// check that recovery rolls back cleanly and the first post-restore
/// checkpoint runs the healing full walk.
#[test]
fn clean_core_cow_crash_is_survivable_and_heals() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let scenario = HybridScenario;
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    // Two write+checkpoint rounds push every heap page past the hotness
    // threshold and migrate it to DRAM; one more write burst leaves the
    // migrated pages dirty for the next round.
    for _ in 0..2 {
        step(&sys, st.writer, HYBRID_PAGES as usize);
        st.snapshots.checkpoint(&sys, st.vmspace, HYBRID_HEAP);
    }
    step(&sys, st.writer, HYBRID_PAGES as usize);

    // Play the leader: arm the epoch fence for the next round, then write
    // to a migrated page from the host — the conflict CoW must trigger,
    // and the injected crash cuts it mid-capture.
    let sched = {
        let kernel = sys.kernel();
        kernel.fence.arm(kernel.pers.global_version() + 1);
        std::sync::Arc::clone(kernel.pers.dev.crash_schedule())
    };
    sched.arm(treesls_nvm::CrashPoint::Site { name: "stw.clean_core_cow".into(), skip: 0 });
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        sys.write_mem(st.vmspace, 0, &0xFEED_FACE_u64.to_le_bytes())
    }));
    sched.disarm();
    let payload =
        unwound.expect_err("stw.clean_core_cow never fired for a migrated-page write");
    assert!(
        payload.downcast_ref::<treesls_nvm::InjectedCrash>().is_some(),
        "write panicked for a reason other than the injected crash"
    );

    // Power failure mid-capture. Recovery must roll back to the last
    // commit, and the interrupted round's consumed dirty flags force the
    // healing full walk on the next checkpoint.
    let image = sys.crash();
    let (mut sys2, report) =
        System::recover(image, scenario.config(), |r| scenario.programs(r))
            .expect("recovery after mid-capture crash");
    scenario.reattach(&mut sys2, &mut st);
    sys2.manager().fire_restore_callbacks(report.version);
    sys2.manager().verify_checkpoint().expect("checkpoint consistent after crash");
    let walks_before = sys2.kernel().metrics.snapshot().tree_full_walks;
    scenario.verify(&mut sys2, &mut st, &report).expect("oracle after crash");
    let walks_after = sys2.kernel().metrics.snapshot().tree_full_walks;
    assert!(
        walks_after > walks_before,
        "first post-restore checkpoint did not run the healing full walk \
         ({walks_before} -> {walks_after})"
    );
}

/// The in-line log capture ("ckpt.inline_log_capture") fires on a small
/// (≤ 1 cache line) mutator write to a committed *non-migrated* page
/// racing the concurrent copy phase — again a schedule single-threaded
/// site enumeration never produces. Dedicated drill: commit one round so
/// the heap pages are read-only but not yet hot enough to migrate, arm
/// the fence the way the epoch flip would, issue an 8-byte host write
/// (undo record, not whole-page CoW), crash inside the capture, and
/// check that recovery rolls back to the last commit and the first
/// post-restore checkpoint runs the healing full walk.
#[test]
fn inline_log_capture_crash_is_survivable_and_heals() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let scenario = HybridScenario;
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    // One write+checkpoint round: every heap page commits and is marked
    // read-only, but stays below the migration hotness threshold, so the
    // conflict path takes the in-line log branch rather than the
    // migrated-page capture.
    step(&sys, st.writer, HYBRID_PAGES as usize);
    st.snapshots.checkpoint(&sys, st.vmspace, HYBRID_HEAP);

    let sched = {
        let kernel = sys.kernel();
        kernel.fence.arm(kernel.pers.global_version() + 1);
        std::sync::Arc::clone(kernel.pers.dev.crash_schedule())
    };
    sched.arm(treesls_nvm::CrashPoint::Site {
        name: "ckpt.inline_log_capture".into(),
        skip: 0,
    });
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        sys.write_mem(st.vmspace, 0, &0xDEAD_BEEF_u64.to_le_bytes())
    }));
    sched.disarm();
    let payload =
        unwound.expect_err("ckpt.inline_log_capture never fired for a small RO-page write");
    assert!(
        payload.downcast_ref::<treesls_nvm::InjectedCrash>().is_some(),
        "write panicked for a reason other than the injected crash"
    );

    // Power failure mid-append. The half-written undo record carries the
    // in-flight round tag, so recovery must ignore it and roll back to
    // the last commit; the interrupted write's consumed dirty flag forces
    // the healing full walk on the next checkpoint.
    let image = sys.crash();
    let (mut sys2, report) =
        System::recover(image, scenario.config(), |r| scenario.programs(r))
            .expect("recovery after mid-append crash");
    scenario.reattach(&mut sys2, &mut st);
    sys2.manager().fire_restore_callbacks(report.version);
    sys2.manager().verify_checkpoint().expect("checkpoint consistent after crash");
    let walks_before = sys2.kernel().metrics.snapshot().tree_full_walks;
    scenario.verify(&mut sys2, &mut st, &report).expect("oracle after crash");
    let walks_after = sys2.kernel().metrics.snapshot().tree_full_walks;
    assert!(
        walks_after > walks_before,
        "first post-restore checkpoint did not run the healing full walk \
         ({walks_before} -> {walks_after})"
    );
}

/// Seq-dedup audit across restore (truncated-TX + retransmit drill): a
/// response published to the TX ring but never committed is truncated by
/// recovery; when the restored server re-executes the surviving request
/// and re-publishes that reply, its pre-crash seq must not be matched to
/// any post-restore request. The host re-attaches with `next_seq` far
/// beyond every pre-crash seq, so stale seqs find no pending entry and
/// are dropped — no restore-epoch in the match key is needed.
#[test]
fn rolled_back_response_seq_never_matches_after_restore() {
    use treesls_apps::wire::{make_key, KvOp, KvResp};

    let scenario = KvRingScenario::new(2);
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    scenario.workload(&mut sys, &mut st);

    // Commit a round boundary, then push one SET whose *request* lands in
    // a committed checkpoint but whose *response* does not: drive the
    // server past publication, skip the commit, and crash.
    let op = KvOp::Set { key: make_key(b"victim"), value: b"uncommitted".to_vec() };
    let seq = st.nic.send_request(0, &op.encode()).expect("rx push");
    st.nic.flush_wire();
    sys.checkpoint_now().expect("commit the request");
    for &srv in &st.servers {
        step(&sys, srv, 16);
    }
    st.nic.pump();
    assert!(
        st.nic.try_take(seq).is_none(),
        "uncommitted response became externally visible before the crash"
    );

    let image = sys.crash();
    let (mut sys2, report) =
        System::recover(image, scenario.config(), |r| scenario.programs(r))
            .expect("recovery after truncated-TX crash");
    scenario.reattach(&mut sys2, &mut st);
    sys2.manager().fire_restore_callbacks(report.version);

    // The re-armed doorbell makes the restored server re-execute the
    // surviving request and re-publish the reply under its pre-crash seq.
    for &srv in &st.servers {
        step(&sys2, srv, 16);
    }
    sys2.checkpoint_now().expect("post-restore commit");
    st.nic.pump();
    // The stale seq finds no pending entry on the re-attached host: the
    // orphaned response is dropped, never delivered to a new caller.
    assert!(st.nic.try_take(seq).is_none(), "stale seq matched after restore");
    assert_eq!(st.nic.in_flight(), 0, "orphaned response left a pending entry");

    // A fresh request (seq from the post-restore range) gets exactly one
    // reply, and it reflects the re-executed SET.
    let get = KvOp::Get { key: make_key(b"victim") };
    let seq2 = st.nic.send_request(0, &get.encode()).expect("rx push");
    assert!(seq2 >= 1_000_000, "re-attached host reused a pre-crash seq range");
    st.nic.flush_wire();
    for &srv in &st.servers {
        step(&sys2, srv, 16);
    }
    sys2.checkpoint_now().expect("commit the GET");
    st.nic.pump();
    let resp = st.nic.try_take(seq2).expect("fresh request got no reply");
    match KvResp::decode(&resp) {
        Some(KvResp::Ok(Some(v))) if v.as_slice() == b"uncommitted" => {}
        other => panic!("re-executed SET not visible to post-restore GET: {other:?}"),
    }
    assert!(st.nic.try_take(seq2).is_none(), "reply delivered twice");
    sys2.manager().verify_checkpoint().expect("checkpoint consistent");
}

#[test]
fn hybrid_round_survives_crash_at_every_site() {
    let report = enumerate_site_crashes(&HybridScenario);
    eprintln!("hybrid sites: {} runs ({} crashed)", report.runs, report.injected);
    let names: std::collections::HashSet<_> =
        report.sites.iter().map(|s| s.name).collect();
    // The hybrid-specific sites must be on the schedule, or the run is
    // not testing what it claims.
    assert!(names.contains("hybrid.pre_migrate_in"), "sites: {names:?}");
    assert!(names.contains("hybrid.pre_sac_copy"), "sites: {names:?}");
    assert!(names.contains("hybrid.pre_evict"), "sites: {names:?}");
    // The dirty-queue walk's phases must also be cut: after the drain,
    // before the offload, after the aux join, and before the inref-delta
    // apply. A crash at any of them loses the consumed dirty flags, so a
    // clean recovery here proves the healing full walk resynchronizes.
    assert!(names.contains("tree.dirty_drained"), "sites: {names:?}");
    assert!(names.contains("tree.pre_offload"), "sites: {names:?}");
    assert!(names.contains("tree.aux_drained"), "sites: {names:?}");
    assert!(names.contains("tree.pre_epoch_apply"), "sites: {names:?}");
    report.assert_clean();
}

/// The checkpoint-shipping crash sites (`repl.pre_ship` before the delta
/// is built, `repl.mid_ship` between a delta's data and its commit frame,
/// `repl.post_ack` after the quorum wait) all fire *after* the local
/// commit point but *before* the NIC's visibility barrier advances — so a
/// primary lost at any of them has released nothing for the cut round,
/// and a replica promoted from its mirror must satisfy the §5 oracle:
/// every externally acknowledged write is readable after failover. The
/// promoted tree is then verified under both walk flavors (the healing
/// full walk recovery forces, and the O(changes) dirty walk of the
/// following rounds).
#[test]
fn repl_ship_crash_sites_cut_failover_cleanly() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    use common::{find_process_all, KV_GEOM};
    use treesls::net::VirtualNic;
    use treesls_apps::wire::{make_key, KvOp, KvResp};
    use treesls_bench::ringsetup::{deploy_kv_cfg, nic_config};
    use treesls_repl::{Cluster, ClusterConfig};

    for site in ["repl.pre_ship", "repl.mid_ship", "repl.post_ack"] {
        let sys = System::boot(KvRingScenario::kv_config());
        let dep = deploy_kv_cfg(&sys, 16, 40, nic_config(1, true, &KV_GEOM), KV_GEOM);
        for &srv in &dep.server_threads {
            step(&sys, srv, 4);
        }
        let cluster = Cluster::deploy(&sys, &ClusterConfig::default());
        cluster.attach_gate(&dep.nic);
        let programs: Vec<_> = sys
            .programs()
            .names()
            .into_iter()
            .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
            .collect();
        let layout = dep.nic.layout();

        // Two committed, replicated, externally acknowledged rounds.
        let mut acked: Vec<(u64, [u8; 16], Vec<u8>)> = Vec::new();
        for i in 0..2u64 {
            // Keys are 16 bytes; keep the discriminant up front.
            let key = make_key(format!("k{i}-{site}").as_bytes());
            let value = format!("{site}-value-{i}").into_bytes();
            let op = KvOp::Set { key, value: value.clone() };
            let seq = dep.nic.send_request(i, &op.encode()).expect("rx push");
            dep.nic.flush_wire();
            for &srv in &dep.server_threads {
                step(&sys, srv, 8);
            }
            sys.checkpoint_now().expect("checkpoint");
            cluster.replicas[0].poll();
            cluster.replicas[1].poll();
            dep.nic.pump();
            if dep.nic.try_take(seq).is_some() {
                acked.push((i, key, value));
            }
        }
        assert!(!acked.is_empty(), "{site}: no externally visible write to protect");

        // One more SET whose round is cut at the shipper's crash site.
        let op = KvOp::Set { key: make_key(b"cut-round"), value: b"never-released".to_vec() };
        dep.nic.send_request(9, &op.encode()).expect("rx push");
        dep.nic.flush_wire();
        for &srv in &dep.server_threads {
            step(&sys, srv, 8);
        }
        let sched = Arc::clone(sys.kernel().pers.dev.crash_schedule());
        sched.arm(treesls_nvm::CrashPoint::Site { name: site.into(), skip: 0 });
        let unwound = catch_unwind(AssertUnwindSafe(|| sys.checkpoint_now()));
        sched.disarm();
        let payload = unwound.expect_err(site);
        assert!(
            payload.downcast_ref::<treesls_nvm::InjectedCrash>().is_some(),
            "{site}: checkpoint panicked for a reason other than the injected crash"
        );
        // The barrier never advanced past the cut round: its response
        // must not have been released.
        dep.nic.pump();

        // The machine is lost. A failover manager drains what the wire
        // still holds, then promotes the surviving replica.
        cluster.replicas[0].poll();
        let applied = cluster.replicas[0].applied_round();
        assert!(applied >= 2, "{site}: replica never applied the baseline rounds");
        dep.nic.close();
        drop(dep);
        drop(sys);

        let (sys2, report) = cluster
            .promote(0, KvRingScenario::kv_config(), |reg| {
                for (name, prog) in &programs {
                    reg.register(name, Arc::clone(prog));
                }
            })
            .unwrap_or_else(|e| panic!("{site}: promotion failed: {e:?}"));
        assert_eq!(report.version, applied, "{site}: promoted at the mirrored round");
        sys2.manager().verify_checkpoint().expect("promoted tree verifies (full-walk heal)");

        let (vmspace, servers, notifs) = find_process_all(&sys2, "ring-kv");
        let nic2 = VirtualNic::attach(
            Arc::clone(sys2.kernel()),
            vmspace,
            layout,
            &nic_config(1, true, &KV_GEOM),
            1_000_000,
        );
        for (q, notif) in notifs.into_iter().enumerate() {
            nic2.set_doorbell(q, notif);
        }
        sys2.manager().register_callback(Arc::clone(&nic2) as _);
        sys2.manager().fire_restore_callbacks(report.version);

        // §5 across the failover: every acknowledged SET is readable.
        for (flow, key, value) in &acked {
            let get = KvOp::Get { key: *key };
            let seq = nic2.send_request(*flow, &get.encode()).expect("rx push");
            nic2.flush_wire();
            for &srv in &servers {
                step(&sys2, srv, 16);
            }
            sys2.checkpoint_now().expect("post-failover checkpoint");
            nic2.pump();
            let resp = nic2.try_take(seq).and_then(|r| KvResp::decode(&r));
            match resp {
                Some(KvResp::Ok(Some(v))) if &v == value => {}
                other => panic!("{site}: acked SET {key:?} lost across failover: {other:?}"),
            }
        }
        // The GET rounds above ran the O(changes) dirty walk on top of
        // the recovery full walk; the tree must still verify.
        assert!(sys2.kernel().metrics.snapshot().tree_full_walks >= 1);
        sys2.manager().verify_checkpoint().expect("promoted tree verifies (dirty walk)");
    }
}

#[test]
fn crash_runs_are_reproducible() {
    // The same crash point must produce the same restored version and
    // the same recovery outcome — the property that makes a failure
    // report (scenario + write index) a deterministic repro.
    let scenario = KvRingScenario::new(2);
    let (writes, _) = treesls::crashtest::measure(&scenario);
    let idx = writes / 2;
    let a = System::run_with_crash_schedule(
        &scenario,
        Some(treesls_nvm::CrashPoint::AnyWrite(idx)),
    )
    .expect("first run");
    let b = System::run_with_crash_schedule(
        &scenario,
        Some(treesls_nvm::CrashPoint::AnyWrite(idx)),
    )
    .expect("second run");
    assert_eq!(a.crashed, b.crashed);
    assert_eq!(a.report.version, b.report.version);
    assert_eq!(a.report.objects, b.report.objects);
    assert_eq!(a.report.pages, b.report.pages);
}

#[test]
fn completed_workload_still_passes_with_unfired_fuse() {
    // Arming far beyond the workload's write count must behave like a
    // clean power-off after completion.
    let scenario = KvRingScenario::new(1);
    let run = System::run_with_crash_schedule(
        &scenario,
        Some(treesls_nvm::CrashPoint::AnyWrite(u64::MAX / 2)),
    )
    .expect("clean run");
    assert!(!run.crashed);
}
