//! Exhaustive crash-schedule enumeration (systematic §7.2 fault
//! injection).
//!
//! Each scenario (defined in `common/mod.rs`, shared with the torn-write
//! enumeration) is replayed once per NVM write index of its workload
//! phase, crashing at exactly that write, recovering, and checking:
//!
//! * the backup tree is internally consistent
//!   (`CheckpointManager::verify_checkpoint`, which includes the
//!   allocator's buddy/slab verification);
//! * process memory matches the byte-for-byte snapshot taken when the
//!   restored version originally committed;
//! * the external-visibility contract: every reply an external client
//!   observed before the crash is reproducible afterwards, and no slot
//!   tagged with a rolled-back version survives in a ring
//!   (`check_ext_sync_invariants`).
//!
//! `CRASH_STRIDE` (default 1 = every write) lets CI smoke jobs subsample
//! the index space; a failure report names the exact write index or crash
//! site, which reproduces deterministically with
//! `System::run_with_crash_schedule`.

mod common;

use common::{stride, HybridScenario, KvRingScenario};
use treesls::{enumerate_crashes, enumerate_site_crashes, CrashScenario, System};

#[test]
fn hybrid_round_actually_migrates_and_evicts() {
    // Guard that the hybrid scenario exercises what it claims: at least
    // one migration, one speculative copy, and one eviction in a clean
    // run — otherwise the enumeration below would be vacuous.
    let scenario = HybridScenario;
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    scenario.workload(&mut sys, &mut st);
    let rounds = sys.manager().hybrid_rounds.lock().clone();
    let migrated: u64 = rounds.iter().map(|r| r.migrated_in).sum();
    let copied: u64 = rounds.iter().map(|r| r.dirty_cached).sum();
    let evicted: u64 = rounds.iter().map(|r| r.evicted).sum();
    assert!(migrated > 0, "no page was migrated to DRAM");
    assert!(copied > 0, "no dirty page was stop-and-copied");
    assert!(evicted > 0, "no idle page was evicted");
}

#[test]
fn kv_checkpoint_survives_crash_at_every_write() {
    // 9 ops against an 8-slot ring: the slot indices wrap, so crash
    // points also land inside reused slots (the truncate/ack interplay).
    let report = enumerate_crashes(&KvRingScenario::new(9), stride());
    eprintln!(
        "kv: {} writes, {} runs ({} crashed), {} site hits",
        report.writes,
        report.runs,
        report.injected,
        report.sites.len()
    );
    assert!(report.writes > 0, "workload performed no NVM writes");
    assert!(report.injected > 0, "no crash ever fired");
    report.assert_clean();
}

#[test]
fn hybrid_round_survives_crash_at_every_write() {
    let report = enumerate_crashes(&HybridScenario, stride());
    eprintln!(
        "hybrid: {} writes, {} runs ({} crashed), {} site hits",
        report.writes,
        report.runs,
        report.injected,
        report.sites.len()
    );
    assert!(report.writes > 0, "workload performed no NVM writes");
    assert!(report.injected > 0, "no crash ever fired");
    report.assert_clean();
}

#[test]
fn extsync_cycle_survives_crash_at_every_site() {
    // One full push → commit → callback cycle, cut at every named crash
    // site it traverses (checkpoint phases, persistence commit, journal,
    // ring publication, external-synchrony callbacks).
    let report = enumerate_site_crashes(&KvRingScenario::new(1));
    eprintln!("extsync sites: {} runs ({} crashed)", report.runs, report.injected);
    assert!(!report.sites.is_empty(), "workload hit no crash sites");
    report.assert_clean();
}

#[test]
fn hybrid_round_survives_crash_at_every_site() {
    let report = enumerate_site_crashes(&HybridScenario);
    eprintln!("hybrid sites: {} runs ({} crashed)", report.runs, report.injected);
    let names: std::collections::HashSet<_> =
        report.sites.iter().map(|s| s.name).collect();
    // The hybrid-specific sites must be on the schedule, or the run is
    // not testing what it claims.
    assert!(names.contains("hybrid.pre_migrate_in"), "sites: {names:?}");
    assert!(names.contains("hybrid.pre_sac_copy"), "sites: {names:?}");
    assert!(names.contains("hybrid.pre_evict"), "sites: {names:?}");
    // The dirty-queue walk's phases must also be cut: after the drain,
    // before the offload, after the aux join, and before the inref-delta
    // apply. A crash at any of them loses the consumed dirty flags, so a
    // clean recovery here proves the healing full walk resynchronizes.
    assert!(names.contains("tree.dirty_drained"), "sites: {names:?}");
    assert!(names.contains("tree.pre_offload"), "sites: {names:?}");
    assert!(names.contains("tree.aux_drained"), "sites: {names:?}");
    assert!(names.contains("tree.pre_epoch_apply"), "sites: {names:?}");
    report.assert_clean();
}

#[test]
fn crash_runs_are_reproducible() {
    // The same crash point must produce the same restored version and
    // the same recovery outcome — the property that makes a failure
    // report (scenario + write index) a deterministic repro.
    let scenario = KvRingScenario::new(2);
    let (writes, _) = treesls::crashtest::measure(&scenario);
    let idx = writes / 2;
    let a = System::run_with_crash_schedule(
        &scenario,
        Some(treesls_nvm::CrashPoint::AnyWrite(idx)),
    )
    .expect("first run");
    let b = System::run_with_crash_schedule(
        &scenario,
        Some(treesls_nvm::CrashPoint::AnyWrite(idx)),
    )
    .expect("second run");
    assert_eq!(a.crashed, b.crashed);
    assert_eq!(a.report.version, b.report.version);
    assert_eq!(a.report.objects, b.report.objects);
    assert_eq!(a.report.pages, b.report.pages);
}

#[test]
fn completed_workload_still_passes_with_unfired_fuse() {
    // Arming far beyond the workload's write count must behave like a
    // clean power-off after completion.
    let scenario = KvRingScenario::new(1);
    let run = System::run_with_crash_schedule(
        &scenario,
        Some(treesls_nvm::CrashPoint::AnyWrite(u64::MAX / 2)),
    )
    .expect("clean run");
    assert!(!run.crashed);
}
