//! Crash-schedule enumeration over the NVM flight recorder.
//!
//! The recorder's crash-survival argument (OBSERVABILITY.md) is that an
//! append is one 64-byte, cache-line-aligned metadata store: it is either
//! fully present or fully absent after a crash, and recovery's CRC +
//! sequence-contiguity scan keeps exactly the surviving tail. This test
//! proves it mechanically: a workload interleaves `Marker` events (with
//! self-describing payloads) with checkpoints, the plug is pulled at
//! every NVM write index (and every torn-write cut class), and the
//! recovered [`RecoveryReport::flight_events`] must contain
//!
//! * a strictly consecutive run of sequence numbers (no holes, no
//!   mis-parse of a torn slot as a valid event), and
//! * **exactly** the markers whose `record()` call returned before the
//!   cut, each with its payload intact (under eADR, where every applied
//!   store is durable).
//!
//! Under ADR with an adversarial reorder window the count guarantee
//! weakens to "a contiguous, intact range" — unfenced slot lines may be
//! lost — but corruption and mis-parsing remain impossible.

mod common;

use common::stride;

use treesls::{
    enumerate_crashes, enumerate_torn_crashes, CrashScenario, EventKind, KernelConfig,
    ProgramRegistry, RestoreReport, System, SystemConfig,
};
use treesls_nvm::PersistMode;

/// Number of marker events the workload records.
const MARKERS: u64 = 12;
/// A checkpoint is taken after every `CKPT_EVERY` markers, so cuts land
/// inside checkpoint instrumentation (CkptBegin/CkptCommit slots) too.
const CKPT_EVERY: u64 = 4;

fn marker_payload(i: u64) -> [u64; 6] {
    [i, i * 7 + 1, i ^ 0xDEAD_BEEF, 0, 0, 0]
}

struct RecorderScenario {
    /// With `strict`, every marker issued before the cut must be
    /// recovered (eADR: applied ⇒ durable). Without it (ADR reorder
    /// window), recovered markers need only be a contiguous intact range.
    strict: bool,
}

struct RecorderState {
    /// Markers whose `record()` call returned before the crash.
    issued: u64,
}

impl CrashScenario for RecorderScenario {
    type State = RecorderState;

    fn config(&self) -> SystemConfig {
        SystemConfig {
            kernel: KernelConfig { nvm_frames: 2048, dram_pages: 64, ..KernelConfig::default() },
            cores: 1,
            quantum: 16,
            checkpoint_interval: None,
        }
    }

    fn setup(&self, sys: &mut System) -> RecorderState {
        sys.checkpoint_now().expect("initial checkpoint");
        RecorderState { issued: 0 }
    }

    fn workload(&self, sys: &mut System, st: &mut RecorderState) {
        for i in 0..MARKERS {
            sys.kernel().pers.recorder().record(EventKind::Marker, marker_payload(i));
            st.issued = i + 1;
            if (i + 1) % CKPT_EVERY == 0 {
                sys.checkpoint_now().expect("checkpoint");
            }
        }
    }

    fn programs(&self, _reg: &ProgramRegistry) {}

    fn verify(
        &self,
        _sys: &mut System,
        st: &mut RecorderState,
        report: &RestoreReport,
    ) -> Result<(), String> {
        let events = &report.recovery.flight_events;
        for w in events.windows(2) {
            if w[1].seq != w[0].seq + 1 {
                return Err(format!(
                    "recovered tail has a sequence hole: {} then {}",
                    w[0].seq, w[1].seq
                ));
            }
        }
        let markers: Vec<_> = events
            .iter()
            .filter(|e| e.event_kind() == Some(EventKind::Marker))
            .collect();
        // Markers must be a contiguous range i..j of the issued indices,
        // each payload intact — a torn or corrupt slot can only truncate
        // the tail, never decode to a wrong event.
        let first = markers.first().map_or(0, |e| e.payload[0]);
        for (k, e) in markers.iter().enumerate() {
            let expect = first + k as u64;
            if e.payload != marker_payload(expect) {
                return Err(format!(
                    "marker {expect} corrupt or out of order: payload {:?}",
                    e.payload
                ));
            }
        }
        let last = first + markers.len() as u64;
        if last > st.issued {
            return Err(format!(
                "recovered marker {} but only {} were issued before the cut",
                last - 1,
                st.issued
            ));
        }
        if self.strict && (first != 0 || last != st.issued) {
            return Err(format!(
                "issued {} markers before the cut, recovered range {first}..{last}",
                st.issued
            ));
        }
        Ok(())
    }
}

#[test]
fn recorder_workload_actually_records_and_wraps_checkpoints() {
    // Guard against vacuity: the clean run must leave marker and
    // checkpoint events decodable in the live tail.
    let scenario = RecorderScenario { strict: true };
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    scenario.workload(&mut sys, &mut st);
    let tail = sys.kernel().pers.recorder().tail();
    let markers = tail.iter().filter(|e| e.event_kind() == Some(EventKind::Marker)).count();
    let commits = tail.iter().filter(|e| e.event_kind() == Some(EventKind::CkptCommit)).count();
    assert_eq!(markers as u64, MARKERS);
    assert!(commits as u64 >= MARKERS / CKPT_EVERY, "checkpoint events missing: {commits}");
}

#[test]
fn every_pre_cut_event_survives_crash_at_every_write() {
    let report = enumerate_crashes(&RecorderScenario { strict: true }, stride());
    eprintln!(
        "recorder: {} writes, {} runs ({} crashed)",
        report.writes, report.runs, report.injected
    );
    assert!(report.writes > 0, "workload performed no NVM writes");
    assert!(report.injected > 0, "no crash ever fired");
    report.assert_clean();
}

#[test]
fn torn_tail_slots_are_dropped_never_misparsed() {
    // Every write index × every 64 B cut class: a cut inside a slot
    // append leaves nothing of the slot (cut 0 is its only tear class —
    // the append is one aligned cache line), and cuts inside *other*
    // structures must never make the recorder misattribute their bytes.
    let report = enumerate_torn_crashes(
        &RecorderScenario { strict: true },
        stride(),
        PersistMode::Eadr,
        &[0],
    );
    eprintln!(
        "recorder torn: {} writes, {} runs ({} crashed)",
        report.writes, report.runs, report.injected
    );
    assert!(report.injected > 0, "no torn crash ever fired");
    report.assert_clean();
}

#[test]
fn adr_reorder_drops_only_truncate_the_tail() {
    // Unfenced slot lines may vanish under ADR; the tail walk must stop
    // at the hole rather than resurrect or corrupt anything.
    let report = enumerate_torn_crashes(
        &RecorderScenario { strict: false },
        stride().max(3),
        PersistMode::Adr { reorder_window: 64 },
        &[u64::MAX, 0x9E37_79B9_7F4A_7C15],
    );
    eprintln!(
        "recorder adr: {} writes, {} runs ({} crashed)",
        report.writes, report.runs, report.injected
    );
    assert!(report.injected > 0, "no torn crash ever fired");
    report.assert_clean();
}

#[test]
fn media_fault_in_ring_truncates_forensics_but_not_recovery() {
    // Flip one bit in a mid-tail slot *after* the power failure: the
    // events before the bad slot are dropped (the tail-contiguity rule),
    // the events after it survive, and system recovery itself is
    // untouched — a corrupt forensic log must never fail a restore.
    let scenario = RecorderScenario { strict: true };
    let mut sys = System::boot(scenario.config());
    let mut st = scenario.setup(&mut sys);
    scenario.workload(&mut sys, &mut st);
    let recorder = sys.kernel().pers.recorder();
    let next = recorder.next_seq();
    assert!(next > 4, "need a few events to corrupt one mid-tail");
    let victim_seq = next - 3;
    let slot_off = recorder.region_off()
        + ((victim_seq - 1) as usize % recorder.slots()) * treesls::SLOT_LEN;
    let image = sys.crash();
    image.dev.flip_meta_bit(slot_off + 20, 3); // payload byte, CRC-covered
    let (_sys2, report) =
        System::recover(image, scenario.config(), |_| {}).expect("recovery unaffected");
    let events = &report.recovery.flight_events;
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(
        seqs,
        vec![victim_seq + 1, victim_seq + 2],
        "tail must restart after the corrupt slot"
    );
    assert!(
        events.iter().all(|e| e.seq != victim_seq),
        "the corrupt slot must not decode"
    );
}
