//! Application-level integration: the paper's real-world app stand-ins
//! running transparently persisted inside TreeSLS, with crash/recover
//! verification of their data structures.

use std::sync::Arc;
use std::time::Duration;

use treesls::{ObjType, Program, System, SystemConfig};
use treesls_apps::btree::{BTree, VAL_LEN};
use treesls_apps::hashkv::HashKv;
use treesls_apps::lsm::{Lsm, LsmConfig};
use treesls_apps::wire::{make_key, KvOp, KvResp};
use treesls_bench::harness::{build, BenchOpts, WorkloadKind};
use treesls_bench::ringsetup::{deploy_kv, ShardGeometry};
use treesls_extsync::{HostIo, MemIo};
use treesls_kernel::object::ObjectBody;

fn opts() -> BenchOpts {
    BenchOpts { cores: 2, interval: Some(Duration::from_millis(1)), ..BenchOpts::default() }
}

/// Runs a Table 2 workload briefly and verifies it makes progress under
/// 1 ms checkpointing.
fn smoke(kind: WorkloadKind) -> u64 {
    let mut bench = build(kind, &opts());
    bench.run(Duration::from_millis(400));
    let version = bench.sys.kernel().pers.global_version();
    assert!(version >= 50, "{}: only {version} checkpoints in 400ms", kind.label());
    version
}

#[test]
fn sqlite_workload_checkpoints_at_speed() {
    smoke(WorkloadKind::Sqlite);
}

#[test]
fn leveldb_workload_checkpoints_at_speed() {
    let mut bench = build(WorkloadKind::Leveldb, &opts());
    bench.run(Duration::from_millis(400));
    // LSM flushes make some pauses long; just require sustained progress.
    assert!(bench.sys.kernel().pers.global_version() >= 10);
}

#[test]
fn phoenix_workloads_complete_under_checkpointing() {
    for kind in [WorkloadKind::KMeans, WorkloadKind::Pca] {
        let mut bench = build(kind, &opts());
        let done = {
            bench.sys.start();
            let ok = bench.sys.join_threads(&bench.workers, Duration::from_secs(120));
            bench.sys.stop();
            ok
        };
        assert!(done, "{} did not finish", kind.label());
        assert!(bench.sys.kernel().pers.global_version() >= 10);
    }
}

#[test]
fn wordcount_counts_match_input() {
    let o = BenchOpts { cores: 4, ..opts() };
    let mut bench = build(WorkloadKind::WordCount, &o);
    bench.sys.start();
    assert!(bench.sys.join_threads(&bench.workers, Duration::from_secs(120)));
    bench.sys.stop();
    // Sum per-worker counts of one word and sanity-check totals: every
    // vocabulary word has 4 or 5 letters + 1 space separator.
    let vs = bench.app_vmspace.unwrap();
    let io = HostIo::new(Arc::clone(bench.sys.kernel()), vs);
    let mut total = 0u64;
    for w in 0..8u64 {
        let table = HashKv::attach(&io, 128 << 20 | (w << 20)).ok();
        let table = match table {
            Some(t) => t,
            None => HashKv::attach(&io, (128u64 << 20) + w * (1 << 20)).unwrap(),
        };
        for word in ["tree", "sls", "nvm", "ckpt", "cap", "page", "fault", "copy"] {
            if let Some(v) = table.get(&io, &make_key(word.as_bytes())).unwrap() {
                total += u64::from_le_bytes(v.try_into().unwrap());
            }
        }
    }
    assert!(total > 100_000, "only {total} words counted");
}

#[test]
fn kv_store_contents_survive_crash_recover() {
    let mut sys = System::boot(SystemConfig {
        kernel: treesls::KernelConfig {
            nvm_frames: 65_536,
            dram_pages: 1024,
            ..Default::default()
        },
        cores: 2,
        quantum: 32,
        checkpoint_interval: Some(Duration::from_millis(1)),
    });
    let dep = deploy_kv(&sys, 2, 1024, 128, false, ShardGeometry::default());
    sys.start();
    // Populate both shards; the key doubles as the flow id, so the RSS
    // hash decides which shard owns each key.
    for i in 0..100u64 {
        let op = KvOp::Set {
            key: make_key(format!("key{i}").as_bytes()),
            value: format!("value{i}").into_bytes(),
        };
        let resp = dep
            .nic
            .call(i, &op.encode(), Duration::from_secs(5))
            .unwrap()
            .reply()
            .expect("SET acked");
        assert!(matches!(KvResp::decode(&resp), Some(KvResp::Ok(None))));
    }
    std::thread::sleep(Duration::from_millis(10)); // cover with checkpoints
    sys.stop();
    let programs: Vec<(String, Arc<dyn Program>)> = sys
        .programs()
        .names()
        .into_iter()
        .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
        .collect();
    let cfg = SystemConfig {
        kernel: treesls::KernelConfig {
            nvm_frames: 65_536,
            dram_pages: 1024,
            ..Default::default()
        },
        cores: 2,
        quantum: 32,
        checkpoint_interval: None,
    };
    let image = sys.crash();
    let (sys2, _) = System::recover(image, cfg, move |r| {
        for (n, p) in programs {
            r.register(&n, p);
        }
    })
    .unwrap();
    // Verify the tables directly in restored memory.
    let vs2 = {
        let kernel = sys2.kernel();
        let objects = kernel.objects.read();
        let found = objects
            .iter()
            .filter(|(_, o)| o.otype == ObjType::VmSpace)
            .map(|(id, _)| id)
            .find(|&id| {
                let o = kernel.object(id).unwrap();
                let body = o.body.read();
                let yes =
                    matches!(&*body, ObjectBody::VmSpace(v) if v.regions.len() >= 2);
                drop(body);
                yes
            })
            .expect("server vmspace");
        found
    };
    let io = HostIo::new(Arc::clone(sys2.kernel()), vs2);
    let stride = ShardGeometry::default().data_stride;
    for shard in 0..2u64 {
        let table = HashKv::attach(&io, shard * stride).expect("restored table");
        for i in 0..100u64 {
            if treesls::net::queue_for(i, 2) != shard as usize {
                continue;
            }
            let got = table.get(&io, &make_key(format!("key{i}").as_bytes())).unwrap();
            assert_eq!(
                got,
                Some(format!("value{i}").into_bytes()),
                "key{i} lost in crash"
            );
        }
    }
}

#[test]
fn data_structures_work_through_host_io() {
    // The same structures accessible via DMA-style HostIo — a sanity check
    // that MemIo genericity holds across backends.
    let sys = System::boot(SystemConfig::small());
    let kernel = sys.kernel();
    let g = kernel.create_cap_group("direct").unwrap();
    let vs = kernel.create_vmspace(g).unwrap();
    let pmo = kernel.create_pmo(g, 2048, treesls::PmoKind::Data).unwrap();
    kernel
        .map_region(vs, treesls::Vpn(0), 2048, pmo, 0, treesls::CapRights::ALL)
        .unwrap();
    let io = HostIo::new(Arc::clone(kernel), vs);

    let bt = BTree::format(&io, 0, 64).unwrap();
    let mut v = [0u8; VAL_LEN];
    v[0] = 42;
    bt.insert(&io, 7, &v).unwrap();
    assert_eq!(bt.get(&io, 7).unwrap().unwrap()[0], 42);

    let lsm_cfg = LsmConfig {
        memtable_base: 1 << 20,
        memtable_cap: 16,
        storage_base: 2 << 20,
        storage_len: 4 << 20,
        wal_base: None,
        wal_len: 0,
        val_cap: 32,
    };
    let lsm = Lsm::format(&io, lsm_cfg).unwrap();
    for k in 0..50u64 {
        lsm.put(&io, k, &k.to_le_bytes()).unwrap();
    }
    for k in 0..50u64 {
        assert_eq!(lsm.get(&io, k).unwrap(), Some(k.to_le_bytes().to_vec()));
    }
    // Memory ops went through the kernel path: pages were materialized.
    assert!(io.mem_read_u64(lsm_cfg.memtable_base).is_ok());
}
