//! Shared crash-scenario definitions used by both the clean-crash
//! enumeration (`crash_schedule.rs`) and the torn-write / media-fault
//! enumeration (`torn_write.rs`).
//!
//! Each integration-test binary compiles its own copy of this module and
//! uses a different subset of it, hence the blanket `dead_code` allow.
#![allow(dead_code)]

use std::sync::Arc;

use parking_lot::Mutex;

use treesls::extsync::{check_ext_sync_invariants, HostIo, NetPort};
use treesls::{
    CrashScenario, ObjId, Program, ProgramRegistry, RestoreReport, StepOutcome, System,
    SystemConfig, UserCtx,
};
use treesls_apps::wire::{make_key, KvOp, KvResp};
use treesls_bench::ringsetup::{deploy_kv, ShardGeometry};
use treesls_kernel::cores::run_slice;
use treesls_kernel::object::{ObjType, ObjectBody};

/// CI knob: enumerate every `CRASH_STRIDE`-th crash point (default 1 =
/// every single one).
pub fn stride() -> u64 {
    std::env::var("CRASH_STRIDE").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// Steps `tid` synchronously on the calling thread (no cores running).
pub fn step(sys: &System, tid: ObjId, steps: usize) {
    run_slice(sys.kernel(), tid, steps, sys.manager().stw());
}

/// Finds the cap group named `name` and returns its (vmspace, first
/// thread, first notification) — the post-restore handles of a process.
pub fn find_process(sys: &System, name: &str) -> (ObjId, ObjId, Option<ObjId>) {
    let kernel = sys.kernel();
    let objects = kernel.objects.read();
    let group = objects
        .iter()
        .map(|(_, o)| Arc::clone(o))
        .find(|o| {
            o.otype == ObjType::CapGroup
                && matches!(&*o.body.read(), ObjectBody::CapGroup(g) if g.name == name)
        })
        .unwrap_or_else(|| panic!("cap group {name:?} not restored"));
    drop(objects);
    let body = group.body.read();
    let ObjectBody::CapGroup(g) = &*body else { unreachable!() };
    let mut vmspace = None;
    let mut thread = None;
    let mut notif = None;
    for (_, c) in g.iter() {
        match kernel.object(c.obj).map(|o| o.otype) {
            Ok(ObjType::VmSpace) => vmspace = vmspace.or(Some(c.obj)),
            Ok(ObjType::Thread) => thread = thread.or(Some(c.obj)),
            Ok(ObjType::Notification) => notif = notif.or(Some(c.obj)),
            _ => {}
        }
    }
    (vmspace.expect("vmspace restored"), thread.expect("thread restored"), notif)
}

/// Reads the whole data heap of `vmspace` (`pages` 4 KiB pages).
pub fn read_heap(sys: &System, vmspace: ObjId, pages: u64) -> Vec<u8> {
    let mut buf = vec![0u8; (pages * 4096) as usize];
    sys.read_mem(vmspace, 0, &mut buf).expect("heap readable");
    buf
}

/// Memory snapshots keyed by committed version, with a staging slot for
/// the commit that may be in flight when the crash fires: the snapshot is
/// staged *before* `checkpoint_now` (the heap cannot change between
/// staging and the commit point — the workload is single-threaded), so a
/// crash after the commit but before bookkeeping still has the image the
/// restored version must reproduce.
#[derive(Default)]
pub struct Snapshots {
    pub committed: Vec<(u64, Vec<u8>)>,
    pub staged: Option<(u64, Vec<u8>)>,
}

impl Snapshots {
    pub fn checkpoint(&mut self, sys: &System, vmspace: ObjId, pages: u64) {
        self.staged =
            Some((sys.kernel().pers.global_version() + 1, read_heap(sys, vmspace, pages)));
        sys.checkpoint_now().expect("checkpoint");
        self.committed.push(self.staged.take().expect("staged snapshot"));
    }

    pub fn expect_at(&self, version: u64) -> Option<&Vec<u8>> {
        self.committed
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, m)| m)
            .or(self.staged.as_ref().filter(|(v, _)| *v == version).map(|(_, m)| m))
    }

    pub fn verify(
        &self,
        sys: &System,
        vmspace: ObjId,
        pages: u64,
        version: u64,
    ) -> Result<(), String> {
        let expected = self
            .expect_at(version)
            .ok_or_else(|| format!("no snapshot recorded for restored version {version}"))?;
        let actual = read_heap(sys, vmspace, pages);
        if &actual != expected {
            let diff = actual
                .iter()
                .zip(expected.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(actual.len());
            return Err(format!(
                "restored heap diverges from the v{version} commit at byte {diff}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The hashkv workload behind a network port, with external synchrony.
// `ops` SETs are pushed through the RX ring, the server is stepped
// deterministically, and each iteration commits one checkpoint.
// ---------------------------------------------------------------------------

pub const KV_GEOM: ShardGeometry =
    ShardGeometry { nslots: 8, slot_size: 84, data_stride: 16 * 4096 };
pub const KV_HEAP_PAGES: u64 = 17; // data_stride / 4096 + 1 (deploy_kv layout)

pub struct KvRingScenario {
    pub ops: usize,
    /// Programs captured at deployment, re-registered after "reboot".
    pub programs: Mutex<Vec<(String, Arc<dyn Program>)>>,
}

impl KvRingScenario {
    pub fn new(ops: usize) -> Self {
        Self { ops, programs: Mutex::new(Vec::new()) }
    }

    pub fn kv_config() -> SystemConfig {
        let mut c = SystemConfig::small();
        c.kernel.nvm_frames = 2048;
        c.kernel.dram_pages = 64;
        c.checkpoint_interval = None;
        c
    }
}

pub struct KvState {
    pub vmspace: ObjId,
    pub server: ObjId,
    pub port: Arc<NetPort>,
    pub snapshots: Snapshots,
    /// `(key, value)` of every SET whose acknowledgement became
    /// externally visible before the crash.
    pub acked: Vec<(Vec<u8>, Vec<u8>)>,
}

impl CrashScenario for KvRingScenario {
    type State = KvState;

    fn config(&self) -> SystemConfig {
        Self::kv_config()
    }

    fn setup(&self, sys: &mut System) -> KvState {
        let dep = deploy_kv(sys, 1, 16, 40, true, KV_GEOM);
        let server = dep.server_threads[0];
        // First step formats the table; the server then parks on its
        // doorbell.
        step(sys, server, 4);
        let mut st = KvState {
            vmspace: dep.vmspace,
            server,
            port: Arc::clone(&dep.ports[0]),
            snapshots: Snapshots::default(),
            acked: Vec::new(),
        };
        st.snapshots.checkpoint(sys, st.vmspace, KV_HEAP_PAGES);
        *self.programs.lock() = sys
            .programs()
            .names()
            .into_iter()
            .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
            .collect();
        st
    }

    fn workload(&self, sys: &mut System, st: &mut KvState) {
        for i in 0..self.ops {
            let key = make_key(format!("key-{i}").as_bytes());
            let value = format!("value-{i}").into_bytes();
            let op = KvOp::Set { key, value: value.clone() };
            let seq = st.port.send_request(&op.encode()).expect("rx push");
            step(sys, st.server, 8);
            st.snapshots.checkpoint(sys, st.vmspace, KV_HEAP_PAGES);
            st.port.pump();
            if st.port.try_take(seq).is_some() {
                // The ack left the system: this SET must survive any
                // later crash.
                st.acked.push((key.to_vec(), value));
            }
        }
    }

    fn programs(&self, reg: &ProgramRegistry) {
        for (name, prog) in self.programs.lock().iter() {
            reg.register(name, Arc::clone(prog));
        }
    }

    fn reattach(&self, sys: &mut System, st: &mut KvState) {
        let (vmspace, server, notif) = find_process(sys, "ring-kv");
        st.vmspace = vmspace;
        st.server = server;
        let layout = st.port.layout();
        let port = NetPort::attach(Arc::clone(sys.kernel()), vmspace, layout, true, 1_000_000);
        port.set_doorbell(notif.expect("doorbell restored"));
        sys.manager().register_callback(Arc::clone(&port) as _);
        st.port = port;
    }

    fn verify(
        &self,
        sys: &mut System,
        st: &mut KvState,
        report: &RestoreReport,
    ) -> Result<(), String> {
        // Byte-exact memory oracle against the snapshot of the restored
        // commit.
        st.snapshots.verify(sys, st.vmspace, KV_HEAP_PAGES, report.version)?;
        // TX ring invariants: nothing tagged with a rolled-back version
        // may still be published. (The RX ring is exempt by design —
        // requests survive the crash so the server can re-process them.)
        let io = HostIo::new(Arc::clone(sys.kernel()), st.vmspace);
        let layout = st.port.layout();
        check_ext_sync_invariants(&io, &layout.tx, report.version)
            .map_err(|e| format!("tx ring: {e}"))?;
        // External-visibility oracle: every acknowledged SET is still
        // readable after recovery.
        for (key, value) in &st.acked {
            let mut k = [0u8; 16];
            k.copy_from_slice(key);
            let get = KvOp::Get { key: k };
            // The restored RX ring may still hold every pre-crash request
            // (acks lag by design), so a fresh request can briefly see
            // `Full`; drive the server and the ack pipeline and retry,
            // like a NIC driver backing off on a full descriptor ring.
            let mut attempts = 0;
            let seq = loop {
                match st.port.send_request(&get.encode()) {
                    Ok(s) => break s,
                    Err(treesls::extsync::RingError::Full) if attempts < 8 => {
                        attempts += 1;
                        step(sys, st.server, 16);
                        sys.checkpoint_now().map_err(|e| format!("{e:?}"))?;
                        st.port.pump();
                    }
                    Err(e) => return Err(format!("GET push failed: {e:?}")),
                }
            };
            step(sys, st.server, 16);
            sys.checkpoint_now().map_err(|e| format!("{e:?}"))?;
            st.port.pump();
            let resp = st
                .port
                .try_take(seq)
                .ok_or_else(|| format!("GET for acked key {key:?} got no reply"))?;
            match KvResp::decode(&resp) {
                Some(KvResp::Ok(Some(v))) if &v == value => {}
                other => {
                    return Err(format!(
                        "externally visible SET of {key:?} lost after restore: {other:?}"
                    ))
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// A hybrid-copy round with hot-page migration, speculative stop-and-copy,
// and idle eviction.
// ---------------------------------------------------------------------------

/// Writes one `u64` per step, round-robin over `pages` heap pages.
pub struct DirtyPages {
    pub pages: u64,
}

impl Program for DirtyPages {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        let done = ctx.reg(2);
        let page = done % self.pages;
        let word = (done / self.pages) % 64;
        if ctx.write_u64(page * 4096 + word * 8, 0xD00D_0000 + done).is_err() {
            return StepOutcome::Exited;
        }
        ctx.set_reg(2, done + 1);
        StepOutcome::Ready
    }
}

pub const HYBRID_PAGES: u64 = 3;
pub const HYBRID_HEAP: u64 = 4;

pub struct HybridScenario;

pub struct HybridState {
    pub vmspace: ObjId,
    pub writer: ObjId,
    pub snapshots: Snapshots,
}

impl CrashScenario for HybridScenario {
    type State = HybridState;

    fn config(&self) -> SystemConfig {
        let mut c = SystemConfig::small();
        c.kernel.nvm_frames = 2048;
        c.kernel.dram_pages = 32;
        c.kernel.hybrid_copy = true;
        c.kernel.hot_threshold = 2;
        c.kernel.idle_evict_rounds = 2;
        c.checkpoint_interval = None;
        c
    }

    fn setup(&self, sys: &mut System) -> HybridState {
        sys.register_program("dirty", Arc::new(DirtyPages { pages: HYBRID_PAGES }));
        let p = sys
            .spawn(
                &treesls::ProcessSpec::new("hybrid")
                    .heap(HYBRID_HEAP)
                    .thread(treesls::ThreadSpec::new("dirty")),
            )
            .expect("spawn");
        let mut st = HybridState {
            vmspace: p.vmspace,
            writer: p.threads[0],
            snapshots: Snapshots::default(),
        };
        st.snapshots.checkpoint(sys, st.vmspace, HYBRID_HEAP);
        st
    }

    fn workload(&self, sys: &mut System, st: &mut HybridState) {
        // Two write+checkpoint rounds push every page past the hotness
        // threshold; the second round's checkpoint migrates them to DRAM.
        for _ in 0..2 {
            step(sys, st.writer, HYBRID_PAGES as usize);
            st.snapshots.checkpoint(sys, st.vmspace, HYBRID_HEAP);
        }
        // Dirty the migrated pages: the next checkpoint stop-and-copies
        // them from DRAM.
        step(sys, st.writer, HYBRID_PAGES as usize);
        st.snapshots.checkpoint(sys, st.vmspace, HYBRID_HEAP);
        // Idle rounds: the pages stop changing and get evicted back to
        // NVM.
        for _ in 0..3 {
            st.snapshots.checkpoint(sys, st.vmspace, HYBRID_HEAP);
        }
    }

    fn programs(&self, reg: &ProgramRegistry) {
        reg.register("dirty", Arc::new(DirtyPages { pages: HYBRID_PAGES }));
    }

    fn reattach(&self, sys: &mut System, st: &mut HybridState) {
        let (vmspace, writer, _) = find_process(sys, "hybrid");
        st.vmspace = vmspace;
        st.writer = writer;
    }

    fn verify(
        &self,
        sys: &mut System,
        st: &mut HybridState,
        report: &RestoreReport,
    ) -> Result<(), String> {
        st.snapshots.verify(sys, st.vmspace, HYBRID_HEAP, report.version)?;
        // The restored program must be able to keep running and commit.
        step(sys, st.writer, HYBRID_PAGES as usize);
        sys.checkpoint_now().map_err(|e| format!("post-restore checkpoint: {e:?}"))?;
        Ok(())
    }
}
