//! Shared crash-scenario definitions used by both the clean-crash
//! enumeration (`crash_schedule.rs`) and the torn-write / media-fault
//! enumeration (`torn_write.rs`).
//!
//! Each integration-test binary compiles its own copy of this module and
//! uses a different subset of it, hence the blanket `dead_code` allow.
#![allow(dead_code)]

use std::sync::Arc;

use parking_lot::Mutex;

use treesls::extsync::{check_ext_sync_invariants, HostIo, RingError};
use treesls::net::{NetError, NetFaultConfig, VirtualNic};
use treesls::{
    CrashScenario, ObjId, Program, ProgramRegistry, RestoreReport, StepOutcome, System,
    SystemConfig, UserCtx,
};
use treesls_apps::wire::{make_key, KvOp, KvResp};
use treesls_bench::ringsetup::{deploy_kv_cfg, nic_config, ShardGeometry};
use treesls_kernel::cores::run_slice;
use treesls_kernel::object::{ObjType, ObjectBody};

/// CI knob: enumerate every `CRASH_STRIDE`-th crash point (default 1 =
/// every single one).
pub fn stride() -> u64 {
    std::env::var("CRASH_STRIDE").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// Steps `tid` synchronously on the calling thread (no cores running).
pub fn step(sys: &System, tid: ObjId, steps: usize) {
    run_slice(sys.kernel(), tid, steps, sys.manager().stw());
}

/// Finds the cap group named `name` and returns its (vmspace, threads,
/// notifications) in capability-slot order — the post-restore handles of
/// a process. Slot order matches creation order, so multi-queue NIC
/// deployments get their per-queue threads and doorbells back aligned.
pub fn find_process_all(sys: &System, name: &str) -> (ObjId, Vec<ObjId>, Vec<ObjId>) {
    let kernel = sys.kernel();
    let objects = kernel.objects.read();
    let group = objects
        .iter()
        .map(|(_, o)| Arc::clone(o))
        .find(|o| {
            o.otype == ObjType::CapGroup
                && matches!(&*o.body.read(), ObjectBody::CapGroup(g) if g.name == name)
        })
        .unwrap_or_else(|| panic!("cap group {name:?} not restored"));
    drop(objects);
    let body = group.body.read();
    let ObjectBody::CapGroup(g) = &*body else { unreachable!() };
    let mut vmspace = None;
    let mut threads = Vec::new();
    let mut notifs = Vec::new();
    for (_, c) in g.iter() {
        match kernel.object(c.obj).map(|o| o.otype) {
            Ok(ObjType::VmSpace) => vmspace = vmspace.or(Some(c.obj)),
            Ok(ObjType::Thread) => threads.push(c.obj),
            Ok(ObjType::Notification) => notifs.push(c.obj),
            _ => {}
        }
    }
    assert!(!threads.is_empty(), "thread restored");
    (vmspace.expect("vmspace restored"), threads, notifs)
}

/// [`find_process_all`] narrowed to the single-threaded shape most
/// scenarios use: (vmspace, first thread, first notification).
pub fn find_process(sys: &System, name: &str) -> (ObjId, ObjId, Option<ObjId>) {
    let (vmspace, threads, notifs) = find_process_all(sys, name);
    (vmspace, threads[0], notifs.first().copied())
}

/// Reads the whole data heap of `vmspace` (`pages` 4 KiB pages).
pub fn read_heap(sys: &System, vmspace: ObjId, pages: u64) -> Vec<u8> {
    let mut buf = vec![0u8; (pages * 4096) as usize];
    sys.read_mem(vmspace, 0, &mut buf).expect("heap readable");
    buf
}

/// Memory snapshots keyed by committed version, with a staging slot for
/// the commit that may be in flight when the crash fires: the snapshot is
/// staged *before* `checkpoint_now` (the heap cannot change between
/// staging and the commit point — the workload is single-threaded), so a
/// crash after the commit but before bookkeeping still has the image the
/// restored version must reproduce.
#[derive(Default)]
pub struct Snapshots {
    pub committed: Vec<(u64, Vec<u8>)>,
    pub staged: Option<(u64, Vec<u8>)>,
}

impl Snapshots {
    pub fn checkpoint(&mut self, sys: &System, vmspace: ObjId, pages: u64) {
        self.staged =
            Some((sys.kernel().pers.global_version() + 1, read_heap(sys, vmspace, pages)));
        sys.checkpoint_now().expect("checkpoint");
        self.committed.push(self.staged.take().expect("staged snapshot"));
    }

    pub fn expect_at(&self, version: u64) -> Option<&Vec<u8>> {
        self.committed
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, m)| m)
            .or(self.staged.as_ref().filter(|(v, _)| *v == version).map(|(_, m)| m))
    }

    pub fn verify(
        &self,
        sys: &System,
        vmspace: ObjId,
        pages: u64,
        version: u64,
    ) -> Result<(), String> {
        let expected = self
            .expect_at(version)
            .ok_or_else(|| format!("no snapshot recorded for restored version {version}"))?;
        let actual = read_heap(sys, vmspace, pages);
        if &actual != expected {
            let diff = actual
                .iter()
                .zip(expected.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(actual.len());
            return Err(format!(
                "restored heap diverges from the v{version} commit at byte {diff}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The hashkv workload behind a virtual NIC, with external synchrony.
// `ops` SETs are steered by flow hash across the queues, the per-queue
// servers are stepped deterministically, and each iteration commits one
// checkpoint.
// ---------------------------------------------------------------------------

pub const KV_GEOM: ShardGeometry =
    ShardGeometry { nslots: 8, slot_size: 84, data_stride: 16 * 4096 };
pub const KV_HEAP_PAGES: u64 = 17; // data_stride / 4096 + 1 (deploy_kv layout)

pub struct KvRingScenario {
    pub ops: usize,
    /// NIC queues (each owns a table shard).
    pub queues: usize,
    /// Requests pushed per checkpoint round; > 1 lets a reorder-window
    /// wire actually permute packets within a round.
    pub burst: usize,
    /// Wire perturbations composed with the crash schedule. Keep
    /// `drop_1_in == 0` — a deterministic one-shot workload cannot
    /// retransmit, and a shed burst would stall the credit ledger.
    pub fault: NetFaultConfig,
    /// Programs captured at deployment, re-registered after "reboot".
    pub programs: Mutex<Vec<(String, Arc<dyn Program>)>>,
}

impl KvRingScenario {
    pub fn new(ops: usize) -> Self {
        Self {
            ops,
            queues: 1,
            burst: 1,
            fault: NetFaultConfig::default(),
            programs: Mutex::new(Vec::new()),
        }
    }

    /// Multi-queue variant over a misbehaving wire (duplicates and a
    /// reorder window, no drops).
    pub fn faulty(ops: usize, queues: usize, fault: NetFaultConfig) -> Self {
        assert_eq!(fault.drop_1_in, 0, "crash scenarios cannot absorb drops");
        Self { ops, queues, burst: 2, fault, programs: Mutex::new(Vec::new()) }
    }

    pub fn kv_config() -> SystemConfig {
        let mut c = SystemConfig::small();
        c.kernel.nvm_frames = 2048;
        c.kernel.dram_pages = 64;
        c.checkpoint_interval = None;
        c
    }

    fn nic_config(&self) -> treesls::net::NicConfig {
        let mut cfg = nic_config(self.queues, true, &KV_GEOM);
        cfg.fault = self.fault;
        cfg
    }

    pub fn heap_pages(&self) -> u64 {
        self.queues as u64 * (KV_GEOM.data_stride / 4096) + 1
    }
}

pub struct KvState {
    pub vmspace: ObjId,
    /// One poll-mode server thread per queue, in queue order.
    pub servers: Vec<ObjId>,
    pub nic: Arc<VirtualNic>,
    pub snapshots: Snapshots,
    /// `(flow, key, value)` of every SET whose acknowledgement became
    /// externally visible before the crash.
    pub acked: Vec<(u64, Vec<u8>, Vec<u8>)>,
}

impl KvState {
    fn drive(&self, sys: &System, steps: usize) {
        for &srv in &self.servers {
            step(sys, srv, steps);
        }
    }
}

impl CrashScenario for KvRingScenario {
    type State = KvState;

    fn config(&self) -> SystemConfig {
        Self::kv_config()
    }

    fn setup(&self, sys: &mut System) -> KvState {
        let dep = deploy_kv_cfg(sys, 16, 40, self.nic_config(), KV_GEOM);
        let mut st = KvState {
            vmspace: dep.vmspace,
            servers: dep.server_threads.clone(),
            nic: Arc::clone(&dep.nic),
            snapshots: Snapshots::default(),
            acked: Vec::new(),
        };
        // First steps format each shard; the servers then park on their
        // doorbells.
        st.drive(sys, 4);
        st.snapshots.checkpoint(sys, st.vmspace, self.heap_pages());
        *self.programs.lock() = sys
            .programs()
            .names()
            .into_iter()
            .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
            .collect();
        st
    }

    fn workload(&self, sys: &mut System, st: &mut KvState) {
        let mut i = 0;
        while i < self.ops {
            let burst = self.burst.min(self.ops - i);
            let mut sent = Vec::with_capacity(burst);
            for b in 0..burst {
                let idx = i + b;
                let key = make_key(format!("key-{idx}").as_bytes());
                let value = format!("value-{idx}").into_bytes();
                let op = KvOp::Set { key, value: value.clone() };
                let flow = idx as u64;
                let seq = st.nic.send_request(flow, &op.encode()).expect("rx push");
                sent.push((seq, flow, key, value));
            }
            // Deliver anything the reorder window is still holding.
            st.nic.flush_wire();
            st.drive(sys, 8 * burst);
            st.snapshots.checkpoint(sys, st.vmspace, self.heap_pages());
            st.nic.pump();
            for (seq, flow, key, value) in sent {
                if st.nic.try_take(seq).is_some() {
                    // The ack left the system: this SET must survive any
                    // later crash.
                    st.acked.push((flow, key.to_vec(), value));
                }
            }
            i += burst;
        }
    }

    fn programs(&self, reg: &ProgramRegistry) {
        for (name, prog) in self.programs.lock().iter() {
            reg.register(name, Arc::clone(prog));
        }
    }

    fn reattach(&self, sys: &mut System, st: &mut KvState) {
        let (vmspace, servers, notifs) = find_process_all(sys, "ring-kv");
        st.vmspace = vmspace;
        st.servers = servers;
        let layout = st.nic.layout();
        let nic = VirtualNic::attach(
            Arc::clone(sys.kernel()),
            vmspace,
            layout,
            &self.nic_config(),
            1_000_000,
        );
        assert_eq!(notifs.len(), self.queues, "doorbells restored");
        for (q, notif) in notifs.into_iter().enumerate() {
            nic.set_doorbell(q, notif);
        }
        sys.manager().register_callback(Arc::clone(&nic) as _);
        st.nic = nic;
    }

    fn verify(
        &self,
        sys: &mut System,
        st: &mut KvState,
        report: &RestoreReport,
    ) -> Result<(), String> {
        // Byte-exact memory oracle against the snapshot of the restored
        // commit.
        st.snapshots.verify(sys, st.vmspace, self.heap_pages(), report.version)?;
        // TX ring invariants: nothing tagged with a rolled-back version
        // may still be published. (The RX ring is exempt by design —
        // requests survive the crash so the server can re-process them.)
        let io = HostIo::new(Arc::clone(sys.kernel()), st.vmspace);
        for q in 0..st.nic.queues() {
            check_ext_sync_invariants(&io, &st.nic.port(q).tx, report.version)
                .map_err(|e| format!("tx ring q{q}: {e}"))?;
        }
        // External-visibility oracle: every acknowledged SET is still
        // readable after recovery, on the same flow (and thus the same
        // table shard) it was written through.
        for (flow, key, value) in &st.acked {
            let mut k = [0u8; 16];
            k.copy_from_slice(key);
            let get = KvOp::Get { key: k };
            // The restored RX ring may still hold every pre-crash request
            // (acks lag by design), so a fresh request can briefly shed
            // or see `Full`; drive the servers and the ack pipeline and
            // retry, like a NIC driver backing off on a full ring.
            let mut attempts = 0;
            let seq = loop {
                match st.nic.send_request(*flow, &get.encode()) {
                    Ok(s) => break s,
                    Err(NetError::Busy | NetError::Ring(RingError::Full)) if attempts < 8 => {
                        attempts += 1;
                        st.nic.flush_wire();
                        st.drive(sys, 16);
                        sys.checkpoint_now().map_err(|e| format!("{e:?}"))?;
                        st.nic.pump();
                    }
                    Err(e) => return Err(format!("GET push failed: {e:?}")),
                }
            };
            st.nic.flush_wire();
            st.drive(sys, 16);
            sys.checkpoint_now().map_err(|e| format!("{e:?}"))?;
            st.nic.pump();
            let resp = st
                .nic
                .try_take(seq)
                .ok_or_else(|| format!("GET for acked key {key:?} got no reply"))?;
            match KvResp::decode(&resp) {
                Some(KvResp::Ok(Some(v))) if &v == value => {}
                other => {
                    return Err(format!(
                        "externally visible SET of {key:?} lost after restore: {other:?}"
                    ))
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// A hybrid-copy round with hot-page migration, speculative stop-and-copy,
// and idle eviction.
// ---------------------------------------------------------------------------

/// Writes one `u64` per step, round-robin over `pages` heap pages.
pub struct DirtyPages {
    pub pages: u64,
}

impl Program for DirtyPages {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        let done = ctx.reg(2);
        let page = done % self.pages;
        let word = (done / self.pages) % 64;
        if ctx.write_u64(page * 4096 + word * 8, 0xD00D_0000 + done).is_err() {
            return StepOutcome::Exited;
        }
        ctx.set_reg(2, done + 1);
        StepOutcome::Ready
    }
}

pub const HYBRID_PAGES: u64 = 3;
pub const HYBRID_HEAP: u64 = 4;

pub struct HybridScenario;

pub struct HybridState {
    pub vmspace: ObjId,
    pub writer: ObjId,
    pub snapshots: Snapshots,
}

impl CrashScenario for HybridScenario {
    type State = HybridState;

    fn config(&self) -> SystemConfig {
        let mut c = SystemConfig::small();
        c.kernel.nvm_frames = 2048;
        c.kernel.dram_pages = 32;
        c.kernel.hybrid_copy = true;
        c.kernel.hot_threshold = 2;
        c.kernel.idle_evict_rounds = 2;
        c.checkpoint_interval = None;
        c
    }

    fn setup(&self, sys: &mut System) -> HybridState {
        sys.register_program("dirty", Arc::new(DirtyPages { pages: HYBRID_PAGES }));
        let p = sys
            .spawn(
                &treesls::ProcessSpec::new("hybrid")
                    .heap(HYBRID_HEAP)
                    .thread(treesls::ThreadSpec::new("dirty")),
            )
            .expect("spawn");
        let mut st = HybridState {
            vmspace: p.vmspace,
            writer: p.threads[0],
            snapshots: Snapshots::default(),
        };
        st.snapshots.checkpoint(sys, st.vmspace, HYBRID_HEAP);
        st
    }

    fn workload(&self, sys: &mut System, st: &mut HybridState) {
        // Two write+checkpoint rounds push every page past the hotness
        // threshold; the second round's checkpoint migrates them to DRAM.
        for _ in 0..2 {
            step(sys, st.writer, HYBRID_PAGES as usize);
            st.snapshots.checkpoint(sys, st.vmspace, HYBRID_HEAP);
        }
        // Dirty the migrated pages: the next checkpoint stop-and-copies
        // them from DRAM.
        step(sys, st.writer, HYBRID_PAGES as usize);
        st.snapshots.checkpoint(sys, st.vmspace, HYBRID_HEAP);
        // Idle rounds: the pages stop changing and get evicted back to
        // NVM.
        for _ in 0..3 {
            st.snapshots.checkpoint(sys, st.vmspace, HYBRID_HEAP);
        }
    }

    fn programs(&self, reg: &ProgramRegistry) {
        reg.register("dirty", Arc::new(DirtyPages { pages: HYBRID_PAGES }));
    }

    fn reattach(&self, sys: &mut System, st: &mut HybridState) {
        let (vmspace, writer, _) = find_process(sys, "hybrid");
        st.vmspace = vmspace;
        st.writer = writer;
    }

    fn verify(
        &self,
        sys: &mut System,
        st: &mut HybridState,
        report: &RestoreReport,
    ) -> Result<(), String> {
        st.snapshots.verify(sys, st.vmspace, HYBRID_HEAP, report.version)?;
        // The restored program must be able to keep running and commit.
        step(sys, st.writer, HYBRID_PAGES as usize);
        sys.checkpoint_now().map_err(|e| format!("post-restore checkpoint: {e:?}"))?;
        Ok(())
    }
}
