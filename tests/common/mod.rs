//! Shared crash-scenario definitions used by both the clean-crash
//! enumeration (`crash_schedule.rs`) and the torn-write / media-fault
//! enumeration (`torn_write.rs`).
//!
//! Each integration-test binary compiles its own copy of this module and
//! uses a different subset of it, hence the blanket `dead_code` allow.
#![allow(dead_code)]

use std::sync::Arc;

use parking_lot::Mutex;

use treesls::extsync::{check_ext_sync_invariants, HostIo, RingError};
use treesls::net::{NetError, NetFaultConfig, VirtualNic};
use treesls::{
    CrashScenario, ObjId, Program, ProgramRegistry, RestoreReport, StepOutcome, System,
    SystemConfig, UserCtx,
};
use treesls_apps::wire::{make_key, KvOp, KvResp};
use treesls_bench::ringsetup::{deploy_kv_cfg, nic_config, ShardGeometry};
use treesls_kernel::cores::run_slice;
use treesls_kernel::object::{ObjType, ObjectBody};

/// CI knob: enumerate every `CRASH_STRIDE`-th crash point (default 1 =
/// every single one).
pub fn stride() -> u64 {
    std::env::var("CRASH_STRIDE").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// Steps `tid` synchronously on the calling thread (no cores running).
pub fn step(sys: &System, tid: ObjId, steps: usize) {
    run_slice(sys.kernel(), tid, steps, sys.manager().stw());
}

/// Finds the cap group named `name` and returns its (vmspace, threads,
/// notifications) in capability-slot order — the post-restore handles of
/// a process. Slot order matches creation order, so multi-queue NIC
/// deployments get their per-queue threads and doorbells back aligned.
pub fn find_process_all(sys: &System, name: &str) -> (ObjId, Vec<ObjId>, Vec<ObjId>) {
    let kernel = sys.kernel();
    let objects = kernel.objects.read();
    let group = objects
        .iter()
        .map(|(_, o)| Arc::clone(o))
        .find(|o| {
            o.otype == ObjType::CapGroup
                && matches!(&*o.body.read(), ObjectBody::CapGroup(g) if g.name == name)
        })
        .unwrap_or_else(|| panic!("cap group {name:?} not restored"));
    drop(objects);
    let body = group.body.read();
    let ObjectBody::CapGroup(g) = &*body else { unreachable!() };
    let mut vmspace = None;
    let mut threads = Vec::new();
    let mut notifs = Vec::new();
    for (_, c) in g.iter() {
        match kernel.object(c.obj).map(|o| o.otype) {
            Ok(ObjType::VmSpace) => vmspace = vmspace.or(Some(c.obj)),
            Ok(ObjType::Thread) => threads.push(c.obj),
            Ok(ObjType::Notification) => notifs.push(c.obj),
            _ => {}
        }
    }
    assert!(!threads.is_empty(), "thread restored");
    (vmspace.expect("vmspace restored"), threads, notifs)
}

/// [`find_process_all`] narrowed to the single-threaded shape most
/// scenarios use: (vmspace, first thread, first notification).
pub fn find_process(sys: &System, name: &str) -> (ObjId, ObjId, Option<ObjId>) {
    let (vmspace, threads, notifs) = find_process_all(sys, name);
    (vmspace, threads[0], notifs.first().copied())
}

/// Reads the whole data heap of `vmspace` (`pages` 4 KiB pages).
pub fn read_heap(sys: &System, vmspace: ObjId, pages: u64) -> Vec<u8> {
    let mut buf = vec![0u8; (pages * 4096) as usize];
    sys.read_mem(vmspace, 0, &mut buf).expect("heap readable");
    buf
}

/// Memory snapshots keyed by committed version, with a staging slot for
/// the commit that may be in flight when the crash fires: the snapshot is
/// staged *before* `checkpoint_now` (the heap cannot change between
/// staging and the commit point — the workload is single-threaded), so a
/// crash after the commit but before bookkeeping still has the image the
/// restored version must reproduce.
#[derive(Default)]
pub struct Snapshots {
    pub committed: Vec<(u64, Vec<u8>)>,
    pub staged: Option<(u64, Vec<u8>)>,
}

impl Snapshots {
    pub fn checkpoint(&mut self, sys: &System, vmspace: ObjId, pages: u64) {
        self.staged =
            Some((sys.kernel().pers.global_version() + 1, read_heap(sys, vmspace, pages)));
        sys.checkpoint_now().expect("checkpoint");
        self.committed.push(self.staged.take().expect("staged snapshot"));
    }

    pub fn expect_at(&self, version: u64) -> Option<&Vec<u8>> {
        self.committed
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, m)| m)
            .or(self.staged.as_ref().filter(|(v, _)| *v == version).map(|(_, m)| m))
    }

    pub fn verify(
        &self,
        sys: &System,
        vmspace: ObjId,
        pages: u64,
        version: u64,
    ) -> Result<(), String> {
        let expected = self
            .expect_at(version)
            .ok_or_else(|| format!("no snapshot recorded for restored version {version}"))?;
        let actual = read_heap(sys, vmspace, pages);
        if &actual != expected {
            let diff = actual
                .iter()
                .zip(expected.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(actual.len());
            return Err(format!(
                "restored heap diverges from the v{version} commit at byte {diff}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The hashkv workload behind a virtual NIC, with external synchrony.
// `ops` SETs are steered by flow hash across the queues, the per-queue
// servers are stepped deterministically, and each iteration commits one
// checkpoint.
// ---------------------------------------------------------------------------

pub const KV_GEOM: ShardGeometry =
    ShardGeometry { nslots: 8, slot_size: 84, data_stride: 16 * 4096 };
pub const KV_HEAP_PAGES: u64 = 17; // data_stride / 4096 + 1 (deploy_kv layout)

pub struct KvRingScenario {
    pub ops: usize,
    /// NIC queues (each owns a table shard).
    pub queues: usize,
    /// Requests pushed per checkpoint round; > 1 lets a reorder-window
    /// wire actually permute packets within a round.
    pub burst: usize,
    /// Wire perturbations composed with the crash schedule. Keep
    /// `drop_1_in == 0` — a deterministic one-shot workload cannot
    /// retransmit, and a shed burst would stall the credit ledger.
    pub fault: NetFaultConfig,
    /// Programs captured at deployment, re-registered after "reboot".
    pub programs: Mutex<Vec<(String, Arc<dyn Program>)>>,
}

impl KvRingScenario {
    pub fn new(ops: usize) -> Self {
        Self {
            ops,
            queues: 1,
            burst: 1,
            fault: NetFaultConfig::default(),
            programs: Mutex::new(Vec::new()),
        }
    }

    /// Multi-queue variant over a misbehaving wire (duplicates and a
    /// reorder window, no drops).
    pub fn faulty(ops: usize, queues: usize, fault: NetFaultConfig) -> Self {
        assert_eq!(fault.drop_1_in, 0, "crash scenarios cannot absorb drops");
        Self { ops, queues, burst: 2, fault, programs: Mutex::new(Vec::new()) }
    }

    pub fn kv_config() -> SystemConfig {
        let mut c = SystemConfig::small();
        c.kernel.nvm_frames = 2048;
        c.kernel.dram_pages = 64;
        c.checkpoint_interval = None;
        c
    }

    fn nic_config(&self) -> treesls::net::NicConfig {
        let mut cfg = nic_config(self.queues, true, &KV_GEOM);
        cfg.fault = self.fault;
        cfg
    }

    pub fn heap_pages(&self) -> u64 {
        self.queues as u64 * (KV_GEOM.data_stride / 4096) + 1
    }
}

pub struct KvState {
    pub vmspace: ObjId,
    /// One poll-mode server thread per queue, in queue order.
    pub servers: Vec<ObjId>,
    pub nic: Arc<VirtualNic>,
    pub snapshots: Snapshots,
    /// `(flow, key, value)` of every SET whose acknowledgement became
    /// externally visible before the crash.
    pub acked: Vec<(u64, Vec<u8>, Vec<u8>)>,
}

impl KvState {
    fn drive(&self, sys: &System, steps: usize) {
        for &srv in &self.servers {
            step(sys, srv, steps);
        }
    }
}

impl CrashScenario for KvRingScenario {
    type State = KvState;

    fn config(&self) -> SystemConfig {
        Self::kv_config()
    }

    fn setup(&self, sys: &mut System) -> KvState {
        let dep = deploy_kv_cfg(sys, 16, 40, self.nic_config(), KV_GEOM);
        let mut st = KvState {
            vmspace: dep.vmspace,
            servers: dep.server_threads.clone(),
            nic: Arc::clone(&dep.nic),
            snapshots: Snapshots::default(),
            acked: Vec::new(),
        };
        // First steps format each shard; the servers then park on their
        // doorbells.
        st.drive(sys, 4);
        st.snapshots.checkpoint(sys, st.vmspace, self.heap_pages());
        *self.programs.lock() = sys
            .programs()
            .names()
            .into_iter()
            .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
            .collect();
        st
    }

    fn workload(&self, sys: &mut System, st: &mut KvState) {
        let mut i = 0;
        while i < self.ops {
            let burst = self.burst.min(self.ops - i);
            let mut sent = Vec::with_capacity(burst);
            for b in 0..burst {
                let idx = i + b;
                let key = make_key(format!("key-{idx}").as_bytes());
                let value = format!("value-{idx}").into_bytes();
                let op = KvOp::Set { key, value: value.clone() };
                let flow = idx as u64;
                let seq = st.nic.send_request(flow, &op.encode()).expect("rx push");
                sent.push((seq, flow, key, value));
            }
            // Deliver anything the reorder window is still holding.
            st.nic.flush_wire();
            st.drive(sys, 8 * burst);
            st.snapshots.checkpoint(sys, st.vmspace, self.heap_pages());
            st.nic.pump();
            for (seq, flow, key, value) in sent {
                if st.nic.try_take(seq).is_some() {
                    // The ack left the system: this SET must survive any
                    // later crash.
                    st.acked.push((flow, key.to_vec(), value));
                }
            }
            i += burst;
        }
    }

    fn programs(&self, reg: &ProgramRegistry) {
        for (name, prog) in self.programs.lock().iter() {
            reg.register(name, Arc::clone(prog));
        }
    }

    fn reattach(&self, sys: &mut System, st: &mut KvState) {
        let (vmspace, servers, notifs) = find_process_all(sys, "ring-kv");
        st.vmspace = vmspace;
        st.servers = servers;
        let layout = st.nic.layout();
        let nic = VirtualNic::attach(
            Arc::clone(sys.kernel()),
            vmspace,
            layout,
            &self.nic_config(),
            1_000_000,
        );
        assert_eq!(notifs.len(), self.queues, "doorbells restored");
        for (q, notif) in notifs.into_iter().enumerate() {
            nic.set_doorbell(q, notif);
        }
        sys.manager().register_callback(Arc::clone(&nic) as _);
        st.nic = nic;
    }

    fn verify(
        &self,
        sys: &mut System,
        st: &mut KvState,
        report: &RestoreReport,
    ) -> Result<(), String> {
        // Byte-exact memory oracle against the snapshot of the restored
        // commit.
        st.snapshots.verify(sys, st.vmspace, self.heap_pages(), report.version)?;
        // TX ring invariants: nothing tagged with a rolled-back version
        // may still be published. (The RX ring is exempt by design —
        // requests survive the crash so the server can re-process them.)
        let io = HostIo::new(Arc::clone(sys.kernel()), st.vmspace);
        for q in 0..st.nic.queues() {
            check_ext_sync_invariants(&io, &st.nic.port(q).tx, report.version)
                .map_err(|e| format!("tx ring q{q}: {e}"))?;
        }
        // External-visibility oracle: every acknowledged SET is still
        // readable after recovery, on the same flow (and thus the same
        // table shard) it was written through.
        for (flow, key, value) in &st.acked {
            let mut k = [0u8; 16];
            k.copy_from_slice(key);
            let get = KvOp::Get { key: k };
            // The restored RX ring may still hold every pre-crash request
            // (acks lag by design), so a fresh request can briefly shed
            // or see `Full`; drive the servers and the ack pipeline and
            // retry, like a NIC driver backing off on a full ring.
            let mut attempts = 0;
            let seq = loop {
                match st.nic.send_request(*flow, &get.encode()) {
                    Ok(s) => break s,
                    Err(NetError::Busy | NetError::Ring(RingError::Full)) if attempts < 8 => {
                        attempts += 1;
                        st.nic.flush_wire();
                        st.drive(sys, 16);
                        sys.checkpoint_now().map_err(|e| format!("{e:?}"))?;
                        st.nic.pump();
                    }
                    Err(e) => return Err(format!("GET push failed: {e:?}")),
                }
            };
            st.nic.flush_wire();
            st.drive(sys, 16);
            sys.checkpoint_now().map_err(|e| format!("{e:?}"))?;
            st.nic.pump();
            let resp = st
                .nic
                .try_take(seq)
                .ok_or_else(|| format!("GET for acked key {key:?} got no reply"))?;
            match KvResp::decode(&resp) {
                Some(KvResp::Ok(Some(v))) if &v == value => {}
                other => {
                    return Err(format!(
                        "externally visible SET of {key:?} lost after restore: {other:?}"
                    ))
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The transactional B-tree store behind a virtual NIC: multi-frame OCC
// transactions with secondary-index maintenance, one checkpoint per
// transaction round, and a serial-replay differential oracle.
// ---------------------------------------------------------------------------

/// Tree-node capacity of the scenario's store (small enough that one
/// enumeration run stays fast, big enough for CoW churn and splits).
pub const TXN_NODE_CAP: u64 = 64;

/// 16-byte primary key `i`.
pub fn tkey(i: u64) -> [u8; treesls_txn::KEY_LEN] {
    let mut k = [0u8; treesls_txn::KEY_LEN];
    k[..8].copy_from_slice(&i.to_be_bytes());
    k
}

/// Index tag `i` (`ttag(0)` is the all-zero "unindexed" tag).
pub fn ttag(i: u64) -> [u8; treesls_txn::KEY_LEN] {
    tkey(i)
}

/// One planned transaction: the client id it runs under and its write
/// set in buffer order. The plan is a pure function of the transaction's
/// ordinal (and the scenario seed), so the serial-replay oracle can
/// reconstruct exactly what commit sequence `s` did to the store.
#[derive(Clone)]
pub struct PlannedTxn {
    pub txn_id: u64,
    pub writes: Vec<treesls_txn::WriteOp>,
}

/// Deterministic write set of transaction `i` under `seed`:
///
/// * two fresh keys, one tagged (alternating between two tags) and one
///   untagged;
/// * a rewrite of the shared hot key with the *other* tag, so every
///   transaction after the first deletes a stale index entry;
/// * from `i >= 1`, a delete of the previous transaction's untagged key.
///
/// `seed` perturbs values and swaps which tag family is used, giving the
/// differential oracle distinct histories per seed without changing the
/// shape (index churn + deletes) the crash sites need.
pub fn planned_txn(seed: u64, i: u64) -> PlannedTxn {
    let tag_a = ttag(1 + 2 * (seed % 8));
    let tag_b = ttag(2 + 2 * (seed % 8));
    let pick = |j: u64| if (i + j + seed).is_multiple_of(2) { tag_a } else { tag_b };
    let val = |name: &str| format!("{name}{i}s{seed}").into_bytes();
    let mut writes = vec![
        treesls_txn::WriteOp { key: tkey(100 + 2 * i), tag: pick(0), val: Some(val("a")) },
        treesls_txn::WriteOp { key: tkey(101 + 2 * i), tag: ttag(0), val: Some(val("b")) },
        treesls_txn::WriteOp { key: tkey(7), tag: pick(1), val: Some(val("h")) },
    ];
    if i >= 1 {
        writes.push(treesls_txn::WriteOp {
            key: tkey(101 + 2 * (i - 1)),
            tag: ttag(0),
            val: None,
        });
    }
    PlannedTxn { txn_id: 0x1000 + i, writes }
}

/// Serially replays planned transactions `1..=seq` into a model map and
/// returns the expected primary state `key -> (tag, value)`.
pub fn replay_model(
    seed: u64,
    seq: u64,
) -> std::collections::BTreeMap<[u8; 16], ([u8; 16], Vec<u8>)> {
    let mut model = std::collections::BTreeMap::new();
    for s in 1..=seq {
        // Commit sequence `s` is planned transaction `s - 1` (the store
        // seq starts at 0 and each transaction bumps it by one).
        for w in planned_txn(seed, s - 1).writes {
            // Last-write-wins per key, like the engine's collapse.
            match w.val {
                Some(v) => {
                    model.insert(w.key, (w.tag, v));
                }
                None => {
                    model.remove(&w.key);
                }
            }
        }
    }
    model
}

pub struct TxnRingScenario {
    /// Transactions committed by the workload (one checkpoint round each).
    pub txns: u64,
    /// Perturbs the planned write sets (differential-oracle seeds).
    pub seed: u64,
    /// Programs captured at deployment, re-registered after "reboot".
    pub programs: Mutex<Vec<(String, Arc<dyn Program>)>>,
}

impl TxnRingScenario {
    pub fn new(txns: u64) -> Self {
        Self::seeded(txns, 0)
    }

    pub fn seeded(txns: u64, seed: u64) -> Self {
        Self { txns, seed, programs: Mutex::new(Vec::new()) }
    }

    pub fn txn_config() -> SystemConfig {
        let mut c = SystemConfig::small();
        c.kernel.nvm_frames = 4096;
        c.kernel.dram_pages = 64;
        c.checkpoint_interval = None;
        c
    }

    pub fn nic_config(&self) -> treesls::net::NicConfig {
        treesls::net::NicConfig {
            queues: 1,
            nslots: 16,
            slot_size: 160,
            credits: 16,
            ext_sync: true,
            fault: Default::default(),
            call_timeout: std::time::Duration::from_secs(5),
        }
    }

    pub fn heap_pages(&self) -> u64 {
        treesls_txn::store::region_len(TXN_NODE_CAP) / 4096 + 1
    }

    /// The wire frames of planned transaction `i`, in send order.
    pub fn frames(&self, i: u64) -> Vec<treesls_txn::TxnOp> {
        let plan = planned_txn(self.seed, i);
        let mut frames = vec![treesls_txn::TxnOp::Begin { txn: plan.txn_id, flags: 0 }];
        for w in plan.writes {
            frames.push(treesls_txn::TxnOp::Write {
                txn: plan.txn_id,
                key: w.key,
                tag: w.tag,
                val: w.val,
            });
        }
        frames.push(treesls_txn::TxnOp::Commit { txn: plan.txn_id });
        frames
    }
}

pub struct TxnRingState {
    pub vmspace: ObjId,
    pub servers: Vec<ObjId>,
    pub nic: Arc<VirtualNic>,
    pub service: Arc<treesls_txn::TxnService>,
    pub gate: Arc<treesls_txn::TxnGate>,
    pub snapshots: Snapshots,
    /// `(ordinal, commit seq)` of every transaction whose commit
    /// acknowledgement became externally visible before the crash.
    pub acked: Vec<(u64, u64)>,
}

impl TxnRingState {
    pub fn drive(&self, sys: &System, steps: usize) {
        for &srv in &self.servers {
            step(sys, srv, steps);
        }
    }
}

impl CrashScenario for TxnRingScenario {
    type State = TxnRingState;

    fn config(&self) -> SystemConfig {
        Self::txn_config()
    }

    fn setup(&self, sys: &mut System) -> TxnRingState {
        let txd = treesls_bench::ringsetup::deploy_txn(sys, TXN_NODE_CAP, self.nic_config());
        let mut st = TxnRingState {
            vmspace: txd.dep.vmspace,
            servers: txd.dep.server_threads.clone(),
            nic: Arc::clone(&txd.dep.nic),
            service: txd.service,
            gate: txd.gate,
            snapshots: Snapshots::default(),
            acked: Vec::new(),
        };
        // First steps format the store; the server then parks on its
        // doorbell.
        st.drive(sys, 4);
        st.snapshots.checkpoint(sys, st.vmspace, self.heap_pages());
        *self.programs.lock() = sys
            .programs()
            .names()
            .into_iter()
            .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
            .collect();
        st
    }

    fn workload(&self, sys: &mut System, st: &mut TxnRingState) {
        for i in 0..self.txns {
            let frames = self.frames(i);
            let mut commit_seq_wire = 0;
            for (j, f) in frames.iter().enumerate() {
                let seq = st.nic.send_request(i, &f.encode()).expect("rx push");
                if j == frames.len() - 1 {
                    commit_seq_wire = seq;
                }
            }
            st.nic.flush_wire();
            st.drive(sys, 8 * frames.len());
            st.snapshots.checkpoint(sys, st.vmspace, self.heap_pages());
            st.nic.pump();
            if let Some(resp) = st.nic.try_take(commit_seq_wire) {
                match treesls_txn::TxnResp::decode(&resp) {
                    Some(treesls_txn::TxnResp::Ok { seq }) => st.acked.push((i, seq)),
                    other => panic!("txn {i} commit rejected: {other:?}"),
                }
            }
        }
    }

    fn programs(&self, reg: &ProgramRegistry) {
        for (name, prog) in self.programs.lock().iter() {
            reg.register(name, Arc::clone(prog));
        }
    }

    fn reattach(&self, sys: &mut System, st: &mut TxnRingState) {
        let (vmspace, servers, notifs) = find_process_all(sys, "ring-txn");
        st.vmspace = vmspace;
        st.servers = servers;
        let layout = st.nic.layout();
        let nic = VirtualNic::attach(
            Arc::clone(sys.kernel()),
            vmspace,
            layout,
            &self.nic_config(),
            1_000_000,
        );
        assert_eq!(notifs.len(), 1, "doorbell restored");
        nic.set_doorbell(0, notifs[0]);
        sys.manager().register_callback(Arc::clone(&nic) as _);
        st.nic = nic;
        // The restored PollServer still dispatches into the service
        // instance captured with the programs, so the new gate must wrap
        // that same instance: its on_restore drops the pre-crash working
        // sets, which is how "uncommitted transactions die with the
        // crash" is enforced on a host whose process memory survived.
        let io = HostIo::new(Arc::clone(sys.kernel()), vmspace);
        let gate =
            Arc::new(treesls_txn::TxnGate::new(io, 0, Arc::clone(&st.service)));
        sys.manager().register_callback(Arc::clone(&gate) as _);
        st.gate = gate;
    }

    fn verify(
        &self,
        sys: &mut System,
        st: &mut TxnRingState,
        report: &RestoreReport,
    ) -> Result<(), String> {
        // Byte-exact memory oracle (covers the whole store region).
        st.snapshots.verify(sys, st.vmspace, self.heap_pages(), report.version)?;
        // TX ring invariants: no slot tagged with a rolled-back version.
        let io = HostIo::new(Arc::clone(sys.kernel()), st.vmspace);
        check_ext_sync_invariants(&io, &st.nic.port(0).tx, report.version)
            .map_err(|e| format!("tx ring: {e}"))?;

        let Some(store) = treesls_txn::TxnStore::attach(&io, 0)
            .map_err(|e| format!("attach: {e:?}"))?
        else {
            // Crash before the store was even formatted: nothing can have
            // been acknowledged.
            if st.acked.is_empty() {
                return Ok(());
            }
            return Err("acked commits but the restored store is unformatted".into());
        };
        let meta = store.meta(&io).map_err(|e| format!("meta: {e:?}"))?;

        // §5 for transactions: no committed-then-lost. Every commit whose
        // acknowledgement left the system must be on the restored root.
        for (i, seq) in &st.acked {
            if *seq > meta.seq {
                return Err(format!(
                    "acked txn {i} (commit seq {seq}) lost: restored store seq {}",
                    meta.seq
                ));
            }
        }

        // No visible-partial-transaction, exact to the record: the
        // restored primary space must equal a *serial replay* of planned
        // transactions 1..=seq, and the secondary index must match it.
        let model = replay_model(self.seed, meta.seq);
        let (plo, phi) = treesls_txn::store::space_range(treesls_txn::store::SPACE_PRIMARY);
        let primaries =
            store.scan(&io, &plo, &phi, usize::MAX).map_err(|e| format!("scan: {e:?}"))?;
        if primaries.len() != model.len() {
            return Err(format!(
                "restored store holds {} primary records, serial replay of seq {} expects {}",
                primaries.len(),
                meta.seq,
                model.len()
            ));
        }
        for r in &primaries {
            let mut key = [0u8; 16];
            key.copy_from_slice(&r.ckey[1..17]);
            match model.get(&key) {
                Some((tag, val)) if *tag == r.tag && *val == r.val => {}
                Some((tag, val)) => {
                    return Err(format!(
                        "key {:?} diverges from serial replay: got (tag {:?}, {:?}), \
                         expected (tag {:?}, {:?})",
                        &key[..8],
                        &r.tag[..4],
                        r.val,
                        &tag[..4],
                        val
                    ))
                }
                None => return Err(format!("key {:?} not in serial replay", &key[..8])),
            }
        }
        treesls_txn::check_index_consistency(&store, &io)
            .map_err(|e| format!("index inconsistent after restore: {e}"))?;

        // The restored server must keep serving: an uncommitted pre-crash
        // transaction is unknown, and a fresh auto-commit write lands.
        let dead_commit = treesls_txn::TxnOp::Commit { txn: 0xDEAD_0001 };
        let probe_key = tkey(9_000_000 + self.seed);
        let probe = treesls_txn::TxnOp::WriteCommit {
            txn: 0,
            key: probe_key,
            tag: ttag(0),
            val: Some(b"post-restore".to_vec()),
        };
        let read_back = treesls_txn::TxnOp::Read { txn: 0, key: probe_key };
        let mut seqs = Vec::new();
        for f in [&dead_commit, &probe, &read_back] {
            // The restored RX ring may still hold pre-crash requests;
            // drive and retry like a NIC driver backing off.
            let mut attempts = 0;
            let seq = loop {
                match st.nic.send_request(0, &f.encode()) {
                    Ok(s) => break s,
                    Err(NetError::Busy | NetError::Ring(RingError::Full)) if attempts < 8 => {
                        attempts += 1;
                        st.nic.flush_wire();
                        st.drive(sys, 16);
                        sys.checkpoint_now().map_err(|e| format!("{e:?}"))?;
                        st.nic.pump();
                    }
                    Err(e) => return Err(format!("post-restore push failed: {e:?}")),
                }
            };
            seqs.push(seq);
        }
        st.nic.flush_wire();
        st.drive(sys, 32);
        sys.checkpoint_now().map_err(|e| format!("{e:?}"))?;
        st.nic.pump();
        let take = |seq| {
            st.nic
                .try_take(seq)
                .and_then(|r| treesls_txn::TxnResp::decode(&r))
                .ok_or_else(|| format!("no reply for post-restore seq {seq}"))
        };
        match take(seqs[0])? {
            treesls_txn::TxnResp::UnknownTxn => {}
            other => {
                return Err(format!(
                    "pre-crash working set survived the crash: commit said {other:?}"
                ))
            }
        }
        match take(seqs[1])? {
            treesls_txn::TxnResp::Ok { .. } => {}
            other => return Err(format!("post-restore auto-commit failed: {other:?}")),
        }
        match take(seqs[2])? {
            treesls_txn::TxnResp::Value { val } if val == b"post-restore" => {}
            other => return Err(format!("post-restore read diverges: {other:?}")),
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// A hybrid-copy round with hot-page migration, speculative stop-and-copy,
// and idle eviction.
// ---------------------------------------------------------------------------

/// Writes one `u64` per step, round-robin over `pages` heap pages.
pub struct DirtyPages {
    pub pages: u64,
}

impl Program for DirtyPages {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        let done = ctx.reg(2);
        let page = done % self.pages;
        let word = (done / self.pages) % 64;
        if ctx.write_u64(page * 4096 + word * 8, 0xD00D_0000 + done).is_err() {
            return StepOutcome::Exited;
        }
        ctx.set_reg(2, done + 1);
        StepOutcome::Ready
    }
}

pub const HYBRID_PAGES: u64 = 3;
pub const HYBRID_HEAP: u64 = 4;

pub struct HybridScenario;

pub struct HybridState {
    pub vmspace: ObjId,
    pub writer: ObjId,
    pub snapshots: Snapshots,
}

impl CrashScenario for HybridScenario {
    type State = HybridState;

    fn config(&self) -> SystemConfig {
        let mut c = SystemConfig::small();
        c.kernel.nvm_frames = 2048;
        c.kernel.dram_pages = 32;
        c.kernel.hybrid_copy = true;
        c.kernel.hot_threshold = 2;
        c.kernel.idle_evict_rounds = 2;
        c.checkpoint_interval = None;
        c
    }

    fn setup(&self, sys: &mut System) -> HybridState {
        sys.register_program("dirty", Arc::new(DirtyPages { pages: HYBRID_PAGES }));
        let p = sys
            .spawn(
                &treesls::ProcessSpec::new("hybrid")
                    .heap(HYBRID_HEAP)
                    .thread(treesls::ThreadSpec::new("dirty")),
            )
            .expect("spawn");
        let mut st = HybridState {
            vmspace: p.vmspace,
            writer: p.threads[0],
            snapshots: Snapshots::default(),
        };
        st.snapshots.checkpoint(sys, st.vmspace, HYBRID_HEAP);
        st
    }

    fn workload(&self, sys: &mut System, st: &mut HybridState) {
        // Two write+checkpoint rounds push every page past the hotness
        // threshold; the second round's checkpoint migrates them to DRAM.
        for _ in 0..2 {
            step(sys, st.writer, HYBRID_PAGES as usize);
            st.snapshots.checkpoint(sys, st.vmspace, HYBRID_HEAP);
        }
        // Dirty the migrated pages: the next checkpoint stop-and-copies
        // them from DRAM.
        step(sys, st.writer, HYBRID_PAGES as usize);
        st.snapshots.checkpoint(sys, st.vmspace, HYBRID_HEAP);
        // Idle rounds: the pages stop changing and get evicted back to
        // NVM.
        for _ in 0..3 {
            st.snapshots.checkpoint(sys, st.vmspace, HYBRID_HEAP);
        }
    }

    fn programs(&self, reg: &ProgramRegistry) {
        reg.register("dirty", Arc::new(DirtyPages { pages: HYBRID_PAGES }));
    }

    fn reattach(&self, sys: &mut System, st: &mut HybridState) {
        let (vmspace, writer, _) = find_process(sys, "hybrid");
        st.vmspace = vmspace;
        st.writer = writer;
    }

    fn verify(
        &self,
        sys: &mut System,
        st: &mut HybridState,
        report: &RestoreReport,
    ) -> Result<(), String> {
        st.snapshots.verify(sys, st.vmspace, HYBRID_HEAP, report.version)?;
        // The restored program must be able to keep running and commit.
        step(sys, st.writer, HYBRID_PAGES as usize);
        sys.checkpoint_now().map_err(|e| format!("post-restore checkpoint: {e:?}"))?;
        Ok(())
    }
}
