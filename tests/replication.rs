//! Checkpoint-shipping replication: the cluster-level fault drills.
//!
//! A primary runs the sharded KV workload behind the external-synchrony
//! NIC while a [`Cluster`] ships every checkpoint round's delta to two
//! replicas. The drills here are deterministic (replicas are polled
//! explicitly unless a test needs real quorum waits): replica crash
//! mid-delta with resync, partition during commit with degraded-mode
//! shedding, wire corruption with quarantine, epoch fencing of a deposed
//! primary, and the headline failover — primary killed, replica promoted,
//! and the §5 oracle (every externally acknowledged write survives)
//! asserted against the promoted machine.

mod common;

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use common::{find_process_all, step, KvRingScenario, KV_GEOM};
use treesls::extsync::RingError;
use treesls::net::{NetError, NetFaultConfig, VirtualNic};
use treesls::{ObjId, Program, System, SystemConfig};
use treesls_apps::wire::{make_key, KvOp, KvResp};
use treesls_bench::ringsetup::{deploy_kv_cfg, nic_config, RingDeployment};
use treesls_repl::{promote, Cluster, ClusterConfig, PromoteError};

fn kv_config() -> SystemConfig {
    KvRingScenario::kv_config()
}

/// Boots a primary with the single-queue KV service deployed and its
/// shards formatted (servers parked on their doorbells).
fn boot_primary(sys: &System) -> RingDeployment {
    let dep = deploy_kv_cfg(sys, 16, 40, nic_config(1, true, &KV_GEOM), KV_GEOM);
    drive(sys, &dep.server_threads, 4);
    dep
}

fn drive(sys: &System, servers: &[ObjId], steps: usize) {
    for &srv in servers {
        step(sys, srv, steps);
    }
}

/// Captures the deployed programs so a promoted machine can re-register
/// them (reloading binaries after failover).
fn capture_programs(sys: &System) -> Vec<(String, Arc<dyn Program>)> {
    sys.programs()
        .names()
        .into_iter()
        .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
        .collect()
}

/// Pushes one SET, steps the server, and commits a checkpoint round.
/// Returns `(seq, flow, key, value)`; the caller polls replicas and then
/// pumps/takes the acknowledgement.
fn commit_set(
    sys: &System,
    dep: &RingDeployment,
    i: usize,
) -> (u64, u64, [u8; 16], Vec<u8>) {
    let key = make_key(format!("repl-key-{i}").as_bytes());
    let value = format!("repl-value-{i}").into_bytes();
    let flow = i as u64;
    let op = KvOp::Set { key, value: value.clone() };
    let seq = dep.nic.send_request(flow, &op.encode()).expect("rx push");
    dep.nic.flush_wire();
    drive(sys, &dep.server_threads, 8);
    sys.checkpoint_now().expect("checkpoint");
    (seq, flow, key, value)
}

/// Issues a GET and returns the decoded reply, driving the server and the
/// ack pipeline (with backoff on a full restored RX ring, like a real
/// driver).
fn kv_get(
    sys: &System,
    servers: &[ObjId],
    nic: &VirtualNic,
    flow: u64,
    key: &[u8; 16],
) -> Option<KvResp> {
    let get = KvOp::Get { key: *key };
    let mut attempts = 0;
    let seq = loop {
        match nic.send_request(flow, &get.encode()) {
            Ok(s) => break s,
            Err(NetError::Busy | NetError::Ring(RingError::Full)) if attempts < 8 => {
                attempts += 1;
                nic.flush_wire();
                drive(sys, servers, 16);
                sys.checkpoint_now().expect("checkpoint");
                nic.pump();
            }
            Err(e) => panic!("GET push failed: {e:?}"),
        }
    };
    nic.flush_wire();
    drive(sys, servers, 16);
    sys.checkpoint_now().expect("checkpoint");
    nic.pump();
    nic.try_take(seq).and_then(|r| KvResp::decode(&r))
}

/// The acceptance drill, end to end: under a live KV workload, (a) a
/// replica crashes mid-delta and resyncs, (b) a partition is injected
/// during commit and healed, (c) the primary is killed and the surviving
/// in-sync replica is promoted — with the §5 oracle (every externally
/// acknowledged SET readable on the promoted machine) holding throughout.
///
/// Replica 0 is the failover target: it is polled to the head of the
/// stream before any acknowledgement is released, so the promoted image
/// must cover everything a client ever saw. Replica 1 absorbs the faults.
#[test]
fn cluster_fault_drill_failover_preserves_acked_writes() {
    let sys = System::boot(kv_config());
    let dep = boot_primary(&sys);
    let cluster = Cluster::deploy(&sys, &ClusterConfig::default());
    cluster.attach_gate(&dep.nic);
    let programs = capture_programs(&sys);
    let layout = dep.nic.layout();

    let mut acked: Vec<(u64, [u8; 16], Vec<u8>)> = Vec::new();
    let round = |acked: &mut Vec<(u64, [u8; 16], Vec<u8>)>, i: usize| {
        let (seq, flow, key, value) = commit_set(&sys, &dep, i);
        cluster.replicas[0].poll();
        cluster.replicas[1].poll();
        dep.nic.pump();
        if dep.nic.try_take(seq).is_some() {
            acked.push((flow, key, value));
        }
    };

    // Baseline rounds: both replicas track the delta stream.
    round(&mut acked, 0);
    round(&mut acked, 1);
    assert_eq!(cluster.replicas[0].applied_round(), sys.kernel().pers.global_version());
    assert_eq!(cluster.replicas[1].applied_round(), sys.kernel().pers.global_version());

    // (a) Replica 1 crashes mid-delta: it stages part of the round, dies
    // (staging is volatile and lost), reboots, and requests a resync.
    let (seq, flow, key, value) = commit_set(&sys, &dep, 2);
    cluster.replicas[0].poll();
    cluster.replicas[1].poll_limit(2); // DeltaBegin + one frame, then...
    cluster.kill(1);
    cluster.revive(1);
    assert!(cluster.replicas[1].is_awaiting_snapshot(), "reboot requests resync");
    dep.nic.pump();
    if dep.nic.try_take(seq).is_some() {
        acked.push((flow, key, value));
    }
    round(&mut acked, 3); // primary sees the resync request, ships a snapshot
    assert_eq!(cluster.replicas[1].applied_round(), sys.kernel().pers.global_version());
    assert!(!cluster.replicas[1].is_awaiting_snapshot());
    assert!(cluster.replicas[1].metrics.snapshot().repl_resyncs >= 1);

    // (b) Partition injected during commit: replica 1 misses a whole
    // round, detects the gap after the heal, and resyncs.
    cluster.set_partitioned(1, true);
    round(&mut acked, 4); // r1 sees nothing (link down)
    cluster.set_partitioned(1, false);
    let behind = cluster.replicas[1].applied_round();
    round(&mut acked, 5); // r1 gap-detects, quarantines, requests resync
    assert_eq!(cluster.replicas[1].applied_round(), behind, "gap round must not apply");
    assert!(cluster.replicas[1].is_awaiting_snapshot());
    round(&mut acked, 6); // snapshot lands
    assert_eq!(cluster.replicas[1].applied_round(), sys.kernel().pers.global_version());

    // (c) Primary killed; promote replica 0 and assert the §5 oracle
    // across the failover.
    let final_version = sys.kernel().pers.global_version();
    assert_eq!(cluster.replicas[0].applied_round(), final_version);
    assert!(acked.len() >= 5, "drill must have externally visible writes to protect");
    dep.nic.close();
    drop(dep);
    drop(sys);

    let (sys2, report) = cluster
        .promote(0, kv_config(), |reg| {
            for (name, prog) in &programs {
                reg.register(name, Arc::clone(prog));
            }
        })
        .expect("promotion");
    assert_eq!(report.version, final_version, "promoted at the replicated round");
    sys2.manager().verify_checkpoint().expect("promoted tree verifies");

    // Reattach a NIC to the promoted machine, exactly as after a reboot.
    let (vmspace, servers, notifs) = find_process_all(&sys2, "ring-kv");
    let nic2 = VirtualNic::attach(
        Arc::clone(sys2.kernel()),
        vmspace,
        layout,
        &nic_config(1, true, &KV_GEOM),
        1_000_000,
    );
    for (q, notif) in notifs.into_iter().enumerate() {
        nic2.set_doorbell(q, notif);
    }
    sys2.manager().register_callback(Arc::clone(&nic2) as _);
    sys2.manager().fire_restore_callbacks(report.version);

    let mut violations = 0;
    for (flow, key, value) in &acked {
        match kv_get(&sys2, &servers, &nic2, *flow, key) {
            Some(KvResp::Ok(Some(v))) if &v == value => {}
            other => {
                violations += 1;
                eprintln!("acked SET {key:?} lost across failover: {other:?}");
            }
        }
    }
    assert_eq!(violations, 0, "§5 across failover: every acked SET must survive promotion");
}

/// `quorum = 2`: a response may not become visible until its round is
/// durable on the primary plus one replica. Partitioning both replicas
/// flips the cluster to degraded mode — the response stays held, new
/// writes are shed with `Busy`, reads stay admitted — and healing the
/// partition recovers quorum and releases the held response.
#[test]
fn quorum_gate_holds_responses_until_cluster_durable() {
    let sys = System::boot(kv_config());
    let dep = boot_primary(&sys);
    let mut ccfg = ClusterConfig::default();
    ccfg.ship.quorum = 2;
    ccfg.ship.ack_timeout = Duration::from_millis(800);
    let cluster = Cluster::deploy(&sys, &ccfg);
    cluster.attach_gate(&dep.nic);
    cluster.shipper.health.set_write_classifier(Arc::new(|payload: &[u8]| {
        KvOp::decode(payload).map(|op| matches!(op, KvOp::Set { .. })).unwrap_or(true)
    }));
    cluster.start();

    // Baseline: the replicas ack within the wait and the response flows.
    let (seq, ..) = commit_set(&sys, &dep, 0);
    dep.nic.pump();
    assert!(dep.nic.try_take(seq).is_some(), "quorum met: response released");
    assert!(!cluster.shipper.health.is_degraded());

    // Partition both replicas: the next round cannot reach quorum.
    cluster.set_partitioned(0, true);
    cluster.set_partitioned(1, true);
    let (held_seq, ..) = commit_set(&sys, &dep, 1);
    assert!(cluster.shipper.health.is_degraded(), "quorum lost");
    dep.nic.pump();
    assert!(
        dep.nic.try_take(held_seq).is_none(),
        "response must stay held below quorum"
    );
    // Degraded admission: writes shed, reads still admitted.
    let write = KvOp::Set { key: make_key(b"shed"), value: b"x".to_vec() };
    assert!(
        matches!(dep.nic.send_request(7, &write.encode()), Err(NetError::Busy)),
        "writes shed while degraded"
    );
    let read = KvOp::Get { key: make_key(b"repl-key-0") };
    assert!(dep.nic.send_request(0, &read.encode()).is_ok(), "reads admitted while degraded");

    // Heal. The replicas gap-detect and resync; within a couple of rounds
    // quorum recovers, degraded mode exits, and the held response ships.
    cluster.set_partitioned(0, false);
    cluster.set_partitioned(1, false);
    let mut healed = false;
    for _ in 0..4 {
        drive(&sys, &dep.server_threads, 8);
        sys.checkpoint_now().expect("checkpoint");
        if !cluster.shipper.health.is_degraded() {
            healed = true;
            break;
        }
    }
    assert!(healed, "quorum must recover after the partition heals");
    dep.nic.pump();
    let resp = dep.nic.try_take(held_seq).expect("held response released after heal");
    assert!(KvResp::decode(&resp).is_some());
    assert_eq!(cluster.shipper.health.durable_round(), sys.kernel().pers.global_version());
    assert!(sys.kernel().metrics.snapshot().repl_degraded_entries >= 1);
    cluster.stop();
}

/// Differential oracle over a misbehaving wire (duplicates; no drops):
/// a replica fed the incremental delta stream must converge to the same
/// mirror as a replica rebuilt from a full snapshot at the same round.
#[test]
fn faulty_wire_delta_stream_matches_snapshot_resync() {
    let sys = System::boot(kv_config());
    let dep = boot_primary(&sys);
    let ccfg = ClusterConfig {
        fault: NetFaultConfig { seed: 7, drop_1_in: 0, dup_1_in: 4, reorder_window: 0 },
        ..Default::default()
    };
    let cluster = Cluster::deploy(&sys, &ccfg);

    for i in 0..6 {
        commit_set(&sys, &dep, i);
        cluster.replicas[0].poll();
        cluster.replicas[1].poll();
        dep.nic.pump();
    }
    let version = sys.kernel().pers.global_version();
    assert_eq!(cluster.replicas[0].applied_round(), version, "deltas absorbed dup frames");
    assert_eq!(cluster.replicas[1].applied_round(), version);
    // Duplicates alone must be absorbed idempotently, not via resync.
    assert_eq!(cluster.replicas[0].metrics.snapshot().repl_quarantined, 0);

    // Force replica 1 onto the snapshot path and land both replicas on
    // the same round.
    cluster.kill(1);
    cluster.revive(1);
    commit_set(&sys, &dep, 6);
    cluster.replicas[0].poll();
    cluster.replicas[1].poll();
    let version = sys.kernel().pers.global_version();
    assert_eq!(cluster.replicas[0].applied_round(), version);
    assert_eq!(cluster.replicas[1].applied_round(), version);

    // The delta-fed mirror and the snapshot-built mirror must agree:
    // identical records and root, and every page the snapshot carries
    // present with identical bytes. (The delta-fed side may additionally
    // hold stale images of pages a later round freed — cumulative by
    // design — so the comparison is containment, not equality.)
    let delta_store = cluster.replicas[0].store_snapshot();
    let snap_store = cluster.replicas[1].store_snapshot();
    assert_eq!(delta_store.root, snap_store.root);
    assert_eq!(delta_store.applied_round, snap_store.applied_round);
    assert_eq!(delta_store.records.len(), snap_store.records.len());
    for (id, rec) in &snap_store.records {
        assert_eq!(
            delta_store.records.get(id),
            Some(rec),
            "record {id} diverges between delta stream and snapshot"
        );
    }
    for (key, img) in &snap_store.pages {
        let mine = delta_store
            .pages
            .get(key)
            .unwrap_or_else(|| panic!("page {key:?} missing from delta-fed mirror"));
        assert_eq!(mine.crc, img.crc, "page {key:?} CRC diverges");
        assert_eq!(mine.data, img.data, "page {key:?} bytes diverge");
    }
}

/// A CRC-corrupt slot on the wire quarantines the in-flight round (never
/// panics), requests a resync, and the next round's snapshot converges
/// the replica.
#[test]
fn corrupt_delta_quarantines_and_resyncs_without_panic() {
    let sys = System::boot(kv_config());
    let dep = boot_primary(&sys);
    let cluster = Cluster::deploy(&sys, &ClusterConfig::default());

    commit_set(&sys, &dep, 0);
    cluster.replicas[0].poll();
    cluster.replicas[1].poll();
    let clean_round = cluster.replicas[1].applied_round();

    commit_set(&sys, &dep, 1);
    cluster.corrupt_next_delta(1);
    cluster.replicas[0].poll();
    cluster.replicas[1].poll();
    assert_eq!(
        cluster.replicas[1].applied_round(),
        clean_round,
        "a corrupt round must not apply"
    );
    assert!(cluster.replicas[1].is_awaiting_snapshot());
    assert!(cluster.replicas[1].metrics.snapshot().repl_quarantined >= 1);
    assert_eq!(cluster.replicas[0].applied_round(), sys.kernel().pers.global_version());

    commit_set(&sys, &dep, 2);
    cluster.replicas[0].poll();
    cluster.replicas[1].poll();
    assert_eq!(cluster.replicas[1].applied_round(), sys.kernel().pers.global_version());
    assert!(!cluster.replicas[1].is_awaiting_snapshot());
    assert!(cluster.replicas[1].metrics.snapshot().repl_resyncs >= 1);
    assert!(sys.kernel().metrics.snapshot().repl_resyncs >= 1, "primary counted the resync");
}

/// Failover bumps the epoch: after a replica is promoted, the surviving
/// replicas fence out frames the deposed primary keeps shipping, so a
/// zombie primary cannot fork the replicated history.
#[test]
fn promoted_epoch_fences_deposed_primary() {
    let sys = System::boot(kv_config());
    let dep = boot_primary(&sys);
    let cluster = Cluster::deploy(&sys, &ClusterConfig::default());
    let programs = capture_programs(&sys);

    for i in 0..2 {
        commit_set(&sys, &dep, i);
        cluster.replicas[0].poll();
        cluster.replicas[1].poll();
    }
    let version = sys.kernel().pers.global_version();

    // Promote replica 1 (e.g. the primary is *believed* dead). Replica 0
    // is fenced at the new epoch.
    let (sys2, report) = cluster
        .promote(1, kv_config(), |reg| {
            for (name, prog) in &programs {
                reg.register(name, Arc::clone(prog));
            }
        })
        .expect("promotion");
    assert_eq!(report.version, version);
    sys2.manager().verify_checkpoint().expect("promoted tree verifies");

    // The deposed primary is in fact still alive and ships another round;
    // the fenced replica must ignore it wholesale.
    let before = cluster.replicas[0].applied_round();
    commit_set(&sys, &dep, 2);
    cluster.replicas[0].poll();
    assert_eq!(
        cluster.replicas[0].applied_round(),
        before,
        "fenced replica must not apply deposed-primary rounds"
    );
    assert!(
        cluster.replicas[0].fenced_frames.load(Ordering::Relaxed) > 0,
        "stale-epoch frames counted"
    );
}

/// Promotion validates the mirror before booting it: a tampered page
/// image or a missing record is a typed error, not a bad kernel.
#[test]
fn promotion_rejects_damaged_mirrors() {
    let sys = System::boot(kv_config());
    let dep = boot_primary(&sys);
    let cluster = Cluster::deploy(&sys, &ClusterConfig::default());
    commit_set(&sys, &dep, 0);
    cluster.replicas[0].poll();

    // Tampered page image (stored CRC no longer matches the manifest).
    let mut store = cluster.replicas[0].store_snapshot();
    let key = *store.pages.keys().next().expect("mirror has pages");
    store.pages.get_mut(&key).expect("page").crc ^= 1;
    match promote(&store, kv_config(), |_| {}) {
        Err(PromoteError::PageMismatch { .. }) => {}
        other => panic!("tampered page must fail promotion, got {other:?}"),
    }

    // Missing record: the root (or something reachable from it) is gone.
    let mut store = cluster.replicas[0].store_snapshot();
    store.records.remove(&store.root);
    match promote(&store, kv_config(), |_| {}) {
        Err(PromoteError::MissingRoot | PromoteError::MissingRef { .. }) => {}
        other => panic!("truncated mirror must fail promotion, got {other:?}"),
    }
}
