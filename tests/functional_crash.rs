//! §7.2 functional tests: "We tested self-implemented simple test programs
//! (hello world, ping-pong and simple key-value stores) ... We manually
//! crash and reboot the system while running these programs. After reboot,
//! these programs can continue running with expected behaviors."
//!
//! These tests run whole applications under periodic checkpointing, crash
//! the machine at arbitrary wall-clock points, recover, and verify the
//! programs continue to their expected final states.

use std::sync::Arc;
use std::time::Duration;

use treesls::{
    CapRights, ObjType, ProcessSpec, Program, StepOutcome, System, SystemConfig, ThreadSpec,
    UserCtx, Vpn,
};
use treesls_kernel::object::ObjectBody;
use treesls_kernel::program::ProgramRegistry;

fn config() -> SystemConfig {
    let mut c = SystemConfig::small();
    c.checkpoint_interval = Some(Duration::from_millis(1));
    c
}

/// "Hello world": writes a message into memory and exits.
struct Hello;
impl Program for Hello {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        ctx.write(0, b"hello, persistent world").unwrap();
        StepOutcome::Exited
    }
}

/// Ping-pong: two threads bounce a counter through a pair of
/// notifications until it reaches a target.
struct Pinger {
    my_notif: usize,
    peer_notif: usize,
    counter_addr: u64,
    target: u64,
}
impl Program for Pinger {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        match ctx.pc() {
            0 => {
                // Wait for my turn.
                match ctx.notif_wait(self.my_notif) {
                    Ok(true) => {
                        ctx.set_pc(1);
                        StepOutcome::Ready
                    }
                    Ok(false) => StepOutcome::Blocked,
                    Err(_) => StepOutcome::Exited,
                }
            }
            _ => {
                let v = ctx.read_u64(self.counter_addr).unwrap();
                if v >= self.target {
                    // Pass the baton one last time so the peer can exit.
                    let _ = ctx.notif_signal(self.peer_notif);
                    return StepOutcome::Exited;
                }
                ctx.write_u64(self.counter_addr, v + 1).unwrap();
                ctx.notif_signal(self.peer_notif).unwrap();
                ctx.set_pc(0);
                StepOutcome::Ready
            }
        }
    }
}

fn find_named_vmspace(sys: &System, name: &str) -> treesls::ObjId {
    let kernel = sys.kernel();
    let objects = kernel.objects.read();
    let group = objects
        .iter()
        .map(|(_, o)| Arc::clone(o))
        .find(|o| {
            o.otype == ObjType::CapGroup
                && matches!(&*o.body.read(), ObjectBody::CapGroup(g) if g.name == name)
        })
        .expect("group");
    drop(objects);
    let body = group.body.read();
    let ObjectBody::CapGroup(g) = &*body else { unreachable!() };
    let vs = g
        .iter()
        .map(|(_, c)| c.obj)
        .find(|&o| kernel.object(o).map(|o| o.otype == ObjType::VmSpace).unwrap_or(false))
        .expect("vmspace");
    drop(body);
    vs
}

#[test]
fn hello_world_result_survives_crash() {
    let mut sys = System::boot(config());
    sys.register_program("hello", Arc::new(Hello));
    let p = sys
        .spawn(&ProcessSpec::new("hello").heap(4).thread(ThreadSpec::new("hello")))
        .unwrap();
    sys.start();
    assert!(sys.join_threads(&p.threads, Duration::from_secs(10)));
    // Let a checkpoint cover the final state.
    std::thread::sleep(Duration::from_millis(10));
    sys.stop();
    let image = sys.crash();
    let (sys2, _) =
        System::recover(image, config(), |r| r.register("hello", Arc::new(Hello))).unwrap();
    let vs = find_named_vmspace(&sys2, "hello");
    let mut buf = [0u8; 23];
    sys2.read_mem(vs, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"hello, persistent world");
}

fn pingpong_registry(r: &ProgramRegistry) {
    r.register(
        "ping",
        Arc::new(Pinger { my_notif: 2, peer_notif: 3, counter_addr: 0, target: 50_000 }),
    );
    r.register(
        "pong",
        Arc::new(Pinger { my_notif: 3, peer_notif: 2, counter_addr: 0, target: 50_000 }),
    );
}

#[test]
fn ping_pong_continues_across_crash() {
    let mut sys = System::boot(config());
    pingpong_registry(sys.programs());
    // Build the process manually so the notification cap slots are known:
    // slot 0 = vmspace, slot 1 = heap pmo, slots 2 and 3 = notifications.
    let kernel = Arc::clone(sys.kernel());
    let g = kernel.create_cap_group("pingpong").unwrap();
    let vs = kernel.create_vmspace(g).unwrap();
    let pmo = kernel.create_pmo(g, 4, treesls::PmoKind::Data).unwrap();
    kernel.map_region(vs, Vpn(0), 4, pmo, 0, CapRights::ALL).unwrap();
    kernel.create_notification(g).unwrap(); // slot 2 (ping waits)
    kernel.create_notification(g).unwrap(); // slot 3 (pong waits)
    let t1 = kernel.create_thread(g, vs, "ping", treesls::ThreadContext::new()).unwrap();
    let t2 = kernel.create_thread(g, vs, "pong", treesls::ThreadContext::new()).unwrap();
    // Kick off: signal ping's notification.
    let slot2_cap = {
        let go = kernel.object(g).unwrap();
        let b = go.body.read();
        let ObjectBody::CapGroup(cg) = &*b else { unreachable!() };
        let found = cg.iter().find(|(s, _)| *s == 2).map(|(s, _)| s).unwrap();
        drop(b);
        found
    };
    kernel.notif_signal(g, slot2_cap).unwrap();

    sys.start();
    // Let it bounce for a while under 1 ms checkpointing, then crash
    // mid-run.
    std::thread::sleep(Duration::from_millis(200));
    sys.stop();
    let image = sys.crash();
    let (mut sys2, report) = System::recover(image, config(), pingpong_registry).unwrap();
    assert!(report.version >= 1);
    let vs2 = find_named_vmspace(&sys2, "pingpong");
    let mut buf = [0u8; 8];
    sys2.read_mem(vs2, 0, &mut buf).unwrap();
    let at_restore = u64::from_le_bytes(buf);
    // Resume and verify it completes to the exact target.
    sys2.start();
    let threads: Vec<_> = {
        let kernel = sys2.kernel();
        kernel
            .objects
            .read()
            .iter()
            .filter(|(_, o)| o.otype == ObjType::Thread)
            .filter(|(_, o)| {
                matches!(&*o.body.read(), ObjectBody::Thread(t) if t.program.starts_with("p"))
            })
            .map(|(id, _)| id)
            .collect()
    };
    assert_eq!(threads.len(), 2);
    assert!(sys2.join_threads(&threads, Duration::from_secs(60)), "ping-pong never finished");
    sys2.stop();
    let mut buf = [0u8; 8];
    sys2.read_mem(vs2, 0, &mut buf).unwrap();
    let final_v = u64::from_le_bytes(buf);
    assert!(final_v >= 50_000, "counter reached {final_v}, restored from {at_restore}");
    let _ = (t1, t2);
}

#[test]
fn repeated_random_crashes_never_lose_committed_state() {
    // A counter workload crash-looped several times: after each recovery
    // the counter must be monotonically ≥ the last observed checkpointed
    // value and the run must still complete.
    struct Count;
    impl Program for Count {
        fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
            let v = ctx.read_u64(0).unwrap();
            if v >= 200_000 {
                return StepOutcome::Exited;
            }
            ctx.write_u64(0, v + 1).unwrap();
            StepOutcome::Ready
        }
    }
    let reg = |r: &ProgramRegistry| r.register("count", Arc::new(Count));

    let mut sys = System::boot(config());
    reg(sys.programs());
    let p = sys
        .spawn(&ProcessSpec::new("counter").heap(4).thread(ThreadSpec::new("count")))
        .unwrap();
    let mut vs = p.vmspace;
    let mut last_seen = 0u64;
    for round in 0..4 {
        sys.start();
        std::thread::sleep(Duration::from_millis(40));
        sys.stop();
        let image = sys.crash();
        let (s2, _) = System::recover(image, config(), reg).unwrap();
        sys = s2;
        vs = find_named_vmspace(&sys, "counter");
        let mut buf = [0u8; 8];
        sys.read_mem(vs, 0, &mut buf).unwrap();
        let v = u64::from_le_bytes(buf);
        assert!(
            v >= last_seen,
            "round {round}: counter went backwards past a commit: {last_seen} -> {v}"
        );
        last_seen = v;
    }
    // Finish the job after the final recovery.
    sys.start();
    let threads: Vec<_> = {
        let kernel = sys.kernel();
        kernel
            .objects
            .read()
            .iter()
            .filter(|(_, o)| o.otype == ObjType::Thread)
            .map(|(id, _)| id)
            .collect()
    };
    sys.join_threads(&threads, Duration::from_secs(60));
    sys.stop();
    let mut buf = [0u8; 8];
    sys.read_mem(vs, 0, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 200_000);
}

/// Moves a pseudo-random amount between two accounts on the same page;
/// both balances are written within one step, so every recovery point
/// must see their sum intact.
struct Transfer;
impl Program for Transfer {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        const TOTAL: u64 = 1_000_000;
        if ctx.pc() == 0 {
            ctx.write_u64(0, TOTAL).unwrap();
            ctx.write_u64(8, 0).unwrap();
            ctx.set_pc(1);
            return StepOutcome::Ready;
        }
        let rng = treesls_apps::server::xorshift64(ctx.reg(3).max(1));
        ctx.set_reg(3, rng);
        let a = ctx.read_u64(0).unwrap();
        let b = ctx.read_u64(8).unwrap();
        let amount = rng % 1000;
        let (na, nb) = if rng.is_multiple_of(2) && a >= amount {
            (a - amount, b + amount)
        } else if b >= amount {
            (a + amount, b - amount)
        } else {
            (a, b)
        };
        ctx.write_u64(0, na).unwrap();
        ctx.write_u64(8, nb).unwrap();
        StepOutcome::Ready
    }
}

/// Finds the single thread of the cap group named `name`.
fn find_named_thread(sys: &System, name: &str) -> treesls::ObjId {
    let kernel = sys.kernel();
    let objects = kernel.objects.read();
    let group = objects
        .iter()
        .map(|(_, o)| Arc::clone(o))
        .find(|o| {
            o.otype == ObjType::CapGroup
                && matches!(&*o.body.read(), ObjectBody::CapGroup(g) if g.name == name)
        })
        .expect("group");
    drop(objects);
    let body = group.body.read();
    let ObjectBody::CapGroup(g) = &*body else { unreachable!() };
    let tid = g
        .iter()
        .map(|(_, c)| c.obj)
        .find(|&o| kernel.object(o).map(|o| o.otype == ObjType::Thread).unwrap_or(false))
        .expect("thread");
    drop(body);
    tid
}

#[test]
fn epoch_fence_never_tears_a_page_under_partial_quiescence() {
    // Partial-quiescence companion to the hybrid-copy test below: two
    // transfer processes pinned to different cores mean a checkpoint
    // parks at most the dirty-owning cores while the others keep stepping
    // behind the epoch fence. A fence bug — a write-through into the
    // round's image, or a skipped conflict capture — tears the two-word
    // balance update exactly like the old all-cores quiescence race did.
    fn register(r: &ProgramRegistry) {
        r.register("transfer", Arc::new(Transfer));
    }
    let config = || {
        let mut c = config();
        c.cores = 4;
        c.kernel.hot_threshold = 2;
        c
    };
    let pin = |sys: &System| {
        for (name, core) in [("xfer-a", 0u32), ("xfer-b", 1u32)] {
            let tid = find_named_thread(sys, name);
            sys.kernel().sched.set_affinity(tid, Some(core));
        }
    };
    let mut sys = System::boot(config());
    register(sys.programs());
    for name in ["xfer-a", "xfer-b"] {
        sys.spawn(&ProcessSpec::new(name).heap(4).thread(ThreadSpec::new("transfer")))
            .unwrap();
    }
    pin(&sys);
    for round in 1..=4 {
        sys.start();
        std::thread::sleep(Duration::from_millis(40));
        sys.stop();
        // The last round must not have parked the whole machine: with the
        // writers pinned to cores 0 and 1, cores 2 and 3 never own dirty
        // pages, so a full stop means partial quiescence never engaged.
        let quiesced = sys.kernel().metrics.snapshot().quiesced_cores;
        assert!(quiesced < 4, "round {round}: full stop under pinned load ({quiesced}/4 cores)");
        let image = sys.crash();
        let (s2, report) = System::recover(image, config(), register).expect("recover");
        sys = s2;
        for name in ["xfer-a", "xfer-b"] {
            let vs = find_named_vmspace(&sys, name);
            let mut buf = [0u8; 16];
            sys.read_mem(vs, 0, &mut buf).unwrap();
            let a = u64::from_le_bytes(buf[0..8].try_into().unwrap());
            let b = u64::from_le_bytes(buf[8..16].try_into().unwrap());
            assert_eq!(
                a + b,
                1_000_000,
                "{name}: torn page at recovery {round} (version {}): A={a} B={b}",
                report.version
            );
        }
        // Affinity is scheduler state, volatile across restore: re-pin.
        pin(&sys);
    }
}

#[test]
fn hybrid_copy_never_tears_a_page_under_multicore_load() {
    // Regression test for a stop-the-world race: a core that reached the
    // quiescence gate early used to start the hybrid stop-and-copy batch
    // while another core was still mid-step, so the copied page could
    // capture one half of a two-word update (A debited, B not yet
    // credited). Low hot_threshold forces the account page into the DRAM
    // cache quickly so every checkpoint stop-and-copies it.
    fn register(r: &ProgramRegistry) {
        r.register("transfer", Arc::new(Transfer));
    }
    let config = || {
        let mut c = config();
        c.kernel.hot_threshold = 2;
        c
    };
    let mut sys = System::boot(config());
    register(sys.programs());
    sys.spawn(&ProcessSpec::new("transfer").heap(4).thread(ThreadSpec::new("transfer")))
        .unwrap();
    for round in 1..=4 {
        sys.start();
        std::thread::sleep(Duration::from_millis(40));
        sys.stop();
        let image = sys.crash();
        let (s2, report) = System::recover(image, config(), register).expect("recover");
        sys = s2;
        let vs = find_named_vmspace(&sys, "transfer");
        let mut buf = [0u8; 16];
        sys.read_mem(vs, 0, &mut buf).unwrap();
        let a = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let b = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        assert_eq!(
            a + b,
            1_000_000,
            "torn page at recovery {round} (version {}): A={a} B={b}",
            report.version
        );
    }
}
