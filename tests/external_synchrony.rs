//! §5 end-to-end tests: transparent external synchrony.
//!
//! The contract under test is the paper's: "an SLS should make sure that
//! the state changes caused by a request are persisted before sending
//! responses to external systems". With ext-sync on, any response an
//! external client has *observed* must survive a crash; responses whose
//! state was rolled back are never observed (the client retries).

use std::sync::Arc;
use std::time::Duration;

use treesls::net::{NicLayout, VirtualNic};
use treesls::{System, SystemConfig};
use treesls_apps::wire::{make_key, KvOp, KvResp};
use treesls_bench::ringsetup::{deploy_kv, nic_config, ShardGeometry};

fn config(interval_ms: Option<u64>) -> SystemConfig {
    let mut c = SystemConfig::small();
    c.kernel.nvm_frames = 65_536;
    c.kernel.dram_pages = 1024;
    c.checkpoint_interval = interval_ms.map(Duration::from_millis);
    c
}

#[test]
fn responses_are_delayed_until_a_checkpoint_commits() {
    let mut sys = System::boot(config(None)); // manual checkpoints
    let dep = deploy_kv(&sys, 1, 1024, 128, true, ShardGeometry::default());
    sys.start();
    let nic = &dep.nic;

    let op = KvOp::Set { key: make_key(b"durable"), value: b"yes".to_vec() };
    // Without a checkpoint the response must NOT become visible.
    let r = nic.call(0, &op.encode(), Duration::from_millis(200)).unwrap();
    assert!(r.reply().is_none(), "response leaked before any checkpoint");

    // After a checkpoint the (retried) request is answered.
    let seq = nic.send_request(0, &op.encode()).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut got = None;
    while got.is_none() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
        sys.checkpoint_now().unwrap();
        nic.pump();
        got = nic.try_take(seq);
    }
    assert!(got.is_some(), "response never released after checkpoints");
    sys.stop();
}

/// Finds the restored ring-server vmspace (the one with the eternal ring
/// region mapped alongside its heap).
fn restored_vmspace(sys: &System) -> treesls::ObjId {
    let kernel = sys.kernel();
    let objects = kernel.objects.read();
    let found = objects
        .iter()
        .filter(|(_, o)| o.otype == treesls::ObjType::VmSpace)
        .map(|(id, _)| id)
        .find(|&id| {
            let o = kernel.object(id).unwrap();
            let b = o.body.read();
            matches!(&*b, treesls_kernel::object::ObjectBody::VmSpace(v)
                if v.regions.len() >= 2)
        })
        .expect("server vmspace");
    found
}

/// Finds the restored doorbell notifications, in slot (= queue) order.
fn restored_doorbells(sys: &System) -> Vec<treesls::ObjId> {
    let kernel = sys.kernel();
    let objects = kernel.objects.read();
    let mut bells: Vec<_> = objects
        .iter()
        .filter(|(_, o)| o.otype == treesls::ObjType::Notification)
        .map(|(id, _)| id)
        .collect();
    bells.sort();
    bells
}

/// Rebuilds the layout `deploy_kv` used for a single-queue NIC over
/// `geom` (heap, then a 16-page guard gap, then the eternal rings).
fn kv_layout(geom: &ShardGeometry, cfg: &treesls::net::NicConfig) -> NicLayout {
    let heap_pages = cfg.queues as u64 * geom.data_stride / 4096 + 1;
    NicLayout::new(cfg, (heap_pages + 16) * 4096, geom.data_stride - 4096, geom.data_stride)
}

#[test]
fn full_crash_recovery_with_server_continuation() {
    // End-to-end: SET observed → crash → recover → re-register programs →
    // GET must return the value.
    let mut sys = System::boot(config(Some(1)));
    let geom = ShardGeometry::default();
    let dep = deploy_kv(&sys, 1, 1024, 128, true, geom);
    sys.start();
    let op = KvOp::Set { key: make_key(b"alive"), value: b"after-crash".to_vec() };
    dep.nic
        .call(0, &op.encode(), Duration::from_secs(5))
        .unwrap()
        .reply()
        .expect("SET acked");
    sys.stop();

    // Capture the programs (the "binaries") for the reboot.
    let programs: Vec<(String, Arc<dyn treesls::Program>)> = sys
        .programs()
        .names()
        .into_iter()
        .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
        .collect();
    let cfg = config(Some(1));
    let image = sys.crash();
    let (mut sys2, report) = System::recover(image, cfg, move |r| {
        for (n, p) in programs {
            r.register(&n, p);
        }
    })
    .expect("recovery");
    // Reattach the NIC to the restored rings (no re-init!), re-register
    // the ext-sync callbacks and fire the restore reconciliation.
    let vs2 = restored_vmspace(&sys2);
    let nic_cfg = nic_config(1, true, &geom);
    let layout = kv_layout(&geom, &nic_cfg);
    let nic2 = VirtualNic::attach(Arc::clone(sys2.kernel()), vs2, layout, &nic_cfg, 1_000_000);
    // Rebind the doorbell: the restored server blocks on its notification
    // and must be woken by incoming requests.
    let bells = restored_doorbells(&sys2);
    assert_eq!(bells.len(), 1, "doorbell notification restored");
    nic2.set_doorbell(0, bells[0]);
    sys2.manager().register_callback(Arc::clone(&nic2) as _);
    sys2.manager().fire_restore_callbacks(report.version);
    sys2.start();

    let get = KvOp::Get { key: make_key(b"alive") };
    let resp = nic2
        .call(0, &get.encode(), Duration::from_secs(5))
        .unwrap()
        .reply()
        .expect("GET after recovery");
    match KvResp::decode(&resp) {
        Some(KvResp::Ok(Some(v))) => assert_eq!(v, b"after-crash"),
        other => panic!("observed SET was lost after crash: {other:?}"),
    }
    sys2.stop();
}

/// Regression (PR 1 lost-doorbell bug): a request that lands in the RX
/// ring *after* the last pre-crash checkpoint leaves its doorbell signal
/// in rolled-back notification state. The restore path must re-arm every
/// queue whose restored RX cursor trails the ring writer, or the server
/// sleeps forever on a ring that still holds work.
#[test]
fn restore_rearms_doorbell_for_uncommitted_requests() {
    let mut sys = System::boot(config(None)); // manual checkpoints only
    let geom = ShardGeometry::default();
    let dep = deploy_kv(&sys, 1, 1024, 128, true, geom);
    sys.start();
    // Let the server format its table and park on the doorbell, then
    // commit that parked state.
    std::thread::sleep(Duration::from_millis(20));
    sys.checkpoint_now().unwrap();
    // The request arrives after the commit: its doorbell signal lives
    // only in to-be-rolled-back state, but the RX slot is eternal.
    let op = KvOp::Set { key: make_key(b"ghost"), value: b"rung".to_vec() };
    dep.nic.send_request(0, &op.encode()).unwrap();
    sys.stop();

    let programs: Vec<(String, Arc<dyn treesls::Program>)> = sys
        .programs()
        .names()
        .into_iter()
        .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
        .collect();
    let image = sys.crash();
    let (mut sys2, report) = System::recover(image, config(None), move |r| {
        for (n, p) in programs {
            r.register(&n, p);
        }
    })
    .expect("recovery");
    let vs2 = restored_vmspace(&sys2);
    let nic_cfg = nic_config(1, true, &geom);
    let nic2 = VirtualNic::attach(
        Arc::clone(sys2.kernel()),
        vs2,
        kv_layout(&geom, &nic_cfg),
        &nic_cfg,
        1_000_000,
    );
    let bells = restored_doorbells(&sys2);
    assert_eq!(bells.len(), 1);
    nic2.set_doorbell(0, bells[0]);
    sys2.manager().register_callback(Arc::clone(&nic2) as _);
    // The uniform per-queue re-arm: cursor < writer ⇒ signal the bell.
    sys2.manager().fire_restore_callbacks(report.version);
    sys2.start();

    // Without retransmitting the lost SET, the woken server must process
    // the ring-resident request; a fresh GET (held pending across the
    // manual commits that release its commit-gated reply) observes it.
    let get = KvOp::Get { key: make_key(b"ghost") };
    let seq = nic2.send_request(0, &get.encode()).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut got = None;
    while got.is_none() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
        sys2.checkpoint_now().unwrap();
        nic2.pump();
        got = nic2.try_take(seq);
    }
    let resp = got.expect("ring-resident SET never served after re-arm");
    match KvResp::decode(&resp) {
        Some(KvResp::Ok(Some(v))) => assert_eq!(v, b"rung"),
        other => panic!("ghost SET not observed by the GET: {other:?}"),
    }
    sys2.stop();
}

/// Regression (credit over-shedding): credits bound the server's
/// *unconsumed RX backlog*, not the end-to-end count of requests awaiting
/// a committed response. A steady closed-loop load held at half the ring
/// capacity must therefore produce zero sheds — under the old ledger
/// (replenish only when a response is drained) every round's second batch
/// was refused with `Busy` while the server sat idle with headroom.
#[test]
fn steady_closed_loop_at_half_capacity_never_sheds() {
    use treesls_bench::ringsetup::deploy_kv_cfg;
    use treesls_kernel::cores::run_slice;

    let sys = System::boot(config(None)); // manual checkpoints + stepping
    let geom = ShardGeometry { nslots: 32, slot_size: 84, data_stride: 16 * 4096 };
    let mut cfg = nic_config(1, true, &geom);
    // Admission budget = capacity/4; the closed-loop window below holds
    // 2 budgets (= capacity/2) awaiting one commit.
    cfg.credits = 8;
    let dep = deploy_kv_cfg(&sys, 16, 40, cfg, geom);
    let nic = &dep.nic;
    let srv = dep.server_threads[0];
    let drive = |steps: usize| run_slice(sys.kernel(), srv, steps, sys.manager().stw());

    // Let the server format its shard and park.
    drive(4);
    sys.checkpoint_now().unwrap();
    nic.pump();

    let sheds_before = sys.kernel().metrics.snapshot().net_sheds;
    let mut awaiting: Vec<u64> = Vec::new();
    for round in 0..6 {
        // Two credit-sized batches per round: the server consumes the
        // first batch's backlog before the second is admitted, so the
        // resynced ledger must let both through — 16 requests (half the
        // 32-slot ring) outstanding against a single commit.
        for batch in 0..2 {
            for i in 0..8 {
                let key = make_key(format!("k-{round}-{batch}-{i}").as_bytes());
                let op = KvOp::Set { key, value: b"v".to_vec() };
                let seq = nic
                    .send_request(0, &op.encode())
                    .expect("closed-loop load at half capacity was shed");
                awaiting.push(seq);
            }
            nic.flush_wire();
            drive(16);
            nic.pump();
        }
        // One commit releases the whole round's replies.
        sys.checkpoint_now().unwrap();
        nic.pump();
        awaiting.retain(|&s| nic.try_take(s).is_none());
        assert!(awaiting.is_empty(), "round {round}: replies missing for {awaiting:?}");
    }
    let sheds_after = sys.kernel().metrics.snapshot().net_sheds;
    assert_eq!(sheds_after - sheds_before, 0, "steady half-capacity load was shed");
}

#[test]
fn ext_sync_off_releases_immediately() {
    let mut sys = System::boot(config(None)); // no checkpoints at all
    let dep = deploy_kv(&sys, 1, 1024, 128, false, ShardGeometry::default());
    sys.start();
    let nic = &dep.nic;
    let op = KvOp::Set { key: make_key(b"fast"), value: b"now".to_vec() };
    let r = nic.call(0, &op.encode(), Duration::from_secs(5)).unwrap();
    assert!(r.reply().is_some(), "without ext-sync responses flow without checkpoints");
    sys.stop();
}
