//! §5 end-to-end tests: transparent external synchrony.
//!
//! The contract under test is the paper's: "an SLS should make sure that
//! the state changes caused by a request are persisted before sending
//! responses to external systems". With ext-sync on, any response an
//! external client has *observed* must survive a crash; responses whose
//! state was rolled back are never observed (the client retries).

use std::sync::Arc;
use std::time::Duration;

use treesls::extsync::NetPort;
use treesls::{System, SystemConfig};
use treesls_apps::wire::{make_key, KvOp, KvResp};
use treesls_bench::ringsetup::{deploy_kv, ShardGeometry};

fn config(interval_ms: Option<u64>) -> SystemConfig {
    let mut c = SystemConfig::small();
    c.kernel.nvm_frames = 65_536;
    c.kernel.dram_pages = 1024;
    c.checkpoint_interval = interval_ms.map(Duration::from_millis);
    c
}

#[test]
fn responses_are_delayed_until_a_checkpoint_commits() {
    let mut sys = System::boot(config(None)); // manual checkpoints
    let dep = deploy_kv(&sys, 1, 1024, 128, true, ShardGeometry::default());
    sys.start();
    let port = &dep.ports[0];

    let op = KvOp::Set { key: make_key(b"durable"), value: b"yes".to_vec() };
    // Without a checkpoint the response must NOT become visible.
    let r = port.call(&op.encode(), Duration::from_millis(200)).unwrap();
    assert!(r.is_none(), "response leaked before any checkpoint");

    // After a checkpoint the (retried) request is answered.
    let seq = port.send_request(&op.encode()).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut got = None;
    while got.is_none() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
        sys.checkpoint_now().unwrap();
        port.pump();
        got = port.try_take(seq);
    }
    assert!(got.is_some(), "response never released after checkpoints");
    sys.stop();
}

#[test]
fn full_crash_recovery_with_server_continuation() {
    // End-to-end: SET observed → crash → recover → re-register programs →
    // GET must return the value.
    let mut sys = System::boot(config(Some(1)));
    let geom = ShardGeometry::default();
    let dep = deploy_kv(&sys, 1, 1024, 128, true, geom);
    sys.start();
    let port = &dep.ports[0];
    let op = KvOp::Set { key: make_key(b"alive"), value: b"after-crash".to_vec() };
    port.call(&op.encode(), Duration::from_secs(5)).unwrap().expect("SET acked");
    sys.stop();

    // Capture the programs (the "binaries") for the reboot.
    let programs: Vec<(String, Arc<dyn treesls::Program>)> = sys
        .programs()
        .names()
        .into_iter()
        .filter_map(|n| sys.programs().get(&n).map(|p| (n, p)))
        .collect();
    let cfg = config(Some(1));
    let image = sys.crash();
    let (mut sys2, report) = System::recover(image, cfg, move |r| {
        for (n, p) in programs {
            r.register(&n, p);
        }
    })
    .expect("recovery");
    // Reattach the port to the restored rings (no re-init!), re-register
    // the ext-sync callbacks and fire the restore reconciliation.
    let vs2 = {
        let kernel = sys2.kernel();
        let objects = kernel.objects.read();
        let found = objects
            .iter()
            .filter(|(_, o)| o.otype == treesls::ObjType::VmSpace)
            .map(|(id, _)| id)
            .find(|&id| {
                // The ring server's vmspace has the eternal region mapped.
                let o = kernel.object(id).unwrap();
                let b = o.body.read();
                let is = matches!(&*b, treesls_kernel::object::ObjectBody::VmSpace(v)
                    if v.regions.len() >= 2);
                drop(b);
                is
            })
            .expect("server vmspace");
        found
    };
    // Rebuild the same layout deploy_kv used.
    let heap_pages = geom.data_stride / 4096 + 1;
    let ring_base = (heap_pages + 16) * 4096;
    let ring_len = (32 + geom.nslots * geom.slot_size).div_ceil(4096) * 4096;
    let layout = treesls::extsync::PortLayout {
        rx: treesls::extsync::RingLayout {
            base: ring_base,
            nslots: geom.nslots,
            slot_size: geom.slot_size,
        },
        tx: treesls::extsync::RingLayout {
            base: ring_base + ring_len,
            nslots: geom.nslots,
            slot_size: geom.slot_size,
        },
        rx_cursor_addr: geom.data_stride - 4096,
    };
    let port2 = NetPort::attach(Arc::clone(sys2.kernel()), vs2, layout, true, 1_000_000);
    // Rebind the doorbell: the restored server blocks on its notification
    // and must be woken by incoming requests.
    let doorbell = {
        let kernel = sys2.kernel();
        let objects = kernel.objects.read();
        let id = objects
            .iter()
            .find(|(_, o)| o.otype == treesls::ObjType::Notification)
            .map(|(id, _)| id)
            .expect("doorbell notification restored");
        drop(objects);
        id
    };
    port2.set_doorbell(doorbell);
    sys2.manager().register_callback(Arc::clone(&port2) as _);
    sys2.manager().fire_restore_callbacks(report.version);
    sys2.start();

    let get = KvOp::Get { key: make_key(b"alive") };
    let resp = port2
        .call(&get.encode(), Duration::from_secs(5))
        .unwrap()
        .expect("GET after recovery");
    match KvResp::decode(&resp) {
        Some(KvResp::Ok(Some(v))) => assert_eq!(v, b"after-crash"),
        other => panic!("observed SET was lost after crash: {other:?}"),
    }
    sys2.stop();
}

#[test]
fn ext_sync_off_releases_immediately() {
    let mut sys = System::boot(config(None)); // no checkpoints at all
    let dep = deploy_kv(&sys, 1, 1024, 128, false, ShardGeometry::default());
    sys.start();
    let port = &dep.ports[0];
    let op = KvOp::Set { key: make_key(b"fast"), value: b"now".to_vec() };
    let r = port.call(&op.encode(), Duration::from_secs(5)).unwrap();
    assert!(r.is_some(), "without ext-sync responses flow without checkpoints");
    sys.stop();
}
