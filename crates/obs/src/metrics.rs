//! Unified metrics registry: relaxed-atomic counters, gauges, and a
//! log-bucketed stop-the-world pause histogram.
//!
//! The registry is the aggregation point the evaluation chapters of the
//! paper assume but the reproduction previously lacked: `StwBreakdown`
//! (checkpoint crate), `HybridRoundStats` (checkpoint crate), kernel fault
//! counters, and `MemStats` (nvm crate) each lived in their own silo. The
//! registry adds the cross-cutting counters none of them carried —
//! per-generation backup page counts, ext-sync ring depth and visible lag,
//! allocator journal high water — and one plain-value [`MetricsSnapshot`]
//! that the `System` facade fills in from all of them.
//!
//! Hot-path cost: every record method is `#[inline]`, performs at most one
//! relaxed atomic RMW, and compiles to an empty stub when the crate's
//! `metrics` feature is off (callers never need `cfg` guards). The
//! measured pause-time delta between the two configurations is reported in
//! `EXPERIMENTS.md`.

use std::sync::atomic::AtomicU64;
#[cfg(feature = "metrics")]
use std::sync::atomic::Ordering;

use crate::json::Json;

/// Number of log₂ buckets in [`PauseHistogram`]; covers 1 ns..2⁶³ ns.
const BUCKETS: usize = 64;

/// Number of per-shard service counters the registry carries. Shards
/// beyond this fold into their index modulo `NET_SHARDS` — fixed-size so
/// the hot-path record stays a single relaxed `fetch_add` with no
/// allocation or locking.
pub const NET_SHARDS: usize = 16;

/// Log-bucketed latency histogram for stop-the-world pauses.
///
/// Bucket *i* holds samples whose bit length is *i*, i.e. the range
/// `[2^(i-1), 2^i)` nanoseconds (bucket 0 holds exact zeros). Recording is
/// one relaxed `fetch_add` per sample; quantiles are resolved to a bucket's
/// upper bound, so a reported p99 of `1023 ns` means "at most 1.023 µs".
/// The maximum is tracked exactly.
#[derive(Debug)]
#[cfg_attr(not(feature = "metrics"), allow(dead_code))]
pub struct PauseHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for PauseHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl PauseHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one pause of `ns` nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        #[cfg(feature = "metrics")]
        {
            let idx = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum_ns.fetch_add(ns, Ordering::Relaxed);
            self.max_ns.fetch_max(ns, Ordering::Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = ns;
    }

    /// Returns a plain-value summary (count, mean, p50/p95/p99, max).
    pub fn stats(&self) -> PauseStats {
        #[cfg(feature = "metrics")]
        {
            let counts: Vec<u64> =
                self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
            let count: u64 = counts.iter().sum();
            let sum = self.sum_ns.load(Ordering::Relaxed);
            let quantile = |q: f64| -> u64 {
                if count == 0 {
                    return 0;
                }
                let target = (q * count as f64).ceil().max(1.0) as u64;
                let mut seen = 0u64;
                for (i, &c) in counts.iter().enumerate() {
                    seen += c;
                    if seen >= target {
                        return if i == 0 { 0 } else { (1u64 << i) - 1 };
                    }
                }
                u64::MAX
            };
            PauseStats {
                count,
                mean_ns: sum.checked_div(count).unwrap_or(0),
                p50_ns: quantile(0.50),
                p95_ns: quantile(0.95),
                p99_ns: quantile(0.99),
                max_ns: self.max_ns.load(Ordering::Relaxed),
            }
        }
        #[cfg(not(feature = "metrics"))]
        PauseStats::default()
    }
}

/// Plain-value summary of a [`PauseHistogram`].
///
/// Quantiles are bucket upper bounds (see the histogram docs); `max_ns` is
/// exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PauseStats {
    /// Number of pauses recorded.
    pub count: u64,
    /// Arithmetic mean in nanoseconds.
    pub mean_ns: u64,
    /// Median (bucket upper bound) in nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile (bucket upper bound) in nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile (bucket upper bound) in nanoseconds.
    pub p99_ns: u64,
    /// Largest single pause in nanoseconds (exact).
    pub max_ns: u64,
}

impl PauseStats {
    /// Renders the summary as a JSON object (nanosecond integers).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::from(self.count)),
            ("mean_ns".into(), Json::from(self.mean_ns)),
            ("p50_ns".into(), Json::from(self.p50_ns)),
            ("p95_ns".into(), Json::from(self.p95_ns)),
            ("p99_ns".into(), Json::from(self.p99_ns)),
            ("max_ns".into(), Json::from(self.max_ns)),
        ])
    }
}

/// Cross-cutting counters and gauges for the whole stack.
///
/// One instance lives in the kernel (`Kernel::metrics`) and is shared by
/// the checkpoint manager and the external-synchrony layer. All updates
/// are relaxed atomics; with the `metrics` feature off every method body
/// is empty.
#[derive(Debug, Default)]
#[cfg_attr(not(feature = "metrics"), allow(dead_code))]
pub struct MetricsRegistry {
    checkpoints: AtomicU64,
    restores: AtomicU64,
    hybrid_migrated_in: AtomicU64,
    hybrid_sac_copies: AtomicU64,
    hybrid_evicted: AtomicU64,
    backup_pages_even: AtomicU64,
    backup_pages_odd: AtomicU64,
    ring_publishes: AtomicU64,
    ring_depth: AtomicU64,
    ring_visible_lag: AtomicU64,
    tree_full_walks: AtomicU64,
    tree_dirty_walks: AtomicU64,
    tree_dirty_drained: AtomicU64,
    tree_copied: AtomicU64,
    tree_offloaded: AtomicU64,
    tree_tombstoned: AtomicU64,
    dirty_queue_depth: AtomicU64,
    shard_contention: AtomicU64,
    quiesced_cores: AtomicU64,
    epoch_conflicts: AtomicU64,
    epoch_flips: AtomicU64,
    inline_log_captures: AtomicU64,
    inline_log_bytes: AtomicU64,
    concurrent_copy_ns: AtomicU64,
    net_requests: AtomicU64,
    net_sheds: AtomicU64,
    net_rearms: AtomicU64,
    net_faults_dropped: AtomicU64,
    net_faults_duplicated: AtomicU64,
    net_faults_reordered: AtomicU64,
    net_visible_lag_max: AtomicU64,
    net_visible_lag_sum: AtomicU64,
    net_rx_occupancy_hwm: AtomicU64,
    net_tx_occupancy_hwm: AtomicU64,
    net_shard_requests: [AtomicU64; NET_SHARDS],
    net_tx_batches: AtomicU64,
    net_tx_batched_responses: AtomicU64,
    tx_batch: PauseHistogram,
    repl_rounds_shipped: AtomicU64,
    repl_records_shipped: AtomicU64,
    repl_pages_shipped: AtomicU64,
    repl_bytes_shipped: AtomicU64,
    repl_acks: AtomicU64,
    repl_resyncs: AtomicU64,
    repl_quarantined: AtomicU64,
    repl_degraded_entries: AtomicU64,
    repl_acked_round: AtomicU64,
    repl_lag: AtomicU64,
    txn_commits: AtomicU64,
    txn_aborts: AtomicU64,
    txn_conflict_retries: AtomicU64,
    txn_durable_seq: AtomicU64,
    txn_latency: PauseHistogram,
    pause: PauseHistogram,
}

impl MetricsRegistry {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a committed checkpoint and its total stop-the-world pause.
    #[inline]
    pub fn record_checkpoint(&self, total_pause_ns: u64) {
        #[cfg(feature = "metrics")]
        {
            self.checkpoints.fetch_add(1, Ordering::Relaxed);
            self.pause.record(total_pause_ns);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = total_pause_ns;
    }

    /// Records a completed whole-system restore.
    #[inline]
    pub fn record_restore(&self) {
        #[cfg(feature = "metrics")]
        self.restores.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one hybrid-copy round's page movement.
    #[inline]
    pub fn record_hybrid(&self, migrated_in: u64, sac_copies: u64, evicted: u64) {
        #[cfg(feature = "metrics")]
        {
            self.hybrid_migrated_in.fetch_add(migrated_in, Ordering::Relaxed);
            self.hybrid_sac_copies.fetch_add(sac_copies, Ordering::Relaxed);
            self.hybrid_evicted.fetch_add(evicted, Ordering::Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (migrated_in, sac_copies, evicted);
    }

    /// Records one backup page written under the given version's parity
    /// (the dual-generation page pair of §4.2).
    #[inline]
    pub fn record_backup_page(&self, version: u64) {
        #[cfg(feature = "metrics")]
        if version & 1 == 0 {
            self.backup_pages_even.fetch_add(1, Ordering::Relaxed);
        } else {
            self.backup_pages_odd.fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = version;
    }

    /// Records one ext-sync ring request published by a client.
    #[inline]
    pub fn record_ring_publish(&self) {
        #[cfg(feature = "metrics")]
        self.ring_publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the ext-sync ring gauges (sampled at each checkpoint
    /// callback).
    #[inline]
    pub fn set_ring_gauges(&self, depth: u64, visible_lag: u64) {
        #[cfg(feature = "metrics")]
        {
            self.ring_depth.store(depth, Ordering::Relaxed);
            self.ring_visible_lag.store(visible_lag, Ordering::Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (depth, visible_lag);
    }

    /// Records one capability-tree walk: whether it was a full walk or a
    /// dirty-queue walk, how many queue entries were drained, and how many
    /// backup records were copied / built by offload workers / tombstoned.
    #[inline]
    pub fn record_tree_walk(
        &self,
        full: bool,
        drained: u64,
        copied: u64,
        offloaded: u64,
        tombstoned: u64,
    ) {
        #[cfg(feature = "metrics")]
        {
            if full {
                self.tree_full_walks.fetch_add(1, Ordering::Relaxed);
            } else {
                self.tree_dirty_walks.fetch_add(1, Ordering::Relaxed);
            }
            self.tree_dirty_drained.fetch_add(drained, Ordering::Relaxed);
            self.tree_copied.fetch_add(copied, Ordering::Relaxed);
            self.tree_offloaded.fetch_add(offloaded, Ordering::Relaxed);
            self.tree_tombstoned.fetch_add(tombstoned, Ordering::Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (full, drained, copied, offloaded, tombstoned);
    }

    /// Updates the checkpoint-path gauges: residual dirty-queue depth (ids
    /// pushed since the walk drained it) and cumulative sharded-store lock
    /// contention, both sampled at the end of each round.
    #[inline]
    pub fn set_ckpt_gauges(&self, dirty_queue_depth: u64, shard_contention: u64) {
        #[cfg(feature = "metrics")]
        {
            self.dirty_queue_depth.store(dirty_queue_depth, Ordering::Relaxed);
            self.shard_contention.store(shard_contention, Ordering::Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (dirty_queue_depth, shard_contention);
    }

    /// Updates the partial-quiescence gauge: how many cores the last
    /// stop-the-world round actually parked.
    #[inline]
    pub fn set_quiesced_cores(&self, cores: u64) {
        #[cfg(feature = "metrics")]
        self.quiesced_cores.store(cores, Ordering::Relaxed);
        #[cfg(not(feature = "metrics"))]
        let _ = cores;
    }

    /// Records one epoch-fence conflict capture: a core outside a partial
    /// pause's stop set wrote a page whose round image was not yet
    /// preserved, and the fault path duplicated it inline.
    #[inline]
    pub fn record_epoch_conflict(&self) {
        #[cfg(feature = "metrics")]
        self.epoch_conflicts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one epoch flip: an O(1) stop window that armed the fence,
    /// cut the dirty queue, and resumed — leaving the copy phase to run
    /// concurrently with mutators.
    #[inline]
    pub fn record_epoch_flip(&self) {
        #[cfg(feature = "metrics")]
        self.epoch_flips.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one in-line undo record appended by the conflict path (a
    /// sub-cache-line first write that logged its pre-image instead of
    /// duplicating the whole page). `bytes` is the encoded record size.
    #[inline]
    pub fn record_inline_log(&self, bytes: u64) {
        #[cfg(feature = "metrics")]
        {
            self.inline_log_captures.fetch_add(1, Ordering::Relaxed);
            self.inline_log_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = bytes;
    }

    /// Updates the concurrent-copy gauge: nanoseconds the last round spent
    /// draining the cut and copying pages *outside* the stop window,
    /// overlapped with mutators.
    #[inline]
    pub fn set_concurrent_copy_ns(&self, ns: u64) {
        #[cfg(feature = "metrics")]
        self.concurrent_copy_ns.store(ns, Ordering::Relaxed);
        #[cfg(not(feature = "metrics"))]
        let _ = ns;
    }

    /// Records one request admitted by a virtual NIC.
    #[inline]
    pub fn record_net_request(&self) {
        #[cfg(feature = "metrics")]
        self.net_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed by NIC admission control (credit budget
    /// exhausted or RX descriptor ring full → explicit `Busy` reply).
    #[inline]
    pub fn record_net_shed(&self) {
        #[cfg(feature = "metrics")]
        self.net_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records queue doorbells re-armed by a NIC restore callback.
    #[inline]
    pub fn record_net_rearm(&self, queues: u64) {
        #[cfg(feature = "metrics")]
        self.net_rearms.fetch_add(queues, Ordering::Relaxed);
        #[cfg(not(feature = "metrics"))]
        let _ = queues;
    }

    /// Records packets perturbed by the network fault model.
    #[inline]
    pub fn record_net_faults(&self, dropped: u64, duplicated: u64, reordered: u64) {
        #[cfg(feature = "metrics")]
        {
            self.net_faults_dropped.fetch_add(dropped, Ordering::Relaxed);
            self.net_faults_duplicated.fetch_add(duplicated, Ordering::Relaxed);
            self.net_faults_reordered.fetch_add(reordered, Ordering::Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (dropped, duplicated, reordered);
    }

    /// Updates the per-commit visible-lag gauges (`writer −
    /// visible_writer` merged across queues: the worst queue and the
    /// whole-NIC sum) and folds ring occupancies into the high-water
    /// marks. Sampled by the NIC's checkpoint callback after the
    /// visibility barrier.
    #[inline]
    pub fn record_net_barrier(&self, lag_max: u64, lag_sum: u64, rx_occupancy: u64, tx_occupancy: u64) {
        #[cfg(feature = "metrics")]
        {
            self.net_visible_lag_max.store(lag_max, Ordering::Relaxed);
            self.net_visible_lag_sum.store(lag_sum, Ordering::Relaxed);
            self.net_rx_occupancy_hwm.fetch_max(rx_occupancy, Ordering::Relaxed);
            self.net_tx_occupancy_hwm.fetch_max(tx_occupancy, Ordering::Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (lag_max, lag_sum, rx_occupancy, tx_occupancy);
    }

    /// Records one round-batched TX publish by a poll-mode service shard:
    /// `responses` requests were served and released with a single ring
    /// publish (one persistence barrier, one writer store). Attributes
    /// the served count to `shard` (folded modulo [`NET_SHARDS`]) and
    /// feeds the batch-size histogram — samples are *response counts*,
    /// not nanoseconds, so read its quantiles as "responses per publish".
    #[inline]
    pub fn record_net_batch(&self, shard: usize, responses: u64) {
        #[cfg(feature = "metrics")]
        {
            self.net_shard_requests[shard % NET_SHARDS].fetch_add(responses, Ordering::Relaxed);
            self.net_tx_batches.fetch_add(1, Ordering::Relaxed);
            self.net_tx_batched_responses.fetch_add(responses, Ordering::Relaxed);
            self.tx_batch.record(responses);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (shard, responses);
    }

    /// Records one checkpoint-round delta shipped to replication peers.
    #[inline]
    pub fn record_repl_ship(&self, records: u64, pages: u64, bytes: u64) {
        #[cfg(feature = "metrics")]
        {
            self.repl_rounds_shipped.fetch_add(1, Ordering::Relaxed);
            self.repl_records_shipped.fetch_add(records, Ordering::Relaxed);
            self.repl_pages_shipped.fetch_add(pages, Ordering::Relaxed);
            self.repl_bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (records, pages, bytes);
    }

    /// Records one round acknowledgement received from a replica.
    #[inline]
    pub fn record_repl_ack(&self) {
        #[cfg(feature = "metrics")]
        self.repl_acks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one full-snapshot resync (requested by a replica after a
    /// delta gap or corrupt frame, served by the primary).
    #[inline]
    pub fn record_repl_resync(&self) {
        #[cfg(feature = "metrics")]
        self.repl_resyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one delta frame quarantined by a replica (`Corrupt` ring
    /// slot or payload CRC mismatch — never a panic, always a resync).
    #[inline]
    pub fn record_repl_quarantine(&self) {
        #[cfg(feature = "metrics")]
        self.repl_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the primary entering degraded mode (replication quorum
    /// lost; new write acks are shed until it returns).
    #[inline]
    pub fn record_repl_degraded(&self) {
        #[cfg(feature = "metrics")]
        self.repl_degraded_entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the replication gauges: the highest quorum-durable round
    /// and the primary's lag behind it (`committed_round − durable_round`).
    #[inline]
    pub fn set_repl_gauges(&self, acked_round: u64, lag: u64) {
        #[cfg(feature = "metrics")]
        {
            self.repl_acked_round.store(acked_round, Ordering::Relaxed);
            self.repl_lag.store(lag, Ordering::Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (acked_round, lag);
    }

    /// Records one committed transaction and its begin-to-commit latency.
    #[inline]
    pub fn record_txn_commit(&self, latency_ns: u64) {
        #[cfg(feature = "metrics")]
        {
            self.txn_commits.fetch_add(1, Ordering::Relaxed);
            self.txn_latency.record(latency_ns);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = latency_ns;
    }

    /// Records one aborted transaction (first-committer-wins validation
    /// failure, or a fatal store error at commit).
    #[inline]
    pub fn record_txn_abort(&self) {
        #[cfg(feature = "metrics")]
        self.txn_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one client retry of a previously conflicted transaction
    /// (a begin frame carrying the retry flag).
    #[inline]
    pub fn record_txn_retry(&self) {
        #[cfg(feature = "metrics")]
        self.txn_conflict_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the transaction durability gauge: the highest commit
    /// sequence covered by a committed checkpoint round.
    #[inline]
    pub fn set_txn_durable(&self, seq: u64) {
        #[cfg(feature = "metrics")]
        self.txn_durable_seq.store(seq, Ordering::Relaxed);
        #[cfg(not(feature = "metrics"))]
        let _ = seq;
    }

    /// The stop-the-world pause histogram.
    pub fn pause_histogram(&self) -> &PauseHistogram {
        &self.pause
    }

    /// Snapshot of the registry-owned fields.
    ///
    /// Fields sourced from other crates (kernel fault counters, device
    /// `MemStats`, allocator journal) are zero here; the `System` facade in
    /// `treesls` fills them in.
    pub fn snapshot(&self) -> MetricsSnapshot {
        #[cfg(feature = "metrics")]
        {
            let l = |a: &AtomicU64| a.load(Ordering::Relaxed);
            MetricsSnapshot {
                checkpoints: l(&self.checkpoints),
                restores: l(&self.restores),
                hybrid_migrated_in: l(&self.hybrid_migrated_in),
                hybrid_sac_copies: l(&self.hybrid_sac_copies),
                hybrid_evicted: l(&self.hybrid_evicted),
                backup_pages_even: l(&self.backup_pages_even),
                backup_pages_odd: l(&self.backup_pages_odd),
                ring_publishes: l(&self.ring_publishes),
                ring_depth: l(&self.ring_depth),
                ring_visible_lag: l(&self.ring_visible_lag),
                tree_full_walks: l(&self.tree_full_walks),
                tree_dirty_walks: l(&self.tree_dirty_walks),
                tree_dirty_drained: l(&self.tree_dirty_drained),
                tree_copied: l(&self.tree_copied),
                tree_offloaded: l(&self.tree_offloaded),
                tree_tombstoned: l(&self.tree_tombstoned),
                dirty_queue_depth: l(&self.dirty_queue_depth),
                shard_contention: l(&self.shard_contention),
                quiesced_cores: l(&self.quiesced_cores),
                epoch_conflicts: l(&self.epoch_conflicts),
                epoch_flips: l(&self.epoch_flips),
                inline_log_captures: l(&self.inline_log_captures),
                inline_log_bytes: l(&self.inline_log_bytes),
                concurrent_copy_ns: l(&self.concurrent_copy_ns),
                net_requests: l(&self.net_requests),
                net_sheds: l(&self.net_sheds),
                net_rearms: l(&self.net_rearms),
                net_faults_dropped: l(&self.net_faults_dropped),
                net_faults_duplicated: l(&self.net_faults_duplicated),
                net_faults_reordered: l(&self.net_faults_reordered),
                net_visible_lag_max: l(&self.net_visible_lag_max),
                net_visible_lag_sum: l(&self.net_visible_lag_sum),
                net_rx_occupancy_hwm: l(&self.net_rx_occupancy_hwm),
                net_tx_occupancy_hwm: l(&self.net_tx_occupancy_hwm),
                net_shard_requests: std::array::from_fn(|i| l(&self.net_shard_requests[i])),
                net_tx_batches: l(&self.net_tx_batches),
                net_tx_batched_responses: l(&self.net_tx_batched_responses),
                tx_batch: self.tx_batch.stats(),
                repl_rounds_shipped: l(&self.repl_rounds_shipped),
                repl_records_shipped: l(&self.repl_records_shipped),
                repl_pages_shipped: l(&self.repl_pages_shipped),
                repl_bytes_shipped: l(&self.repl_bytes_shipped),
                repl_acks: l(&self.repl_acks),
                repl_resyncs: l(&self.repl_resyncs),
                repl_quarantined: l(&self.repl_quarantined),
                repl_degraded_entries: l(&self.repl_degraded_entries),
                repl_acked_round: l(&self.repl_acked_round),
                repl_lag: l(&self.repl_lag),
                txn_commits: l(&self.txn_commits),
                txn_aborts: l(&self.txn_aborts),
                txn_conflict_retries: l(&self.txn_conflict_retries),
                txn_durable_seq: l(&self.txn_durable_seq),
                txn_latency: self.txn_latency.stats(),
                pause: self.pause.stats(),
                ..MetricsSnapshot::default()
            }
        }
        #[cfg(not(feature = "metrics"))]
        MetricsSnapshot::default()
    }
}

/// Point-in-time plain-value view of the whole stack's telemetry.
///
/// Registry-owned fields come from [`MetricsRegistry::snapshot`]; the
/// remaining sections (faults, NVM traffic, allocator journal) are filled
/// by the `System` facade, which can see those crates. All counters are
/// cumulative; use [`since`](Self::since) for interval deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Checkpoints committed.
    pub checkpoints: u64,
    /// Whole-system restores completed.
    pub restores: u64,
    /// Pages migrated into DRAM by hybrid copy.
    pub hybrid_migrated_in: u64,
    /// Stop-and-copy page copies performed by hybrid copy.
    pub hybrid_sac_copies: u64,
    /// Idle pages evicted from DRAM by hybrid copy.
    pub hybrid_evicted: u64,
    /// Backup pages written under even global versions.
    pub backup_pages_even: u64,
    /// Backup pages written under odd global versions.
    pub backup_pages_odd: u64,
    /// Ext-sync ring requests published.
    pub ring_publishes: u64,
    /// Gauge: ring entries written but not yet consumed.
    pub ring_depth: u64,
    /// Gauge: ring entries written but not yet externally visible.
    pub ring_visible_lag: u64,
    /// Checkpoint rounds that walked the whole capability tree.
    pub tree_full_walks: u64,
    /// Checkpoint rounds that walked only the dirty queue.
    pub tree_dirty_walks: u64,
    /// Dirty-queue entries drained across all walks.
    pub tree_dirty_drained: u64,
    /// Backup records (re)written by tree walks.
    pub tree_copied: u64,
    /// Backup records built by offloaded (non-leader) cores.
    pub tree_offloaded: u64,
    /// ORoots tombstoned by the epoch/refcount sweep.
    pub tree_tombstoned: u64,
    /// Gauge: dirty-queue ids pending after the last walk drained it.
    pub dirty_queue_depth: u64,
    /// Gauge: cumulative sharded-store lock contention events.
    pub shard_contention: u64,
    /// Gauge: cores parked by the last stop-the-world round (partial
    /// quiescence stops only dirty-owning cores).
    pub quiesced_cores: u64,
    /// Epoch-fence conflict captures by free cores during partial pauses.
    pub epoch_conflicts: u64,
    /// Epoch-concurrent rounds: O(1) flips whose copy phase ran with
    /// mutators live.
    pub epoch_flips: u64,
    /// In-line undo records appended instead of whole-page captures.
    pub inline_log_captures: u64,
    /// Encoded bytes appended to in-line undo logs.
    pub inline_log_bytes: u64,
    /// Gauge: nanoseconds the last round spent copying concurrently with
    /// mutators (outside the stop window).
    pub concurrent_copy_ns: u64,
    /// Requests admitted by virtual NICs.
    pub net_requests: u64,
    /// Requests shed by NIC admission control (`Busy` replies).
    pub net_sheds: u64,
    /// Queue doorbells re-armed by NIC restore callbacks.
    pub net_rearms: u64,
    /// Packets dropped by the network fault model.
    pub net_faults_dropped: u64,
    /// Packets duplicated by the network fault model.
    pub net_faults_duplicated: u64,
    /// Packets reordered by the network fault model.
    pub net_faults_reordered: u64,
    /// Gauge: worst per-queue `writer − visible_writer` at the last
    /// visibility barrier.
    pub net_visible_lag_max: u64,
    /// Gauge: summed `writer − visible_writer` across all queues at the
    /// last visibility barrier.
    pub net_visible_lag_sum: u64,
    /// High-water mark of RX ring occupancy across all queues.
    pub net_rx_occupancy_hwm: u64,
    /// High-water mark of TX ring occupancy across all queues.
    pub net_tx_occupancy_hwm: u64,
    /// Requests served per service shard (index modulo [`NET_SHARDS`]).
    pub net_shard_requests: [u64; NET_SHARDS],
    /// Round-batched TX publishes (one flush + one writer store each).
    pub net_tx_batches: u64,
    /// Responses released across all batched publishes.
    pub net_tx_batched_responses: u64,
    /// Distribution of responses per TX publish (samples are counts, not
    /// nanoseconds).
    pub tx_batch: PauseStats,
    /// Checkpoint-round deltas shipped to replication peers.
    pub repl_rounds_shipped: u64,
    /// Backup records streamed to replication peers.
    pub repl_records_shipped: u64,
    /// Backup page images streamed to replication peers.
    pub repl_pages_shipped: u64,
    /// Wire bytes streamed to replication peers.
    pub repl_bytes_shipped: u64,
    /// Round acknowledgements received from replicas.
    pub repl_acks: u64,
    /// Full-snapshot resyncs served after delta gaps or corruption.
    pub repl_resyncs: u64,
    /// Delta frames quarantined by replicas (corrupt slot / CRC mismatch).
    pub repl_quarantined: u64,
    /// Times the primary entered degraded mode (quorum lost).
    pub repl_degraded_entries: u64,
    /// Gauge: highest round durable on the configured quorum.
    pub repl_acked_round: u64,
    /// Gauge: primary's committed round minus the quorum-durable round.
    pub repl_lag: u64,
    /// Transactions committed (validation passed, publication flipped).
    pub txn_commits: u64,
    /// Transactions aborted (conflict or fatal store error at commit).
    pub txn_aborts: u64,
    /// Client retries of previously conflicted transactions.
    pub txn_conflict_retries: u64,
    /// Gauge: highest commit sequence covered by a committed checkpoint.
    pub txn_durable_seq: u64,
    /// Begin-to-commit latency distribution for committed transactions.
    pub txn_latency: PauseStats,
    /// Stop-the-world pause distribution.
    pub pause: PauseStats,
    /// Copy-on-write page faults taken (kernel).
    pub write_faults: u64,
    /// Minor (mapping-only) faults taken (kernel).
    pub minor_faults: u64,
    /// Pages copied by CoW fault handling (kernel).
    pub cow_copies: u64,
    /// Bytes written to the NVM device.
    pub nvm_bytes_written: u64,
    /// Bytes read from the NVM device.
    pub nvm_bytes_read: u64,
    /// Whole-page copies landing on the NVM device.
    pub nvm_page_copies: u64,
    /// Gauge: high-water mark of allocator undo-journal records per
    /// transaction.
    pub journal_high_water: u64,
    /// Allocator-journal records truncated by the last recovery.
    pub journal_truncated: u64,
}

impl MetricsSnapshot {
    /// Field-wise delta `self − earlier` for counters; gauges
    /// (`ring_depth`, `ring_visible_lag`, `journal_high_water`) and the
    /// cumulative `pause` summary are carried from `self`.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            checkpoints: self.checkpoints - earlier.checkpoints,
            restores: self.restores - earlier.restores,
            hybrid_migrated_in: self.hybrid_migrated_in - earlier.hybrid_migrated_in,
            hybrid_sac_copies: self.hybrid_sac_copies - earlier.hybrid_sac_copies,
            hybrid_evicted: self.hybrid_evicted - earlier.hybrid_evicted,
            backup_pages_even: self.backup_pages_even - earlier.backup_pages_even,
            backup_pages_odd: self.backup_pages_odd - earlier.backup_pages_odd,
            ring_publishes: self.ring_publishes - earlier.ring_publishes,
            ring_depth: self.ring_depth,
            ring_visible_lag: self.ring_visible_lag,
            tree_full_walks: self.tree_full_walks - earlier.tree_full_walks,
            tree_dirty_walks: self.tree_dirty_walks - earlier.tree_dirty_walks,
            tree_dirty_drained: self.tree_dirty_drained - earlier.tree_dirty_drained,
            tree_copied: self.tree_copied - earlier.tree_copied,
            tree_offloaded: self.tree_offloaded - earlier.tree_offloaded,
            tree_tombstoned: self.tree_tombstoned - earlier.tree_tombstoned,
            dirty_queue_depth: self.dirty_queue_depth,
            shard_contention: self.shard_contention,
            quiesced_cores: self.quiesced_cores,
            epoch_conflicts: self.epoch_conflicts - earlier.epoch_conflicts,
            epoch_flips: self.epoch_flips - earlier.epoch_flips,
            inline_log_captures: self.inline_log_captures - earlier.inline_log_captures,
            inline_log_bytes: self.inline_log_bytes - earlier.inline_log_bytes,
            concurrent_copy_ns: self.concurrent_copy_ns,
            net_requests: self.net_requests - earlier.net_requests,
            net_sheds: self.net_sheds - earlier.net_sheds,
            net_rearms: self.net_rearms - earlier.net_rearms,
            net_faults_dropped: self.net_faults_dropped - earlier.net_faults_dropped,
            net_faults_duplicated: self.net_faults_duplicated - earlier.net_faults_duplicated,
            net_faults_reordered: self.net_faults_reordered - earlier.net_faults_reordered,
            net_visible_lag_max: self.net_visible_lag_max,
            net_visible_lag_sum: self.net_visible_lag_sum,
            net_rx_occupancy_hwm: self.net_rx_occupancy_hwm,
            net_tx_occupancy_hwm: self.net_tx_occupancy_hwm,
            net_shard_requests: std::array::from_fn(|i| {
                self.net_shard_requests[i] - earlier.net_shard_requests[i]
            }),
            net_tx_batches: self.net_tx_batches - earlier.net_tx_batches,
            net_tx_batched_responses: self.net_tx_batched_responses
                - earlier.net_tx_batched_responses,
            tx_batch: self.tx_batch,
            repl_rounds_shipped: self.repl_rounds_shipped - earlier.repl_rounds_shipped,
            repl_records_shipped: self.repl_records_shipped - earlier.repl_records_shipped,
            repl_pages_shipped: self.repl_pages_shipped - earlier.repl_pages_shipped,
            repl_bytes_shipped: self.repl_bytes_shipped - earlier.repl_bytes_shipped,
            repl_acks: self.repl_acks - earlier.repl_acks,
            repl_resyncs: self.repl_resyncs - earlier.repl_resyncs,
            repl_quarantined: self.repl_quarantined - earlier.repl_quarantined,
            repl_degraded_entries: self.repl_degraded_entries - earlier.repl_degraded_entries,
            repl_acked_round: self.repl_acked_round,
            repl_lag: self.repl_lag,
            txn_commits: self.txn_commits - earlier.txn_commits,
            txn_aborts: self.txn_aborts - earlier.txn_aborts,
            txn_conflict_retries: self.txn_conflict_retries - earlier.txn_conflict_retries,
            txn_durable_seq: self.txn_durable_seq,
            txn_latency: self.txn_latency,
            pause: self.pause,
            write_faults: self.write_faults - earlier.write_faults,
            minor_faults: self.minor_faults - earlier.minor_faults,
            cow_copies: self.cow_copies - earlier.cow_copies,
            nvm_bytes_written: self.nvm_bytes_written - earlier.nvm_bytes_written,
            nvm_bytes_read: self.nvm_bytes_read - earlier.nvm_bytes_read,
            nvm_page_copies: self.nvm_page_copies - earlier.nvm_page_copies,
            journal_high_water: self.journal_high_water,
            journal_truncated: self.journal_truncated,
        }
    }

    /// Renders the snapshot as a JSON object, grouped by subsystem.
    pub fn to_json(&self) -> Json {
        let u = Json::from;
        Json::Obj(vec![
            (
                "checkpoint".into(),
                Json::Obj(vec![
                    ("checkpoints".into(), u(self.checkpoints)),
                    ("restores".into(), u(self.restores)),
                    ("quiesced_cores".into(), u(self.quiesced_cores)),
                    ("epoch_conflicts".into(), u(self.epoch_conflicts)),
                    ("epoch_flips".into(), u(self.epoch_flips)),
                    ("inline_log_captures".into(), u(self.inline_log_captures)),
                    ("inline_log_bytes".into(), u(self.inline_log_bytes)),
                    ("concurrent_copy_ns".into(), u(self.concurrent_copy_ns)),
                    ("pause".into(), self.pause.to_json()),
                ]),
            ),
            (
                "hybrid".into(),
                Json::Obj(vec![
                    ("migrated_in".into(), u(self.hybrid_migrated_in)),
                    ("sac_copies".into(), u(self.hybrid_sac_copies)),
                    ("evicted".into(), u(self.hybrid_evicted)),
                ]),
            ),
            (
                "backup_pages".into(),
                Json::Obj(vec![
                    ("even_generation".into(), u(self.backup_pages_even)),
                    ("odd_generation".into(), u(self.backup_pages_odd)),
                ]),
            ),
            (
                "extsync".into(),
                Json::Obj(vec![
                    ("publishes".into(), u(self.ring_publishes)),
                    ("ring_depth".into(), u(self.ring_depth)),
                    ("visible_lag".into(), u(self.ring_visible_lag)),
                ]),
            ),
            (
                "tree_walk".into(),
                Json::Obj(vec![
                    ("full_walks".into(), u(self.tree_full_walks)),
                    ("dirty_walks".into(), u(self.tree_dirty_walks)),
                    ("dirty_drained".into(), u(self.tree_dirty_drained)),
                    ("records_copied".into(), u(self.tree_copied)),
                    ("records_offloaded".into(), u(self.tree_offloaded)),
                    ("oroots_tombstoned".into(), u(self.tree_tombstoned)),
                    ("dirty_queue_depth".into(), u(self.dirty_queue_depth)),
                    ("shard_contention".into(), u(self.shard_contention)),
                ]),
            ),
            (
                "net".into(),
                Json::Obj(vec![
                    ("requests".into(), u(self.net_requests)),
                    ("sheds".into(), u(self.net_sheds)),
                    ("rearms".into(), u(self.net_rearms)),
                    ("faults_dropped".into(), u(self.net_faults_dropped)),
                    ("faults_duplicated".into(), u(self.net_faults_duplicated)),
                    ("faults_reordered".into(), u(self.net_faults_reordered)),
                    ("visible_lag_max".into(), u(self.net_visible_lag_max)),
                    ("visible_lag_sum".into(), u(self.net_visible_lag_sum)),
                    ("rx_occupancy_hwm".into(), u(self.net_rx_occupancy_hwm)),
                    ("tx_occupancy_hwm".into(), u(self.net_tx_occupancy_hwm)),
                    (
                        "shard_requests".into(),
                        Json::Arr(self.net_shard_requests.iter().map(|&c| u(c)).collect()),
                    ),
                    ("tx_batches".into(), u(self.net_tx_batches)),
                    ("tx_batched_responses".into(), u(self.net_tx_batched_responses)),
                    ("tx_batch".into(), self.tx_batch.to_json()),
                ]),
            ),
            (
                "repl".into(),
                Json::Obj(vec![
                    ("rounds_shipped".into(), u(self.repl_rounds_shipped)),
                    ("records_shipped".into(), u(self.repl_records_shipped)),
                    ("pages_shipped".into(), u(self.repl_pages_shipped)),
                    ("bytes_shipped".into(), u(self.repl_bytes_shipped)),
                    ("acks".into(), u(self.repl_acks)),
                    ("resyncs".into(), u(self.repl_resyncs)),
                    ("quarantined".into(), u(self.repl_quarantined)),
                    ("degraded_entries".into(), u(self.repl_degraded_entries)),
                    ("acked_round".into(), u(self.repl_acked_round)),
                    ("lag".into(), u(self.repl_lag)),
                ]),
            ),
            (
                "txn".into(),
                Json::Obj(vec![
                    ("commits".into(), u(self.txn_commits)),
                    ("aborts".into(), u(self.txn_aborts)),
                    ("conflict_retries".into(), u(self.txn_conflict_retries)),
                    ("durable_seq".into(), u(self.txn_durable_seq)),
                    ("latency".into(), self.txn_latency.to_json()),
                ]),
            ),
            (
                "faults".into(),
                Json::Obj(vec![
                    ("write_faults".into(), u(self.write_faults)),
                    ("minor_faults".into(), u(self.minor_faults)),
                    ("cow_copies".into(), u(self.cow_copies)),
                ]),
            ),
            (
                "nvm".into(),
                Json::Obj(vec![
                    ("bytes_written".into(), u(self.nvm_bytes_written)),
                    ("bytes_read".into(), u(self.nvm_bytes_read)),
                    ("page_copies".into(), u(self.nvm_page_copies)),
                ]),
            ),
            (
                "alloc_journal".into(),
                Json::Obj(vec![
                    ("high_water_records".into(), u(self.journal_high_water)),
                    ("truncated_records".into(), u(self.journal_truncated)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "metrics")]
    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = PauseHistogram::new();
        for _ in 0..99 {
            h.record(1000); // bucket 10, upper bound 1023
        }
        h.record(1_000_000); // bucket 20, upper bound 1048575
        let s = h.stats();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 1023);
        assert_eq!(s.p95_ns, 1023);
        assert_eq!(s.p99_ns, 1023);
        assert_eq!(s.max_ns, 1_000_000);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn histogram_p99_catches_the_tail() {
        let h = PauseHistogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(60_000);
        }
        let s = h.stats();
        assert_eq!(s.p50_ns, 127);
        assert!(s.p99_ns >= 60_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = PauseHistogram::new().stats();
        assert_eq!(s, PauseStats::default());
    }

    #[test]
    fn registry_snapshot_and_delta() {
        let r = MetricsRegistry::new();
        r.record_checkpoint(500_000);
        r.record_hybrid(3, 2, 1);
        r.record_backup_page(4);
        r.record_backup_page(5);
        r.record_ring_publish();
        r.set_ring_gauges(7, 2);
        r.record_net_request();
        r.record_net_shed();
        r.record_net_barrier(3, 5, 7, 9);
        r.record_net_barrier(2, 4, 6, 11);
        r.set_quiesced_cores(3);
        r.record_epoch_conflict();
        r.record_epoch_flip();
        r.record_inline_log(24);
        r.record_inline_log(40);
        r.set_concurrent_copy_ns(12_345);
        r.record_net_batch(2, 10);
        r.record_net_batch(2, 6);
        r.record_net_batch(17, 4); // folds to shard 1
        r.record_txn_commit(2_000);
        r.record_txn_commit(3_000);
        r.record_txn_abort();
        r.record_txn_retry();
        r.set_txn_durable(7);
        let a = r.snapshot();
        if cfg!(feature = "metrics") {
            assert_eq!(a.checkpoints, 1);
            assert_eq!(a.hybrid_migrated_in, 3);
            assert_eq!(a.backup_pages_even, 1);
            assert_eq!(a.backup_pages_odd, 1);
            assert_eq!(a.ring_depth, 7);
            assert_eq!(a.net_requests, 1);
            assert_eq!(a.net_sheds, 1);
            // Lag gauges carry the latest barrier; occupancies are
            // high-water marks across barriers.
            assert_eq!(a.net_visible_lag_max, 2);
            assert_eq!(a.net_visible_lag_sum, 4);
            assert_eq!(a.net_rx_occupancy_hwm, 7);
            assert_eq!(a.net_tx_occupancy_hwm, 11);
            assert_eq!(a.quiesced_cores, 3);
            assert_eq!(a.epoch_conflicts, 1);
            assert_eq!(a.epoch_flips, 1);
            assert_eq!(a.inline_log_captures, 2);
            assert_eq!(a.inline_log_bytes, 64);
            assert_eq!(a.concurrent_copy_ns, 12_345);
            assert_eq!(a.pause.count, 1);
            assert_eq!(a.net_shard_requests[2], 16);
            assert_eq!(a.net_shard_requests[1], 4);
            assert_eq!(a.net_tx_batches, 3);
            assert_eq!(a.net_tx_batched_responses, 20);
            // Batch histogram samples are response counts.
            assert_eq!(a.tx_batch.count, 3);
            assert_eq!(a.tx_batch.max_ns, 10);
            assert_eq!(a.txn_commits, 2);
            assert_eq!(a.txn_aborts, 1);
            assert_eq!(a.txn_conflict_retries, 1);
            assert_eq!(a.txn_durable_seq, 7);
            assert_eq!(a.txn_latency.count, 2);
        } else {
            assert_eq!(a, MetricsSnapshot::default());
        }
        r.record_checkpoint(600_000);
        r.record_net_batch(2, 8);
        let d = r.snapshot().since(&a);
        if cfg!(feature = "metrics") {
            assert_eq!(d.checkpoints, 1);
            assert_eq!(d.hybrid_migrated_in, 0);
            assert_eq!(d.net_shard_requests[2], 8);
            assert_eq!(d.net_shard_requests[1], 0);
            assert_eq!(d.net_tx_batches, 1);
        }
    }

    #[test]
    fn snapshot_json_has_all_sections() {
        let j = MetricsSnapshot::default().to_json();
        for key in [
            "checkpoint",
            "hybrid",
            "backup_pages",
            "extsync",
            "tree_walk",
            "net",
            "repl",
            "txn",
            "faults",
            "nvm",
            "alloc_journal",
        ] {
            assert!(j.get(key).is_some(), "missing section {key}");
        }
    }
}
