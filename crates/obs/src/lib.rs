//! Whole-system observability for the TreeSLS reproduction.
//!
//! The paper's evaluation (§7) is entirely about *measuring* the 1 ms
//! checkpoint loop; this crate is the single place where the stack's
//! telemetry converges. It provides three independent pieces:
//!
//! 1. **[`FlightRecorder`]** — a fixed-size, CRC-tagged event ring that
//!    lives *on the emulated NVM device* (inside the metadata arena) and
//!    therefore survives crashes. The kernel, checkpoint manager, and
//!    external-synchrony layer append typed [`FlightEvent`]s (checkpoint
//!    begin/commit with per-phase durations, CoW faults, hybrid-copy
//!    decisions, restore, quarantine, journal truncation, ring publish);
//!    after a crash, recovery replays the surviving tail so post-crash
//!    forensics show the last events before the cut. The design follows the
//!    spirit of In-Cache-Line Logging (arXiv:1902.00660): each record is a
//!    single cache line, so appends are one atomic-or-absent NVM write.
//!
//! 2. **[`MetricsRegistry`]** — relaxed-atomic counters and a log-bucketed
//!    stop-the-world pause histogram, aggregated with the existing
//!    per-crate statistics into one plain-value [`MetricsSnapshot`] with a
//!    [`since`](MetricsSnapshot::since) delta API. Recording is
//!    feature-gated (`metrics`, on by default): with the feature off every
//!    record method compiles to an empty inline stub.
//!
//! 3. **[`Json`]** — a dependency-free JSON value model (emitter and
//!    parser) used by `treesls-bench` to write schema-versioned
//!    `BENCH_<name>.json` files and by the CI schema validator to check
//!    them. The workspace is offline; this replaces serde.
//!
//! See `OBSERVABILITY.md` at the repository root for the NVM layout, the
//! event taxonomy, and the crash-survival argument.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod json;
mod metrics;
mod recorder;

pub use json::{Json, JsonError};
pub use metrics::{MetricsRegistry, MetricsSnapshot, PauseHistogram, PauseStats, NET_SHARDS};
pub use recorder::{EventKind, FlightEvent, FlightRecorder, SLOT_LEN};
