//! Persistent flight recorder: a CRC-tagged event ring on NVM.
//!
//! The recorder occupies a dedicated region of the device's metadata arena
//! (carved out by `AllocLayout` in `treesls-pmem-alloc` and formatted /
//! recovered by the kernel's `Persistent` facade). It is an append-only
//! ring of fixed 64-byte slots — one cache line each — with **no persisted
//! head pointer**: recovery reconstructs the live tail purely by scanning
//! slot CRCs and sequence numbers, so there is no pointer word whose torn
//! update could orphan or mis-order the log.
//!
//! # Slot encoding (64 bytes, little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  seq      monotonically increasing, 1-based; 0 = never written
//!      8     2  kind     event discriminant (see [`EventKind`])
//!     10     2  reserved must be zero
//!     12     4  crc      CRC-32 over bytes [0,12) ++ [16,64)
//!     16    48  payload  six u64 words, meaning depends on `kind`
//! ```
//!
//! # Crash-survival argument
//!
//! An append is a single 64-byte `MetaArena::write_bytes` at a 64-byte
//! aligned offset, i.e. exactly one cache line. Under the device's
//! persistence models a store either applies in full, applies as a prefix
//! torn at a cache-line boundary (impossible here — there is no interior
//! boundary), or is dropped from the ADR reorder window. A partially
//! persisted or bit-flipped slot fails its CRC and is discarded; a dropped
//! or never-written slot holds stale bytes whose embedded `seq` no longer
//! chains to the maximum, so [`FlightRecorder::recover`] truncates the tail
//! there. In every case recovery yields a *contiguous* run of intact
//! events ending at the highest surviving sequence number — a torn tail
//! event is detected and dropped, never mis-parsed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use treesls_nvm::{crc32, NvmDevice};

/// Size of one flight-recorder slot in bytes (one cache line).
///
/// `AllocLayout` in `treesls-pmem-alloc` sizes the recorder region as
/// `slots * SLOT_LEN` and aligns it to `SLOT_LEN` so every slot write is a
/// single-cache-line store (the atomic-or-absent property above).
pub const SLOT_LEN: usize = 64;

/// Offset of the CRC word within a slot.
const CRC_OFF: usize = 12;
/// Offset of the payload within a slot.
const PAYLOAD_OFF: usize = 16;

/// Typed discriminants for flight-recorder events.
///
/// The on-NVM encoding is the raw `u16` value; unknown values decode to a
/// raw [`FlightEvent`] whose [`event_kind`](FlightEvent::event_kind) is
/// `None`, so adding kinds never breaks recovery of old logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// A checkpoint round is starting (recorded just before stop-the-world).
    /// Payload: `[version_being_taken, active_page_list_len, 0, 0, 0, 0]`.
    CkptBegin = 1,
    /// A checkpoint round committed. Payload: `[version, ipi_ns,
    /// cap_tree_ns, others_ns, hybrid_busy_ns, total_pause_ns]`.
    CkptCommit = 2,
    /// A copy-on-write page fault copied a backup page. Payload:
    /// `[backup_frame, version_tag, runtime_frame, 0, 0, 0]`.
    CowFault = 3,
    /// Hybrid copy migrated a hot page into DRAM. Payload:
    /// `[home_frame, inflight_version, dram_id, 0, 0, 0]`.
    HybridMigrateIn = 4,
    /// Hybrid copy performed a stop-and-copy page copy on NVM. Payload:
    /// `[backup_frame, inflight_version, dram_id, 0, 0, 0]`.
    HybridSacCopy = 5,
    /// Hybrid copy evicted an idle page from DRAM back to NVM. Payload:
    /// `[nvm_frame, inflight_version, 0, 0, 0, 0]`.
    HybridEvict = 6,
    /// A whole-system restore completed. Payload: `[restored_version,
    /// objects_restored, pages_restored, pages_fell_back, 0, 0]`.
    Restore = 7,
    /// Restore quarantined an unrecoverable backup page. Payload:
    /// `[oroot, page_index, frame, 0, 0, 0]`.
    Quarantine = 8,
    /// Allocator-journal records were truncated during recovery. Payload:
    /// `[records_truncated, 0, 0, 0, 0, 0]`.
    JournalTruncate = 9,
    /// External synchrony published buffered ring entries at a checkpoint.
    /// Payload: `[version, writer, visible_writer, ack, 0, 0]`.
    RingPublish = 10,
    /// Free-form marker recorded by tests and tools. Payload is opaque.
    Marker = 11,
    /// One capability-tree walk finished inside the pause. Payload:
    /// `[inflight_version, full_walk(0|1), dirty_drained, records_copied,
    /// records_offloaded, oroots_tombstoned]`.
    TreeWalk = 12,
    /// A virtual NIC released all of its queues' buffered responses under
    /// one commit (the cross-queue visibility barrier). Payload:
    /// `[version, queues, released_msgs, visible_lag_max, visible_lag_sum,
    /// tx_depth_sum]`.
    NetBarrier = 13,
    /// A virtual NIC re-armed its queue doorbells after a restore
    /// (requests survived in the eternal RX rings; the interrupt edges did
    /// not). Payload: `[restored_version, queues, rearmed, truncated_msgs,
    /// 0, 0]`.
    NetRearm = 14,
    /// A stop-the-world round resolved its stop set (partial quiescence).
    /// Payload: `[inflight_version, stopped_cores, registered_cores,
    /// owner_mask, full_quiesce(0|1), epoch_conflicts_so_far]`.
    PartialQuiesce = 15,
    /// The replication shipper finished streaming a round to its peers.
    /// Payload: `[round, records, pages, bytes, snapshots, durable_peers]`.
    ReplShip = 16,
    /// A peer's ack advanced. Payload: `[epoch, acked_round, peer, 0, 0, 0]`.
    ReplAck = 17,
    /// The primary switched degraded mode (`entered` = 1 when the quorum
    /// was lost, 0 when it healed). Payload: `[epoch, round, entered(0|1),
    /// durable_peers, 0, 0]`.
    ReplDegraded = 18,
    /// A peer requested a full-snapshot resync after a delta gap or a
    /// quarantined frame. Payload: `[epoch, peer_applied_round, peer, 0, 0, 0]`.
    ReplResync = 19,
    /// An epoch-concurrent round flipped its epoch: the O(1) stop window
    /// ended and the drain/copy phase began with mutators live. Payload:
    /// `[inflight_version, fence_round, cut_depth, owner_mask,
    /// flip_pause_ns, 0]`.
    EpochFlip = 20,
    /// A first conflicting write of the round appended an in-line undo
    /// record instead of taking a whole-page capture. Payload:
    /// `[log_frame, inflight_version, offset, len, log_used_after, 0]`.
    InlineLog = 21,
    /// A multi-key transaction validated and published (its selector flip
    /// landed; durability follows at the covering checkpoint). Payload:
    /// `[commit_seq, txn_id, writes, reads, latency_ns, snapshot_seq]`.
    TxnCommit = 22,
}

impl EventKind {
    /// Decodes a raw on-NVM discriminant.
    pub fn from_u16(v: u16) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::CkptBegin,
            2 => EventKind::CkptCommit,
            3 => EventKind::CowFault,
            4 => EventKind::HybridMigrateIn,
            5 => EventKind::HybridSacCopy,
            6 => EventKind::HybridEvict,
            7 => EventKind::Restore,
            8 => EventKind::Quarantine,
            9 => EventKind::JournalTruncate,
            10 => EventKind::RingPublish,
            11 => EventKind::Marker,
            12 => EventKind::TreeWalk,
            13 => EventKind::NetBarrier,
            14 => EventKind::NetRearm,
            15 => EventKind::PartialQuiesce,
            16 => EventKind::ReplShip,
            17 => EventKind::ReplAck,
            18 => EventKind::ReplDegraded,
            19 => EventKind::ReplResync,
            20 => EventKind::EpochFlip,
            21 => EventKind::InlineLog,
            22 => EventKind::TxnCommit,
            _ => return None,
        })
    }

    /// Stable lower-case name, used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::CkptBegin => "ckpt_begin",
            EventKind::CkptCommit => "ckpt_commit",
            EventKind::CowFault => "cow_fault",
            EventKind::HybridMigrateIn => "hybrid_migrate_in",
            EventKind::HybridSacCopy => "hybrid_sac_copy",
            EventKind::HybridEvict => "hybrid_evict",
            EventKind::Restore => "restore",
            EventKind::Quarantine => "quarantine",
            EventKind::JournalTruncate => "journal_truncate",
            EventKind::RingPublish => "ring_publish",
            EventKind::Marker => "marker",
            EventKind::TreeWalk => "tree_walk",
            EventKind::NetBarrier => "net_barrier",
            EventKind::NetRearm => "net_rearm",
            EventKind::PartialQuiesce => "partial_quiesce",
            EventKind::ReplShip => "repl_ship",
            EventKind::ReplAck => "repl_ack",
            EventKind::ReplDegraded => "repl_degraded",
            EventKind::ReplResync => "repl_resync",
            EventKind::EpochFlip => "epoch_flip",
            EventKind::InlineLog => "inline_log",
            EventKind::TxnCommit => "txn_commit",
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number (1-based; never 0).
    pub seq: u64,
    /// Raw event discriminant as stored on NVM.
    pub kind: u16,
    /// Six payload words; interpretation depends on [`EventKind`].
    pub payload: [u64; 6],
}

impl FlightEvent {
    /// The typed kind, or `None` for a discriminant this build predates.
    pub fn event_kind(&self) -> Option<EventKind> {
        EventKind::from_u16(self.kind)
    }

    /// The kind's stable name, or `"unknown"`.
    pub fn kind_name(&self) -> &'static str {
        self.event_kind().map_or("unknown", EventKind::name)
    }
}

/// Append handle over the on-NVM event ring.
///
/// Cheap to share: appends use an atomic sequence counter and go through
/// the metadata arena's interior mutability, so `&self` suffices and the
/// recorder can live inside the kernel's `Persistent` facade behind an
/// `Arc`. Every slot store ticks the device's crash schedule exactly once,
/// which is what lets `enumerate_crashes` walk cut points *between*
/// individual recorder appends.
#[derive(Debug)]
pub struct FlightRecorder {
    dev: Arc<NvmDevice>,
    off: usize,
    slots: usize,
    next_seq: AtomicU64,
}

impl FlightRecorder {
    /// Bytes of metadata arena consumed by a ring of `slots` slots.
    pub fn region_len(slots: usize) -> usize {
        slots * SLOT_LEN
    }

    /// Formats a fresh (all-invalid) ring at `off` and returns its handle.
    ///
    /// Zeroed slots are unambiguously invalid: the CRC-32 of a zeroed slot
    /// body is non-zero, so a never-written slot can never decode as an
    /// event.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or `off` is not `SLOT_LEN`-aligned (slot
    /// stores must be single cache lines; see the module docs).
    pub fn format(dev: &Arc<NvmDevice>, off: usize, slots: usize) -> Self {
        assert!(slots > 0, "flight recorder needs at least one slot");
        assert_eq!(off % SLOT_LEN, 0, "recorder region must be cache-line aligned");
        let meta = dev.meta();
        meta.zero(off, Self::region_len(slots));
        meta.flush(off, Self::region_len(slots));
        Self { dev: Arc::clone(dev), off, slots, next_seq: AtomicU64::new(1) }
    }

    /// Re-attaches to a ring after a crash or clean shutdown, returning the
    /// handle and the surviving tail of events in sequence order.
    ///
    /// The tail is the longest run of CRC-valid slots with consecutive
    /// sequence numbers ending at the maximum sequence found; anything
    /// older, torn, or bit-flipped is dropped. New appends continue after
    /// the maximum recovered sequence.
    pub fn recover(dev: &Arc<NvmDevice>, off: usize, slots: usize) -> (Self, Vec<FlightEvent>) {
        assert!(slots > 0, "flight recorder needs at least one slot");
        assert_eq!(off % SLOT_LEN, 0, "recorder region must be cache-line aligned");
        let meta = dev.meta();
        let mut valid: Vec<FlightEvent> = Vec::new();
        let mut buf = [0u8; SLOT_LEN];
        for i in 0..slots {
            meta.read_bytes(off + i * SLOT_LEN, &mut buf);
            if let Some(ev) = decode_slot(&buf) {
                valid.push(ev);
            }
        }
        let max_seq = valid.iter().map(|e| e.seq).max().unwrap_or(0);
        let mut tail: Vec<FlightEvent> = Vec::new();
        if max_seq > 0 {
            // Walk backwards from the maximum: the tail ends at the first
            // missing sequence number (a slot that was torn, dropped from
            // the ADR window, overwritten by a newer lap, or corrupted).
            let by_seq: std::collections::HashMap<u64, FlightEvent> =
                valid.into_iter().map(|e| (e.seq, e)).collect();
            let mut seq = max_seq;
            while seq > 0 && tail.len() < slots {
                match by_seq.get(&seq) {
                    Some(ev) => tail.push(*ev),
                    None => break,
                }
                seq -= 1;
            }
            tail.reverse();
        }
        let rec = Self {
            dev: Arc::clone(dev),
            off,
            slots,
            next_seq: AtomicU64::new(max_seq + 1),
        };
        (rec, tail)
    }

    /// Number of slots in the ring.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Byte offset of the ring within the metadata arena.
    ///
    /// The slot holding sequence `seq` lives at
    /// `region_off() + ((seq - 1) % slots()) * SLOT_LEN` — media-fault
    /// tests use this to corrupt a specific event's slot.
    pub fn region_off(&self) -> usize {
        self.off
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Appends one event, overwriting the oldest slot once the ring wraps.
    ///
    /// The append is a single 64-byte store through the metadata arena (one
    /// crash-schedule tick) followed by a flush of the slot's cache line.
    /// No fence is issued here: under eADR the store is durable on apply,
    /// and under ADR the line rides the next global fence (e.g. the
    /// checkpoint commit's persist barrier). Losing the last few
    /// pre-crash events under ADR is an accepted property of a forensic
    /// log — never its corruption, which the CRC rules out.
    pub fn record(&self, kind: EventKind, payload: [u64; 6]) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let slot_off = self.off + ((seq - 1) as usize % self.slots) * SLOT_LEN;
        let mut buf = [0u8; SLOT_LEN];
        buf[0..8].copy_from_slice(&seq.to_le_bytes());
        buf[8..10].copy_from_slice(&(kind as u16).to_le_bytes());
        for (i, w) in payload.iter().enumerate() {
            let o = PAYLOAD_OFF + i * 8;
            buf[o..o + 8].copy_from_slice(&w.to_le_bytes());
        }
        let crc = slot_crc(&buf);
        buf[CRC_OFF..CRC_OFF + 4].copy_from_slice(&crc.to_le_bytes());
        let meta = self.dev.meta();
        meta.write_bytes(slot_off, &buf);
        meta.flush(slot_off, SLOT_LEN);
        seq
    }

    /// Reads back the currently decodable tail without touching the append
    /// cursor — the same scan recovery performs, usable live.
    pub fn tail(&self) -> Vec<FlightEvent> {
        let (_, tail) = Self::recover(&self.dev, self.off, self.slots);
        tail
    }
}

/// CRC-32 over a slot's bytes excluding the CRC word itself.
fn slot_crc(buf: &[u8; SLOT_LEN]) -> u32 {
    treesls_nvm::crc32_update(crc32(&buf[..CRC_OFF]), &buf[PAYLOAD_OFF..])
}

/// Decodes one slot, returning `None` unless the CRC matches and the
/// sequence number is a plausible (non-zero) value.
fn decode_slot(buf: &[u8; SLOT_LEN]) -> Option<FlightEvent> {
    let stored = u32::from_le_bytes(buf[CRC_OFF..CRC_OFF + 4].try_into().expect("crc word"));
    if slot_crc(buf) != stored {
        return None;
    }
    let seq = u64::from_le_bytes(buf[0..8].try_into().expect("seq word"));
    if seq == 0 {
        return None;
    }
    let kind = u16::from_le_bytes(buf[8..10].try_into().expect("kind word"));
    let mut payload = [0u64; 6];
    for (i, w) in payload.iter_mut().enumerate() {
        let o = PAYLOAD_OFF + i * 8;
        *w = u64::from_le_bytes(buf[o..o + 8].try_into().expect("payload word"));
    }
    Some(FlightEvent { seq, kind, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use treesls_nvm::{LatencyModel, NvmDevice};

    fn device(meta_len: usize) -> Arc<NvmDevice> {
        Arc::new(NvmDevice::new(16, meta_len, Arc::new(LatencyModel::disabled())))
    }

    #[test]
    fn roundtrip_through_recovery() {
        let dev = device(4096);
        let rec = FlightRecorder::format(&dev, 0, 8);
        rec.record(EventKind::CkptBegin, [1, 0, 0, 0, 0, 0]);
        rec.record(EventKind::CkptCommit, [1, 10, 20, 30, 40, 100]);
        let (rec2, tail) = FlightRecorder::recover(&dev, 0, 8);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].event_kind(), Some(EventKind::CkptBegin));
        assert_eq!(tail[1].event_kind(), Some(EventKind::CkptCommit));
        assert_eq!(tail[1].payload, [1, 10, 20, 30, 40, 100]);
        assert_eq!(rec2.next_seq(), 3);
    }

    #[test]
    fn empty_ring_recovers_empty() {
        let dev = device(4096);
        FlightRecorder::format(&dev, 0, 8);
        let (rec, tail) = FlightRecorder::recover(&dev, 0, 8);
        assert!(tail.is_empty());
        assert_eq!(rec.next_seq(), 1);
    }

    #[test]
    fn wraparound_keeps_last_slots_events() {
        let dev = device(4096);
        let rec = FlightRecorder::format(&dev, 0, 4);
        for i in 0..10u64 {
            rec.record(EventKind::Marker, [i, 0, 0, 0, 0, 0]);
        }
        let (_, tail) = FlightRecorder::recover(&dev, 0, 4);
        assert_eq!(tail.len(), 4);
        let idx: Vec<u64> = tail.iter().map(|e| e.payload[0]).collect();
        assert_eq!(idx, vec![6, 7, 8, 9]);
        assert_eq!(tail.last().unwrap().seq, 10);
    }

    #[test]
    fn corrupt_tail_slot_is_dropped_not_misparsed() {
        let dev = device(4096);
        let rec = FlightRecorder::format(&dev, 0, 8);
        for i in 0..5u64 {
            rec.record(EventKind::Marker, [i, 0, 0, 0, 0, 0]);
        }
        // Flip one payload bit in the newest slot (seq 5 lives in slot 4).
        dev.flip_meta_bit(4 * SLOT_LEN + 20, 3);
        let (_, tail) = FlightRecorder::recover(&dev, 0, 8);
        assert_eq!(tail.len(), 4);
        assert_eq!(tail.last().unwrap().payload[0], 3);
    }

    #[test]
    fn corrupt_middle_slot_truncates_tail_there() {
        let dev = device(4096);
        let rec = FlightRecorder::format(&dev, 0, 8);
        for i in 0..5u64 {
            rec.record(EventKind::Marker, [i, 0, 0, 0, 0, 0]);
        }
        // Corrupting seq 3 (slot 2) leaves 4 and 5 as the only tail chained
        // to the maximum.
        dev.flip_meta_bit(2 * SLOT_LEN + 1, 0);
        let (_, tail) = FlightRecorder::recover(&dev, 0, 8);
        let idx: Vec<u64> = tail.iter().map(|e| e.payload[0]).collect();
        assert_eq!(idx, vec![3, 4]);
    }

    #[test]
    fn append_continues_after_recovery() {
        let dev = device(4096);
        let rec = FlightRecorder::format(&dev, 0, 8);
        rec.record(EventKind::Marker, [7, 0, 0, 0, 0, 0]);
        let (rec2, _) = FlightRecorder::recover(&dev, 0, 8);
        let seq = rec2.record(EventKind::Marker, [8, 0, 0, 0, 0, 0]);
        assert_eq!(seq, 2);
        let tail = rec2.tail();
        assert_eq!(tail.len(), 2);
    }

    #[test]
    fn unknown_kind_survives_decode() {
        let dev = device(4096);
        let rec = FlightRecorder::format(&dev, 0, 8);
        // Forge a slot with an unknown discriminant by writing through the
        // recorder's own encoding path at the raw level.
        rec.record(EventKind::Marker, [0; 6]);
        let mut buf = [0u8; SLOT_LEN];
        dev.meta().read_bytes(0, &mut buf);
        buf[8..10].copy_from_slice(&999u16.to_le_bytes());
        let crc = super::slot_crc(&buf);
        buf[CRC_OFF..CRC_OFF + 4].copy_from_slice(&crc.to_le_bytes());
        dev.meta().write_bytes(0, &buf);
        let (_, tail) = FlightRecorder::recover(&dev, 0, 8);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].event_kind(), None);
        assert_eq!(tail[0].kind_name(), "unknown");
    }
}
