//! Dependency-free JSON value model, emitter, and parser.
//!
//! The workspace is offline (no serde); this module is what lets the
//! benchmark harness write schema-versioned `BENCH_<name>.json` files and
//! the CI validator parse them back. It implements the full RFC 8259 value
//! grammar with two deliberate simplifications: numbers are `f64`
//! throughout (every value the benches emit fits in the 53-bit exact
//! integer range), and object keys keep insertion order (stable output for
//! diffing).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// Human-readable description of the failure.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Looks up a key in an object; `None` for other variants or missing
    /// keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation, for files meant to be read
    /// and diffed by humans.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a run of plain UTF-8.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { at: start, msg: format!("invalid number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_roundtrips_through_parse() {
        let doc = Json::Obj(vec![
            ("schema_version".into(), Json::from(1u64)),
            ("name".into(), Json::from("fig9a")),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("ratio".into(), Json::Num(0.125)),
            (
                "rows".into(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::from("a"), Json::from(1u64)]),
                    Json::Arr(vec![Json::from("b\n\"x\""), Json::from(2u64)]),
                ]),
            ),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            assert_eq!(Json::parse(&rendered).unwrap(), doc);
        }
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""aA\n\t\\ 😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\n\t\\ 😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("[1 2]").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "a": [1], "neg": -2.5}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-2.5));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("missing"), None);
        assert!(v.as_obj().is_some());
    }

    #[test]
    fn deep_nesting_roundtrips() {
        let mut v = Json::from(0u64);
        for _ in 0..64 {
            v = Json::Arr(vec![v]);
        }
        let r = v.render();
        assert_eq!(Json::parse(&r).unwrap(), v);
    }
}
