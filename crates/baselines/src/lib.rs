//! Baseline systems the paper compares TreeSLS against.
//!
//! * [`linux`] — "Linux": applications run on plain DRAM with no
//!   system-level persistence; the `-WAL` variants add a synchronous
//!   write-ahead log on an emulated Ext4-DAX file, paying a persistence
//!   barrier per write (the Figure 13 `Linux-WAL` configuration).
//! * [`aurora`] — "Aurora": a two-tier single-level store in the style of
//!   Tsalapatis et al. (SOSP'21): runtime state in DRAM, periodic
//!   stop-and-copy checkpoints of dirty pages into a checkpoint buffer
//!   that is then flushed to a storage device taking several milliseconds,
//!   plus the explicit journaling API (`Aurora-API` in Figure 14).
//!
//! Both run the *same* application data structures as TreeSLS (the
//! `treesls-apps` structures are generic over `MemIo`), so measured
//! differences come from the persistence architecture, not the app code.

pub mod aurora;
pub mod linux;

pub use aurora::{AuroraConfig, AuroraSls};
pub use linux::LinuxHost;
