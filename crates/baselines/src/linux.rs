//! The "Linux" baseline: plain DRAM execution with an optional
//! synchronous WAL on emulated Ext4-DAX.
//!
//! `Linux-base` (Figure 13) is just application code on host memory.
//! `Linux-WAL` additionally appends every write operation to a log on the
//! persistent-memory device and issues an `fsync`-equivalent barrier —
//! the "extra write on the critical path" the paper blames for the 64–78 %
//! throughput loss on write-intensive YCSB.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use treesls_apps::testmem::TestMem;
use treesls_extsync::MemIo;
use treesls_kernel::types::KernelError;
use treesls_nvm::LatencyModel;

/// A host ("Linux") process heap with an optional WAL device.
#[derive(Debug)]
pub struct LinuxHost {
    mem: TestMem,
    wal: Mutex<Vec<u8>>,
    wal_enabled: bool,
    latency: Arc<LatencyModel>,
    /// WAL bytes written (diagnostics).
    pub wal_bytes: AtomicU64,
    /// WAL flush barriers issued.
    pub wal_flushes: AtomicU64,
}

impl LinuxHost {
    /// Creates a host heap of `len` bytes.
    ///
    /// `wal_enabled` turns every [`log_write`](Self::log_write) into an
    /// actual log append plus persistence barrier; when disabled the call
    /// is free (the `-base` configurations).
    pub fn new(len: usize, wal_enabled: bool, latency: Arc<LatencyModel>) -> Self {
        Self {
            mem: TestMem::new(len),
            wal: Mutex::new(Vec::new()),
            wal_enabled,
            latency,
            wal_bytes: AtomicU64::new(0),
            wal_flushes: AtomicU64::new(0),
        }
    }

    /// Whether the WAL is on.
    pub fn wal_enabled(&self) -> bool {
        self.wal_enabled
    }

    /// Appends an operation record to the WAL and issues the persistence
    /// barrier (no-op when the WAL is disabled).
    pub fn log_write(&self, record: &[u8]) {
        if !self.wal_enabled {
            return;
        }
        {
            let mut wal = self.wal.lock();
            wal.extend_from_slice(&(record.len() as u32).to_le_bytes());
            wal.extend_from_slice(record);
        }
        self.wal_bytes.fetch_add(record.len() as u64 + 4, Ordering::Relaxed);
        self.wal_flushes.fetch_add(1, Ordering::Relaxed);
        // The WAL lives on the PM device: charge the write plus the sync.
        self.latency.charge_write(record.len() + 4);
        self.latency.charge_flush();
    }

    /// Truncates the WAL (after a snapshot/compaction).
    pub fn truncate_wal(&self) {
        self.wal.lock().clear();
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> usize {
        self.wal.lock().len()
    }
}

impl MemIo for LinuxHost {
    fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
        self.mem.mem_read(addr, buf)
    }
    fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), KernelError> {
        self.mem.mem_write(addr, data)
    }
    fn version(&self) -> u64 {
        0
    }
    fn flush(&self) {
        self.wal_flushes.fetch_add(1, Ordering::Relaxed);
        self.latency.charge_flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesls_apps::hashkv::HashKv;
    use treesls_apps::wire::make_key;

    #[test]
    fn apps_run_on_linux_host() {
        let host = LinuxHost::new(1 << 20, false, Arc::new(LatencyModel::disabled()));
        let t = HashKv::format(&host, 0, 1024, 64).unwrap();
        t.set(&host, &make_key(b"k"), b"v").unwrap();
        assert_eq!(t.get(&host, &make_key(b"k")).unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn wal_accounting() {
        let host = LinuxHost::new(4096, true, Arc::new(LatencyModel::disabled()));
        host.log_write(b"op1");
        host.log_write(b"operation2");
        assert_eq!(host.wal_flushes.load(Ordering::Relaxed), 2);
        assert_eq!(host.wal_bytes.load(Ordering::Relaxed), 3 + 10 + 8);
        assert!(host.wal_len() > 0);
        host.truncate_wal();
        assert_eq!(host.wal_len(), 0);
    }

    #[test]
    fn disabled_wal_is_free() {
        let host = LinuxHost::new(4096, false, Arc::new(LatencyModel::disabled()));
        host.log_write(b"ignored");
        assert_eq!(host.wal_flushes.load(Ordering::Relaxed), 0);
        assert_eq!(host.wal_len(), 0);
    }
}
