//! The Aurora-style two-tier single-level store baseline.
//!
//! Aurora (Tsalapatis et al., SOSP'21) keeps runtime state in DRAM and
//! checkpoints it to fast storage: a brief stop-the-world pause copies
//! dirty pages into DRAM shadow buffers, then background threads flush
//! them to the device — which "takes 5–7 ms to persist the checkpoint",
//! capping the effective checkpoint frequency (§7.5.2 of the TreeSLS
//! paper). The explicit journaling API (`Aurora-API`) gives per-operation
//! persistence at the cost of a synchronous device write per call.
//!
//! This module reproduces those mechanics over an emulated memory +
//! storage pair so the Figure 14 comparison axes are real measured
//! behaviour: pause-time page copying, multi-millisecond persist latency,
//! and per-call journal costs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use treesls_extsync::MemIo;
use treesls_kernel::types::KernelError;
use treesls_nvm::{LatencyModel, PAGE_SIZE};

/// Aurora configuration.
#[derive(Debug, Clone)]
pub struct AuroraConfig {
    /// Heap size in bytes.
    pub mem_len: usize,
    /// Checkpoint interval (the paper sets 5 ms; smaller intervals cannot
    /// help because the persist itself takes `persist_time`).
    pub interval: Duration,
    /// Time to flush a checkpoint to the storage device.
    pub persist_time: Duration,
    /// Per-call latency of the journaling API (a synchronous device
    /// append).
    pub journal_call: Duration,
}

impl Default for AuroraConfig {
    fn default() -> Self {
        Self {
            mem_len: 16 << 20,
            interval: Duration::from_millis(5),
            persist_time: Duration::from_millis(5),
            journal_call: Duration::from_micros(3),
        }
    }
}

struct Inner {
    bytes: RwLock<Vec<u8>>,
    dirty: Vec<AtomicU64>,
    /// Write gate: writers shared, checkpointer exclusive.
    gate: RwLock<()>,
}

/// The Aurora-style SLS: DRAM runtime + checkpoint/flush pipeline.
pub struct AuroraSls {
    inner: Arc<Inner>,
    cfg: AuroraConfig,
    latency: Arc<LatencyModel>,
    stop: Arc<AtomicBool>,
    ckpt_thread: Mutex<Option<JoinHandle<()>>>,
    /// Checkpoints fully persisted so far.
    pub persisted: Arc<AtomicU64>,
    /// Dirty pages copied across all pauses.
    pub pages_copied: Arc<AtomicU64>,
    /// Journal API calls issued.
    pub journal_calls: AtomicU64,
}

impl AuroraSls {
    /// Creates the store (checkpointing not yet running).
    pub fn new(cfg: AuroraConfig, latency: Arc<LatencyModel>) -> Arc<Self> {
        let pages = cfg.mem_len.div_ceil(PAGE_SIZE);
        let inner = Arc::new(Inner {
            bytes: RwLock::new(vec![0; cfg.mem_len]),
            dirty: (0..pages.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            gate: RwLock::new(()),
        });
        Arc::new(Self {
            inner,
            cfg,
            latency,
            stop: Arc::new(AtomicBool::new(false)),
            ckpt_thread: Mutex::new(None),
            persisted: Arc::new(AtomicU64::new(0)),
            pages_copied: Arc::new(AtomicU64::new(0)),
            journal_calls: AtomicU64::new(0),
        })
    }

    /// Starts the periodic checkpoint pipeline.
    pub fn start_checkpointing(self: &Arc<Self>) {
        let mut guard = self.ckpt_thread.lock();
        if guard.is_some() {
            return;
        }
        let inner = Arc::clone(&self.inner);
        let stop = Arc::clone(&self.stop);
        let persisted = Arc::clone(&self.persisted);
        let pages_copied = Arc::clone(&self.pages_copied);
        let interval = self.cfg.interval;
        let persist_time = self.cfg.persist_time;
        let handle = std::thread::Builder::new()
            .name("aurora-ckpt".into())
            .spawn(move || {
                let mut shadow: Vec<u8> = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(interval);
                    // Stop-the-world: block writers, copy dirty pages to
                    // the DRAM shadow buffer.
                    let t0 = Instant::now();
                    {
                        let _world = inner.gate.write();
                        let bytes = inner.bytes.read();
                        let mut copied = 0u64;
                        for (w, word) in inner.dirty.iter().enumerate() {
                            let mut bits = word.swap(0, Ordering::SeqCst);
                            while bits != 0 {
                                let b = bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                let page = w * 64 + b;
                                let start = page * PAGE_SIZE;
                                let end = (start + PAGE_SIZE).min(bytes.len());
                                if start < bytes.len() {
                                    shadow.clear();
                                    shadow.extend_from_slice(&bytes[start..end]);
                                    copied += 1;
                                }
                            }
                        }
                        pages_copied.fetch_add(copied, Ordering::Relaxed);
                    }
                    let _pause = t0.elapsed();
                    // Asynchronous flush to storage: the checkpoint is not
                    // recoverable until this completes, which is why the
                    // effective interval cannot drop below persist_time.
                    std::thread::sleep(persist_time);
                    persisted.fetch_add(1, Ordering::SeqCst);
                }
            })
            .expect("spawn aurora checkpoint thread");
        *guard = Some(handle);
    }

    /// Stops the checkpoint pipeline.
    pub fn stop_checkpointing(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.ckpt_thread.lock().take() {
            let _ = h.join();
        }
        self.stop.store(false, Ordering::SeqCst);
    }

    /// The Aurora journaling API: synchronously persists an application
    /// record (used by the `Aurora-API` configuration).
    pub fn journal(&self, record: &[u8]) {
        self.journal_calls.fetch_add(1, Ordering::Relaxed);
        self.latency.charge_write(record.len());
        // A synchronous append to the storage device.
        let t0 = Instant::now();
        while t0.elapsed() < self.cfg.journal_call {
            std::hint::spin_loop();
        }
    }

    fn mark_dirty_range(&self, addr: u64, len: usize) {
        let first = addr as usize / PAGE_SIZE;
        let last = (addr as usize + len.max(1) - 1) / PAGE_SIZE;
        for p in first..=last {
            let w = p / 64;
            if let Some(word) = self.inner.dirty.get(w) {
                word.fetch_or(1 << (p % 64), Ordering::Relaxed);
            }
        }
    }
}

impl Drop for AuroraSls {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.ckpt_thread.lock().take() {
            let _ = h.join();
        }
    }
}

impl MemIo for AuroraSls {
    fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
        let g = self.inner.bytes.read();
        let a = addr as usize;
        if a + buf.len() > g.len() {
            return Err(KernelError::UnmappedAddress(addr));
        }
        buf.copy_from_slice(&g[a..a + buf.len()]);
        Ok(())
    }

    fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), KernelError> {
        // Writers wait out checkpoint pauses (Aurora's stop-the-world).
        let _gate = self.inner.gate.read();
        let mut g = self.inner.bytes.write();
        let a = addr as usize;
        if a + data.len() > g.len() {
            return Err(KernelError::UnmappedAddress(addr));
        }
        g[a..a + data.len()].copy_from_slice(data);
        drop(g);
        self.mark_dirty_range(addr, data.len());
        Ok(())
    }

    fn version(&self) -> u64 {
        self.persisted.load(Ordering::SeqCst)
    }

    fn flush(&self) {
        // WAL-on-DRAM for the Aurora-base-WAL configuration: cheap sync.
        self.latency.charge_flush();
    }
}

impl std::fmt::Debug for AuroraSls {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuroraSls")
            .field("persisted", &self.persisted.load(Ordering::SeqCst))
            .field("pages_copied", &self.pages_copied.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesls_apps::lsm::{Lsm, LsmConfig};

    fn small_cfg() -> AuroraConfig {
        AuroraConfig {
            mem_len: 1 << 20,
            interval: Duration::from_millis(2),
            persist_time: Duration::from_millis(2),
            journal_call: Duration::from_micros(1),
        }
    }

    #[test]
    fn reads_and_writes_roundtrip() {
        let a = AuroraSls::new(small_cfg(), Arc::new(LatencyModel::disabled()));
        a.mem_write(100, b"aurora").unwrap();
        let mut b = [0u8; 6];
        a.mem_read(100, &mut b).unwrap();
        assert_eq!(&b, b"aurora");
        assert!(a.mem_write((1 << 20) as u64, b"x").is_err());
    }

    #[test]
    fn checkpointing_copies_dirty_pages_and_persists() {
        let a = AuroraSls::new(small_cfg(), Arc::new(LatencyModel::disabled()));
        a.start_checkpointing();
        for i in 0..50u64 {
            a.mem_write(i * 4096, &i.to_le_bytes()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while a.persisted.load(Ordering::SeqCst) < 2 {
            assert!(Instant::now() < deadline, "no checkpoints persisted");
            std::thread::sleep(Duration::from_millis(1));
        }
        a.stop_checkpointing();
        assert!(a.pages_copied.load(Ordering::Relaxed) > 0);
        // Effective checkpoint period >= interval + persist_time.
        assert!(a.version() >= 2);
    }

    #[test]
    fn journal_api_counts_and_delays() {
        let a = AuroraSls::new(small_cfg(), Arc::new(LatencyModel::disabled()));
        let t0 = Instant::now();
        for _ in 0..100 {
            a.journal(b"record");
        }
        assert_eq!(a.journal_calls.load(Ordering::Relaxed), 100);
        assert!(t0.elapsed() >= Duration::from_micros(100));
    }

    #[test]
    fn lsm_runs_on_aurora() {
        let a = AuroraSls::new(small_cfg(), Arc::new(LatencyModel::disabled()));
        let cfg = LsmConfig {
            memtable_base: 0,
            memtable_cap: 32,
            storage_base: 64 * 1024,
            storage_len: 512 * 1024,
            wal_base: None,
            wal_len: 0,
            val_cap: 64,
        };
        let t = Lsm::format(&*a, cfg).unwrap();
        a.start_checkpointing();
        for k in 0..500u64 {
            t.put(&*a, k, &k.to_le_bytes()).unwrap();
        }
        for k in 0..500u64 {
            assert_eq!(t.get(&*a, k).unwrap(), Some(k.to_le_bytes().to_vec()));
        }
        a.stop_checkpointing();
    }
}
