//! Property-based tests for the KV wire protocol.
//!
//! Two invariants over random payloads: encode → decode is the identity
//! for every operation and response, and no strict prefix of a valid
//! encoding decodes successfully (a truncated buffer must be rejected,
//! never misparsed — ring slots carry explicit lengths, but a server must
//! survive a client that lies about them).

use proptest::prelude::*;

use treesls_apps::wire::{KvOp, KvResp, KEY_LEN};

fn key_strategy() -> impl Strategy<Value = [u8; KEY_LEN]> {
    proptest::collection::vec(any::<u8>(), KEY_LEN..KEY_LEN + 1).prop_map(|v| {
        let mut k = [0u8; KEY_LEN];
        k.copy_from_slice(&v);
        k
    })
}

fn op_strategy() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        key_strategy().prop_map(|key| KvOp::Get { key }),
        (key_strategy(), proptest::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(key, value)| KvOp::Set { key, value }),
        key_strategy().prop_map(|key| KvOp::Del { key }),
    ]
}

fn resp_strategy() -> impl Strategy<Value = KvResp> {
    prop_oneof![
        Just(KvResp::Ok(None)),
        proptest::collection::vec(any::<u8>(), 0..200)
            .prop_map(|v| KvResp::Ok(Some(v))),
        Just(KvResp::Miss),
        Just(KvResp::Error),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn op_encode_decode_roundtrips(op in op_strategy()) {
        let wire = op.encode();
        prop_assert_eq!(KvOp::decode(&wire), Some(op));
    }

    #[test]
    fn resp_encode_decode_roundtrips(resp in resp_strategy()) {
        let wire = resp.encode();
        prop_assert_eq!(KvResp::decode(&wire), Some(resp));
    }

    #[test]
    fn truncated_op_is_rejected(op in op_strategy(), cut in any::<u16>()) {
        let wire = op.encode();
        // Every strict prefix, seeded by a random cut (plus the empty
        // buffer and the one-byte-short case explicitly).
        let cut = (cut as usize) % wire.len();
        for len in [0, cut, wire.len() - 1] {
            prop_assert_eq!(
                KvOp::decode(&wire[..len]),
                None,
                "prefix of {} bytes (of {}) parsed",
                len,
                wire.len()
            );
        }
    }

    #[test]
    fn truncated_resp_is_rejected(resp in resp_strategy(), cut in any::<u16>()) {
        let wire = resp.encode();
        let cut = (cut as usize) % wire.len();
        for len in [0, cut, wire.len() - 1] {
            prop_assert_eq!(
                KvResp::decode(&wire[..len]),
                None,
                "prefix of {} bytes (of {}) parsed",
                len,
                wire.len()
            );
        }
    }

    #[test]
    fn oversized_length_field_is_rejected(key in key_strategy(), claim in 1u32..1024) {
        // A SET whose length field claims more bytes than the buffer
        // holds must be rejected, whatever the claimed length.
        let mut wire = KvOp::Set { key, value: vec![] }.encode();
        let len_off = wire.len() - 4;
        wire[len_off..].copy_from_slice(&claim.to_le_bytes());
        prop_assert_eq!(KvOp::decode(&wire), None);
    }
}
