//! Property-based tests for the KV wire protocol.
//!
//! Two invariants over random payloads: encode → decode is the identity
//! for every operation and response, and no strict prefix of a valid
//! encoding decodes successfully (a truncated buffer must be rejected,
//! never misparsed — ring slots carry explicit lengths, but a server must
//! survive a client that lies about them).

use proptest::prelude::*;

use treesls_apps::wire::{KvOp, KvResp, KEY_LEN};
use treesls_txn::wire::{ScanRow, TxnOp, TxnResp};
use treesls_txn::VAL_CAP;

fn key_strategy() -> impl Strategy<Value = [u8; KEY_LEN]> {
    proptest::collection::vec(any::<u8>(), KEY_LEN..KEY_LEN + 1).prop_map(|v| {
        let mut k = [0u8; KEY_LEN];
        k.copy_from_slice(&v);
        k
    })
}

fn op_strategy() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        key_strategy().prop_map(|key| KvOp::Get { key }),
        (key_strategy(), proptest::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(key, value)| KvOp::Set { key, value }),
        key_strategy().prop_map(|key| KvOp::Del { key }),
    ]
}

fn resp_strategy() -> impl Strategy<Value = KvResp> {
    prop_oneof![
        Just(KvResp::Ok(None)),
        proptest::collection::vec(any::<u8>(), 0..200)
            .prop_map(|v| KvResp::Ok(Some(v))),
        Just(KvResp::Miss),
        Just(KvResp::Error),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn op_encode_decode_roundtrips(op in op_strategy()) {
        let wire = op.encode();
        prop_assert_eq!(KvOp::decode(&wire), Some(op));
    }

    #[test]
    fn resp_encode_decode_roundtrips(resp in resp_strategy()) {
        let wire = resp.encode();
        prop_assert_eq!(KvResp::decode(&wire), Some(resp));
    }

    #[test]
    fn truncated_op_is_rejected(op in op_strategy(), cut in any::<u16>()) {
        let wire = op.encode();
        // Every strict prefix, seeded by a random cut (plus the empty
        // buffer and the one-byte-short case explicitly).
        let cut = (cut as usize) % wire.len();
        for len in [0, cut, wire.len() - 1] {
            prop_assert_eq!(
                KvOp::decode(&wire[..len]),
                None,
                "prefix of {} bytes (of {}) parsed",
                len,
                wire.len()
            );
        }
    }

    #[test]
    fn truncated_resp_is_rejected(resp in resp_strategy(), cut in any::<u16>()) {
        let wire = resp.encode();
        let cut = (cut as usize) % wire.len();
        for len in [0, cut, wire.len() - 1] {
            prop_assert_eq!(
                KvResp::decode(&wire[..len]),
                None,
                "prefix of {} bytes (of {}) parsed",
                len,
                wire.len()
            );
        }
    }

    #[test]
    fn oversized_length_field_is_rejected(key in key_strategy(), claim in 1u32..1024) {
        // A SET whose length field claims more bytes than the buffer
        // holds must be rejected, whatever the claimed length.
        let mut wire = KvOp::Set { key, value: vec![] }.encode();
        let len_off = wire.len() - 4;
        wire[len_off..].copy_from_slice(&claim.to_le_bytes());
        prop_assert_eq!(KvOp::decode(&wire), None);
    }
}

// ---- transaction verbs (treesls-txn) ------------------------------------

fn txn_val_strategy() -> impl Strategy<Value = Option<Vec<u8>>> {
    prop_oneof![
        Just(None),
        proptest::collection::vec(any::<u8>(), 0..VAL_CAP + 1).prop_map(Some),
    ]
}

fn txn_op_strategy() -> impl Strategy<Value = TxnOp> {
    prop_oneof![
        (any::<u64>(), any::<u8>()).prop_map(|(txn, flags)| TxnOp::Begin { txn, flags }),
        (any::<u64>(), key_strategy()).prop_map(|(txn, key)| TxnOp::Read { txn, key }),
        (any::<u64>(), key_strategy(), key_strategy(), txn_val_strategy())
            .prop_map(|(txn, key, tag, val)| TxnOp::Write { txn, key, tag, val }),
        (any::<u64>(), 0u8..2, key_strategy(), key_strategy(), any::<u16>())
            .prop_map(|(txn, space, lo, hi, limit)| TxnOp::Scan { txn, space, lo, hi, limit }),
        any::<u64>().prop_map(|txn| TxnOp::Commit { txn }),
        any::<u64>().prop_map(|txn| TxnOp::Abort { txn }),
        (any::<u64>(), any::<u8>(), key_strategy())
            .prop_map(|(txn, flags, key)| TxnOp::BeginRead { txn, flags, key }),
        (any::<u64>(), key_strategy(), key_strategy(), txn_val_strategy())
            .prop_map(|(txn, key, tag, val)| TxnOp::WriteCommit { txn, key, tag, val }),
    ]
}

fn txn_resp_strategy() -> impl Strategy<Value = TxnResp> {
    let row = (key_strategy(), key_strategy(), proptest::collection::vec(any::<u8>(), 0..VAL_CAP + 1))
        .prop_map(|(major, minor, val)| ScanRow { major, minor, val });
    prop_oneof![
        any::<u64>().prop_map(|seq| TxnResp::Ok { seq }),
        proptest::collection::vec(any::<u8>(), 0..VAL_CAP + 1).prop_map(|val| TxnResp::Value { val }),
        Just(TxnResp::Miss),
        Just(TxnResp::Conflict),
        proptest::collection::vec(row, 0..8).prop_map(|rows| TxnResp::Scan { rows }),
        Just(TxnResp::UnknownTxn),
        Just(TxnResp::Error),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn txn_op_encode_decode_roundtrips(op in txn_op_strategy()) {
        let wire = op.encode();
        prop_assert_eq!(TxnOp::decode(&wire), Some(op));
    }

    #[test]
    fn txn_resp_encode_decode_roundtrips(resp in txn_resp_strategy()) {
        let wire = resp.encode();
        prop_assert_eq!(TxnResp::decode(&wire), Some(resp));
    }

    #[test]
    fn truncated_txn_op_is_rejected(op in txn_op_strategy(), cut in any::<u16>()) {
        let wire = op.encode();
        let cut = (cut as usize) % wire.len();
        for len in [0, cut, wire.len() - 1] {
            prop_assert_eq!(
                TxnOp::decode(&wire[..len]),
                None,
                "prefix of {} bytes (of {}) parsed",
                len,
                wire.len()
            );
        }
    }

    #[test]
    fn truncated_txn_resp_is_rejected(resp in txn_resp_strategy(), cut in any::<u16>()) {
        let wire = resp.encode();
        let cut = (cut as usize) % wire.len();
        for len in [0, cut, wire.len() - 1] {
            prop_assert_eq!(
                TxnResp::decode(&wire[..len]),
                None,
                "prefix of {} bytes (of {}) parsed",
                len,
                wire.len()
            );
        }
    }

    #[test]
    fn txn_op_with_trailing_garbage_is_rejected(op in txn_op_strategy(), junk in any::<u8>()) {
        let mut wire = op.encode();
        wire.push(junk);
        prop_assert_eq!(TxnOp::decode(&wire), None);
    }

    #[test]
    fn txn_oversized_value_claim_is_rejected(
        key in key_strategy(),
        tag in key_strategy(),
        claim in (VAL_CAP as u16 + 1)..0xfffe,
    ) {
        // A write whose vlen claims more than VAL_CAP (and is not the
        // delete sentinel) must be rejected.
        let mut wire = TxnOp::Write { txn: 1, key, tag, val: Some(vec![]) }.encode();
        let at = wire.len() - 2;
        wire[at..].copy_from_slice(&claim.to_le_bytes());
        prop_assert_eq!(TxnOp::decode(&wire), None);
    }

    #[test]
    fn random_bytes_never_panic_txn_decoders(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Whatever arrives, the decoders return (no panic, no UB).
        let _ = TxnOp::decode(&bytes);
        let _ = TxnResp::decode(&bytes);
    }
}
