//! Wire format for key-value requests and responses.
//!
//! A tiny binary protocol shared by all KV servers (memcached-like,
//! redis-like, LSM) and the host-side clients, so the same request stream
//! can be replayed against TreeSLS servers and baseline backends.

/// Fixed key width on the wire (shorter keys are zero-padded).
pub const KEY_LEN: usize = 16;

/// A key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Look up a key.
    Get {
        /// The key.
        key: [u8; KEY_LEN],
    },
    /// Insert or update a key.
    Set {
        /// The key.
        key: [u8; KEY_LEN],
        /// The value bytes.
        value: Vec<u8>,
    },
    /// Remove a key.
    Del {
        /// The key.
        key: [u8; KEY_LEN],
    },
}

const OP_GET: u8 = 1;
const OP_SET: u8 = 2;
const OP_DEL: u8 = 3;

/// A response to a [`KvOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResp {
    /// Operation succeeded; `Get` carries the value.
    Ok(Option<Vec<u8>>),
    /// Key not found (`Get`/`Del`).
    Miss,
    /// The store rejected the operation (e.g. full).
    Error,
}

const ST_OK: u8 = 0;
const ST_OK_VALUE: u8 = 1;
const ST_MISS: u8 = 2;
const ST_ERROR: u8 = 3;

/// Borrowed view of a [`KvOp`], decoded zero-copy from a request buffer.
///
/// This is the hot-path form the poll-mode services use: the key and the
/// value are `&[u8]` slices into the ring's scratch buffer, validated in
/// place — no per-request allocation. [`KvOp`] remains the owned form for
/// clients and IPC paths that outlive the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOpRef<'a> {
    /// Look up a key.
    Get {
        /// The key (always `KEY_LEN` bytes).
        key: &'a [u8; KEY_LEN],
    },
    /// Insert or update a key.
    Set {
        /// The key (always `KEY_LEN` bytes).
        key: &'a [u8; KEY_LEN],
        /// The value bytes, borrowed from the request buffer.
        value: &'a [u8],
    },
    /// Remove a key.
    Del {
        /// The key (always `KEY_LEN` bytes).
        key: &'a [u8; KEY_LEN],
    },
}

impl<'a> KvOpRef<'a> {
    /// Parses an operation without copying; `None` on malformed input.
    /// Accepts exactly the bytes [`KvOp::encode`] produces.
    pub fn decode(data: &'a [u8]) -> Option<KvOpRef<'a>> {
        let (&op, rest) = data.split_first()?;
        if rest.len() < KEY_LEN {
            return None;
        }
        let key: &[u8; KEY_LEN] = rest[..KEY_LEN].try_into().ok()?;
        match op {
            OP_GET => Some(KvOpRef::Get { key }),
            OP_DEL => Some(KvOpRef::Del { key }),
            OP_SET => {
                let rest = &rest[KEY_LEN..];
                if rest.len() < 4 {
                    return None;
                }
                let len = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
                if rest.len() < 4 + len {
                    return None;
                }
                Some(KvOpRef::Set { key, value: &rest[4..4 + len] })
            }
            _ => None,
        }
    }

    /// Returns `true` for operations that mutate the store.
    pub fn is_write(&self) -> bool {
        !matches!(self, KvOpRef::Get { .. })
    }

    /// Converts to the owned form (copies the key/value).
    pub fn to_owned(&self) -> KvOp {
        match *self {
            KvOpRef::Get { key } => KvOp::Get { key: *key },
            KvOpRef::Set { key, value } => KvOp::Set { key: *key, value: value.to_vec() },
            KvOpRef::Del { key } => KvOp::Del { key: *key },
        }
    }
}

/// Zero-copy response encoding: status/value frames are appended to a
/// reusable output buffer instead of allocating a `Vec` per response.
/// The byte format is identical to [`KvResp::encode`].
pub mod resp {
    use super::{ST_ERROR, ST_MISS, ST_OK, ST_OK_VALUE};

    /// Appends an `Ok` (no value) response.
    pub fn ok_into(out: &mut Vec<u8>) {
        out.push(ST_OK);
    }

    /// Appends a `Miss` response.
    pub fn miss_into(out: &mut Vec<u8>) {
        out.push(ST_MISS);
    }

    /// Appends an `Error` response.
    pub fn error_into(out: &mut Vec<u8>) {
        out.push(ST_ERROR);
    }

    /// Begins an `Ok(value)` response, reserving the length field.
    /// Append the value bytes to `out`, then call [`finish_value`] with
    /// the returned mark.
    pub fn begin_value(out: &mut Vec<u8>) -> usize {
        out.push(ST_OK_VALUE);
        out.extend_from_slice(&0u32.to_le_bytes());
        out.len()
    }

    /// Patches the length field of a response started with
    /// [`begin_value`]: everything appended after `mark` is the value.
    pub fn finish_value(out: &mut [u8], mark: usize) {
        let len = (out.len() - mark) as u32;
        out[mark - 4..mark].copy_from_slice(&len.to_le_bytes());
    }

    /// Appends a complete `Ok(value)` response.
    pub fn value_into(out: &mut Vec<u8>, value: &[u8]) {
        let mark = begin_value(out);
        out.extend_from_slice(value);
        finish_value(out, mark);
    }
}

/// Pads/truncates an arbitrary byte key to the wire width.
pub fn make_key(raw: &[u8]) -> [u8; KEY_LEN] {
    let mut k = [0u8; KEY_LEN];
    let n = raw.len().min(KEY_LEN);
    k[..n].copy_from_slice(&raw[..n]);
    k
}

/// Builds the wire key for a numeric id (YCSB-style `user########`).
pub fn numeric_key(id: u64) -> [u8; KEY_LEN] {
    let mut k = [0u8; KEY_LEN];
    k[..4].copy_from_slice(b"user");
    k[4..12].copy_from_slice(&id.to_le_bytes());
    k
}

impl KvOp {
    /// Serializes the operation.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KvOp::Get { key } => {
                let mut b = Vec::with_capacity(1 + KEY_LEN);
                b.push(OP_GET);
                b.extend_from_slice(key);
                b
            }
            KvOp::Set { key, value } => {
                let mut b = Vec::with_capacity(1 + KEY_LEN + 4 + value.len());
                b.push(OP_SET);
                b.extend_from_slice(key);
                b.extend_from_slice(&(value.len() as u32).to_le_bytes());
                b.extend_from_slice(value);
                b
            }
            KvOp::Del { key } => {
                let mut b = Vec::with_capacity(1 + KEY_LEN);
                b.push(OP_DEL);
                b.extend_from_slice(key);
                b
            }
        }
    }

    /// Parses an operation; `None` on malformed input.
    pub fn decode(data: &[u8]) -> Option<KvOp> {
        let (&op, rest) = data.split_first()?;
        if rest.len() < KEY_LEN {
            return None;
        }
        let key: [u8; KEY_LEN] = rest[..KEY_LEN].try_into().ok()?;
        match op {
            OP_GET => Some(KvOp::Get { key }),
            OP_DEL => Some(KvOp::Del { key }),
            OP_SET => {
                let rest = &rest[KEY_LEN..];
                if rest.len() < 4 {
                    return None;
                }
                let len = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
                if rest.len() < 4 + len {
                    return None;
                }
                Some(KvOp::Set { key, value: rest[4..4 + len].to_vec() })
            }
            _ => None,
        }
    }

    /// Returns `true` for operations that mutate the store.
    pub fn is_write(&self) -> bool {
        !matches!(self, KvOp::Get { .. })
    }
}

impl KvResp {
    /// Serializes the response.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KvResp::Ok(None) => vec![ST_OK],
            KvResp::Ok(Some(v)) => {
                let mut b = Vec::with_capacity(5 + v.len());
                b.push(ST_OK_VALUE);
                b.extend_from_slice(&(v.len() as u32).to_le_bytes());
                b.extend_from_slice(v);
                b
            }
            KvResp::Miss => vec![ST_MISS],
            KvResp::Error => vec![ST_ERROR],
        }
    }

    /// Parses a response; `None` on malformed input.
    pub fn decode(data: &[u8]) -> Option<KvResp> {
        let (&st, rest) = data.split_first()?;
        match st {
            ST_OK => Some(KvResp::Ok(None)),
            ST_MISS => Some(KvResp::Miss),
            ST_ERROR => Some(KvResp::Error),
            ST_OK_VALUE => {
                if rest.len() < 4 {
                    return None;
                }
                let len = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
                if rest.len() < 4 + len {
                    return None;
                }
                Some(KvResp::Ok(Some(rest[4..4 + len].to_vec())))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_roundtrips() {
        let ops = [
            KvOp::Get { key: make_key(b"alpha") },
            KvOp::Set { key: make_key(b"beta"), value: vec![1, 2, 3] },
            KvOp::Set { key: numeric_key(42), value: vec![] },
            KvOp::Del { key: make_key(b"gamma") },
        ];
        for op in ops {
            assert_eq!(KvOp::decode(&op.encode()), Some(op));
        }
    }

    #[test]
    fn resp_roundtrips() {
        for r in [
            KvResp::Ok(None),
            KvResp::Ok(Some(b"value".to_vec())),
            KvResp::Miss,
            KvResp::Error,
        ] {
            assert_eq!(KvResp::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(KvOp::decode(&[]), None);
        assert_eq!(KvOp::decode(&[OP_GET, 1, 2]), None);
        assert_eq!(KvOp::decode(&[99; 20]), None);
        let mut truncated = KvOp::Set { key: make_key(b"k"), value: vec![0; 10] }.encode();
        truncated.truncate(truncated.len() - 1);
        assert_eq!(KvOp::decode(&truncated), None);
        assert_eq!(KvResp::decode(&[]), None);
        assert_eq!(KvResp::decode(&[ST_OK_VALUE, 5, 0, 0, 0]), None);
    }

    #[test]
    fn borrowed_decode_matches_owned() {
        let ops = [
            KvOp::Get { key: make_key(b"alpha") },
            KvOp::Set { key: make_key(b"beta"), value: vec![1, 2, 3] },
            KvOp::Set { key: numeric_key(42), value: vec![] },
            KvOp::Del { key: make_key(b"gamma") },
        ];
        for op in ops {
            let bytes = op.encode();
            let view = KvOpRef::decode(&bytes).unwrap();
            assert_eq!(view.to_owned(), op);
            assert_eq!(view.is_write(), op.is_write());
        }
        // Same rejection surface as the owned decoder.
        assert_eq!(KvOpRef::decode(&[]), None);
        assert_eq!(KvOpRef::decode(&[OP_GET, 1, 2]), None);
        assert_eq!(KvOpRef::decode(&[99; 20]), None);
    }

    #[test]
    fn resp_into_matches_encode() {
        let mut out = Vec::new();
        resp::ok_into(&mut out);
        assert_eq!(out, KvResp::Ok(None).encode());
        out.clear();
        resp::miss_into(&mut out);
        assert_eq!(out, KvResp::Miss.encode());
        out.clear();
        resp::error_into(&mut out);
        assert_eq!(out, KvResp::Error.encode());
        out.clear();
        resp::value_into(&mut out, b"value");
        assert_eq!(out, KvResp::Ok(Some(b"value".to_vec())).encode());
        // Streaming form: bytes appended between begin/finish become the
        // length-framed value.
        out.clear();
        let mark = resp::begin_value(&mut out);
        out.extend_from_slice(b"val");
        out.extend_from_slice(b"ue");
        resp::finish_value(&mut out, mark);
        assert_eq!(KvResp::decode(&out), Some(KvResp::Ok(Some(b"value".to_vec()))));
    }

    #[test]
    fn write_classification() {
        assert!(!KvOp::Get { key: make_key(b"k") }.is_write());
        assert!(KvOp::Set { key: make_key(b"k"), value: vec![] }.is_write());
        assert!(KvOp::Del { key: make_key(b"k") }.is_write());
    }
}
