//! Wire format for key-value requests and responses.
//!
//! A tiny binary protocol shared by all KV servers (memcached-like,
//! redis-like, LSM) and the host-side clients, so the same request stream
//! can be replayed against TreeSLS servers and baseline backends.

/// Fixed key width on the wire (shorter keys are zero-padded).
pub const KEY_LEN: usize = 16;

/// A key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Look up a key.
    Get {
        /// The key.
        key: [u8; KEY_LEN],
    },
    /// Insert or update a key.
    Set {
        /// The key.
        key: [u8; KEY_LEN],
        /// The value bytes.
        value: Vec<u8>,
    },
    /// Remove a key.
    Del {
        /// The key.
        key: [u8; KEY_LEN],
    },
}

const OP_GET: u8 = 1;
const OP_SET: u8 = 2;
const OP_DEL: u8 = 3;

/// A response to a [`KvOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResp {
    /// Operation succeeded; `Get` carries the value.
    Ok(Option<Vec<u8>>),
    /// Key not found (`Get`/`Del`).
    Miss,
    /// The store rejected the operation (e.g. full).
    Error,
}

const ST_OK: u8 = 0;
const ST_OK_VALUE: u8 = 1;
const ST_MISS: u8 = 2;
const ST_ERROR: u8 = 3;

/// Pads/truncates an arbitrary byte key to the wire width.
pub fn make_key(raw: &[u8]) -> [u8; KEY_LEN] {
    let mut k = [0u8; KEY_LEN];
    let n = raw.len().min(KEY_LEN);
    k[..n].copy_from_slice(&raw[..n]);
    k
}

/// Builds the wire key for a numeric id (YCSB-style `user########`).
pub fn numeric_key(id: u64) -> [u8; KEY_LEN] {
    let mut k = [0u8; KEY_LEN];
    k[..4].copy_from_slice(b"user");
    k[4..12].copy_from_slice(&id.to_le_bytes());
    k
}

impl KvOp {
    /// Serializes the operation.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KvOp::Get { key } => {
                let mut b = Vec::with_capacity(1 + KEY_LEN);
                b.push(OP_GET);
                b.extend_from_slice(key);
                b
            }
            KvOp::Set { key, value } => {
                let mut b = Vec::with_capacity(1 + KEY_LEN + 4 + value.len());
                b.push(OP_SET);
                b.extend_from_slice(key);
                b.extend_from_slice(&(value.len() as u32).to_le_bytes());
                b.extend_from_slice(value);
                b
            }
            KvOp::Del { key } => {
                let mut b = Vec::with_capacity(1 + KEY_LEN);
                b.push(OP_DEL);
                b.extend_from_slice(key);
                b
            }
        }
    }

    /// Parses an operation; `None` on malformed input.
    pub fn decode(data: &[u8]) -> Option<KvOp> {
        let (&op, rest) = data.split_first()?;
        if rest.len() < KEY_LEN {
            return None;
        }
        let key: [u8; KEY_LEN] = rest[..KEY_LEN].try_into().ok()?;
        match op {
            OP_GET => Some(KvOp::Get { key }),
            OP_DEL => Some(KvOp::Del { key }),
            OP_SET => {
                let rest = &rest[KEY_LEN..];
                if rest.len() < 4 {
                    return None;
                }
                let len = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
                if rest.len() < 4 + len {
                    return None;
                }
                Some(KvOp::Set { key, value: rest[4..4 + len].to_vec() })
            }
            _ => None,
        }
    }

    /// Returns `true` for operations that mutate the store.
    pub fn is_write(&self) -> bool {
        !matches!(self, KvOp::Get { .. })
    }
}

impl KvResp {
    /// Serializes the response.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KvResp::Ok(None) => vec![ST_OK],
            KvResp::Ok(Some(v)) => {
                let mut b = Vec::with_capacity(5 + v.len());
                b.push(ST_OK_VALUE);
                b.extend_from_slice(&(v.len() as u32).to_le_bytes());
                b.extend_from_slice(v);
                b
            }
            KvResp::Miss => vec![ST_MISS],
            KvResp::Error => vec![ST_ERROR],
        }
    }

    /// Parses a response; `None` on malformed input.
    pub fn decode(data: &[u8]) -> Option<KvResp> {
        let (&st, rest) = data.split_first()?;
        match st {
            ST_OK => Some(KvResp::Ok(None)),
            ST_MISS => Some(KvResp::Miss),
            ST_ERROR => Some(KvResp::Error),
            ST_OK_VALUE => {
                if rest.len() < 4 {
                    return None;
                }
                let len = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
                if rest.len() < 4 + len {
                    return None;
                }
                Some(KvResp::Ok(Some(rest[4..4 + len].to_vec())))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_roundtrips() {
        let ops = [
            KvOp::Get { key: make_key(b"alpha") },
            KvOp::Set { key: make_key(b"beta"), value: vec![1, 2, 3] },
            KvOp::Set { key: numeric_key(42), value: vec![] },
            KvOp::Del { key: make_key(b"gamma") },
        ];
        for op in ops {
            assert_eq!(KvOp::decode(&op.encode()), Some(op));
        }
    }

    #[test]
    fn resp_roundtrips() {
        for r in [
            KvResp::Ok(None),
            KvResp::Ok(Some(b"value".to_vec())),
            KvResp::Miss,
            KvResp::Error,
        ] {
            assert_eq!(KvResp::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(KvOp::decode(&[]), None);
        assert_eq!(KvOp::decode(&[OP_GET, 1, 2]), None);
        assert_eq!(KvOp::decode(&[99; 20]), None);
        let mut truncated = KvOp::Set { key: make_key(b"k"), value: vec![0; 10] }.encode();
        truncated.truncate(truncated.len() - 1);
        assert_eq!(KvOp::decode(&truncated), None);
        assert_eq!(KvResp::decode(&[]), None);
        assert_eq!(KvResp::decode(&[ST_OK_VALUE, 5, 0, 0, 0]), None);
    }

    #[test]
    fn write_classification() {
        assert!(!KvOp::Get { key: make_key(b"k") }.is_write());
        assert!(KvOp::Set { key: make_key(b"k"), value: vec![] }.is_write());
        assert!(KvOp::Del { key: make_key(b"k") }.is_write());
    }
}
