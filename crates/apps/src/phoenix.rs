//! Phoenix-style compute workloads: WordCount, KMeans, PCA.
//!
//! The paper evaluates the Phoenix-2.0 MapReduce suite as its computing
//! applications (Table 2, Figure 10). These programs reproduce the memory
//! access shapes: multi-threaded workers sweeping large input regions and
//! writing to private output regions, coordinated through registers and
//! shared memory. Each step processes a bounded chunk so stop-the-world
//! pauses interrupt promptly at step boundaries.

use treesls_extsync::MemIo;
use treesls_kernel::program::{Program, StepOutcome, UserCtx};

use crate::hashkv::HashKv;
use crate::wire::make_key;

/// Thread-id register: workers learn their index from `regs[0]`.
pub const REG_WORKER: usize = 0;
/// Progress register: next input offset to process.
pub const REG_CURSOR: usize = 5;

/// WordCount: each worker scans its slice of a text region and counts
/// words into a private hash table.
///
/// Memory layout: `input_base..input_base+input_len` holds space-separated
/// lowercase words; worker `i`'s table lives at
/// `tables_base + i * table_stride`.
#[derive(Debug)]
pub struct WordCount {
    /// Input text base address.
    pub input_base: u64,
    /// Input length in bytes.
    pub input_len: u64,
    /// Number of worker threads.
    pub workers: u64,
    /// Base of the per-worker output tables.
    pub tables_base: u64,
    /// Byte stride between worker tables.
    pub table_stride: u64,
    /// Buckets per worker table (power of two).
    pub nbuckets: u64,
    /// Bytes scanned per step.
    pub chunk: u64,
}

impl WordCount {
    fn table_base(&self, worker: u64) -> u64 {
        self.tables_base + worker * self.table_stride
    }

    /// Value capacity: an 8-byte count.
    const VAL_CAP: u64 = 8;

    fn slice(&self, worker: u64) -> (u64, u64) {
        let per = self.input_len / self.workers;
        let start = worker * per;
        let end = if worker + 1 == self.workers { self.input_len } else { start + per };
        (start, end)
    }

    fn bump_word<M: MemIo>(io: &M, table: &HashKv, word: &[u8]) {
        let key = make_key(word);
        let count = match table.get(io, &key) {
            Ok(Some(v)) if v.len() == 8 => {
                u64::from_le_bytes(v.try_into().expect("8 bytes")) + 1
            }
            _ => 1,
        };
        let _ = table.set(io, &key, &count.to_le_bytes());
    }
}

impl Program for WordCount {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        let worker = ctx.reg(REG_WORKER);
        let (start, end) = self.slice(worker);
        if ctx.pc() == 0 {
            if HashKv::format(ctx, self.table_base(worker), self.nbuckets, Self::VAL_CAP).is_err()
            {
                return StepOutcome::Exited;
            }
            ctx.set_reg(REG_CURSOR, start);
            ctx.set_pc(1);
            return StepOutcome::Ready;
        }
        let Ok(table) = HashKv::attach(ctx, self.table_base(worker)) else {
            return StepOutcome::Exited;
        };
        let mut cursor = ctx.reg(REG_CURSOR);
        if cursor >= end {
            return StepOutcome::Exited;
        }
        // To keep words whole, a worker starts mid-word only at its very
        // first chunk; skip to the next separator in that case.
        let stop = (cursor + self.chunk).min(end);
        let mut buf = vec![0u8; (stop - cursor) as usize];
        if ctx.read(self.input_base + cursor, &mut buf).is_err() {
            return StepOutcome::Exited;
        }
        let mut word_start: Option<usize> = None;
        let mut consumed = buf.len();
        for (i, &b) in buf.iter().enumerate() {
            if b == b' ' || b == 0 {
                if let Some(ws) = word_start.take() {
                    Self::bump_word(ctx, &table, &buf[ws..i]);
                }
            } else if word_start.is_none() {
                word_start = Some(i);
            }
        }
        // A word spanning the chunk boundary is re-read next step.
        if let Some(ws) = word_start {
            if stop < end {
                consumed = ws;
                if consumed == 0 {
                    // Pathological word longer than a chunk: count it now.
                    Self::bump_word(ctx, &table, &buf);
                    consumed = buf.len();
                }
            } else {
                Self::bump_word(ctx, &table, &buf[ws..]);
            }
        }
        cursor += consumed as u64;
        ctx.set_reg(REG_CURSOR, cursor);
        if cursor >= end {
            StepOutcome::Exited
        } else {
            StepOutcome::Ready
        }
    }
}

/// KMeans: workers assign points to the nearest centroid and accumulate
/// per-worker sums; a coordinator (worker 0 after a barrier-free design:
/// each worker iterates independently over the shared centroids, and
/// centroid updates happen in the host harness between iterations in the
/// benchmark — inside the SLS each worker performs `iters` full passes).
///
/// Layout: points at `points_base` (`npoints` × `dims` f32, stored as
/// u32 bits), centroids at `centroids_base` (`k` × `dims`), per-worker
/// accumulators at `accum_base + worker * accum_stride`
/// (`k` × (dims sums f32 + count u32)).
#[derive(Debug)]
pub struct KMeans {
    /// Points region.
    pub points_base: u64,
    /// Number of points.
    pub npoints: u64,
    /// Dimensions per point.
    pub dims: u64,
    /// Centroid region.
    pub centroids_base: u64,
    /// Cluster count.
    pub k: u64,
    /// Per-worker accumulator base.
    pub accum_base: u64,
    /// Accumulator stride between workers.
    pub accum_stride: u64,
    /// Number of worker threads.
    pub workers: u64,
    /// Points processed per step.
    pub chunk: u64,
    /// Full passes over the data.
    pub iters: u64,
}

impl KMeans {
    fn read_f32<M: MemIo>(io: &M, addr: u64) -> f32 {
        let mut b = [0u8; 4];
        let _ = io.mem_read(addr, &mut b);
        f32::from_le_bytes(b)
    }

    fn write_f32<M: MemIo>(io: &M, addr: u64, v: f32) {
        let _ = io.mem_write(addr, &v.to_le_bytes());
    }

    fn slice(&self, worker: u64) -> (u64, u64) {
        let per = self.npoints / self.workers;
        let start = worker * per;
        let end = if worker + 1 == self.workers { self.npoints } else { start + per };
        (start, end)
    }
}

impl Program for KMeans {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        let worker = ctx.reg(REG_WORKER);
        let (start, end) = self.slice(worker);
        let iter = ctx.reg(6);
        if iter >= self.iters {
            return StepOutcome::Exited;
        }
        if ctx.pc() == 0 {
            ctx.set_reg(REG_CURSOR, start);
            ctx.set_pc(1);
        }
        let accum = self.accum_base + worker * self.accum_stride;
        let mut cursor = ctx.reg(REG_CURSOR);
        let stop = (cursor + self.chunk).min(end);
        while cursor < stop {
            let p = self.points_base + cursor * self.dims * 4;
            // Nearest centroid.
            let mut best = 0u64;
            let mut best_d = f32::MAX;
            for c in 0..self.k {
                let cb = self.centroids_base + c * self.dims * 4;
                let mut d = 0f32;
                for dim in 0..self.dims {
                    let dx = Self::read_f32(ctx, p + dim * 4) - Self::read_f32(ctx, cb + dim * 4);
                    d += dx * dx;
                }
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            // Accumulate into this worker's sums.
            let slot = accum + best * (self.dims * 4 + 4);
            for dim in 0..self.dims {
                let a = slot + dim * 4;
                Self::write_f32(ctx, a, Self::read_f32(ctx, a) + Self::read_f32(ctx, p + dim * 4));
            }
            let cnt_addr = slot + self.dims * 4;
            let _ = ctx
                .write_u32(cnt_addr, ctx.read_u32(cnt_addr).unwrap_or(0).wrapping_add(1));
            cursor += 1;
        }
        ctx.set_reg(REG_CURSOR, cursor);
        if cursor >= end {
            ctx.set_reg(6, iter + 1);
            ctx.set_reg(REG_CURSOR, start);
        }
        StepOutcome::Ready
    }
}

/// PCA: workers compute rows of the covariance matrix of a dense matrix.
///
/// Layout: `matrix_base` holds an `n × n` matrix of f32; `means_base`
/// holds per-column means (precomputed by worker 0's first pass);
/// `cov_base` receives covariance rows.
#[derive(Debug)]
pub struct Pca {
    /// Matrix base.
    pub matrix_base: u64,
    /// Matrix dimension (rows = cols = n).
    pub n: u64,
    /// Column means region.
    pub means_base: u64,
    /// Covariance output region (n × n f32).
    pub cov_base: u64,
    /// Number of workers.
    pub workers: u64,
    /// Covariance cells computed per step.
    pub chunk: u64,
}

impl Pca {
    fn slice(&self, worker: u64) -> (u64, u64) {
        let per = self.n / self.workers;
        let start = worker * per;
        let end = if worker + 1 == self.workers { self.n } else { start + per };
        (start, end)
    }
}

impl Program for Pca {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        let worker = ctx.reg(REG_WORKER);
        let (row_start, row_end) = self.slice(worker);
        if ctx.pc() == 0 {
            // Phase 1: each worker computes the means of its row slice's
            // columns... means are per-column over ALL rows, so worker 0
            // computes them once; others wait via polling a done flag.
            if worker == 0 {
                for col in 0..self.n {
                    let mut sum = 0f64;
                    for row in 0..self.n {
                        sum += KMeans::read_f32(ctx, self.matrix_base + (row * self.n + col) * 4)
                            as f64;
                    }
                    KMeans::write_f32(
                        ctx,
                        self.means_base + col * 4,
                        (sum / self.n as f64) as f32,
                    );
                }
                // Publish the done flag (last word of the means region).
                let _ = ctx.write_u32(self.means_base + self.n * 4, 1);
            } else {
                let ready = ctx.read_u32(self.means_base + self.n * 4).unwrap_or(0);
                if ready == 0 {
                    return StepOutcome::Yielded;
                }
            }
            ctx.set_reg(REG_CURSOR, row_start * self.n);
            ctx.set_pc(1);
            return StepOutcome::Ready;
        }
        // Phase 2: covariance cells, `chunk` per step.
        let mut cell = ctx.reg(REG_CURSOR);
        let end_cell = row_end * self.n;
        let stop = (cell + self.chunk).min(end_cell);
        while cell < stop {
            let (i, j) = (cell / self.n, cell % self.n);
            let mi = KMeans::read_f32(ctx, self.means_base + i * 4);
            let mj = KMeans::read_f32(ctx, self.means_base + j * 4);
            let mut acc = 0f64;
            for r in 0..self.n {
                let a = KMeans::read_f32(ctx, self.matrix_base + (r * self.n + i) * 4) - mi;
                let b = KMeans::read_f32(ctx, self.matrix_base + (r * self.n + j) * 4) - mj;
                acc += (a * b) as f64;
            }
            KMeans::write_f32(
                ctx,
                self.cov_base + (i * self.n + j) * 4,
                (acc / (self.n as f64 - 1.0)) as f32,
            );
            cell += 1;
        }
        ctx.set_reg(REG_CURSOR, cell);
        if cell >= end_cell {
            StepOutcome::Exited
        } else {
            StepOutcome::Ready
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_partition_the_input() {
        let wc = WordCount {
            input_base: 0,
            input_len: 1003,
            workers: 8,
            tables_base: 0,
            table_stride: 0,
            nbuckets: 64,
            chunk: 128,
        };
        let mut covered = 0;
        for w in 0..8 {
            let (s, e) = wc.slice(w);
            covered += e - s;
            if w > 0 {
                assert_eq!(s, wc.slice(w - 1).1);
            }
        }
        assert_eq!(covered, 1003);
    }

    #[test]
    fn kmeans_slices_partition_points() {
        let km = KMeans {
            points_base: 0,
            npoints: 10_000,
            dims: 2,
            centroids_base: 0,
            k: 4,
            accum_base: 0,
            accum_stride: 0,
            workers: 8,
            chunk: 100,
            iters: 1,
        };
        let total: u64 = (0..8).map(|w| { let (s, e) = km.slice(w); e - s }).sum();
        assert_eq!(total, 10_000);
    }
}
