//! Server and client programs running inside TreeSLS.
//!
//! Two deployment shapes, matching the paper's evaluation:
//!
//! * **NIC services** ([`KvService`], [`LsmService`]) plug the KV table
//!   and LSM tree into the `treesls-net` poll-mode runtime: one
//!   `PollServer` loop per NIC queue serves external host-side clients —
//!   the configuration behind Figures 11/12/13/14.
//! * **IPC pairs** ([`IpcKvServer`], [`IpcKvClient`]) put both sides inside
//!   the SLS ("clients were also checkpointed", §7.3) — the configuration
//!   behind Table 2 and the Figure 9/10 breakdowns.
//!
//! All programs are re-entrant step machines: a crash between checkpoints
//! rolls them back to a step boundary and they resume correctly.

use treesls_kernel::program::{Program, StepOutcome, UserCtx};
use treesls_kernel::types::CapSlot;
use treesls_net::{Service, ServiceError};

use crate::hashkv::{HashKv, KvError};
use crate::lsm::{Lsm, LsmConfig};
use crate::wire::{resp, KvOp, KvOpRef, KvResp, KEY_LEN};

/// Register allocation conventions shared by the programs here.
pub mod regs {
    /// Operations completed so far.
    pub const DONE: usize = 2;
    /// PRNG state (xorshift64).
    pub const RNG: usize = 3;
    /// Target operation count (clients).
    pub const TARGET: usize = 1;
    /// Pending request sequence/slot marker.
    pub const PENDING: usize = 4;
}

/// xorshift64 step — the PRNG whose whole state is one register, so client
/// randomness is checkpointed with the thread context.
pub fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.max(1)
}

fn apply_kv_op<M: treesls_extsync::MemIo>(table: &HashKv, io: &M, op: KvOp) -> KvResp {
    match op {
        KvOp::Get { key } => match table.get(io, &key) {
            Ok(Some(v)) => KvResp::Ok(Some(v)),
            Ok(None) => KvResp::Miss,
            Err(_) => KvResp::Error,
        },
        KvOp::Set { key, value } => match table.set(io, &key, &value) {
            Ok(_) => KvResp::Ok(None),
            Err(KvError::Full | KvError::ValueTooLarge) => KvResp::Error,
            Err(_) => KvResp::Error,
        },
        KvOp::Del { key } => match table.del(io, &key) {
            Ok(true) => KvResp::Ok(None),
            Ok(false) => KvResp::Miss,
            Err(_) => KvResp::Error,
        },
    }
}

/// Zero-copy form of [`apply_kv_op`]: the request is a borrowed view into
/// the poll loop's scratch buffer and the response is framed directly
/// into its output buffer — a `Get` hit reads the value from the table
/// straight into the length-framed response, no intermediate `Vec`.
fn apply_kv_op_ref<M: treesls_extsync::MemIo>(
    table: &HashKv,
    io: &M,
    op: KvOpRef<'_>,
    out: &mut Vec<u8>,
) {
    match op {
        KvOpRef::Get { key } => {
            let mark = resp::begin_value(out);
            match table.get_into(io, key, out) {
                Ok(Some(_)) => resp::finish_value(out, mark),
                Ok(None) => {
                    out.truncate(mark - 5);
                    resp::miss_into(out);
                }
                Err(_) => {
                    out.truncate(mark - 5);
                    resp::error_into(out);
                }
            }
        }
        KvOpRef::Set { key, value } => match table.set(io, key, value) {
            Ok(_) => resp::ok_into(out),
            Err(_) => resp::error_into(out),
        },
        KvOpRef::Del { key } => match table.del(io, key) {
            Ok(true) => resp::ok_into(out),
            Ok(false) => resp::miss_into(out),
            Err(_) => resp::error_into(out),
        },
    }
}

/// A memcached/redis-like KV protocol served through the NIC poll
/// runtime.
///
/// One instance per queue, each owning its own table region (the queue
/// index shards the data). `init` formats the table on first boot only —
/// a restored thread resumes past it and `handle` re-attaches.
#[derive(Debug)]
pub struct KvService {
    /// Table base address.
    pub table_base: u64,
    /// Table buckets (power of two).
    pub nbuckets: u64,
    /// Max value bytes.
    pub val_cap: u64,
}

impl Service for KvService {
    fn init(&self, ctx: &mut UserCtx<'_>) -> Result<(), ServiceError> {
        HashKv::format(ctx, self.table_base, self.nbuckets, self.val_cap)
            .map(|_| ())
            .map_err(|_| ServiceError)
    }

    fn handle(
        &self,
        ctx: &mut UserCtx<'_>,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), ServiceError> {
        let table = HashKv::attach(ctx, self.table_base).map_err(|_| ServiceError)?;
        match KvOpRef::decode(payload) {
            Some(op) => apply_kv_op_ref(&table, ctx, op, out),
            None => resp::error_into(out),
        }
        Ok(())
    }
}

/// An LSM (RocksDB-like) protocol served through the NIC poll runtime.
///
/// Keys are the first 8 bytes of the wire key interpreted little-endian.
#[derive(Debug)]
pub struct LsmService {
    /// LSM geometry.
    pub lsm: LsmConfig,
}

fn key_u64(key: &[u8; KEY_LEN]) -> u64 {
    u64::from_le_bytes(key[..8].try_into().expect("8-byte prefix"))
}

impl Service for LsmService {
    fn init(&self, ctx: &mut UserCtx<'_>) -> Result<(), ServiceError> {
        Lsm::format(ctx, self.lsm).map(|_| ()).map_err(|_| ServiceError)
    }

    fn handle(
        &self,
        ctx: &mut UserCtx<'_>,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), ServiceError> {
        let tree = Lsm::attach(self.lsm);
        match KvOpRef::decode(payload) {
            Some(KvOpRef::Get { key }) => match tree.get(ctx, key_u64(key)) {
                Ok(Some(v)) => resp::value_into(out, &v),
                Ok(None) => resp::miss_into(out),
                Err(_) => resp::error_into(out),
            },
            Some(KvOpRef::Set { key, value }) => match tree.put(ctx, key_u64(key), value) {
                Ok(()) => resp::ok_into(out),
                Err(_) => resp::error_into(out),
            },
            Some(KvOpRef::Del { key }) => match tree.delete(ctx, key_u64(key)) {
                Ok(()) => resp::ok_into(out),
                Err(_) => resp::error_into(out),
            },
            None => resp::error_into(out),
        }
        Ok(())
    }
}

/// A KV server thread receiving requests over an IPC connection
/// (both endpoints inside the SLS).
#[derive(Debug)]
pub struct IpcKvServer {
    /// Capability slot of the server's IPC connection.
    pub conn_slot: CapSlot,
    /// Table base address.
    pub table_base: u64,
    /// Table buckets (power of two).
    pub nbuckets: u64,
    /// Max value bytes.
    pub val_cap: u64,
}

impl Program for IpcKvServer {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        if ctx.pc() == 0 {
            if HashKv::format(ctx, self.table_base, self.nbuckets, self.val_cap).is_err() {
                return StepOutcome::Exited;
            }
            ctx.set_pc(1);
            return StepOutcome::Ready;
        }
        let Ok(table) = HashKv::attach(ctx, self.table_base) else {
            return StepOutcome::Exited;
        };
        match ctx.ipc_recv(self.conn_slot) {
            Ok(Some((client, req))) => {
                let resp = match KvOp::decode(&req) {
                    Some(op) => apply_kv_op(&table, ctx, op),
                    None => KvResp::Error,
                };
                let _ = ctx.ipc_reply(self.conn_slot, client, resp.encode());
                let done = ctx.reg(regs::DONE);
                ctx.set_reg(regs::DONE, done + 1);
                StepOutcome::Ready
            }
            Ok(None) => StepOutcome::Blocked,
            Err(_) => StepOutcome::Exited,
        }
    }
}

/// A closed-loop KV client thread issuing SET/GET over IPC.
///
/// Drives the Table 2 / Figure 9 / Figure 10 Redis and Memcached
/// workloads: `TARGET` operations against `key_space` keys with
/// `write_ratio_percent` writes, all client state in registers.
#[derive(Debug)]
pub struct IpcKvClient {
    /// Capability slots of the shard connections (key-hash routed).
    pub shard_slots: Vec<CapSlot>,
    /// Number of distinct keys.
    pub key_space: u64,
    /// Value length in bytes.
    pub val_len: usize,
    /// Percentage of SET operations (0–100).
    pub write_ratio_percent: u64,
}

impl IpcKvClient {
    fn build_op(&self, rng: u64) -> KvOp {
        let key_id = (rng >> 8) % self.key_space.max(1);
        let key = crate::wire::numeric_key(key_id);
        if rng % 100 < self.write_ratio_percent {
            let mut value = vec![0u8; self.val_len];
            for (i, b) in value.iter_mut().enumerate() {
                *b = (rng as u8).wrapping_add(i as u8);
            }
            KvOp::Set { key, value }
        } else {
            KvOp::Get { key }
        }
    }

    fn shard_for(&self, rng: u64) -> CapSlot {
        let key_id = (rng >> 8) % self.key_space.max(1);
        self.shard_slots[(key_id % self.shard_slots.len() as u64) as usize]
    }
}

impl Program for IpcKvClient {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        match ctx.pc() {
            // Send a request.
            0 => {
                if ctx.reg(regs::DONE) >= ctx.reg(regs::TARGET) {
                    return StepOutcome::Exited;
                }
                let rng = xorshift64(ctx.reg(regs::RNG).max(ctx.thread_token() | 1));
                ctx.set_reg(regs::RNG, rng);
                let slot = self.shard_for(rng);
                ctx.set_reg(regs::PENDING, slot as u64);
                let op = self.build_op(rng);
                match ctx.ipc_call(slot, op.encode()) {
                    Ok(()) => {
                        ctx.set_pc(1);
                        StepOutcome::Blocked
                    }
                    Err(_) => StepOutcome::Exited,
                }
            }
            // Consume the reply.
            _ => {
                let slot = ctx.reg(regs::PENDING) as CapSlot;
                match ctx.ipc_take_reply(slot) {
                    Ok(Some(_resp)) => {
                        ctx.set_reg(regs::DONE, ctx.reg(regs::DONE) + 1);
                        ctx.set_pc(0);
                        StepOutcome::Ready
                    }
                    // Spurious wake or restored mid-call: the call was
                    // rolled back with us; re-issue it.
                    Ok(None) => {
                        ctx.set_pc(0);
                        StepOutcome::Ready
                    }
                    Err(_) => StepOutcome::Exited,
                }
            }
        }
    }
}

/// A SQLite-like single-threaded worker: a mixed
/// read/insert/update/delete benchmark over a B+ tree table (§7.3's
/// SQLite workload shape).
#[derive(Debug)]
pub struct BtreeWorker {
    /// Table region base.
    pub table_base: u64,
    /// Node capacity of the tree.
    pub node_cap: u64,
    /// Key space size.
    pub key_space: u64,
    /// Operations per step.
    pub batch: u64,
}

impl Program for BtreeWorker {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        use crate::btree::{BTree, VAL_LEN};
        if ctx.pc() == 0 {
            if BTree::format(ctx, self.table_base, self.node_cap).is_err() {
                return StepOutcome::Exited;
            }
            ctx.set_pc(1);
            return StepOutcome::Ready;
        }
        let Ok(tree) = BTree::attach(ctx, self.table_base) else {
            return StepOutcome::Exited;
        };
        let target = ctx.reg(regs::TARGET);
        let mut done = ctx.reg(regs::DONE);
        let mut rng = ctx.reg(regs::RNG).max(ctx.thread_token() | 1);
        for _ in 0..self.batch {
            if done >= target {
                ctx.set_reg(regs::DONE, done);
                ctx.set_reg(regs::RNG, rng);
                return StepOutcome::Exited;
            }
            rng = xorshift64(rng);
            let key = (rng >> 8) % self.key_space;
            let mut val = [0u8; VAL_LEN];
            val[..8].copy_from_slice(&rng.to_le_bytes());
            // Mixed read/insert/update/delete (the update is an insert of
            // an existing key).
            let r = match rng % 4 {
                0 => tree.get(ctx, key).map(|_| ()),
                1 | 2 => tree.insert(ctx, key, &val).map(|_| ()),
                _ => tree.delete(ctx, key).map(|_| ()),
            };
            if r.is_err() {
                return StepOutcome::Exited;
            }
            done += 1;
        }
        ctx.set_reg(regs::DONE, done);
        ctx.set_reg(regs::RNG, rng);
        StepOutcome::Ready
    }
}

/// A LevelDB-like single-threaded `fillbatch` worker: batched sequential
/// puts into an LSM tree (the dbbench workload the paper runs, §7.3).
#[derive(Debug)]
pub struct LsmFillBatch {
    /// LSM geometry.
    pub lsm: LsmConfig,
    /// Value length in bytes.
    pub val_len: usize,
    /// Puts per step (one "batch").
    pub batch: u64,
}

impl Program for LsmFillBatch {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        if ctx.pc() == 0 {
            if Lsm::format(ctx, self.lsm).is_err() {
                return StepOutcome::Exited;
            }
            ctx.set_pc(1);
            return StepOutcome::Ready;
        }
        let tree = Lsm::attach(self.lsm);
        let target = ctx.reg(regs::TARGET);
        let mut done = ctx.reg(regs::DONE);
        let value = vec![0xABu8; self.val_len];
        for _ in 0..self.batch {
            if done >= target {
                ctx.set_reg(regs::DONE, done);
                return StepOutcome::Exited;
            }
            if tree.put(ctx, done, &value).is_err() {
                return StepOutcome::Exited;
            }
            done += 1;
        }
        ctx.set_reg(regs::DONE, done);
        StepOutcome::Ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_never_zero_and_varies() {
        let mut x = 1u64;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            x = xorshift64(x);
            assert_ne!(x, 0);
            seen.insert(x);
        }
        assert!(seen.len() > 990);
    }

    #[test]
    fn client_op_mix_follows_ratio() {
        let c = IpcKvClient {
            shard_slots: vec![0, 1],
            key_space: 100,
            val_len: 8,
            write_ratio_percent: 100,
        };
        let mut rng = 12345u64;
        for _ in 0..100 {
            rng = xorshift64(rng);
            assert!(c.build_op(rng).is_write());
        }
        let ro = IpcKvClient { write_ratio_percent: 0, ..c };
        for _ in 0..100 {
            rng = xorshift64(rng);
            assert!(!ro.build_op(rng).is_write());
        }
    }

    #[test]
    fn shard_routing_is_stable() {
        let c = IpcKvClient {
            shard_slots: vec![3, 7, 9],
            key_space: 1000,
            val_len: 8,
            write_ratio_percent: 50,
        };
        let rng = 999u64;
        assert_eq!(c.shard_for(rng), c.shard_for(rng));
        assert!(c.shard_slots.contains(&c.shard_for(rng)));
    }
}
