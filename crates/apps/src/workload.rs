//! Workload generators: YCSB core workloads and a Facebook-style
//! `Prefix_dist` key distribution.
//!
//! These drive the Figure 13 (YCSB on Redis) and Figure 14 (RocksDB with
//! Facebook's Prefix_dist) experiments. The YCSB generator follows the
//! original benchmark's structure: a zipfian request distribution over
//! loaded records, a latest-distribution for insert-heavy mixes, and the
//! standard A/B/C mixes plus the paper's 100 % update and 100 % insert
//! configurations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::wire::{numeric_key, KvOp};

/// A zipfian integer generator over `[0, n)` (Gray et al. method, as used
/// by YCSB).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Standard YCSB constant.
    pub const THETA: f64 = 0.99;

    /// Creates a generator over `[0, n)`.
    pub fn new(n: u64) -> Self {
        let theta = Self::THETA;
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        Self {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; sampled approximation for large n keeps
        // generator construction O(1)-ish without changing the shape.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // Integral approximation of the tail.
            let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Draws a zipfian-distributed value in `[0, n)` (0 is the hottest).
    pub fn next(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// The population size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Unused fields kept for fidelity with the YCSB formulas.
    #[doc(hidden)]
    pub fn debug_constants(&self) -> (f64, f64) {
        (self.zeta2, self.theta)
    }
}

/// The YCSB workload mixes evaluated in Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbMix {
    /// Workload A: 50 % read / 50 % update.
    A,
    /// Workload B: 95 % read / 5 % update.
    B,
    /// Workload C: 100 % read.
    C,
    /// 100 % update (paper's write-intensive configuration).
    Update100,
    /// 100 % insert.
    Insert100,
}

impl YcsbMix {
    /// All mixes in Figure 13 order.
    pub const ALL: [YcsbMix; 5] =
        [YcsbMix::A, YcsbMix::B, YcsbMix::C, YcsbMix::Update100, YcsbMix::Insert100];

    /// Display label matching the paper's x-axis.
    pub fn label(self) -> &'static str {
        match self {
            YcsbMix::A => "Workload A",
            YcsbMix::B => "Workload B",
            YcsbMix::C => "Workload C",
            YcsbMix::Update100 => "100% Update",
            YcsbMix::Insert100 => "100% Insert",
        }
    }

    /// Read fraction of the mix.
    pub fn read_fraction(self) -> f64 {
        match self {
            YcsbMix::A => 0.5,
            YcsbMix::B => 0.95,
            YcsbMix::C => 1.0,
            YcsbMix::Update100 | YcsbMix::Insert100 => 0.0,
        }
    }
}

/// A YCSB operation stream.
#[derive(Debug)]
pub struct YcsbGen {
    mix: YcsbMix,
    zipf: Zipfian,
    rng: StdRng,
    loaded: u64,
    next_insert: u64,
    value_len: usize,
}

impl YcsbGen {
    /// Creates a generator over `loaded` pre-loaded records with
    /// `value_len`-byte values.
    pub fn new(mix: YcsbMix, loaded: u64, value_len: usize, seed: u64) -> Self {
        Self {
            mix,
            zipf: Zipfian::new(loaded.max(1)),
            rng: StdRng::seed_from_u64(seed),
            loaded,
            next_insert: loaded,
            value_len,
        }
    }

    /// The operations that pre-load the store.
    pub fn load_ops(&mut self) -> Vec<KvOp> {
        (0..self.loaded)
            .map(|i| KvOp::Set { key: numeric_key(i), value: self.value(i) })
            .collect()
    }

    fn value(&self, seed: u64) -> Vec<u8> {
        let mut v = vec![0u8; self.value_len];
        for (i, b) in v.iter_mut().enumerate() {
            *b = (seed as u8).wrapping_add(i as u8);
        }
        v
    }

    /// Draws the next operation of the run phase.
    pub fn next_op(&mut self) -> KvOp {
        match self.mix {
            YcsbMix::Insert100 => {
                let id = self.next_insert;
                self.next_insert += 1;
                KvOp::Set { key: numeric_key(id), value: self.value(id) }
            }
            mix => {
                let id = self.zipf.next(&mut self.rng);
                if self.rng.gen::<f64>() < mix.read_fraction() {
                    KvOp::Get { key: numeric_key(id) }
                } else {
                    KvOp::Set { key: numeric_key(id), value: self.value(id) }
                }
            }
        }
    }
}

/// Facebook-style `Prefix_dist` key generator (Cao et al., FAST'20): keys
/// share a small set of hot prefixes, accesses are write-heavy and skewed
/// toward hot prefixes with a long random tail.
#[derive(Debug)]
pub struct PrefixDist {
    rng: StdRng,
    hot_prefixes: u64,
    cold_prefixes: u64,
    keys_per_prefix: u64,
    get_fraction: f64,
    zipf: Zipfian,
}

impl PrefixDist {
    /// Creates a generator approximating the paper's Prefix_dist workload:
    /// write-heavy (the paper notes "RocksDB is write-intensive" under
    /// this trace), skewed across prefixes.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            hot_prefixes: 32,
            cold_prefixes: 4096,
            keys_per_prefix: 4096,
            get_fraction: 0.20,
            zipf: Zipfian::new(32),
        }
    }

    /// Draws the next `(key, is_get)` pair; keys are `u64` with the prefix
    /// in the high bits.
    pub fn next_op(&mut self) -> (u64, bool) {
        let hot = self.rng.gen::<f64>() < 0.8;
        let prefix = if hot {
            self.zipf.next(&mut self.rng)
        } else {
            self.hot_prefixes + self.rng.gen_range(0..self.cold_prefixes)
        };
        let sub = self.rng.gen_range(0..self.keys_per_prefix);
        let key = (prefix << 32) | sub;
        let is_get = self.rng.gen::<f64>() < self.get_fraction;
        (key, is_get)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(1000);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = HashMap::new();
        for _ in 0..50_000 {
            let v = z.next(&mut rng);
            assert!(v < 1000);
            *counts.entry(v).or_insert(0u64) += 1;
        }
        // Head items dominate the tail.
        let head: u64 = (0..10).map(|i| counts.get(&i).copied().unwrap_or(0)).sum();
        let tail: u64 = (500..510).map(|i| counts.get(&i).copied().unwrap_or(0)).sum();
        assert!(head > tail * 10, "head={head} tail={tail}");
    }

    #[test]
    fn zipfian_large_population() {
        let z = Zipfian::new(10_000_000);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.next(&mut rng) < 10_000_000);
        }
    }

    #[test]
    fn ycsb_mix_fractions() {
        let mut gen = YcsbGen::new(YcsbMix::B, 1000, 100, 42);
        let mut reads = 0;
        for _ in 0..10_000 {
            if matches!(gen.next_op(), KvOp::Get { .. }) {
                reads += 1;
            }
        }
        let frac = reads as f64 / 10_000.0;
        assert!((frac - 0.95).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn ycsb_c_is_read_only_and_insert_is_fresh_keys() {
        let mut c = YcsbGen::new(YcsbMix::C, 100, 10, 1);
        for _ in 0..1000 {
            assert!(matches!(c.next_op(), KvOp::Get { .. }));
        }
        let mut ins = YcsbGen::new(YcsbMix::Insert100, 100, 10, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            match ins.next_op() {
                KvOp::Set { key, .. } => assert!(seen.insert(key), "duplicate insert key"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn load_ops_cover_all_records() {
        let mut gen = YcsbGen::new(YcsbMix::A, 50, 8, 3);
        let ops = gen.load_ops();
        assert_eq!(ops.len(), 50);
        assert!(ops.iter().all(|o| o.is_write()));
    }

    #[test]
    fn prefix_dist_shape() {
        let mut p = PrefixDist::new(9);
        let mut hot = 0;
        let mut gets = 0;
        for _ in 0..10_000 {
            let (key, is_get) = p.next_op();
            if (key >> 32) < 32 {
                hot += 1;
            }
            if is_get {
                gets += 1;
            }
        }
        assert!(hot > 7000, "hot prefix share {hot}");
        let gf = gets as f64 / 10_000.0;
        assert!((gf - 0.2).abs() < 0.03, "get fraction {gf}");
    }
}
