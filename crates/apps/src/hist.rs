//! Latency histograms for the benchmark harness.
//!
//! Log-spaced buckets (HDR-style, 64 sub-buckets per power of two) give
//! ~1.5 % quantile error across nanoseconds-to-seconds, enough to
//! reproduce the P50/P95/P99 series of Figures 11, 12 and 14.

/// A log-bucketed latency histogram over `u64` nanosecond samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

const SUB_BITS: u32 = 6; // 64 sub-buckets per octave
const OCTAVES: u32 = 40;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; (OCTAVES << SUB_BITS) as usize],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn index(v: u64) -> usize {
        let v = v.max(1);
        let octave = 63 - v.leading_zeros();
        if octave < SUB_BITS {
            return v as usize;
        }
        let sub = (v >> (octave - SUB_BITS)) as usize & ((1 << SUB_BITS) - 1);
        (((octave as usize) << SUB_BITS) | sub).min((OCTAVES as usize) * (1 << SUB_BITS) - 1)
    }

    fn bucket_value(i: usize) -> u64 {
        let octave = (i >> SUB_BITS) as u32;
        let sub = (i & ((1 << SUB_BITS) - 1)) as u64;
        if octave < SUB_BITS {
            return i as u64;
        }
        (1u64 << octave) | (sub << (octave - SUB_BITS))
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Merges another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The `q`-quantile (`0.0..=1.0`), approximated to bucket resolution.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i);
            }
        }
        self.max
    }

    /// Convenience accessors for the common percentiles.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        assert!((4800..=5300).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((9700..=10_100).contains(&p99), "p99={p99}");
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn records_large_values() {
        let mut h = Histogram::new();
        h.record(3_000_000_000); // 3 s in ns
        h.record(10);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= 2_900_000_000);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..100 {
            a.record(v);
            b.record(v + 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!(a.p50() >= 90);
    }

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for v in [1u64, 100, 1000, 123_456, 9_876_543, 1 << 40] {
            let i = Histogram::index(v);
            let back = Histogram::bucket_value(i);
            let err = (back as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.04, "v={v} back={back} err={err}");
        }
    }
}
