//! A fixed-capacity open-addressing hash table over abstract memory.
//!
//! The in-memory store behind the memcached-like and redis-like servers.
//! All table state lives in [`MemIo`] memory: running inside TreeSLS every
//! access goes through the soft-MMU (and is therefore checkpointed page by
//! page); running on a baseline backend the same code hits plain host
//! memory. This is exactly the paper's claim — "existing applications
//! designed for memory can also gain persistence support transparently
//! with SLS" — made literal.
//!
//! Layout at `base`:
//!
//! ```text
//! +0   magic      u64
//! +8   nbuckets   u64 (power of two)
//! +16  val_cap    u64 (max value bytes per bucket)
//! +24  count      u64 (live entries)
//! +32  buckets[nbuckets], each:
//!        +0  state  u8 (0 empty / 1 used / 2 tombstone)
//!        +1  pad    7 B
//!        +8  key    16 B
//!        +24 vlen   u32, pad 4 B
//!        +32 value  val_cap B (rounded up to 8)
//! ```

use treesls_extsync::MemIo;
use treesls_kernel::types::KernelError;

use crate::wire::KEY_LEN;

const MAGIC: u64 = 0x4B56_5441_424C_4501; // "KVTABLE"

const HDR: u64 = 32;
const B_STATE: u64 = 0;
const B_KEY: u64 = 8;
const B_VLEN: u64 = 24;
const B_VALUE: u64 = 32;

const EMPTY: u8 = 0;
const USED: u8 = 1;
const TOMB: u8 = 2;

/// Errors from table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// No free bucket left.
    Full,
    /// Value exceeds the per-bucket capacity.
    ValueTooLarge,
    /// The region does not contain a formatted table.
    BadMagic,
    /// Underlying memory error.
    Mem(KernelError),
}

impl From<KernelError> for KvError {
    fn from(e: KernelError) -> Self {
        KvError::Mem(e)
    }
}

/// A handle to a hash table living at `base` in some [`MemIo`] memory.
#[derive(Debug, Clone, Copy)]
pub struct HashKv {
    /// Base address of the table.
    pub base: u64,
    nbuckets: u64,
    val_cap: u64,
}

impl HashKv {
    /// Bytes needed for a table of `nbuckets` buckets (power of two) with
    /// `val_cap`-byte values.
    pub fn region_len(nbuckets: u64, val_cap: u64) -> u64 {
        HDR + nbuckets * Self::bucket_size(val_cap)
    }

    fn bucket_size(val_cap: u64) -> u64 {
        B_VALUE + val_cap.div_ceil(8) * 8
    }

    /// Formats a fresh table in *zeroed* memory.
    ///
    /// Only the header is written: a zero bucket-state byte means `EMPTY`,
    /// so freshly materialized (zero-filled) pages need no clearing pass.
    /// This keeps format O(1) — important inside TreeSLS, where a long
    /// program step would delay stop-the-world checkpoints. Use
    /// [`format_clearing`](Self::format_clearing) for recycled memory.
    ///
    /// # Panics
    ///
    /// Panics if `nbuckets` is not a power of two.
    pub fn format<M: MemIo>(io: &M, base: u64, nbuckets: u64, val_cap: u64) -> Result<Self, KvError> {
        assert!(nbuckets.is_power_of_two(), "nbuckets must be a power of two");
        io.mem_write_u64(base, MAGIC)?;
        io.mem_write_u64(base + 8, nbuckets)?;
        io.mem_write_u64(base + 16, val_cap)?;
        io.mem_write_u64(base + 24, 0)?;
        Ok(Self { base, nbuckets, val_cap })
    }

    /// Formats a table in possibly dirty memory, clearing every bucket
    /// state (O(nbuckets)).
    pub fn format_clearing<M: MemIo>(
        io: &M,
        base: u64,
        nbuckets: u64,
        val_cap: u64,
    ) -> Result<Self, KvError> {
        let t = Self::format(io, base, nbuckets, val_cap)?;
        for i in 0..nbuckets {
            io.mem_write(t.bucket(i) + B_STATE, &[EMPTY])?;
        }
        Ok(t)
    }

    /// Attaches to an existing table (e.g. after a restore).
    pub fn attach<M: MemIo>(io: &M, base: u64) -> Result<Self, KvError> {
        if io.mem_read_u64(base)? != MAGIC {
            return Err(KvError::BadMagic);
        }
        let nbuckets = io.mem_read_u64(base + 8)?;
        let val_cap = io.mem_read_u64(base + 16)?;
        Ok(Self { base, nbuckets, val_cap })
    }

    fn bucket(&self, i: u64) -> u64 {
        self.base + HDR + (i & (self.nbuckets - 1)) * Self::bucket_size(self.val_cap)
    }

    fn hash(key: &[u8; KEY_LEN]) -> u64 {
        // FNV-1a, good enough for bucket spreading.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Number of live entries.
    pub fn len<M: MemIo>(&self, io: &M) -> Result<u64, KvError> {
        Ok(io.mem_read_u64(self.base + 24)?)
    }

    /// Looks up `key`.
    pub fn get<M: MemIo>(&self, io: &M, key: &[u8; KEY_LEN]) -> Result<Option<Vec<u8>>, KvError> {
        let mut v = Vec::new();
        Ok(self.get_into(io, key, &mut v)?.map(|_| v))
    }

    /// Zero-copy lookup: appends the value bytes for `key` to `out` and
    /// returns their length, or `None` on a miss (leaving `out`
    /// untouched). The poll-mode KV service reads values straight into
    /// its reusable response buffer with this, so a `Get` allocates
    /// nothing once the buffer has grown to the largest value.
    pub fn get_into<M: MemIo>(
        &self,
        io: &M,
        key: &[u8; KEY_LEN],
        out: &mut Vec<u8>,
    ) -> Result<Option<usize>, KvError> {
        let mut i = Self::hash(key);
        for _ in 0..self.nbuckets {
            let b = self.bucket(i);
            let mut state = [0u8];
            io.mem_read(b + B_STATE, &mut state)?;
            match state[0] {
                EMPTY => return Ok(None),
                USED => {
                    let mut k = [0u8; KEY_LEN];
                    io.mem_read(b + B_KEY, &mut k)?;
                    if &k == key {
                        let mut lb = [0u8; 4];
                        io.mem_read(b + B_VLEN, &mut lb)?;
                        let len = (u32::from_le_bytes(lb) as u64).min(self.val_cap) as usize;
                        let start = out.len();
                        out.resize(start + len, 0);
                        io.mem_read(b + B_VALUE, &mut out[start..])?;
                        return Ok(Some(len));
                    }
                }
                _ => {}
            }
            i = i.wrapping_add(1);
        }
        Ok(None)
    }

    /// Inserts or updates `key`. Returns `true` if the key was new.
    pub fn set<M: MemIo>(
        &self,
        io: &M,
        key: &[u8; KEY_LEN],
        value: &[u8],
    ) -> Result<bool, KvError> {
        if value.len() as u64 > self.val_cap {
            return Err(KvError::ValueTooLarge);
        }
        let mut i = Self::hash(key);
        let mut insert_at: Option<u64> = None;
        for _ in 0..self.nbuckets {
            let b = self.bucket(i);
            let mut state = [0u8];
            io.mem_read(b + B_STATE, &mut state)?;
            match state[0] {
                EMPTY => {
                    let b = insert_at.unwrap_or(b);
                    io.mem_write(b + B_KEY, key)?;
                    io.mem_write(b + B_VLEN, &(value.len() as u32).to_le_bytes())?;
                    io.mem_write(b + B_VALUE, value)?;
                    io.mem_write(b + B_STATE, &[USED])?;
                    let count = io.mem_read_u64(self.base + 24)?;
                    io.mem_write_u64(self.base + 24, count + 1)?;
                    return Ok(true);
                }
                TOMB => {
                    if insert_at.is_none() {
                        insert_at = Some(b);
                    }
                }
                _ => {
                    let mut k = [0u8; KEY_LEN];
                    io.mem_read(b + B_KEY, &mut k)?;
                    if &k == key {
                        io.mem_write(b + B_VLEN, &(value.len() as u32).to_le_bytes())?;
                        io.mem_write(b + B_VALUE, value)?;
                        return Ok(false);
                    }
                }
            }
            i = i.wrapping_add(1);
        }
        // No empty bucket found; reuse a tombstone if we saw one.
        if let Some(b) = insert_at {
            io.mem_write(b + B_KEY, key)?;
            io.mem_write(b + B_VLEN, &(value.len() as u32).to_le_bytes())?;
            io.mem_write(b + B_VALUE, value)?;
            io.mem_write(b + B_STATE, &[USED])?;
            let count = io.mem_read_u64(self.base + 24)?;
            io.mem_write_u64(self.base + 24, count + 1)?;
            return Ok(true);
        }
        Err(KvError::Full)
    }

    /// Removes `key`, returning `true` if it was present.
    pub fn del<M: MemIo>(&self, io: &M, key: &[u8; KEY_LEN]) -> Result<bool, KvError> {
        let mut i = Self::hash(key);
        for _ in 0..self.nbuckets {
            let b = self.bucket(i);
            let mut state = [0u8];
            io.mem_read(b + B_STATE, &mut state)?;
            match state[0] {
                EMPTY => return Ok(false),
                USED => {
                    let mut k = [0u8; KEY_LEN];
                    io.mem_read(b + B_KEY, &mut k)?;
                    if &k == key {
                        io.mem_write(b + B_STATE, &[TOMB])?;
                        let count = io.mem_read_u64(self.base + 24)?;
                        io.mem_write_u64(self.base + 24, count.saturating_sub(1))?;
                        return Ok(true);
                    }
                }
                _ => {}
            }
            i = i.wrapping_add(1);
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testmem::TestMem;
    use crate::wire::make_key;

    fn table() -> (TestMem, HashKv) {
        let len = HashKv::region_len(256, 64);
        let m = TestMem::new(len as usize);
        let t = HashKv::format(&m, 0, 256, 64).unwrap();
        (m, t)
    }

    #[test]
    fn set_get_del_roundtrip() {
        let (m, t) = table();
        let k = make_key(b"hello");
        assert_eq!(t.get(&m, &k).unwrap(), None);
        assert!(t.set(&m, &k, b"world").unwrap());
        assert_eq!(t.get(&m, &k).unwrap(), Some(b"world".to_vec()));
        assert!(!t.set(&m, &k, b"again").unwrap());
        assert_eq!(t.get(&m, &k).unwrap(), Some(b"again".to_vec()));
        assert_eq!(t.len(&m).unwrap(), 1);
        assert!(t.del(&m, &k).unwrap());
        assert!(!t.del(&m, &k).unwrap());
        assert_eq!(t.get(&m, &k).unwrap(), None);
        assert_eq!(t.len(&m).unwrap(), 0);
    }

    #[test]
    fn many_keys_no_collateral() {
        let (m, t) = table();
        for i in 0..200u64 {
            let k = make_key(format!("key-{i}").as_bytes());
            t.set(&m, &k, &i.to_le_bytes()).unwrap();
        }
        assert_eq!(t.len(&m).unwrap(), 200);
        for i in 0..200u64 {
            let k = make_key(format!("key-{i}").as_bytes());
            assert_eq!(t.get(&m, &k).unwrap(), Some(i.to_le_bytes().to_vec()), "key-{i}");
        }
        // Delete evens, verify odds intact.
        for i in (0..200u64).step_by(2) {
            let k = make_key(format!("key-{i}").as_bytes());
            assert!(t.del(&m, &k).unwrap());
        }
        for i in 0..200u64 {
            let k = make_key(format!("key-{i}").as_bytes());
            let got = t.get(&m, &k).unwrap();
            if i % 2 == 0 {
                assert_eq!(got, None);
            } else {
                assert!(got.is_some());
            }
        }
    }

    #[test]
    fn fills_to_capacity_then_rejects() {
        let len = HashKv::region_len(16, 8);
        let m = TestMem::new(len as usize);
        let t = HashKv::format(&m, 0, 16, 8).unwrap();
        for i in 0..16u64 {
            t.set(&m, &make_key(&i.to_le_bytes()), b"x").unwrap();
        }
        assert_eq!(t.set(&m, &make_key(b"onemore"), b"x"), Err(KvError::Full));
        // Updating an existing key still works when full.
        t.set(&m, &make_key(&3u64.to_le_bytes()), b"y").unwrap();
        // Deleting frees a slot (tombstone reuse).
        t.del(&m, &make_key(&5u64.to_le_bytes())).unwrap();
        t.set(&m, &make_key(b"onemore"), b"x").unwrap();
    }

    #[test]
    fn oversized_value_rejected() {
        let (m, t) = table();
        assert_eq!(t.set(&m, &make_key(b"k"), &[0; 65]), Err(KvError::ValueTooLarge));
    }

    #[test]
    fn attach_rereads_geometry() {
        let (m, t) = table();
        t.set(&m, &make_key(b"persist"), b"me").unwrap();
        let t2 = HashKv::attach(&m, 0).unwrap();
        assert_eq!(t2.get(&m, &make_key(b"persist")).unwrap(), Some(b"me".to_vec()));
        assert_eq!(HashKv::attach(&m, 8).err(), Some(KvError::BadMagic));
    }
}
