//! A plain host-memory [`MemIo`] backend.
//!
//! Used by unit tests and by the baseline systems (`treesls-baselines`):
//! the same application data structures (hash table, LSM tree, B+ tree)
//! run unchanged on TreeSLS process memory and on this flat buffer, which
//! models an ordinary DRAM process heap.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use treesls_extsync::MemIo;
use treesls_kernel::types::KernelError;

/// A flat byte buffer implementing [`MemIo`].
#[derive(Debug)]
pub struct TestMem {
    bytes: RwLock<Vec<u8>>,
    version: AtomicU64,
    /// Count of flush barriers issued (WAL accounting in baselines).
    pub flushes: AtomicU64,
}

impl TestMem {
    /// Creates a zeroed buffer of `len` bytes.
    pub fn new(len: usize) -> Self {
        Self {
            bytes: RwLock::new(vec![0; len]),
            version: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        }
    }

    /// Sets the value returned by [`MemIo::version`].
    pub fn set_version(&self, v: u64) {
        self.version.store(v, Ordering::SeqCst);
    }

    /// Buffer length.
    pub fn len(&self) -> usize {
        self.bytes.read().len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl MemIo for TestMem {
    fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
        let g = self.bytes.read();
        let a = addr as usize;
        if a + buf.len() > g.len() {
            return Err(KernelError::UnmappedAddress(addr));
        }
        buf.copy_from_slice(&g[a..a + buf.len()]);
        Ok(())
    }

    fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), KernelError> {
        let mut g = self.bytes.write();
        let a = addr as usize;
        if a + data.len() > g.len() {
            return Err(KernelError::UnmappedAddress(addr));
        }
        g[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    fn flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_checked() {
        let m = TestMem::new(16);
        let mut b = [0u8; 8];
        assert!(m.mem_read(8, &mut b).is_ok());
        assert!(m.mem_read(9, &mut b).is_err());
        assert!(m.mem_write(16, &[1]).is_err());
    }

    #[test]
    fn flush_counts() {
        let m = TestMem::new(1);
        m.flush();
        m.flush();
        assert_eq!(m.flushes.load(Ordering::Relaxed), 2);
    }
}
