//! YCSB-style transactional workload driver.
//!
//! Extends the plain KV YCSB generator ([`crate::workload`]) to the full
//! A–F mix set over the `treesls-txn` wire protocol, with the pieces the
//! transactional evaluation needs:
//!
//! * **A–F mixes** — A (50/50 read/update), B (95/5), C (read-only),
//!   D (read-latest + inserts), E (range scans + inserts, alternating
//!   primary-order and secondary-index-order), F (read-modify-write as
//!   real two-frame transactions);
//! * **choosers** — zipfian (Gray et al., the YCSB default), uniform,
//!   and latest (for D), all seeded and deterministic;
//! * **working-set churn** — the accessed window rotates across the key
//!   space every `churn_every` operations, so checkpoint deltas never
//!   settle into a fixed dirty set;
//! * **multi-tenant open-loop plans** — each tenant precomputes a
//!   deterministic frame sequence indexed by arrival number, so the
//!   open-loop generator ([`crate::openloop`]) can fire frame *i* at its
//!   scheduled instant without ever waiting on a response. Interactive
//!   RMW transactions work open-loop because transaction ids are
//!   client-chosen: arrival *i* carries `BeginRead{txn}` and arrival
//!   `i + rmw_gap` carries the paired `WriteCommit{txn}` — if the first
//!   frame's working set died (crash) the second gets `UnknownTxn` and
//!   the tenant counts a retry, never a wrong answer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treesls_txn::wire::{TxnOp, FLAG_RETRY};
use treesls_txn::KEY_LEN;

use crate::wire::numeric_key;
use crate::workload::Zipfian;

/// The six standard YCSB core workloads, transactional edition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnMix {
    /// 50 % read / 50 % update.
    A,
    /// 95 % read / 5 % update.
    B,
    /// 100 % read.
    C,
    /// 95 % read-latest / 5 % insert.
    D,
    /// 95 % range scan / 5 % insert.
    E,
    /// 50 % read / 50 % read-modify-write (two-frame transactions).
    F,
}

impl TxnMix {
    /// All mixes in workload order.
    pub const ALL: [TxnMix; 6] =
        [TxnMix::A, TxnMix::B, TxnMix::C, TxnMix::D, TxnMix::E, TxnMix::F];

    /// Lower-case workload letter, used in result files.
    pub fn letter(self) -> &'static str {
        match self {
            TxnMix::A => "a",
            TxnMix::B => "b",
            TxnMix::C => "c",
            TxnMix::D => "d",
            TxnMix::E => "e",
            TxnMix::F => "f",
        }
    }

    /// Parses a workload letter (either case).
    pub fn parse(s: &str) -> Option<TxnMix> {
        Some(match s.to_ascii_lowercase().as_str() {
            "a" => TxnMix::A,
            "b" => TxnMix::B,
            "c" => TxnMix::C,
            "d" => TxnMix::D,
            "e" => TxnMix::E,
            "f" => TxnMix::F,
            _ => return None,
        })
    }
}

/// Key-chooser distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skew {
    /// Zipfian with the standard YCSB theta (0.99).
    Zipfian,
    /// Uniform over the window.
    Uniform,
}

impl Skew {
    /// Parses a chooser name.
    pub fn parse(s: &str) -> Option<Skew> {
        Some(match s.to_ascii_lowercase().as_str() {
            "zipfian" | "zipf" => Skew::Zipfian,
            "uniform" => Skew::Uniform,
            _ => return None,
        })
    }
}

/// A seeded key chooser over `[0, n)`.
#[derive(Debug)]
pub enum Chooser {
    /// Zipfian (0 is hottest).
    Zipfian(Zipfian),
    /// Uniform.
    Uniform(u64),
    /// Latest: zipfian distance back from the most recent insert — drives
    /// workload D's read-latest behaviour.
    Latest(Zipfian),
}

impl Chooser {
    /// Builds a chooser of the given skew over `[0, n)`.
    pub fn new(skew: Skew, n: u64) -> Chooser {
        match skew {
            Skew::Zipfian => Chooser::Zipfian(Zipfian::new(n.max(1))),
            Skew::Uniform => Chooser::Uniform(n.max(1)),
        }
    }

    /// Builds the read-latest chooser over a window of `n` recent keys.
    pub fn latest(n: u64) -> Chooser {
        Chooser::Latest(Zipfian::new(n.max(1)))
    }

    /// Draws a key id. `highest` is the most recently inserted id (only
    /// the latest chooser uses it).
    pub fn next(&self, rng: &mut StdRng, highest: u64) -> u64 {
        match self {
            Chooser::Zipfian(z) => z.next(rng),
            Chooser::Uniform(n) => rng.gen_range(0..*n),
            Chooser::Latest(z) => highest.saturating_sub(z.next(rng)),
        }
    }
}

/// Shape of one transactional YCSB run.
#[derive(Debug, Clone)]
pub struct YcsbTxnConfig {
    /// Which workload mix to draw.
    pub mix: TxnMix,
    /// Pre-loaded records.
    pub records: u64,
    /// Value bytes per record (≤ [`treesls_txn::VAL_CAP`]).
    pub value_len: usize,
    /// Request-distribution skew.
    pub skew: Skew,
    /// Independent tenants (one open-loop generator each).
    pub tenants: usize,
    /// Size of the rotating working-set window (0 = whole key space).
    pub churn_window: u64,
    /// Operations between window rotations (0 = never rotate).
    pub churn_every: u64,
    /// Arrivals between the two frames of an interactive RMW transaction.
    pub rmw_gap: u64,
    /// Maximum records per scan (workload E).
    pub scan_limit: u16,
    /// Base seed; tenant `t` derives its stream from `seed ^ t`.
    pub seed: u64,
}

impl Default for YcsbTxnConfig {
    fn default() -> Self {
        YcsbTxnConfig {
            mix: TxnMix::A,
            records: 4096,
            value_len: 32,
            skew: Skew::Zipfian,
            tenants: 2,
            churn_window: 1024,
            churn_every: 512,
            rmw_gap: 4,
            scan_limit: 32,
            seed: 1,
        }
    }
}

/// Secondary-index tag groups: each record's tag is its key id modulo
/// this, shifted by one so tag 0 (= unindexed) is never produced.
pub const TAG_GROUPS: u64 = 64;

/// The index tag assigned to `key_id` (deterministic, so the serial-replay
/// oracle can recompute it).
pub fn tag_for(key_id: u64) -> [u8; KEY_LEN] {
    numeric_key(1 + key_id % TAG_GROUPS)
}

/// The deterministic value written for `key_id` by its `version`-th
/// update.
pub fn value_for(key_id: u64, version: u64, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    let seed = key_id.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(version);
    for (i, b) in v.iter_mut().enumerate() {
        *b = (seed >> (8 * (i % 8))) as u8;
    }
    v
}

/// One planned request frame: the flow label (for NIC steering) and the
/// encoded wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFrame {
    /// Flow label handed to the NIC (tenant id — transactions are
    /// single-shard, so deployments serve them on one queue).
    pub flow: u64,
    /// Encoded [`TxnOp`] frame.
    pub payload: Vec<u8>,
    /// The decoded op, kept for oracles and accounting.
    pub op: TxnOp,
}

/// A precomputed deterministic frame sequence for one tenant.
///
/// Built once before the run; the open-loop `make_op(tenant, i)` closure
/// just indexes it (wrapping), so frame generation is pure and replayable.
#[derive(Debug, Clone)]
pub struct TenantPlan {
    frames: Vec<PlannedFrame>,
}

impl TenantPlan {
    /// The frame fired at arrival `i` (wraps past the plan's end).
    pub fn frame(&self, i: u64) -> &PlannedFrame {
        &self.frames[(i % self.frames.len() as u64) as usize]
    }

    /// Number of distinct planned frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when the plan holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// All frames, in arrival order.
    pub fn frames(&self) -> &[PlannedFrame] {
        &self.frames
    }
}

/// Builds the load phase: auto-commit upserts (txn id 0) covering every
/// record with its deterministic tag and version-0 value.
pub fn load_frames(cfg: &YcsbTxnConfig) -> Vec<PlannedFrame> {
    (0..cfg.records)
        .map(|id| {
            let op = TxnOp::Write {
                txn: 0,
                key: numeric_key(id),
                tag: tag_for(id),
                val: Some(value_for(id, 0, cfg.value_len)),
            };
            PlannedFrame { flow: 0, payload: op.encode(), op }
        })
        .collect()
}

/// Builds tenant `tenant`'s deterministic plan of `n` run-phase frames.
///
/// Same `(cfg, tenant, n)` → byte-identical plan. Interactive RMW
/// transactions (workload F) appear as a `BeginRead` at one slot and the
/// paired `WriteCommit` exactly `cfg.rmw_gap` slots later; the slots in
/// between carry other operations, so several transactions from the same
/// tenant overlap in flight — that overlap (plus cross-tenant conflicts
/// on skewed keys) is what produces real aborts.
pub fn plan_tenant(cfg: &YcsbTxnConfig, tenant: usize, n: u64) -> TenantPlan {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (tenant as u64).wrapping_mul(0xA5A5_A5A5));
    let window = if cfg.churn_window == 0 { cfg.records } else { cfg.churn_window.min(cfg.records) };
    let chooser = match cfg.mix {
        TxnMix::D => Chooser::latest(window),
        _ => Chooser::new(cfg.skew, window),
    };
    // Fresh inserts (D and E) go above the loaded range, partitioned per
    // tenant so tenants never collide on insert keys.
    let mut next_insert = cfg.records + tenant as u64 * (1 << 32);
    let mut txn_counter: u64 = 0;
    let txn_id = |tenant: usize, c: u64| ((tenant as u64 + 1) << 48) | c;
    // RMW second frames scheduled for future slots.
    let mut scheduled: std::collections::BTreeMap<u64, TxnOp> = std::collections::BTreeMap::new();
    let mut frames = Vec::with_capacity(n as usize);
    for slot in 0..n {
        let op = if let Some(op) = scheduled.remove(&slot) {
            op
        } else {
            // Working-set churn: the window slides across the key space.
            // Advance by a whole window per rotation so consecutive
            // working sets are (nearly) disjoint until wrap-around.
            let rotation =
                slot.checked_div(cfg.churn_every).unwrap_or(0).wrapping_mul(window);
            let base = rotation % cfg.records.max(1);
            let highest = next_insert.saturating_sub(1);
            let pick = |rng: &mut StdRng| {
                let raw = chooser.next(rng, highest);
                if matches!(cfg.mix, TxnMix::D) && raw >= cfg.records {
                    // Read-latest over this tenant's own inserts.
                    raw
                } else {
                    (base + raw % window) % cfg.records.max(1)
                }
            };
            let roll: f64 = rng.gen();
            match cfg.mix {
                TxnMix::C => TxnOp::Read { txn: 0, key: numeric_key(pick(&mut rng)) },
                TxnMix::A | TxnMix::B => {
                    let read_frac = if cfg.mix == TxnMix::A { 0.5 } else { 0.95 };
                    let id = pick(&mut rng);
                    if roll < read_frac {
                        TxnOp::Read { txn: 0, key: numeric_key(id) }
                    } else {
                        TxnOp::Write {
                            txn: 0,
                            key: numeric_key(id),
                            tag: tag_for(id),
                            val: Some(value_for(id, slot + 1, cfg.value_len)),
                        }
                    }
                }
                TxnMix::D => {
                    if roll < 0.95 {
                        TxnOp::Read { txn: 0, key: numeric_key(pick(&mut rng)) }
                    } else {
                        let id = next_insert;
                        next_insert += 1;
                        TxnOp::Write {
                            txn: 0,
                            key: numeric_key(id),
                            tag: tag_for(id),
                            val: Some(value_for(id, 0, cfg.value_len)),
                        }
                    }
                }
                TxnMix::E => {
                    if roll < 0.95 {
                        let id = pick(&mut rng);
                        if slot % 2 == 0 {
                            // Primary-order range scan from the chosen key.
                            TxnOp::Scan {
                                txn: 0,
                                space: 0,
                                lo: numeric_key(id),
                                hi: numeric_key(id + cfg.scan_limit as u64 * 2),
                                limit: cfg.scan_limit,
                            }
                        } else {
                            // Secondary-order scan: one index tag's members.
                            let tag = tag_for(id);
                            TxnOp::Scan { txn: 0, space: 1, lo: tag, hi: tag, limit: cfg.scan_limit }
                        }
                    } else {
                        let id = next_insert;
                        next_insert += 1;
                        TxnOp::Write {
                            txn: 0,
                            key: numeric_key(id),
                            tag: tag_for(id),
                            val: Some(value_for(id, 0, cfg.value_len)),
                        }
                    }
                }
                TxnMix::F => {
                    let id = pick(&mut rng);
                    if roll < 0.5 {
                        TxnOp::Read { txn: 0, key: numeric_key(id) }
                    } else {
                        // Two-frame interactive RMW: BeginRead now, the
                        // paired WriteCommit `rmw_gap` arrivals later.
                        let t = txn_id(tenant, txn_counter);
                        txn_counter += 1;
                        let commit_slot = slot + cfg.rmw_gap.max(1);
                        scheduled.insert(
                            commit_slot,
                            TxnOp::WriteCommit {
                                txn: t,
                                key: numeric_key(id),
                                tag: tag_for(id),
                                val: Some(value_for(id, slot + 1, cfg.value_len)),
                            },
                        );
                        TxnOp::BeginRead { txn: t, flags: 0, key: numeric_key(id) }
                    }
                }
            }
        };
        frames.push(PlannedFrame { flow: tenant as u64, payload: op.encode(), op });
    }
    // Any RMW commits scheduled past the horizon still fire, appended in
    // slot order, so no transaction is left dangling.
    for (_, op) in scheduled {
        frames.push(PlannedFrame { flow: tenant as u64, payload: op.encode(), op });
    }
    TenantPlan { frames }
}

/// Builds one plan per tenant.
pub fn plan_all(cfg: &YcsbTxnConfig, per_tenant: u64) -> Vec<TenantPlan> {
    (0..cfg.tenants.max(1)).map(|t| plan_tenant(cfg, t, per_tenant)).collect()
}

/// Rewrites a `BeginRead` frame as a conflict retry (sets
/// [`FLAG_RETRY`]), used by drivers that re-issue aborted transactions.
pub fn retry_frame(op: &TxnOp) -> Option<TxnOp> {
    match op {
        TxnOp::BeginRead { txn, key, .. } => {
            Some(TxnOp::BeginRead { txn: *txn, flags: FLAG_RETRY, key: *key })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn plans_replay_identically_from_the_same_seed() {
        let cfg = YcsbTxnConfig { mix: TxnMix::F, ..Default::default() };
        let a = plan_tenant(&cfg, 0, 2000);
        let b = plan_tenant(&cfg, 0, 2000);
        assert_eq!(a.frames(), b.frames(), "same seed must replay identically");
        let c = plan_tenant(&cfg, 1, 2000);
        assert_ne!(a.frames(), c.frames(), "tenants must diverge");
        let d = plan_tenant(&YcsbTxnConfig { seed: 2, ..cfg }, 0, 2000);
        assert_ne!(a.frames(), d.frames(), "seeds must diverge");
    }

    #[test]
    fn zipfian_chooser_concentrates_mass_on_the_head() {
        let chooser = Chooser::new(Skew::Zipfian, 10_000);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(chooser.next(&mut rng, 0)).or_insert(0) += 1;
        }
        // Top 1 % of keys should draw far more than 1 % of accesses at
        // theta 0.99 (empirically ~60 %+); uniform stays near 1 %.
        let head: u64 = (0..100).map(|i| counts.get(&i).copied().unwrap_or(0)).sum();
        assert!(head > 15_000, "zipfian head mass {head} of 50000");
        let uni = Chooser::new(Skew::Uniform, 10_000);
        let mut ucounts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..50_000 {
            *ucounts.entry(uni.next(&mut rng, 0)).or_insert(0) += 1;
        }
        let uhead: u64 = (0..100).map(|i| ucounts.get(&i).copied().unwrap_or(0)).sum();
        assert!(uhead < 1500, "uniform head mass {uhead} of 50000");
    }

    #[test]
    fn latest_chooser_tracks_the_insert_frontier() {
        let chooser = Chooser::latest(100);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = chooser.next(&mut rng, 5000);
            assert!(v <= 5000, "latest draw {v} beyond frontier");
            // Mass concentrates near the frontier.
        }
        let near: usize = (0..1000)
            .filter(|_| 5000 - chooser.next(&mut rng, 5000) < 10)
            .count();
        assert!(near > 500, "only {near}/1000 draws near the frontier");
    }

    #[test]
    fn churn_rotates_the_hot_set() {
        let cfg = YcsbTxnConfig {
            mix: TxnMix::A,
            records: 10_000,
            churn_window: 100,
            churn_every: 500,
            skew: Skew::Uniform,
            ..Default::default()
        };
        let plan = plan_tenant(&cfg, 0, 1000);
        let keys_of = |range: std::ops::Range<usize>| -> std::collections::HashSet<[u8; KEY_LEN]> {
            plan.frames()[range]
                .iter()
                .filter_map(|f| match &f.op {
                    TxnOp::Read { key, .. } | TxnOp::Write { key, .. } => Some(*key),
                    _ => None,
                })
                .collect()
        };
        let first = keys_of(0..500);
        let second = keys_of(500..1000);
        let overlap = first.intersection(&second).count();
        assert!(
            overlap * 4 < first.len().min(second.len()),
            "windows barely rotated: {overlap} shared of {}",
            first.len()
        );
    }

    #[test]
    fn rmw_transactions_pair_exactly_and_in_order() {
        let cfg = YcsbTxnConfig { mix: TxnMix::F, rmw_gap: 4, ..Default::default() };
        let plan = plan_tenant(&cfg, 3, 3000);
        let mut begins: HashMap<u64, usize> = HashMap::new();
        let mut commits: HashMap<u64, usize> = HashMap::new();
        for (i, f) in plan.frames().iter().enumerate() {
            match &f.op {
                TxnOp::BeginRead { txn, .. } => {
                    assert!(begins.insert(*txn, i).is_none(), "duplicate begin {txn}");
                }
                TxnOp::WriteCommit { txn, .. } => {
                    assert!(commits.insert(*txn, i).is_none(), "duplicate commit {txn}");
                }
                TxnOp::Read { txn: 0, .. } => {}
                other => panic!("unexpected op in F mix: {other:?}"),
            }
        }
        assert!(!begins.is_empty(), "no RMW transactions drawn");
        assert_eq!(begins.len(), commits.len(), "every begin needs its commit");
        for (txn, b) in &begins {
            let c = commits[txn];
            assert!(c > *b, "commit of {txn} precedes its begin");
        }
        // Txn ids carry the tenant in the high bits.
        assert!(begins.keys().all(|t| t >> 48 == 4));
    }

    #[test]
    fn mix_fractions_are_roughly_honoured() {
        let cfg = YcsbTxnConfig { mix: TxnMix::B, records: 1000, ..Default::default() };
        let plan = plan_tenant(&cfg, 0, 10_000);
        let reads = plan
            .frames()
            .iter()
            .filter(|f| matches!(f.op, TxnOp::Read { .. }))
            .count();
        let frac = reads as f64 / plan.len() as f64;
        assert!((frac - 0.95).abs() < 0.02, "B read fraction {frac}");

        let e = plan_tenant(
            &YcsbTxnConfig { mix: TxnMix::E, records: 1000, ..Default::default() },
            0,
            10_000,
        );
        let prim = e.frames().iter().filter(|f| matches!(f.op, TxnOp::Scan { space: 0, .. })).count();
        let sec = e.frames().iter().filter(|f| matches!(f.op, TxnOp::Scan { space: 1, .. })).count();
        assert!(prim > 3000 && sec > 3000, "E must scan both orders: {prim}/{sec}");
    }

    #[test]
    fn load_frames_cover_every_record_with_tags() {
        let cfg = YcsbTxnConfig { records: 64, ..Default::default() };
        let load = load_frames(&cfg);
        assert_eq!(load.len(), 64);
        for (i, f) in load.iter().enumerate() {
            match &f.op {
                TxnOp::Write { txn: 0, key, tag, val: Some(v) } => {
                    assert_eq!(*key, numeric_key(i as u64));
                    assert_eq!(*tag, tag_for(i as u64));
                    assert_eq!(*v, value_for(i as u64, 0, cfg.value_len));
                    assert_ne!(*tag, [0u8; KEY_LEN], "tag 0 means unindexed");
                }
                other => panic!("unexpected load op {other:?}"),
            }
        }
    }

    #[test]
    fn retry_frame_sets_the_flag() {
        let op = TxnOp::BeginRead { txn: 7, flags: 0, key: numeric_key(1) };
        match retry_frame(&op) {
            Some(TxnOp::BeginRead { flags, .. }) => assert_eq!(flags, FLAG_RETRY),
            other => panic!("{other:?}"),
        }
        assert!(retry_frame(&TxnOp::Commit { txn: 7 }).is_none());
    }
}
