//! Application workloads for the TreeSLS evaluation.
//!
//! From-scratch equivalents of the paper's §7 applications, with every
//! data structure generic over [`treesls_extsync::MemIo`] so the same
//! code runs transparently persisted inside TreeSLS and unprotected on
//! the baseline backends:
//!
//! * [`hashkv`] — open-addressing hash KV (the Memcached/Redis stand-in).
//! * [`lsm`] — log-structured merge tree with optional WAL (RocksDB /
//!   LevelDB stand-in, §7.5.2).
//! * [`btree`] — page-based B+ tree (SQLite stand-in).
//! * [`phoenix`] — WordCount / KMeans / PCA compute kernels (Phoenix-2.0
//!   stand-ins, Table 2 / Figure 10).
//! * [`server`] — in-SLS server and client *programs* (re-entrant step
//!   machines) for both network-port and IPC deployments.
//! * [`client`] — host-side (external) closed-loop clients with latency
//!   histograms.
//! * [`workload`] — YCSB generators (zipfian, mixes A/B/C, 100 % update /
//!   insert) and the Facebook `Prefix_dist` distribution.
//! * [`ycsb`] — transactional YCSB A–F over the `treesls-txn` wire
//!   protocol: choosers, working-set churn, multi-tenant open-loop frame
//!   plans with paired two-frame RMW transactions.
//! * [`hist`] — log-bucketed latency histograms (P50/P95/P99).
//! * [`wire`] — the KV wire protocol shared by servers and clients.
//! * [`testmem`] — a flat host-memory backend (tests and baselines).

pub mod btree;
pub mod client;
pub mod hashkv;
pub mod hist;
pub mod lsm;
pub mod openloop;
pub mod phoenix;
pub mod server;
pub mod testmem;
pub mod wire;
pub mod workload;
pub mod ycsb;

pub use hashkv::HashKv;
pub use hist::Histogram;
pub use lsm::{Lsm, LsmConfig};
pub use wire::{KvOp, KvResp};
