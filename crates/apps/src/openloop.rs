//! Open-loop load generation: fixed arrival rate, deterministic seeded
//! schedule, latency measured from the *scheduled* arrival time.
//!
//! A closed-loop client waits for each response before issuing the next
//! request, so a slow server silently throttles the offered load and the
//! measured latency hides every queueing delay behind the throttle — the
//! *coordinated omission* problem. An open-loop generator fixes the
//! arrival schedule up front: requests fire at their scheduled instants
//! whether or not earlier ones completed, a lagging server shows up as
//! queueing delay (latency counted from the scheduled arrival, not the
//! actual send), and an overloaded one shows up as sheds/timeouts — never
//! as a quietly reduced offered rate. This is the generator behind the
//! `net_scale` latency-under-load curves.
//!
//! The generator is decoupled from the NIC through [`OpenLoopTransport`]
//! so its pacing semantics are unit-testable against a scripted stub (see
//! the saturation tests) without booting a whole system.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use treesls_net::{NetError, VirtualNic};

use crate::client::RunStats;
use crate::hist::Histogram;
use crate::server::xorshift64;

/// A deterministic seeded arrival schedule: arrival *i* fires at
/// `i · period + jitter_i` nanoseconds, with `jitter_i` drawn uniformly
/// from `[0, period)` by a seeded xorshift64 chain. Two schedules built
/// with the same `(rate, seed)` produce byte-identical sequences;
/// arrivals are strictly increasing (each lives inside its own period
/// slot), so the offered rate is exactly `rate` regardless of seed.
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    period_ns: u64,
    rng: u64,
    idx: u64,
}

impl ArrivalSchedule {
    /// Builds the schedule for `rate` arrivals per second (minimum 1).
    pub fn new(rate: u64, seed: u64) -> Self {
        // Mix the seed so adjacent seeds diverge (xorshift64 must also
        // not start at 0, hence the trailing `| 1`).
        let mixed = (seed ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        Self { period_ns: 1_000_000_000 / rate.max(1), rng: mixed | 1, idx: 0 }
    }

    /// The nanosecond offset of the next arrival (monotone across calls).
    pub fn next_arrival_ns(&mut self) -> u64 {
        self.rng = xorshift64(self.rng);
        let jitter = if self.period_ns > 1 { self.rng % self.period_ns } else { 0 };
        let at = self.idx * self.period_ns + jitter;
        self.idx += 1;
        at
    }
}

impl Iterator for ArrivalSchedule {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        Some(self.next_arrival_ns())
    }
}

/// Outcome of one non-blocking send attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Admitted; await the returned sequence number.
    Sent(u64),
    /// Shed by admission control (request never reached the server).
    Shed,
    /// Non-retryable transport failure.
    Failed,
}

/// The transport surface the open-loop generator needs: non-blocking
/// send, response pumping/harvesting, and the §5 oracle inputs.
/// Implemented by [`VirtualNic`]; test stubs script the server side.
pub trait OpenLoopTransport: Sync {
    /// Attempts to send one request; never blocks on the server.
    fn send(&self, flow: u64, payload: &[u8]) -> SendOutcome;
    /// Drains arrived responses into the pending table.
    fn pump(&self);
    /// Takes the response for `seq` if it has arrived.
    fn try_take(&self, seq: u64) -> Option<Vec<u8>>;
    /// Gives up on `seq` (frees its admission credit).
    fn abandon(&self, seq: u64);
    /// The committed checkpoint version (for the §5 oracle).
    fn committed_version(&self) -> u64;
    /// Whether external synchrony is on (enables the §5 oracle).
    fn ext_sync(&self) -> bool;
}

impl OpenLoopTransport for VirtualNic {
    fn send(&self, flow: u64, payload: &[u8]) -> SendOutcome {
        match self.send_request(flow, payload) {
            Ok(seq) => SendOutcome::Sent(seq),
            Err(NetError::Busy) => SendOutcome::Shed,
            Err(NetError::Ring(_)) => SendOutcome::Failed,
        }
    }
    fn pump(&self) {
        VirtualNic::pump(self)
    }
    fn try_take(&self, seq: u64) -> Option<Vec<u8>> {
        VirtualNic::try_take(self, seq)
    }
    fn abandon(&self, seq: u64) {
        VirtualNic::abandon(self, seq)
    }
    fn committed_version(&self) -> u64 {
        VirtualNic::committed_version(self)
    }
    fn ext_sync(&self) -> bool {
        VirtualNic::ext_sync(self)
    }
}

/// Shape of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered load in requests per second, split evenly across
    /// generator threads.
    pub rate: u64,
    /// Scheduling window: arrivals are scheduled strictly inside it (the
    /// run then drains outstanding requests for up to `op_timeout`).
    pub duration: Duration,
    /// Seed of the arrival schedules (generator `g` uses `seed ^ g`).
    pub seed: u64,
    /// Generator threads (each with its own independent schedule).
    pub generators: usize,
    /// Age at which an unanswered request is abandoned and counted as a
    /// timeout (bounds both memory and the post-window drain).
    pub op_timeout: Duration,
}

/// Result of an open-loop run: the usual [`RunStats`] plus the open-loop
/// honesty counters — how much load was actually offered and how late the
/// generator fired when it fell behind its own schedule.
#[derive(Debug, Clone)]
pub struct OpenLoopStats {
    /// Completion stats; `latency` is measured from the *scheduled*
    /// arrival (coordinated-omission-safe), `ops + timeouts + sheds`
    /// accounts for every offered request.
    pub run: RunStats,
    /// Requests offered (send attempted): always the full schedule,
    /// independent of server speed.
    pub offered: u64,
    /// Sends that fired more than one period after their scheduled
    /// instant (the generator itself fell behind — e.g. the send path
    /// got slow; distinct from server-side queueing).
    pub late_sends: u64,
    /// Worst send lateness in nanoseconds.
    pub max_lateness_ns: u64,
}

impl OpenLoopStats {
    /// Offered load in requests per second over the scheduling window.
    pub fn offered_rate(&self, window: Duration) -> f64 {
        if window.is_zero() {
            0.0
        } else {
            self.offered as f64 / window.as_secs_f64()
        }
    }
}

/// One in-flight request: its sequence number, scheduled arrival and the
/// committed version at send time (for the §5 oracle).
struct Outstanding {
    seq: u64,
    sched_ns: u64,
    v_send: u64,
}

/// Runs `cfg.generators` open-loop generator threads against `transport`.
///
/// `make_op(generator, index)` builds the `(flow, payload)` of one
/// request; it must be deterministic in its arguments if the run is to be
/// replayable. Each generator walks its own [`ArrivalSchedule`]; arrivals
/// are *never* skipped or deferred because the server lags — a send that
/// cannot be admitted is counted as a shed and the schedule moves on.
pub fn run_open_loop<T: OpenLoopTransport>(
    transport: &T,
    cfg: &OpenLoopConfig,
    make_op: impl Fn(usize, u64) -> (u64, Vec<u8>) + Sync,
) -> OpenLoopStats {
    let generators = cfg.generators.max(1);
    let per_gen_rate = (cfg.rate / generators as u64).max(1);
    let duration_ns = cfg.duration.as_nanos() as u64;
    let timeout_ns = cfg.op_timeout.as_nanos() as u64;

    let total_ops = AtomicU64::new(0);
    let total_timeouts = AtomicU64::new(0);
    let total_sheds = AtomicU64::new(0);
    let total_violations = AtomicU64::new(0);
    let total_offered = AtomicU64::new(0);
    let total_late = AtomicU64::new(0);
    let max_lateness = AtomicU64::new(0);
    let merged = parking_lot::Mutex::new(Histogram::new());
    let start = Instant::now();

    std::thread::scope(|s| {
        for g in 0..generators {
            let make_op = &make_op;
            let total_ops = &total_ops;
            let total_timeouts = &total_timeouts;
            let total_sheds = &total_sheds;
            let total_violations = &total_violations;
            let total_offered = &total_offered;
            let total_late = &total_late;
            let max_lateness = &max_lateness;
            let merged = &merged;
            s.spawn(move || {
                let mut sched = ArrivalSchedule::new(per_gen_rate, cfg.seed ^ g as u64);
                let mut outstanding: Vec<Outstanding> = Vec::new();
                let mut latency = Histogram::new();
                let mut ops = 0u64;
                let mut timeouts = 0u64;
                let mut sheds = 0u64;
                let mut violations = 0u64;
                let mut offered = 0u64;
                let mut late = 0u64;
                let mut worst_late = 0u64;
                let now_ns = || start.elapsed().as_nanos() as u64;

                let harvest = |outstanding: &mut Vec<Outstanding>,
                                   latency: &mut Histogram,
                                   ops: &mut u64,
                                   timeouts: &mut u64,
                                   violations: &mut u64| {
                    if outstanding.is_empty() {
                        return;
                    }
                    transport.pump();
                    let now = now_ns();
                    outstanding.retain(|o| {
                        if let Some(_resp) = transport.try_take(o.seq) {
                            // Coordinated-omission-safe latency: from the
                            // scheduled arrival, so time spent queued
                            // behind a pause is charged to the request.
                            latency.record(now.saturating_sub(o.sched_ns));
                            if transport.ext_sync() && transport.committed_version() <= o.v_send {
                                *violations += 1;
                            }
                            *ops += 1;
                            false
                        } else if now.saturating_sub(o.sched_ns) > timeout_ns {
                            transport.abandon(o.seq);
                            *timeouts += 1;
                            false
                        } else {
                            true
                        }
                    });
                };

                // Scheduling window: fire every arrival, on time or late.
                let mut index = 0u64;
                loop {
                    let at = sched.next_arrival_ns();
                    if at >= duration_ns {
                        break;
                    }
                    // Wait for the scheduled instant, harvesting while
                    // ahead of schedule; never wait for the server.
                    loop {
                        let now = now_ns();
                        if now >= at {
                            break;
                        }
                        harvest(
                            &mut outstanding,
                            &mut latency,
                            &mut ops,
                            &mut timeouts,
                            &mut violations,
                        );
                        // Re-read the clock: the harvest above may have
                        // crossed the scheduled instant (a wrapping
                        // subtraction here would sleep ~forever).
                        let Some(gap) = at.checked_sub(now_ns()) else { break };
                        if gap > 200_000 {
                            std::thread::sleep(Duration::from_nanos(gap - 100_000));
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    let fired = now_ns();
                    let lateness = fired.saturating_sub(at);
                    if lateness > 1_000_000_000 / per_gen_rate.max(1) {
                        late += 1;
                    }
                    worst_late = worst_late.max(lateness);
                    let (flow, payload) = make_op(g, index);
                    index += 1;
                    offered += 1;
                    let v_send = transport.committed_version();
                    match transport.send(flow, &payload) {
                        SendOutcome::Sent(seq) => {
                            outstanding.push(Outstanding { seq, sched_ns: at, v_send })
                        }
                        SendOutcome::Shed => sheds += 1,
                        SendOutcome::Failed => timeouts += 1,
                    }
                }

                // Drain: give outstanding requests up to op_timeout each.
                while !outstanding.is_empty() {
                    harvest(
                        &mut outstanding,
                        &mut latency,
                        &mut ops,
                        &mut timeouts,
                        &mut violations,
                    );
                    if !outstanding.is_empty() {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }

                total_ops.fetch_add(ops, Ordering::Relaxed);
                total_timeouts.fetch_add(timeouts, Ordering::Relaxed);
                total_sheds.fetch_add(sheds, Ordering::Relaxed);
                total_violations.fetch_add(violations, Ordering::Relaxed);
                total_offered.fetch_add(offered, Ordering::Relaxed);
                total_late.fetch_add(late, Ordering::Relaxed);
                max_lateness.fetch_max(worst_late, Ordering::Relaxed);
                merged.lock().merge(&latency);
            });
        }
    });

    OpenLoopStats {
        run: RunStats {
            ops: total_ops.load(Ordering::Relaxed),
            timeouts: total_timeouts.load(Ordering::Relaxed),
            sheds: total_sheds.load(Ordering::Relaxed),
            sync_violations: total_violations.load(Ordering::Relaxed),
            elapsed: start.elapsed(),
            latency: merged.into_inner(),
        },
        offered: total_offered.load(Ordering::Relaxed),
        late_sends: total_late.load(Ordering::Relaxed),
        max_lateness_ns: max_lateness.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    #[test]
    fn schedule_replays_identically_from_the_same_seed() {
        let a: Vec<u64> = ArrivalSchedule::new(100_000, 42).take(10_000).collect();
        let b: Vec<u64> = ArrivalSchedule::new(100_000, 42).take(10_000).collect();
        assert_eq!(a, b, "same seed must replay the identical arrival sequence");
        let c: Vec<u64> = ArrivalSchedule::new(100_000, 43).take(10_000).collect();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn schedule_is_monotone_and_holds_the_rate() {
        let mut s = ArrivalSchedule::new(50_000, 7); // 20 µs period
        let mut prev = 0u64;
        let n = 50_000u64;
        let mut last = 0u64;
        for i in 0..n {
            let at = s.next_arrival_ns();
            assert!(i == 0 || at > prev, "arrival {i} not increasing: {prev} -> {at}");
            prev = at;
            last = at;
        }
        // n arrivals span n periods (±1 period of jitter): the offered
        // rate is the configured rate by construction.
        let period = 20_000u64;
        assert!(last >= (n - 1) * period && last < (n + 1) * period, "span {last}");
    }

    /// A scripted transport: admits everything, responds to the first
    /// `capacity` requests only (on pump), never blocks.
    #[derive(Default)]
    struct StubTransport {
        capacity: u64,
        served: AtomicU64,
        next_seq: AtomicU64,
        inbox: Mutex<Vec<u64>>,
        ready: Mutex<HashMap<u64, Vec<u8>>>,
        send_spin_ns: u64,
    }

    impl OpenLoopTransport for StubTransport {
        fn send(&self, _flow: u64, _payload: &[u8]) -> SendOutcome {
            if self.send_spin_ns > 0 {
                // A deliberately slow send path (models a generator that
                // cannot keep up with its own schedule).
                let t0 = Instant::now();
                while (t0.elapsed().as_nanos() as u64) < self.send_spin_ns {
                    std::hint::spin_loop();
                }
            }
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            self.inbox.lock().push(seq);
            SendOutcome::Sent(seq)
        }
        fn pump(&self) {
            let mut inbox = self.inbox.lock();
            let mut ready = self.ready.lock();
            while let Some(seq) = inbox.first().copied() {
                if self.served.load(Ordering::Relaxed) >= self.capacity {
                    break;
                }
                inbox.remove(0);
                self.served.fetch_add(1, Ordering::Relaxed);
                ready.insert(seq, vec![0]);
            }
        }
        fn try_take(&self, seq: u64) -> Option<Vec<u8>> {
            self.ready.lock().remove(&seq)
        }
        fn abandon(&self, seq: u64) {
            self.inbox.lock().retain(|&s| s != seq);
        }
        fn committed_version(&self) -> u64 {
            0
        }
        fn ext_sync(&self) -> bool {
            false
        }
    }

    #[test]
    fn saturation_keeps_offered_load_fixed() {
        // A server that NEVER responds. A closed-loop fleet would stall
        // after its credit window; the open-loop generator must keep
        // offering the full schedule and report the loss as timeouts.
        let stub = StubTransport { capacity: 0, ..Default::default() };
        let cfg = OpenLoopConfig {
            rate: 50_000,
            duration: Duration::from_millis(40),
            seed: 9,
            generators: 2,
            op_timeout: Duration::from_millis(20),
        };
        let stats = run_open_loop(&stub, &cfg, |_, i| (i, vec![1, 2, 3]));
        // Offered load is the schedule, not the server: each generator
        // schedules ~rate/2 * 40ms arrivals regardless of responses.
        let expected = 50_000 * 40 / 1000;
        assert!(
            stats.offered >= expected - 4 && stats.offered <= expected + 4,
            "offered {} but schedule holds ~{expected}",
            stats.offered
        );
        assert_eq!(stats.run.ops, 0, "no responses were ever produced");
        assert_eq!(
            stats.run.timeouts, stats.offered,
            "every offered request must be accounted as a timeout"
        );
    }

    #[test]
    fn server_capacity_bounds_completions_not_offers() {
        let stub = StubTransport { capacity: 300, ..Default::default() };
        let cfg = OpenLoopConfig {
            rate: 50_000,
            duration: Duration::from_millis(40),
            seed: 5,
            generators: 2,
            op_timeout: Duration::from_millis(20),
        };
        let stats = run_open_loop(&stub, &cfg, |_, i| (i, vec![7]));
        let expected = 50_000 * 40 / 1000;
        assert!(
            stats.offered >= expected - 4,
            "offered {} collapsed below the schedule {expected}",
            stats.offered
        );
        assert_eq!(stats.run.ops, 300, "completions are bounded by server capacity");
        assert_eq!(stats.run.timeouts, stats.offered - 300);
    }

    #[test]
    fn lateness_is_reported_when_the_generator_falls_behind() {
        // The send path takes ~80 µs while the schedule demands one send
        // every 20 µs: the generator falls behind its own clock. It must
        // still offer the whole schedule (late, flagged) instead of
        // silently degrading into a closed loop.
        let stub = StubTransport {
            capacity: u64::MAX,
            send_spin_ns: 80_000,
            ..Default::default()
        };
        let cfg = OpenLoopConfig {
            rate: 50_000,
            duration: Duration::from_millis(20),
            seed: 3,
            generators: 1,
            op_timeout: Duration::from_millis(50),
        };
        let stats = run_open_loop(&stub, &cfg, |_, i| (i, vec![0]));
        let expected = 50_000 * 20 / 1000;
        assert!(
            stats.offered >= expected - 2,
            "offered {} but the schedule holds {expected} arrivals",
            stats.offered
        );
        assert!(stats.late_sends > 0, "falling behind must be reported as late sends");
        assert!(stats.max_lateness_ns > 0);
    }
}
