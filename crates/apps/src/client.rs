//! Host-side (external) clients driving TreeSLS servers through the
//! virtual NIC.
//!
//! These play the external systems of §5: they live outside the SLS (their
//! state survives crashes like any real remote client) and observe only
//! externally visible responses. Each operation carries a *flow id* the
//! NIC hashes onto a queue (RSS steering). The drivers record
//! per-operation latency histograms for Figures 11, 12 and 14 plus the
//! `treesls-net` load reports, and carry a built-in external-synchrony
//! oracle: with ext-sync on, a response observed at a committed version no
//! later than the version current at send time is a §5 violation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use treesls_net::{CallError, CallOutcome, VirtualNic};

use crate::hist::Histogram;
use crate::wire::{KvOp, KvResp};

/// Outcome of one client run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Completed operations.
    pub ops: u64,
    /// Timed-out operations.
    pub timeouts: u64,
    /// Operations shed by admission control (`Busy` replies).
    pub sheds: u64,
    /// External-synchrony violations observed (responses visible before
    /// their covering checkpoint committed). Must be 0 with ext-sync on.
    pub sync_violations: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-operation latency (ns), completed operations only.
    pub latency: Histogram,
}

impl RunStats {
    /// Throughput in completed operations per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// A closed-loop client issuing operations from an iterator against a
/// NIC; each operation names the flow it belongs to (queue steering is
/// the NIC's job).
pub fn run_closed_loop(
    nic: &VirtualNic,
    mut ops: impl FnMut() -> Option<(u64, KvOp)>,
    timeout: Duration,
) -> RunStats {
    let mut latency = Histogram::new();
    let mut done = 0u64;
    let mut timeouts = 0u64;
    let mut sheds = 0u64;
    let mut sync_violations = 0u64;
    let start = Instant::now();
    while let Some((flow, op)) = ops() {
        let t0 = Instant::now();
        let v_send = nic.committed_version();
        match nic.call(flow, &op.encode(), timeout) {
            Ok(CallOutcome::Reply(resp)) => {
                debug_assert!(KvResp::decode(&resp).is_some());
                // §5 oracle: the producing state lives in interval
                // v_send+1 (or later), so its covering commit leaves the
                // committed version strictly above v_send.
                if nic.ext_sync() && nic.committed_version() <= v_send {
                    sync_violations += 1;
                }
                latency.record(t0.elapsed().as_nanos() as u64);
                done += 1;
            }
            Ok(CallOutcome::Busy) => {
                // Admission control shed the request; back off briefly so
                // a fleet of closed-loop clients doesn't busy-spin against
                // an exhausted credit budget.
                sheds += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            Ok(CallOutcome::TimedOut) | Err(_) => {
                timeouts += 1;
            }
        }
    }
    RunStats { ops: done, timeouts, sheds, sync_violations, elapsed: start.elapsed(), latency }
}

/// [`run_closed_loop`] over the NIC's *configured* overall call timeout
/// ([`NicConfig::call_timeout`](treesls_net::NicConfig)): every operation
/// goes through [`VirtualNic::call_checked`], so a wedged server surfaces
/// as [`CallError::TimedOut`] after the deployment-chosen bound instead
/// of a per-call-site magic number, and a closed NIC (the primary died,
/// e.g. mid-failover) ends the run instead of burning a timeout per
/// remaining operation.
pub fn run_closed_loop_checked(
    nic: &VirtualNic,
    mut ops: impl FnMut() -> Option<(u64, KvOp)>,
) -> RunStats {
    let mut latency = Histogram::new();
    let mut done = 0u64;
    let mut timeouts = 0u64;
    let mut sheds = 0u64;
    let mut sync_violations = 0u64;
    let start = Instant::now();
    while let Some((flow, op)) = ops() {
        let t0 = Instant::now();
        let v_send = nic.committed_version();
        match nic.call_checked(flow, &op.encode()) {
            Ok(resp) => {
                debug_assert!(KvResp::decode(&resp).is_some());
                if nic.ext_sync() && nic.committed_version() <= v_send {
                    sync_violations += 1;
                }
                latency.record(t0.elapsed().as_nanos() as u64);
                done += 1;
            }
            Err(CallError::Busy) => {
                sheds += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(CallError::TimedOut) => {
                timeouts += 1;
            }
            // The device is gone (machine failed or was shut down);
            // the fleet stops rather than timing out per operation.
            Err(CallError::Closed) | Err(CallError::Ring(_)) => break,
        }
    }
    RunStats { ops: done, timeouts, sheds, sync_violations, elapsed: start.elapsed(), latency }
}

/// Runs `nthreads` closed-loop clients in parallel, each drawing from its
/// own operation stream (`make_ops(thread_idx)`), and merges the results.
pub fn run_parallel_clients(
    nic: &VirtualNic,
    nthreads: usize,
    make_ops: impl Fn(usize) -> Box<dyn FnMut() -> Option<(u64, KvOp)> + Send> + Sync,
    timeout: Duration,
) -> RunStats {
    let total_ops = AtomicU64::new(0);
    let total_timeouts = AtomicU64::new(0);
    let total_sheds = AtomicU64::new(0);
    let total_violations = AtomicU64::new(0);
    let merged = parking_lot::Mutex::new(Histogram::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..nthreads {
            let mut ops = make_ops(t);
            let total_ops = &total_ops;
            let total_timeouts = &total_timeouts;
            let total_sheds = &total_sheds;
            let total_violations = &total_violations;
            let merged = &merged;
            s.spawn(move || {
                let stats = run_closed_loop(nic, &mut *ops, timeout);
                total_ops.fetch_add(stats.ops, Ordering::Relaxed);
                total_timeouts.fetch_add(stats.timeouts, Ordering::Relaxed);
                total_sheds.fetch_add(stats.sheds, Ordering::Relaxed);
                total_violations.fetch_add(stats.sync_violations, Ordering::Relaxed);
                merged.lock().merge(&stats.latency);
            });
        }
    });
    RunStats {
        ops: total_ops.load(Ordering::Relaxed),
        timeouts: total_timeouts.load(Ordering::Relaxed),
        sheds: total_sheds.load(Ordering::Relaxed),
        sync_violations: total_violations.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        latency: merged.into_inner(),
    }
}

/// [`run_parallel_clients`] over the NIC's configured call timeout
/// (see [`run_closed_loop_checked`]).
pub fn run_parallel_clients_checked(
    nic: &VirtualNic,
    nthreads: usize,
    make_ops: impl Fn(usize) -> Box<dyn FnMut() -> Option<(u64, KvOp)> + Send> + Sync,
) -> RunStats {
    let total_ops = AtomicU64::new(0);
    let total_timeouts = AtomicU64::new(0);
    let total_sheds = AtomicU64::new(0);
    let total_violations = AtomicU64::new(0);
    let merged = parking_lot::Mutex::new(Histogram::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..nthreads {
            let mut ops = make_ops(t);
            let total_ops = &total_ops;
            let total_timeouts = &total_timeouts;
            let total_sheds = &total_sheds;
            let total_violations = &total_violations;
            let merged = &merged;
            s.spawn(move || {
                let stats = run_closed_loop_checked(nic, &mut *ops);
                total_ops.fetch_add(stats.ops, Ordering::Relaxed);
                total_timeouts.fetch_add(stats.timeouts, Ordering::Relaxed);
                total_sheds.fetch_add(stats.sheds, Ordering::Relaxed);
                total_violations.fetch_add(stats.sync_violations, Ordering::Relaxed);
                merged.lock().merge(&stats.latency);
            });
        }
    });
    RunStats {
        ops: total_ops.load(Ordering::Relaxed),
        timeouts: total_timeouts.load(Ordering::Relaxed),
        sheds: total_sheds.load(Ordering::Relaxed),
        sync_violations: total_violations.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        latency: merged.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stats_throughput() {
        let s = RunStats {
            ops: 1000,
            timeouts: 0,
            sheds: 0,
            sync_violations: 0,
            elapsed: Duration::from_secs(2),
            latency: Histogram::new(),
        };
        assert!((s.throughput() - 500.0).abs() < 1e-9);
        let z = RunStats {
            ops: 0,
            timeouts: 0,
            sheds: 0,
            sync_violations: 0,
            elapsed: Duration::ZERO,
            latency: Histogram::new(),
        };
        assert_eq!(z.throughput(), 0.0);
    }
}
