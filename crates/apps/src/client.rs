//! Host-side (external) clients driving TreeSLS servers through network
//! ports.
//!
//! These play the external systems of §5: they live outside the SLS (their
//! state survives crashes like any real remote client) and observe only
//! externally visible responses. The drivers record per-operation latency
//! histograms for Figures 11, 12 and 14.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use treesls_extsync::NetPort;

use crate::hist::Histogram;
use crate::wire::{KvOp, KvResp};

/// Outcome of one client run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Completed operations.
    pub ops: u64,
    /// Timed-out operations.
    pub timeouts: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-operation latency (ns).
    pub latency: Histogram,
}

impl RunStats {
    /// Throughput in operations per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// A closed-loop client issuing operations from an iterator against a set
/// of port shards (key-hash routed by the caller's shard function).
pub fn run_closed_loop(
    ports: &[Arc<NetPort>],
    mut ops: impl FnMut() -> Option<(usize, KvOp)>,
    timeout: Duration,
) -> RunStats {
    let mut latency = Histogram::new();
    let mut done = 0u64;
    let mut timeouts = 0u64;
    let start = Instant::now();
    while let Some((shard, op)) = ops() {
        let port = &ports[shard % ports.len()];
        let t0 = Instant::now();
        match port.call(&op.encode(), timeout) {
            Ok(Some(resp)) => {
                debug_assert!(KvResp::decode(&resp).is_some());
                latency.record(t0.elapsed().as_nanos() as u64);
                done += 1;
            }
            Ok(None) => {
                timeouts += 1;
            }
            Err(_) => {
                timeouts += 1;
            }
        }
    }
    RunStats { ops: done, timeouts, elapsed: start.elapsed(), latency }
}

/// Runs `nthreads` closed-loop clients in parallel, each drawing from its
/// own operation stream (`make_ops(thread_idx)`), and merges the results.
pub fn run_parallel_clients(
    ports: &[Arc<NetPort>],
    nthreads: usize,
    make_ops: impl Fn(usize) -> Box<dyn FnMut() -> Option<(usize, KvOp)> + Send> + Sync,
    timeout: Duration,
) -> RunStats {
    let total_ops = AtomicU64::new(0);
    let total_timeouts = AtomicU64::new(0);
    let merged = parking_lot::Mutex::new(Histogram::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..nthreads {
            let mut ops = make_ops(t);
            let ports = &ports;
            let total_ops = &total_ops;
            let total_timeouts = &total_timeouts;
            let merged = &merged;
            s.spawn(move || {
                let stats = run_closed_loop(ports, &mut *ops, timeout);
                total_ops.fetch_add(stats.ops, Ordering::Relaxed);
                total_timeouts.fetch_add(stats.timeouts, Ordering::Relaxed);
                merged.lock().merge(&stats.latency);
            });
        }
    });
    RunStats {
        ops: total_ops.load(Ordering::Relaxed),
        timeouts: total_timeouts.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        latency: merged.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stats_throughput() {
        let s = RunStats {
            ops: 1000,
            timeouts: 0,
            elapsed: Duration::from_secs(2),
            latency: Histogram::new(),
        };
        assert!((s.throughput() - 500.0).abs() < 1e-9);
        let z = RunStats {
            ops: 0,
            timeouts: 0,
            elapsed: Duration::ZERO,
            latency: Histogram::new(),
        };
        assert_eq!(z.throughput(), 0.0);
    }
}
