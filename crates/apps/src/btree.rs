//! A page-based B+ tree over abstract memory (the SQLite stand-in).
//!
//! The paper's SQLite workload runs "a mixed read/insert/update/delete
//! benchmark" against a page-structured table store. This module provides
//! that shape: 4 KiB nodes, proactive splits on the way down, and lazy
//! deletion (no rebalancing — underfull leaves are permitted, as in many
//! real page stores). All state lives in [`MemIo`] memory so the store is
//! transparently persisted when run inside TreeSLS.

use treesls_extsync::MemIo;
use treesls_kernel::types::KernelError;

/// Node size (one page).
pub const NODE_SIZE: u64 = 4096;
/// Fixed value width stored in leaves.
pub const VAL_LEN: usize = 64;

const MAGIC: u64 = 0xB7EE_0001;
const HDR: u64 = 32;

// Node layout: { is_leaf u8, pad[1], nkeys u16, pad[4], payload ... }
const N_NKEYS: u64 = 2;
const N_PAYLOAD: u64 = 8;

/// Max keys in a leaf: (4096 - 8) / (8 + 64) = 56.
const LEAF_MAX: usize = 56;
/// Max keys in an inner node: children = keys + 1; (4096 - 8 - 8) / 16 = 255.
const INNER_MAX: usize = 255;

/// Errors from tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BtError {
    /// The region ran out of node pages.
    Full,
    /// Value must be exactly [`VAL_LEN`] bytes.
    BadValueLen,
    /// Not a formatted tree.
    BadMagic,
    /// Underlying memory error.
    Mem(KernelError),
}

impl From<KernelError> for BtError {
    fn from(e: KernelError) -> Self {
        BtError::Mem(e)
    }
}

/// A B+ tree handle rooted in a [`MemIo`] region.
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    base: u64,
    node_cap: u64,
}

impl BTree {
    /// Bytes needed for a tree with `node_cap` nodes.
    pub fn region_len(node_cap: u64) -> u64 {
        HDR + node_cap * NODE_SIZE
    }

    /// Formats an empty tree (root = empty leaf).
    pub fn format<M: MemIo>(io: &M, base: u64, node_cap: u64) -> Result<Self, BtError> {
        io.mem_write_u64(base, MAGIC)?;
        io.mem_write_u64(base + 8, 0)?; // root index
        io.mem_write_u64(base + 16, 1)?; // nodes allocated
        io.mem_write_u64(base + 24, node_cap)?;
        let t = Self { base, node_cap };
        t.init_node(io, 0, true)?;
        Ok(t)
    }

    /// Attaches to an existing tree.
    pub fn attach<M: MemIo>(io: &M, base: u64) -> Result<Self, BtError> {
        if io.mem_read_u64(base)? != MAGIC {
            return Err(BtError::BadMagic);
        }
        let node_cap = io.mem_read_u64(base + 24)?;
        Ok(Self { base, node_cap })
    }

    fn node(&self, idx: u64) -> u64 {
        self.base + HDR + idx * NODE_SIZE
    }

    fn init_node<M: MemIo>(&self, io: &M, idx: u64, leaf: bool) -> Result<(), BtError> {
        let n = self.node(idx);
        io.mem_write(n, &[leaf as u8, 0])?;
        io.mem_write(n + N_NKEYS, &0u16.to_le_bytes())?;
        Ok(())
    }

    fn alloc_node<M: MemIo>(&self, io: &M, leaf: bool) -> Result<u64, BtError> {
        let n = io.mem_read_u64(self.base + 16)?;
        if n >= self.node_cap {
            return Err(BtError::Full);
        }
        io.mem_write_u64(self.base + 16, n + 1)?;
        self.init_node(io, n, leaf)?;
        Ok(n)
    }

    fn is_leaf<M: MemIo>(&self, io: &M, idx: u64) -> Result<bool, BtError> {
        let mut b = [0u8];
        io.mem_read(self.node(idx), &mut b)?;
        Ok(b[0] != 0)
    }

    fn nkeys<M: MemIo>(&self, io: &M, idx: u64) -> Result<usize, BtError> {
        let mut b = [0u8; 2];
        io.mem_read(self.node(idx) + N_NKEYS, &mut b)?;
        Ok(u16::from_le_bytes(b) as usize)
    }

    fn set_nkeys<M: MemIo>(&self, io: &M, idx: u64, n: usize) -> Result<(), BtError> {
        io.mem_write(self.node(idx) + N_NKEYS, &(n as u16).to_le_bytes())?;
        Ok(())
    }

    // Leaf accessors: keys then values.
    fn leaf_key_addr(&self, idx: u64, i: usize) -> u64 {
        self.node(idx) + N_PAYLOAD + (i as u64) * 8
    }
    fn leaf_val_addr(&self, idx: u64, i: usize) -> u64 {
        self.node(idx) + N_PAYLOAD + (LEAF_MAX as u64) * 8 + (i as u64) * VAL_LEN as u64
    }
    // Inner accessors: keys then children.
    fn inner_key_addr(&self, idx: u64, i: usize) -> u64 {
        self.node(idx) + N_PAYLOAD + (i as u64) * 8
    }
    fn inner_child_addr(&self, idx: u64, i: usize) -> u64 {
        self.node(idx) + N_PAYLOAD + (INNER_MAX as u64) * 8 + (i as u64) * 8
    }

    fn leaf_keys<M: MemIo>(&self, io: &M, idx: u64) -> Result<Vec<u64>, BtError> {
        let n = self.nkeys(io, idx)?;
        let mut keys = Vec::with_capacity(n);
        for i in 0..n {
            keys.push(io.mem_read_u64(self.leaf_key_addr(idx, i))?);
        }
        Ok(keys)
    }

    /// Looks up `key`.
    pub fn get<M: MemIo>(&self, io: &M, key: u64) -> Result<Option<[u8; VAL_LEN]>, BtError> {
        let mut idx = io.mem_read_u64(self.base + 8)?;
        loop {
            if self.is_leaf(io, idx)? {
                let keys = self.leaf_keys(io, idx)?;
                return match keys.binary_search(&key) {
                    Ok(i) => {
                        let mut v = [0u8; VAL_LEN];
                        io.mem_read(self.leaf_val_addr(idx, i), &mut v)?;
                        Ok(Some(v))
                    }
                    Err(_) => Ok(None),
                };
            }
            let n = self.nkeys(io, idx)?;
            let mut child = n; // rightmost by default
            for i in 0..n {
                let k = io.mem_read_u64(self.inner_key_addr(idx, i))?;
                if key < k {
                    child = i;
                    break;
                }
            }
            idx = io.mem_read_u64(self.inner_child_addr(idx, child))?;
        }
    }

    /// Inserts or updates `key`. Returns `true` if the key was new.
    pub fn insert<M: MemIo>(&self, io: &M, key: u64, value: &[u8]) -> Result<bool, BtError> {
        if value.len() != VAL_LEN {
            return Err(BtError::BadValueLen);
        }
        let root = io.mem_read_u64(self.base + 8)?;
        // Proactive root split.
        if self.node_full(io, root)? {
            let new_root = self.alloc_node(io, false)?;
            let (sep, right) = self.split_child_of(io, root)?;
            self.set_nkeys(io, new_root, 1)?;
            io.mem_write_u64(self.inner_key_addr(new_root, 0), sep)?;
            io.mem_write_u64(self.inner_child_addr(new_root, 0), root)?;
            io.mem_write_u64(self.inner_child_addr(new_root, 1), right)?;
            io.mem_write_u64(self.base + 8, new_root)?;
        }
        let mut idx = io.mem_read_u64(self.base + 8)?;
        loop {
            if self.is_leaf(io, idx)? {
                return self.leaf_insert(io, idx, key, value);
            }
            let n = self.nkeys(io, idx)?;
            let mut ci = n;
            for i in 0..n {
                let k = io.mem_read_u64(self.inner_key_addr(idx, i))?;
                if key < k {
                    ci = i;
                    break;
                }
            }
            let mut child = io.mem_read_u64(self.inner_child_addr(idx, ci))?;
            if self.node_full(io, child)? {
                let (sep, right) = self.split_child_of(io, child)?;
                // Shift keys/children of `idx` to make room at ci.
                for i in (ci..n).rev() {
                    let k = io.mem_read_u64(self.inner_key_addr(idx, i))?;
                    io.mem_write_u64(self.inner_key_addr(idx, i + 1), k)?;
                    let c = io.mem_read_u64(self.inner_child_addr(idx, i + 1))?;
                    io.mem_write_u64(self.inner_child_addr(idx, i + 2), c)?;
                }
                io.mem_write_u64(self.inner_key_addr(idx, ci), sep)?;
                io.mem_write_u64(self.inner_child_addr(idx, ci + 1), right)?;
                self.set_nkeys(io, idx, n + 1)?;
                if key >= sep {
                    child = right;
                }
            }
            idx = child;
        }
    }

    fn node_full<M: MemIo>(&self, io: &M, idx: u64) -> Result<bool, BtError> {
        let n = self.nkeys(io, idx)?;
        Ok(if self.is_leaf(io, idx)? { n >= LEAF_MAX } else { n >= INNER_MAX })
    }

    /// Splits a full node, returning `(separator, right_index)`.
    fn split_child_of<M: MemIo>(&self, io: &M, idx: u64) -> Result<(u64, u64), BtError> {
        let leaf = self.is_leaf(io, idx)?;
        let n = self.nkeys(io, idx)?;
        let mid = n / 2;
        let right = self.alloc_node(io, leaf)?;
        if leaf {
            // Right gets keys[mid..]; separator is its first key.
            for (j, i) in (mid..n).enumerate() {
                let k = io.mem_read_u64(self.leaf_key_addr(idx, i))?;
                io.mem_write_u64(self.leaf_key_addr(right, j), k)?;
                let mut v = [0u8; VAL_LEN];
                io.mem_read(self.leaf_val_addr(idx, i), &mut v)?;
                io.mem_write(self.leaf_val_addr(right, j), &v)?;
            }
            self.set_nkeys(io, right, n - mid)?;
            self.set_nkeys(io, idx, mid)?;
            let sep = io.mem_read_u64(self.leaf_key_addr(right, 0))?;
            Ok((sep, right))
        } else {
            // Key at mid moves up; right gets keys[mid+1..].
            let sep = io.mem_read_u64(self.inner_key_addr(idx, mid))?;
            for (j, i) in (mid + 1..n).enumerate() {
                let k = io.mem_read_u64(self.inner_key_addr(idx, i))?;
                io.mem_write_u64(self.inner_key_addr(right, j), k)?;
            }
            for (j, i) in (mid + 1..=n).enumerate() {
                let c = io.mem_read_u64(self.inner_child_addr(idx, i))?;
                io.mem_write_u64(self.inner_child_addr(right, j), c)?;
            }
            self.set_nkeys(io, right, n - mid - 1)?;
            self.set_nkeys(io, idx, mid)?;
            Ok((sep, right))
        }
    }

    fn leaf_insert<M: MemIo>(
        &self,
        io: &M,
        idx: u64,
        key: u64,
        value: &[u8],
    ) -> Result<bool, BtError> {
        let keys = self.leaf_keys(io, idx)?;
        match keys.binary_search(&key) {
            Ok(i) => {
                io.mem_write(self.leaf_val_addr(idx, i), value)?;
                Ok(false)
            }
            Err(pos) => {
                let n = keys.len();
                debug_assert!(n < LEAF_MAX, "caller splits full leaves");
                for i in (pos..n).rev() {
                    let k = io.mem_read_u64(self.leaf_key_addr(idx, i))?;
                    io.mem_write_u64(self.leaf_key_addr(idx, i + 1), k)?;
                    let mut v = [0u8; VAL_LEN];
                    io.mem_read(self.leaf_val_addr(idx, i), &mut v)?;
                    io.mem_write(self.leaf_val_addr(idx, i + 1), &v)?;
                }
                io.mem_write_u64(self.leaf_key_addr(idx, pos), key)?;
                io.mem_write(self.leaf_val_addr(idx, pos), value)?;
                self.set_nkeys(io, idx, n + 1)?;
                Ok(true)
            }
        }
    }

    /// Deletes `key` from its leaf (no rebalancing). Returns `true` if the
    /// key existed.
    pub fn delete<M: MemIo>(&self, io: &M, key: u64) -> Result<bool, BtError> {
        let mut idx = io.mem_read_u64(self.base + 8)?;
        loop {
            if self.is_leaf(io, idx)? {
                let keys = self.leaf_keys(io, idx)?;
                return match keys.binary_search(&key) {
                    Err(_) => Ok(false),
                    Ok(pos) => {
                        let n = keys.len();
                        for i in pos..n - 1 {
                            let k = io.mem_read_u64(self.leaf_key_addr(idx, i + 1))?;
                            io.mem_write_u64(self.leaf_key_addr(idx, i), k)?;
                            let mut v = [0u8; VAL_LEN];
                            io.mem_read(self.leaf_val_addr(idx, i + 1), &mut v)?;
                            io.mem_write(self.leaf_val_addr(idx, i), &v)?;
                        }
                        self.set_nkeys(io, idx, n - 1)?;
                        Ok(true)
                    }
                };
            }
            let n = self.nkeys(io, idx)?;
            let mut ci = n;
            for i in 0..n {
                let k = io.mem_read_u64(self.inner_key_addr(idx, i))?;
                if key < k {
                    ci = i;
                    break;
                }
            }
            idx = io.mem_read_u64(self.inner_child_addr(idx, ci))?;
        }
    }

    /// Nodes currently allocated.
    pub fn node_count<M: MemIo>(&self, io: &M) -> Result<u64, BtError> {
        Ok(io.mem_read_u64(self.base + 16)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testmem::TestMem;

    fn val(tag: u64) -> [u8; VAL_LEN] {
        let mut v = [0u8; VAL_LEN];
        v[..8].copy_from_slice(&tag.to_le_bytes());
        v
    }

    fn tree(nodes: u64) -> (TestMem, BTree) {
        let m = TestMem::new(BTree::region_len(nodes) as usize);
        let t = BTree::format(&m, 0, nodes).unwrap();
        (m, t)
    }

    #[test]
    fn insert_get_small() {
        let (m, t) = tree(8);
        assert!(t.insert(&m, 10, &val(100)).unwrap());
        assert!(t.insert(&m, 5, &val(50)).unwrap());
        assert!(t.insert(&m, 20, &val(200)).unwrap());
        assert_eq!(t.get(&m, 5).unwrap(), Some(val(50)));
        assert_eq!(t.get(&m, 10).unwrap(), Some(val(100)));
        assert_eq!(t.get(&m, 20).unwrap(), Some(val(200)));
        assert_eq!(t.get(&m, 15).unwrap(), None);
        // Update.
        assert!(!t.insert(&m, 10, &val(999)).unwrap());
        assert_eq!(t.get(&m, 10).unwrap(), Some(val(999)));
    }

    #[test]
    fn thousands_of_keys_with_splits() {
        let (m, t) = tree(512);
        // Insert in a scrambled order.
        let n = 5000u64;
        for i in 0..n {
            let k = (i * 2_654_435_761) % 100_000;
            t.insert(&m, k, &val(k)).unwrap();
        }
        assert!(t.node_count(&m).unwrap() > 10, "splits happened");
        for i in 0..n {
            let k = (i * 2_654_435_761) % 100_000;
            assert_eq!(t.get(&m, k).unwrap(), Some(val(k)), "key {k}");
        }
        // Sorted order probes for misses.
        assert_eq!(t.get(&m, 100_001).unwrap(), None);
    }

    #[test]
    fn sequential_insert_then_delete_half() {
        let (m, t) = tree(256);
        for k in 0..2000u64 {
            t.insert(&m, k, &val(k)).unwrap();
        }
        for k in (0..2000u64).step_by(2) {
            assert!(t.delete(&m, k).unwrap());
        }
        assert!(!t.delete(&m, 0).unwrap());
        for k in 0..2000u64 {
            let got = t.get(&m, k).unwrap();
            if k % 2 == 0 {
                assert_eq!(got, None, "key {k}");
            } else {
                assert_eq!(got, Some(val(k)), "key {k}");
            }
        }
    }

    #[test]
    fn value_length_enforced() {
        let (m, t) = tree(4);
        assert_eq!(t.insert(&m, 1, &[0u8; 8]), Err(BtError::BadValueLen));
    }

    #[test]
    fn attach_finds_existing_tree() {
        let (m, t) = tree(8);
        t.insert(&m, 77, &val(7)).unwrap();
        let t2 = BTree::attach(&m, 0).unwrap();
        assert_eq!(t2.get(&m, 77).unwrap(), Some(val(7)));
    }

    #[test]
    fn node_exhaustion_reported() {
        let (m, t) = tree(2);
        let mut hit_full = false;
        for k in 0..200u64 {
            match t.insert(&m, k, &val(k)) {
                Ok(_) => {}
                Err(BtError::Full) => {
                    hit_full = true;
                    break;
                }
                Err(e) => panic!("{e:?}"),
            }
        }
        assert!(hit_full);
    }
}
