//! A log-structured merge (LSM) key-value store over abstract memory.
//!
//! The RocksDB/LevelDB stand-in for the paper's §7.5.2 experiments: an
//! in-memory memtable, sorted runs flushed to a storage region, n-way
//! merge compaction, and an optional write-ahead log whose appends issue a
//! persistence barrier ([`MemIo::flush`]) per write — the "double-write"
//! cost that TreeSLS's transparent checkpointing eliminates.
//!
//! Running inside TreeSLS the WAL is disabled (persistence comes from
//! checkpoints); running on the Aurora/Linux baselines the same code runs
//! with the WAL on, reproducing the Figure 14 comparison.
//!
//! Layout:
//!
//! ```text
//! memtable region:  { count u64, cap u64 } entries[cap]
//! storage region:   { nruns u64, alloc u64 } runs[MAX_RUNS]{off,count}
//!                   data area (sorted entries, bump-allocated)
//! wal region:       { len u64 } record bytes
//! entry:            { key u64, vlen u32, pad u32, value[val_cap] }
//! ```

use treesls_extsync::MemIo;
use treesls_kernel::types::KernelError;

/// Tombstone marker stored in the `vlen` field.
const TOMBSTONE: u32 = u32::MAX;

/// Maximum resident runs before compaction merges them.
pub const MAX_RUNS: u64 = 8;

/// Errors from LSM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsmError {
    /// Value exceeds the configured capacity.
    ValueTooLarge,
    /// The storage area cannot hold the data set.
    StorageFull,
    /// The WAL region overflowed before a memtable flush reset it.
    WalFull,
    /// Underlying memory error.
    Mem(KernelError),
}

impl From<KernelError> for LsmError {
    fn from(e: KernelError) -> Self {
        LsmError::Mem(e)
    }
}

/// Placement and geometry of one LSM tree.
#[derive(Debug, Clone, Copy)]
pub struct LsmConfig {
    /// Memtable region base address.
    pub memtable_base: u64,
    /// Memtable capacity in entries.
    pub memtable_cap: u64,
    /// Storage region base address.
    pub storage_base: u64,
    /// Storage region length in bytes.
    pub storage_len: u64,
    /// WAL region base address; `None` disables the WAL.
    pub wal_base: Option<u64>,
    /// WAL region length in bytes.
    pub wal_len: u64,
    /// Maximum value bytes.
    pub val_cap: u64,
}

impl LsmConfig {
    fn entry_size(&self) -> u64 {
        16 + self.val_cap.div_ceil(8) * 8
    }

    /// Bytes required for the memtable region.
    pub fn memtable_len(&self) -> u64 {
        16 + self.memtable_cap * self.entry_size()
    }
}

const RUNS_TABLE_OFF: u64 = 16;
const RUN_DESC: u64 = 16; // {off u64, count u64}
const DATA_OFF: u64 = RUNS_TABLE_OFF + MAX_RUNS * RUN_DESC;

/// An LSM tree handle.
#[derive(Debug, Clone, Copy)]
pub struct Lsm {
    cfg: LsmConfig,
}

impl Lsm {
    /// Formats a fresh (empty) tree.
    pub fn format<M: MemIo>(io: &M, cfg: LsmConfig) -> Result<Self, LsmError> {
        io.mem_write_u64(cfg.memtable_base, 0)?;
        io.mem_write_u64(cfg.memtable_base + 8, cfg.memtable_cap)?;
        io.mem_write_u64(cfg.storage_base, 0)?;
        io.mem_write_u64(cfg.storage_base + 8, DATA_OFF)?;
        if let Some(w) = cfg.wal_base {
            io.mem_write_u64(w, 0)?;
        }
        Ok(Self { cfg })
    }

    /// Attaches to an existing tree (restore path).
    pub fn attach(cfg: LsmConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.cfg
    }

    fn mem_entry(&self, i: u64) -> u64 {
        self.cfg.memtable_base + 16 + i * self.cfg.entry_size()
    }

    fn read_entry<M: MemIo>(&self, io: &M, addr: u64) -> Result<(u64, u32, Vec<u8>), LsmError> {
        let key = io.mem_read_u64(addr)?;
        let mut lb = [0u8; 4];
        io.mem_read(addr + 8, &mut lb)?;
        let vlen = u32::from_le_bytes(lb);
        let n = if vlen == TOMBSTONE { 0 } else { (vlen as u64).min(self.cfg.val_cap) as usize };
        let mut v = vec![0u8; n];
        io.mem_read(addr + 16, &mut v)?;
        Ok((key, vlen, v))
    }

    fn write_entry<M: MemIo>(
        &self,
        io: &M,
        addr: u64,
        key: u64,
        vlen: u32,
        value: &[u8],
    ) -> Result<(), LsmError> {
        io.mem_write_u64(addr, key)?;
        io.mem_write(addr + 8, &vlen.to_le_bytes())?;
        if !value.is_empty() {
            io.mem_write(addr + 16, value)?;
        }
        Ok(())
    }

    /// Inserts or updates `key`.
    pub fn put<M: MemIo>(&self, io: &M, key: u64, value: &[u8]) -> Result<(), LsmError> {
        if value.len() as u64 > self.cfg.val_cap {
            return Err(LsmError::ValueTooLarge);
        }
        self.write_internal(io, key, value.len() as u32, value)
    }

    /// Removes `key` (tombstone insert).
    pub fn delete<M: MemIo>(&self, io: &M, key: u64) -> Result<(), LsmError> {
        self.write_internal(io, key, TOMBSTONE, &[])
    }

    fn write_internal<M: MemIo>(
        &self,
        io: &M,
        key: u64,
        vlen: u32,
        value: &[u8],
    ) -> Result<(), LsmError> {
        // WAL first (crash consistency for the baselines): record is
        // {key u64, vlen u32} + value, followed by a persistence barrier.
        if let Some(w) = self.cfg.wal_base {
            let len = io.mem_read_u64(w)?;
            let rec = 12 + value.len() as u64;
            if 8 + len + rec > self.cfg.wal_len {
                return Err(LsmError::WalFull);
            }
            io.mem_write_u64(w + 8 + len, key)?;
            io.mem_write(w + 8 + len + 8, &vlen.to_le_bytes())?;
            if !value.is_empty() {
                io.mem_write(w + 8 + len + 12, value)?;
            }
            io.mem_write_u64(w, len + rec)?;
            io.flush();
        }
        let count = io.mem_read_u64(self.cfg.memtable_base)?;
        self.write_entry(io, self.mem_entry(count), key, vlen, value)?;
        io.mem_write_u64(self.cfg.memtable_base, count + 1)?;
        if count + 1 >= self.cfg.memtable_cap {
            self.flush_memtable(io)?;
        }
        Ok(())
    }

    /// Looks up `key` (memtable first, then runs newest→oldest).
    pub fn get<M: MemIo>(&self, io: &M, key: u64) -> Result<Option<Vec<u8>>, LsmError> {
        // Memtable: newest entry wins.
        let count = io.mem_read_u64(self.cfg.memtable_base)?;
        for i in (0..count).rev() {
            let addr = self.mem_entry(i);
            let k = io.mem_read_u64(addr)?;
            if k == key {
                let (_, vlen, v) = self.read_entry(io, addr)?;
                return Ok(if vlen == TOMBSTONE { None } else { Some(v) });
            }
        }
        // Runs, newest last in the table → search backwards.
        let nruns = io.mem_read_u64(self.cfg.storage_base)?;
        for r in (0..nruns).rev() {
            let desc = self.cfg.storage_base + RUNS_TABLE_OFF + r * RUN_DESC;
            let off = io.mem_read_u64(desc)?;
            let cnt = io.mem_read_u64(desc + 8)?;
            if let Some((vlen, v)) = self.search_run(io, off, cnt, key)? {
                return Ok(if vlen == TOMBSTONE { None } else { Some(v) });
            }
        }
        Ok(None)
    }

    fn search_run<M: MemIo>(
        &self,
        io: &M,
        off: u64,
        count: u64,
        key: u64,
    ) -> Result<Option<(u32, Vec<u8>)>, LsmError> {
        let es = self.cfg.entry_size();
        let base = self.cfg.storage_base + off;
        let (mut lo, mut hi) = (0u64, count);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = io.mem_read_u64(base + mid * es)?;
            match k.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let (_, vlen, v) = self.read_entry(io, base + mid * es)?;
                    return Ok(Some((vlen, v)));
                }
            }
        }
        Ok(None)
    }

    /// Flushes the memtable into a new sorted run, deduplicating keys
    /// (latest write wins), then compacts if the run table is full.
    ///
    /// Runs within one program step: intra-step host buffers are legal
    /// because crashes only observe step boundaries.
    pub fn flush_memtable<M: MemIo>(&self, io: &M) -> Result<(), LsmError> {
        let count = io.mem_read_u64(self.cfg.memtable_base)?;
        if count == 0 {
            return Ok(());
        }
        let mut entries = Vec::with_capacity(count as usize);
        for i in 0..count {
            entries.push(self.read_entry(io, self.mem_entry(i))?);
        }
        // Stable sort + keep the last occurrence of each key.
        entries.sort_by_key(|(k, _, _)| *k);
        let mut dedup: Vec<(u64, u32, Vec<u8>)> = Vec::with_capacity(entries.len());
        for e in entries {
            if dedup.last().is_some_and(|(k, _, _)| *k == e.0) {
                *dedup.last_mut().expect("non-empty") = e;
            } else {
                dedup.push(e);
            }
        }
        self.append_run(io, &dedup)?;
        io.mem_write_u64(self.cfg.memtable_base, 0)?;
        if let Some(w) = self.cfg.wal_base {
            // The flushed data is in the (persistent) storage area; the
            // log can restart.
            io.mem_write_u64(w, 0)?;
            io.flush();
        }
        let nruns = io.mem_read_u64(self.cfg.storage_base)?;
        if nruns >= MAX_RUNS {
            self.compact(io)?;
        }
        Ok(())
    }

    fn append_run<M: MemIo>(
        &self,
        io: &M,
        entries: &[(u64, u32, Vec<u8>)],
    ) -> Result<(), LsmError> {
        let es = self.cfg.entry_size();
        let alloc = io.mem_read_u64(self.cfg.storage_base + 8)?;
        let need = entries.len() as u64 * es;
        if alloc + need > self.cfg.storage_len {
            return Err(LsmError::StorageFull);
        }
        for (i, (k, vlen, v)) in entries.iter().enumerate() {
            self.write_entry(io, self.cfg.storage_base + alloc + i as u64 * es, *k, *vlen, v)?;
        }
        let nruns = io.mem_read_u64(self.cfg.storage_base)?;
        let desc = self.cfg.storage_base + RUNS_TABLE_OFF + nruns * RUN_DESC;
        io.mem_write_u64(desc, alloc)?;
        io.mem_write_u64(desc + 8, entries.len() as u64)?;
        io.mem_write_u64(self.cfg.storage_base + 8, alloc + need)?;
        io.mem_write_u64(self.cfg.storage_base, nruns + 1)?;
        Ok(())
    }

    /// Merges all runs into one, dropping superseded versions and
    /// committed tombstones, and rewinds the bump allocator.
    pub fn compact<M: MemIo>(&self, io: &M) -> Result<(), LsmError> {
        let nruns = io.mem_read_u64(self.cfg.storage_base)?;
        if nruns <= 1 {
            return Ok(());
        }
        let es = self.cfg.entry_size();
        // Newest-wins merge: read runs oldest→newest into a map-like
        // sorted vec.
        let mut merged: std::collections::BTreeMap<u64, (u32, Vec<u8>)> =
            std::collections::BTreeMap::new();
        for r in 0..nruns {
            let desc = self.cfg.storage_base + RUNS_TABLE_OFF + r * RUN_DESC;
            let off = io.mem_read_u64(desc)?;
            let cnt = io.mem_read_u64(desc + 8)?;
            for i in 0..cnt {
                let (k, vlen, v) = self.read_entry(io, self.cfg.storage_base + off + i * es)?;
                merged.insert(k, (vlen, v));
            }
        }
        // Tombstones at the bottom level can be dropped entirely.
        merged.retain(|_, (vlen, _)| *vlen != TOMBSTONE);
        // Rewrite as the single run at the start of the data area.
        let entries: Vec<(u64, u32, Vec<u8>)> =
            merged.into_iter().map(|(k, (vlen, v))| (k, vlen, v)).collect();
        io.mem_write_u64(self.cfg.storage_base, 0)?;
        io.mem_write_u64(self.cfg.storage_base + 8, DATA_OFF)?;
        if !entries.is_empty() {
            self.append_run(io, &entries)?;
        }
        Ok(())
    }

    /// Entries currently buffered in the memtable.
    pub fn memtable_len<M: MemIo>(&self, io: &M) -> Result<u64, LsmError> {
        Ok(io.mem_read_u64(self.cfg.memtable_base)?)
    }

    /// Number of resident runs.
    pub fn runs<M: MemIo>(&self, io: &M) -> Result<u64, LsmError> {
        Ok(io.mem_read_u64(self.cfg.storage_base)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testmem::TestMem;
    use std::sync::atomic::Ordering;

    fn cfg(wal: bool) -> LsmConfig {
        LsmConfig {
            memtable_base: 0,
            memtable_cap: 16,
            storage_base: 8192,
            storage_len: 512 * 1024,
            wal_base: wal.then_some(600 * 1024),
            wal_len: 64 * 1024,
            val_cap: 32,
        }
    }

    fn tree(wal: bool) -> (TestMem, Lsm) {
        let m = TestMem::new(1024 * 1024);
        let t = Lsm::format(&m, cfg(wal)).unwrap();
        (m, t)
    }

    #[test]
    fn put_get_within_memtable() {
        let (m, t) = tree(false);
        t.put(&m, 5, b"five").unwrap();
        t.put(&m, 9, b"nine").unwrap();
        assert_eq!(t.get(&m, 5).unwrap(), Some(b"five".to_vec()));
        assert_eq!(t.get(&m, 9).unwrap(), Some(b"nine".to_vec()));
        assert_eq!(t.get(&m, 7).unwrap(), None);
        // Update wins.
        t.put(&m, 5, b"FIVE").unwrap();
        assert_eq!(t.get(&m, 5).unwrap(), Some(b"FIVE".to_vec()));
    }

    #[test]
    fn flush_creates_sorted_runs() {
        let (m, t) = tree(false);
        for k in (0..40u64).rev() {
            t.put(&m, k, &k.to_le_bytes()).unwrap();
        }
        assert!(t.runs(&m).unwrap() >= 2);
        for k in 0..40u64 {
            assert_eq!(t.get(&m, k).unwrap(), Some(k.to_le_bytes().to_vec()), "key {k}");
        }
    }

    #[test]
    fn newest_version_wins_across_runs() {
        let (m, t) = tree(false);
        for round in 0..5u64 {
            for k in 0..16u64 {
                t.put(&m, k, &(round * 100 + k).to_le_bytes()).unwrap();
            }
        }
        for k in 0..16u64 {
            assert_eq!(
                t.get(&m, k).unwrap(),
                Some((400 + k).to_le_bytes().to_vec()),
                "key {k}"
            );
        }
    }

    #[test]
    fn deletes_shadow_older_versions() {
        let (m, t) = tree(false);
        for k in 0..32u64 {
            t.put(&m, k, b"v").unwrap();
        }
        t.delete(&m, 7).unwrap();
        t.delete(&m, 31).unwrap();
        // Force everything out of the memtable.
        t.flush_memtable(&m).unwrap();
        assert_eq!(t.get(&m, 7).unwrap(), None);
        assert_eq!(t.get(&m, 31).unwrap(), None);
        assert!(t.get(&m, 8).unwrap().is_some());
    }

    #[test]
    fn compaction_collapses_runs_and_data_survives() {
        let (m, t) = tree(false);
        // 16-entry memtable → one run per 16 puts; MAX_RUNS triggers
        // compaction.
        for round in 0..20u64 {
            for k in 0..16u64 {
                t.put(&m, k * 3, &(round).to_le_bytes()).unwrap();
            }
        }
        assert!(t.runs(&m).unwrap() <= MAX_RUNS);
        for k in 0..16u64 {
            assert_eq!(t.get(&m, k * 3).unwrap(), Some(19u64.to_le_bytes().to_vec()));
        }
    }

    #[test]
    fn wal_issues_flush_per_write() {
        let (m, t) = tree(true);
        for k in 0..10u64 {
            t.put(&m, k, b"x").unwrap();
        }
        assert!(m.flushes.load(Ordering::Relaxed) >= 10);
        let (m2, t2) = tree(false);
        for k in 0..10u64 {
            t2.put(&m2, k, b"x").unwrap();
        }
        assert_eq!(m2.flushes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn oversized_value_rejected() {
        let (m, t) = tree(false);
        assert_eq!(t.put(&m, 1, &[0u8; 33]), Err(LsmError::ValueTooLarge));
    }

    #[test]
    fn tombstone_then_reinsert() {
        let (m, t) = tree(false);
        t.put(&m, 42, b"a").unwrap();
        t.delete(&m, 42).unwrap();
        assert_eq!(t.get(&m, 42).unwrap(), None);
        t.put(&m, 42, b"b").unwrap();
        assert_eq!(t.get(&m, 42).unwrap(), Some(b"b".to_vec()));
    }
}
