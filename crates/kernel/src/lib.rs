//! The TreeSLS microkernel model: capability tree, kernel objects, virtual
//! memory with a software MMU, scheduler, IPC and multi-core execution.
//!
//! TreeSLS "adopts the microkernel architecture that minimizes kernel
//! functionalities (e.g., IPC, scheduler, checkpoint manager) and puts most
//! system services to the user space" (§3). This crate implements that
//! kernel. All system resources are capability-referred objects of the
//! seven kinds in Table 1 of the paper ([`object::ObjType`]), grouped into
//! a capability tree rooted at the root cap group; "checkpointing the
//! capability tree is equal to checkpointing the whole system".
//!
//! The pieces:
//!
//! * [`object`] / [`cap`] — kernel objects, capabilities, cap groups.
//! * [`oroot`] — the capability object root (ORoot) table: per-object
//!   records linking the runtime object with its (up to two) versioned
//!   backups, enabling incremental checkpointing (§4.1).
//! * [`pmo`] / [`radix`] — physical memory objects with radix-tree page
//!   indexes and the checkpointed-page-pair versioning state of §4.2–4.3.
//! * [`vm`] / [`fault`] — VM spaces, regions, the soft-MMU page table, and
//!   the copy-on-write / hotness-tracking page-fault handler.
//! * [`thread`] / [`sched`] — thread contexts (the register state that must
//!   be checkpointed) and the run queue (rebuilt after restore).
//! * [`ipc`] / [`notif`] — IPC connections and notifications.
//! * [`program`] — the re-entrant program model: applications keep all
//!   mutable state in registers + process memory, so a restored system
//!   resumes them exactly from the last checkpoint.
//! * [`cores`] — simulated CPU cores and the IPI/stop-the-world controller
//!   used by the checkpoint leader (steps ❶/❺ of Figure 5).
//! * [`kernel`] — the `Kernel` struct tying everything together, and the
//!   persistent/volatile split that defines crash semantics.

pub mod cap;
pub mod cores;
pub mod dirty;
pub mod fault;
pub mod ipc;
pub mod kernel;
pub mod notif;
pub mod object;
pub mod oroot;
pub mod pmo;
pub mod program;
pub mod radix;
pub mod sched;
pub mod thread;
pub mod types;
pub mod vm;

pub use cap::{CapRights, Capability};
pub use kernel::{Kernel, KernelConfig, Persistent};
pub use object::{KObject, ObjType, ObjectBody};
pub use program::{Program, StepOutcome, UserCtx};
pub use types::{KernelError, ObjId, OrootId};
