//! The run-queue scheduler.
//!
//! TreeSLS deliberately keeps scheduler state *out* of the checkpoint:
//! "Some derived state of other kernel services (IPC and scheduler) does
//! not need to be persisted, as TreeSLS can recover such state from the
//! capability tree, e.g., adding all threads to the scheduler's queue"
//! (§3). The queue here is exactly that derived state — volatile, rebuilt
//! by the restore path from the `Runnable` thread set. The same goes for
//! the core-affinity map: pins are scheduling hints, not capability-tree
//! state, so a restore drops them and the embedder re-pins its service
//! threads after recovery.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::types::ObjId;

/// Pinned-thread scheduling state: the affinity map plus one FIFO queue
/// per core that has pinned threads. Kept under a single lock with the
/// global queue untouched, so the common (unpinned) path stays one
/// lock + one deque op.
#[derive(Debug, Default)]
struct PinState {
    affinity: HashMap<ObjId, u32>,
    queues: HashMap<u32, VecDeque<ObjId>>,
}

/// A global FIFO run queue with a wakeup condition variable, plus
/// per-core affinity queues for pinned threads.
///
/// Core worker threads park on [`park`] when idle; enqueues and
/// stop-the-world requests wake them. During a partial-quiescence pause,
/// cores outside the stop set restrict themselves to their own affinity
/// queue ([`next_for`] with `restricted = true`): an unpinned thread must
/// never migrate onto a free core mid-pause, or state the round is
/// copying would keep executing.
///
/// [`park`]: Self::park
/// [`next_for`]: Self::next_for
#[derive(Debug, Default)]
pub struct Scheduler {
    queue: Mutex<VecDeque<ObjId>>,
    pins: Mutex<PinState>,
    cv: Condvar,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a runnable thread and wakes one parked core (pinned
    /// threads land in their core's affinity queue and wake every core,
    /// since `notify_one` cannot target the owning core).
    pub fn enqueue(&self, tid: ObjId) {
        let mut pins = self.pins.lock();
        if let Some(&core) = pins.affinity.get(&tid) {
            pins.queues.entry(core).or_default().push_back(tid);
            drop(pins);
            self.cv.notify_all();
        } else {
            drop(pins);
            self.queue.lock().push_back(tid);
            self.cv.notify_one();
        }
    }

    /// Enqueues a batch of runnable threads under one queue lock and wakes
    /// every parked core once — the fan-in path for a multi-queue device
    /// raising many doorbells at the same event (e.g. a NIC re-arming all
    /// of its queues after a restore).
    pub fn enqueue_batch(&self, tids: &[ObjId]) {
        if tids.is_empty() {
            return;
        }
        let mut pins = self.pins.lock();
        if pins.affinity.is_empty() {
            drop(pins);
            self.queue.lock().extend(tids.iter().copied());
        } else {
            let mut global = Vec::with_capacity(tids.len());
            for &tid in tids {
                match pins.affinity.get(&tid) {
                    Some(&core) => pins.queues.entry(core).or_default().push_back(tid),
                    None => global.push(tid),
                }
            }
            drop(pins);
            self.queue.lock().extend(global);
        }
        self.cv.notify_all();
    }

    /// Pins `tid` to `core` (`None` unpins). Queued entries migrate to the
    /// right queue immediately. Affinity is volatile derived state: a
    /// restore clears it along with the run queue.
    pub fn set_affinity(&self, tid: ObjId, core: Option<u32>) {
        let mut pins = self.pins.lock();
        let prev = match core {
            Some(c) => pins.affinity.insert(tid, c),
            None => pins.affinity.remove(&tid),
        };
        // Migrate any queued entries between queues.
        let mut queued = 0usize;
        if let Some(p) = prev {
            if let Some(q) = pins.queues.get_mut(&p) {
                let before = q.len();
                q.retain(|&t| t != tid);
                queued += before - q.len();
            }
        } else {
            let mut g = self.queue.lock();
            let before = g.len();
            g.retain(|&t| t != tid);
            queued += before - g.len();
        }
        if queued > 0 {
            match core {
                Some(c) => {
                    for _ in 0..queued {
                        pins.queues.entry(c).or_default().push_back(tid);
                    }
                }
                None => {
                    let mut g = self.queue.lock();
                    for _ in 0..queued {
                        g.push_back(tid);
                    }
                }
            }
        }
        drop(pins);
        self.cv.notify_all();
    }

    /// The core `tid` is pinned to, if any.
    pub fn affinity(&self, tid: ObjId) -> Option<u32> {
        self.pins.lock().affinity.get(&tid).copied()
    }

    /// Dequeues the next runnable thread, if any (non-blocking). Pulls
    /// only the global queue — core workers use [`next_for`].
    ///
    /// [`next_for`]: Self::next_for
    pub fn next(&self) -> Option<ObjId> {
        self.queue.lock().pop_front()
    }

    /// Dequeues the next thread for `core`: its affinity queue first, then
    /// (unless `restricted`) the global queue. `restricted` is set by free
    /// cores during a partial-quiescence pause.
    pub fn next_for(&self, core: u32, restricted: bool) -> Option<ObjId> {
        {
            let mut pins = self.pins.lock();
            if let Some(q) = pins.queues.get_mut(&core) {
                if let Some(tid) = q.pop_front() {
                    return Some(tid);
                }
            }
        }
        if restricted {
            return None;
        }
        self.queue.lock().pop_front()
    }

    /// Removes a specific thread from every queue (thread destruction).
    pub fn remove(&self, tid: ObjId) {
        self.queue.lock().retain(|&t| t != tid);
        let mut pins = self.pins.lock();
        for q in pins.queues.values_mut() {
            q.retain(|&t| t != tid);
        }
    }

    /// Current queue depth (global + affinity queues).
    pub fn len(&self) -> usize {
        self.queue.lock().len() + self.pins.lock().queues.values().map(VecDeque::len).sum::<usize>()
    }

    /// Returns `true` if no thread is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the queues and the affinity map (crash teardown / restore
    /// rebuild — affinity is volatile derived state).
    pub fn clear(&self) {
        self.queue.lock().clear();
        let mut pins = self.pins.lock();
        pins.queues.clear();
        pins.affinity.clear();
    }

    /// Parks the calling core until work may be available or `timeout`
    /// elapses. Spurious wakeups are fine: callers re-check their loop
    /// conditions (including the stop-the-world flag).
    pub fn park(&self, timeout: Duration) {
        let mut g = self.queue.lock();
        if g.is_empty() {
            self.cv.wait_for(&mut g, timeout);
        }
    }

    /// Wakes every parked core (used when initiating a stop-the-world
    /// pause so idle cores reach the quiescence gate promptly).
    pub fn wake_all(&self) {
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use treesls_nvm::ObjectStore;

    fn ids(n: usize) -> Vec<ObjId> {
        let mut s: ObjectStore<usize> = ObjectStore::new();
        (0..n).map(|i| s.insert(i)).collect()
    }

    #[test]
    fn fifo_order() {
        let s = Scheduler::new();
        let t = ids(3);
        for &id in &t {
            s.enqueue(id);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.next(), Some(t[0]));
        assert_eq!(s.next(), Some(t[1]));
        assert_eq!(s.next(), Some(t[2]));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn remove_specific_thread() {
        let s = Scheduler::new();
        let t = ids(3);
        for &id in &t {
            s.enqueue(id);
        }
        s.remove(t[1]);
        assert_eq!(s.next(), Some(t[0]));
        assert_eq!(s.next(), Some(t[2]));
    }

    #[test]
    fn park_wakes_on_enqueue() {
        let s = Arc::new(Scheduler::new());
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            while s2.next().is_none() {
                s2.park(Duration::from_millis(100));
                if start.elapsed() > Duration::from_secs(5) {
                    panic!("never woke");
                }
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        s.enqueue(ids(1)[0]);
        h.join().unwrap();
    }

    #[test]
    fn clear_empties() {
        let s = Scheduler::new();
        for id in ids(5) {
            s.enqueue(id);
        }
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn pinned_threads_route_to_their_core() {
        let s = Scheduler::new();
        let t = ids(3);
        s.set_affinity(t[0], Some(2));
        s.enqueue(t[0]);
        s.enqueue(t[1]);
        // Core 0 must not see the pinned thread, restricted or not.
        assert_eq!(s.next_for(0, false), Some(t[1]));
        assert_eq!(s.next_for(0, true), None);
        // Core 2 pulls its affinity queue first.
        s.enqueue(t[2]);
        assert_eq!(s.next_for(2, false), Some(t[0]));
        assert_eq!(s.next_for(2, false), Some(t[2]));
    }

    #[test]
    fn restricted_next_ignores_global_queue() {
        let s = Scheduler::new();
        let t = ids(2);
        s.enqueue(t[0]);
        assert_eq!(s.next_for(1, true), None, "fence must not leak unpinned work");
        assert_eq!(s.next_for(1, false), Some(t[0]));
    }

    #[test]
    fn set_affinity_migrates_queued_entries() {
        let s = Scheduler::new();
        let t = ids(1);
        s.enqueue(t[0]);
        s.set_affinity(t[0], Some(3));
        // Entry moved out of the global queue into core 3's queue.
        assert_eq!(s.next(), None);
        assert_eq!(s.next_for(3, true), Some(t[0]));
        // Unpin moves it back.
        s.enqueue(t[0]);
        s.set_affinity(t[0], None);
        assert_eq!(s.affinity(t[0]), None);
        assert_eq!(s.next(), Some(t[0]));
        assert!(s.is_empty());
    }
}
