//! The run-queue scheduler.
//!
//! TreeSLS deliberately keeps scheduler state *out* of the checkpoint:
//! "Some derived state of other kernel services (IPC and scheduler) does
//! not need to be persisted, as TreeSLS can recover such state from the
//! capability tree, e.g., adding all threads to the scheduler's queue"
//! (§3). The queue here is exactly that derived state — volatile, rebuilt
//! by the restore path from the `Runnable` thread set.

use std::collections::VecDeque;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::types::ObjId;

/// A global FIFO run queue with a wakeup condition variable.
///
/// Core worker threads park on [`park`] when idle; enqueues and
/// stop-the-world requests wake them.
///
/// [`park`]: Self::park
#[derive(Debug, Default)]
pub struct Scheduler {
    queue: Mutex<VecDeque<ObjId>>,
    cv: Condvar,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a runnable thread and wakes one parked core.
    pub fn enqueue(&self, tid: ObjId) {
        self.queue.lock().push_back(tid);
        self.cv.notify_one();
    }

    /// Enqueues a batch of runnable threads under one queue lock and wakes
    /// every parked core once — the fan-in path for a multi-queue device
    /// raising many doorbells at the same event (e.g. a NIC re-arming all
    /// of its queues after a restore).
    pub fn enqueue_batch(&self, tids: &[ObjId]) {
        if tids.is_empty() {
            return;
        }
        self.queue.lock().extend(tids.iter().copied());
        self.cv.notify_all();
    }

    /// Dequeues the next runnable thread, if any (non-blocking).
    pub fn next(&self) -> Option<ObjId> {
        self.queue.lock().pop_front()
    }

    /// Removes a specific thread from the queue (thread destruction).
    pub fn remove(&self, tid: ObjId) {
        self.queue.lock().retain(|&t| t != tid);
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Returns `true` if no thread is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the queue (crash teardown / restore rebuild).
    pub fn clear(&self) {
        self.queue.lock().clear();
    }

    /// Parks the calling core until work may be available or `timeout`
    /// elapses. Spurious wakeups are fine: callers re-check their loop
    /// conditions (including the stop-the-world flag).
    pub fn park(&self, timeout: Duration) {
        let mut g = self.queue.lock();
        if g.is_empty() {
            self.cv.wait_for(&mut g, timeout);
        }
    }

    /// Wakes every parked core (used when initiating a stop-the-world
    /// pause so idle cores reach the quiescence gate promptly).
    pub fn wake_all(&self) {
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use treesls_nvm::ObjectStore;

    fn ids(n: usize) -> Vec<ObjId> {
        let mut s: ObjectStore<usize> = ObjectStore::new();
        (0..n).map(|i| s.insert(i)).collect()
    }

    #[test]
    fn fifo_order() {
        let s = Scheduler::new();
        let t = ids(3);
        for &id in &t {
            s.enqueue(id);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.next(), Some(t[0]));
        assert_eq!(s.next(), Some(t[1]));
        assert_eq!(s.next(), Some(t[2]));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn remove_specific_thread() {
        let s = Scheduler::new();
        let t = ids(3);
        for &id in &t {
            s.enqueue(id);
        }
        s.remove(t[1]);
        assert_eq!(s.next(), Some(t[0]));
        assert_eq!(s.next(), Some(t[2]));
    }

    #[test]
    fn park_wakes_on_enqueue() {
        let s = Arc::new(Scheduler::new());
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            while s2.next().is_none() {
                s2.park(Duration::from_millis(100));
                if start.elapsed() > Duration::from_secs(5) {
                    panic!("never woke");
                }
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        s.enqueue(ids(1)[0]);
        h.join().unwrap();
    }

    #[test]
    fn clear_empties() {
        let s = Scheduler::new();
        for id in ids(5) {
            s.enqueue(id);
        }
        s.clear();
        assert!(s.is_empty());
    }
}
