//! Capabilities and cap groups.
//!
//! "A cap group is an array of capabilities; each capability consists of a
//! pointer to the runtime object and the access rights" (§4.1). Every
//! process is a cap group; all system resources are reachable from the
//! root cap group, forming the capability tree of Figure 4.

use crate::types::{CapSlot, KernelError, ObjId};

/// Access rights carried by a capability.
///
/// A minimal rights lattice sufficient for the paper's workloads; stored as
/// a bitmask so backup copies are trivially cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CapRights(pub u32);

impl CapRights {
    /// Read the object (memory read, notification wait, IPC recv).
    pub const READ: CapRights = CapRights(1 << 0);
    /// Write the object (memory write, notification signal, IPC call).
    pub const WRITE: CapRights = CapRights(1 << 1);
    /// Execute (map memory executable).
    pub const EXEC: CapRights = CapRights(1 << 2);
    /// Grant the capability to other cap groups.
    pub const GRANT: CapRights = CapRights(1 << 3);
    /// All rights.
    pub const ALL: CapRights = CapRights(0xF);
    /// No rights.
    pub const NONE: CapRights = CapRights(0);

    /// Union of two rights sets.
    pub fn union(self, other: CapRights) -> CapRights {
        CapRights(self.0 | other.0)
    }

    /// Returns `true` if `self` includes every right in `needed`.
    pub fn allows(self, needed: CapRights) -> bool {
        self.0 & needed.0 == needed.0
    }
}

/// A capability: an object reference plus access rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capability {
    /// The referenced runtime object.
    pub obj: ObjId,
    /// Rights this capability conveys.
    pub rights: CapRights,
}

/// Runtime body of a Cap Group object.
#[derive(Debug, Clone)]
pub struct CapGroupBody {
    /// Human-readable process/service name (diagnostics and Table 2).
    pub name: String,
    /// The capability table; `None` entries are free slots.
    pub caps: Vec<Option<Capability>>,
}

impl CapGroupBody {
    /// Creates an empty cap group named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), caps: Vec::new() }
    }

    /// Installs a capability, returning its slot index.
    pub fn install(&mut self, cap: Capability) -> CapSlot {
        if let Some(i) = self.caps.iter().position(Option::is_none) {
            self.caps[i] = Some(cap);
            i
        } else {
            self.caps.push(Some(cap));
            self.caps.len() - 1
        }
    }

    /// Looks up the capability in `slot`.
    pub fn lookup(&self, slot: CapSlot) -> Result<Capability, KernelError> {
        self.caps.get(slot).copied().flatten().ok_or(KernelError::BadCapability)
    }

    /// Looks up `slot` and checks it allows `needed` rights.
    pub fn lookup_with(&self, slot: CapSlot, needed: CapRights) -> Result<Capability, KernelError> {
        let cap = self.lookup(slot)?;
        if !cap.rights.allows(needed) {
            return Err(KernelError::PermissionDenied);
        }
        Ok(cap)
    }

    /// Revokes the capability in `slot`, returning it.
    pub fn revoke(&mut self, slot: CapSlot) -> Result<Capability, KernelError> {
        let entry = self.caps.get_mut(slot).ok_or(KernelError::BadCapability)?;
        entry.take().ok_or(KernelError::BadCapability)
    }

    /// Number of live capabilities.
    pub fn live(&self) -> usize {
        self.caps.iter().flatten().count()
    }

    /// Iterates over `(slot, capability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CapSlot, &Capability)> {
        self.caps.iter().enumerate().filter_map(|(i, c)| c.as_ref().map(|c| (i, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesls_nvm::ObjectStore;

    fn obj() -> ObjId {
        let mut s: ObjectStore<u8> = ObjectStore::new();
        s.insert(0)
    }

    #[test]
    fn rights_lattice() {
        let rw = CapRights::READ.union(CapRights::WRITE);
        assert!(rw.allows(CapRights::READ));
        assert!(rw.allows(CapRights::WRITE));
        assert!(!rw.allows(CapRights::GRANT));
        assert!(CapRights::ALL.allows(rw));
        assert!(rw.allows(CapRights::NONE));
    }

    #[test]
    fn install_lookup_revoke() {
        let mut g = CapGroupBody::new("proc");
        let cap = Capability { obj: obj(), rights: CapRights::ALL };
        let s = g.install(cap);
        assert_eq!(g.lookup(s).unwrap(), cap);
        assert_eq!(g.live(), 1);
        assert_eq!(g.revoke(s).unwrap(), cap);
        assert_eq!(g.lookup(s), Err(KernelError::BadCapability));
        assert_eq!(g.live(), 0);
    }

    #[test]
    fn slots_are_reused() {
        let mut g = CapGroupBody::new("p");
        let c = Capability { obj: obj(), rights: CapRights::READ };
        let s0 = g.install(c);
        let _s1 = g.install(c);
        g.revoke(s0).unwrap();
        let s2 = g.install(c);
        assert_eq!(s0, s2);
        assert_eq!(g.caps.len(), 2);
    }

    #[test]
    fn rights_enforced_on_lookup() {
        let mut g = CapGroupBody::new("p");
        let s = g.install(Capability { obj: obj(), rights: CapRights::READ });
        assert!(g.lookup_with(s, CapRights::READ).is_ok());
        assert_eq!(g.lookup_with(s, CapRights::WRITE), Err(KernelError::PermissionDenied));
        assert_eq!(g.lookup_with(99, CapRights::READ), Err(KernelError::BadCapability));
    }

    #[test]
    fn iter_skips_free_slots() {
        let mut g = CapGroupBody::new("p");
        let c = Capability { obj: obj(), rights: CapRights::READ };
        let s0 = g.install(c);
        g.install(c);
        g.revoke(s0).unwrap();
        let slots: Vec<_> = g.iter().map(|(i, _)| i).collect();
        assert_eq!(slots, vec![1]);
    }
}
