//! The kernel: persistent/volatile split, object lifecycle, syscalls.
//!
//! ## Crash semantics
//!
//! The machine is split exactly along the paper's persistence boundary:
//!
//! * [`Persistent`] — survives power failure: the NVM device (page frames +
//!   metadata arena with allocator state, journal and the global checkpoint
//!   record), the backup object store and the ORoot table (conceptually
//!   slab space on NVM).
//! * [`Kernel`] — volatile: the runtime object store (the runtime
//!   capability tree), soft page tables, the scheduler queue, DRAM pool,
//!   hotness/dirty tracking. All of it is dropped by a crash and rebuilt
//!   by the restore path from the backup tree.
//!
//! ## Lock ordering
//!
//! To stay deadlock-free the kernel acquires locks in this order:
//! object-store read lock (released before body locks) → cap-group body →
//! IPC/notification body → thread body; and for memory: VM space body →
//! PMO body → page-slot meta. Thread bodies are never nested inside one
//! another.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use treesls_nvm::{DramPool, LatencyModel, NvmDevice, ObjectStore, ShardedStore};
use treesls_obs::{FlightEvent, FlightRecorder, MetricsRegistry};
use treesls_pmem_alloc::{AllocLayout, PmemAllocator};

use crate::cap::{CapGroupBody, CapRights, Capability};
use crate::dirty::DirtyQueue;
use crate::fault::{KernelStats, PageTracker};
use crate::ipc::IpcConnBody;
use crate::notif::{IrqNotifBody, NotifBody};
use crate::object::{KObject, ObjType, ObjectBody};
use crate::oroot::ORoot;
use crate::oroot::BackupObject;
use crate::pmo::{Pmo, PmoKind};
use crate::program::ProgramRegistry;
use crate::sched::Scheduler;
use crate::thread::{BlockedOn, ThreadBody, ThreadContext, ThreadState};
use crate::types::{CapSlot, KernelError, ObjId, OrootId, Vpn};
use crate::vm::{VmRegion, VmSpaceBody};

/// Offsets of the global checkpoint metadata within the NVM metadata arena
/// (the first [`AllocLayout::GLOBAL_META_RESERVED`] bytes).
///
/// The commit point is a CRC-tagged, dual-slot (ping-pong) **commit
/// record**: checkpoint version `N` writes slot `N & 1`, so the newest
/// *valid* record is never overwritten by an in-flight commit. A torn or
/// dropped commit write leaves a bad CRC in its slot; recovery then falls
/// back to the other slot — generation `N-1` — instead of trusting torn
/// bytes. Each slot is 32 bytes and cache-line aligned, so it occupies a
/// single 64 B line and a single ADR line drop reverts it to the (valid)
/// record of generation `N-2`.
pub mod global_meta {
    /// Magic number identifying a formatted TreeSLS device.
    pub const MAGIC_OFF: usize = 0;
    /// First commit-record slot (versions with `N & 1 == 0`).
    pub const COMMIT_SLOT0_OFF: usize = 64;
    /// Second commit-record slot (versions with `N & 1 == 1`).
    pub const COMMIT_SLOT1_OFF: usize = 128;
    /// Commit-record slot length in bytes.
    pub const COMMIT_SLOT_LEN: usize = 32;
    /// Offset of the committed version within a slot.
    pub const REC_VERSION: usize = 0;
    /// Offset of the root ORoot id within a slot.
    pub const REC_ROOT_OROOT: usize = 8;
    /// Offset of the checkpoint count within a slot.
    pub const REC_COUNT: usize = 16;
    /// Offset of the CRC-32 over the preceding 24 bytes within a slot.
    pub const REC_CRC: usize = 24;
    /// Expected magic value.
    pub const MAGIC: u64 = 0x7EE5_1501_7EE5_1501;

    /// The slot a given version commits into.
    pub fn slot_off(version: u64) -> usize {
        if version & 1 == 0 {
            COMMIT_SLOT0_OFF
        } else {
            COMMIT_SLOT1_OFF
        }
    }
}

/// A decoded checkpoint commit record (one ping-pong slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRecord {
    /// The committed global checkpoint version.
    pub version: u64,
    /// Raw ORoot id of the root cap group (`u64::MAX` = none yet).
    pub root_oroot: u64,
    /// Number of checkpoints ever committed.
    pub ckpt_count: u64,
}

impl CommitRecord {
    /// CRC-32 over the record's payload fields.
    pub fn crc(&self) -> u32 {
        let mut buf = [0u8; 24];
        buf[..8].copy_from_slice(&self.version.to_le_bytes());
        buf[8..16].copy_from_slice(&self.root_oroot.to_le_bytes());
        buf[16..].copy_from_slice(&self.ckpt_count.to_le_bytes());
        treesls_nvm::crc32(&buf)
    }
}

/// What commit-record validation observed during recovery — surfaced in
/// the `RecoveryReport` so degraded recoveries are visible, not silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitRecovery {
    /// `true` when the newer slot held a torn/corrupt record and recovery
    /// fell back to the previous committed generation.
    pub fell_back: bool,
    /// Number of commit-record slots with invalid CRCs (0, 1 or 2).
    pub invalid_slots: u32,
}

/// Configuration of a freshly booted machine.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// NVM capacity in 4 KiB frames.
    pub nvm_frames: u32,
    /// DRAM pool capacity in pages (hot-page cache).
    pub dram_pages: usize,
    /// Write-fault count at which a page is considered hot (§4.3.2).
    pub hot_threshold: u32,
    /// Checkpoints without modification before a DRAM page is evicted.
    pub idle_evict_rounds: u32,
    /// Mark pages read-only at checkpoints (enables CoW tracking).
    /// Disabled only by the Figure-10 "+checkpoint" measurement mode.
    pub mark_ro: bool,
    /// Perform the actual page copy in the CoW handler. Disabled only by
    /// the Figure-10 "+page fault" measurement mode.
    pub do_copy: bool,
    /// Enable hybrid copy (hot-page DRAM migration + speculative
    /// stop-and-copy, §4.3).
    pub hybrid_copy: bool,
    /// Run every checkpoint as a full reachability walk instead of the
    /// O(changes) dirty-queue walk. Kept as the differential oracle and
    /// for measuring the walk cost the dirty queue removes.
    pub force_full_walk: bool,
    /// Quiesce every core at each checkpoint instead of only the cores
    /// whose dirty set intersects the round (partial quiescence). Kept as
    /// the differential oracle for the partial-quiescence protocol, like
    /// `force_full_walk` is for the dirty walk. Takes precedence over
    /// `epoch_concurrent`.
    pub force_full_quiesce: bool,
    /// Epoch-concurrent checkpointing: the stop window shrinks to an O(1)
    /// epoch flip (cut the dirty queue, arm the fence, resume) and the
    /// tree walk + page copies run concurrently with mutators, whose
    /// first conflicting writes are captured in-line (whole-page epoch
    /// captures, or ≤64 B undo records for small hot writes). `false`
    /// falls back to partial quiescence (dirty-owning cores park for the
    /// whole copy phase) as a differential oracle.
    pub epoch_concurrent: bool,
    /// Checkpoint rounds between periodic full walks (the cycle collector
    /// for reference loops the O(deletions) tombstoning cannot reclaim;
    /// see DESIGN.md). `0` disables periodic full walks — unreachable
    /// cycles then persist until restore, which sweeps them anyway.
    pub full_walk_interval: u64,
    /// Latency model for the emulated NVM.
    pub latency: LatencyProfile,
}

/// Which latency model to install on the emulated NVM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyProfile {
    /// No injected latency (functional tests).
    Uniform,
    /// Calibrated Optane-like asymmetry (benchmarks).
    Optane,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            nvm_frames: 16384, // 64 MiB
            dram_pages: 2048,  // 8 MiB hot cache
            hot_threshold: 3,
            idle_evict_rounds: 8,
            mark_ro: true,
            do_copy: true,
            hybrid_copy: true,
            force_full_walk: false,
            force_full_quiesce: false,
            epoch_concurrent: true,
            full_walk_interval: 64,
            latency: LatencyProfile::Uniform,
        }
    }
}

/// The state that survives a power failure.
#[derive(Debug)]
pub struct Persistent {
    /// The emulated NVM device.
    pub dev: Arc<NvmDevice>,
    /// The failure-resilient checkpoint-manager allocator.
    pub alloc: Arc<PmemAllocator>,
    /// Backup object records (the backup capability tree's nodes). Lock
    /// sharding lets quiesced non-leader cores build backup records in
    /// parallel with the leader during the pause.
    pub backups: ShardedStore<BackupObject>,
    /// The ORoot table (§4.1), sharded like `backups`.
    pub oroots: ShardedStore<ORoot>,
    /// Volatile mirror of the committed global version for fast reads on
    /// the fault path; rebuilt from NVM at recovery.
    cached_version: AtomicU64,
    /// Staged root-ORoot id for the next commit record (`u64::MAX` = none).
    staged_root: AtomicU64,
    /// Volatile mirror of the committed checkpoint count.
    cached_count: AtomicU64,
    /// Commit-record validation outcome of the last recovery.
    commit_recovery: CommitRecovery,
    /// Persistent flight recorder (event ring in the metadata arena).
    recorder: FlightRecorder,
    /// Flight-recorder events that survived the last crash, captured at
    /// recovery; the restore path drains them into its `RecoveryReport`.
    recovered_tail: Mutex<Vec<FlightEvent>>,
}

impl Persistent {
    /// Formats a fresh persistent state on a new device.
    pub fn format(config: &KernelConfig) -> Arc<Self> {
        let latency = Arc::new(match config.latency {
            LatencyProfile::Uniform => LatencyModel::disabled(),
            LatencyProfile::Optane => LatencyModel::optane(),
        });
        let layout = AllocLayout::for_device(0, config.nvm_frames);
        let dev = Arc::new(NvmDevice::new(config.nvm_frames as usize, layout.end_off, latency));
        let alloc = Arc::new(PmemAllocator::format(Arc::clone(&dev), layout));
        let meta = dev.meta();
        meta.write_u64(global_meta::MAGIC_OFF, global_meta::MAGIC);
        // Slot 0 starts as the valid generation-0 record; slot 1 stays
        // all-zero (invalid CRC) until the first odd version commits.
        let genesis = CommitRecord { version: 0, root_oroot: u64::MAX, ckpt_count: 0 };
        Self::write_commit_record(&dev, &genesis);
        let recorder = FlightRecorder::format(&dev, layout.recorder_off, layout.recorder_slots);
        Arc::new(Self {
            dev,
            alloc,
            backups: ShardedStore::default(),
            oroots: ShardedStore::default(),
            cached_version: AtomicU64::new(0),
            staged_root: AtomicU64::new(u64::MAX),
            cached_count: AtomicU64::new(0),
            commit_recovery: CommitRecovery::default(),
            recorder,
            recovered_tail: Mutex::new(Vec::new()),
        })
    }

    /// Writes `rec` into its ping-pong slot and makes it durable. Each
    /// field is an aligned ≤ 8-byte store (atomic on the media); the CRC
    /// goes last, so any crash inside the sequence leaves a slot that
    /// fails validation instead of lying.
    fn write_commit_record(dev: &NvmDevice, rec: &CommitRecord) {
        let meta = dev.meta();
        let slot = global_meta::slot_off(rec.version);
        meta.write_u64(slot + global_meta::REC_VERSION, rec.version);
        meta.write_u64(slot + global_meta::REC_ROOT_OROOT, rec.root_oroot);
        meta.write_u64(slot + global_meta::REC_COUNT, rec.ckpt_count);
        meta.write_u32(slot + global_meta::REC_CRC, rec.crc());
        meta.flush(slot, global_meta::COMMIT_SLOT_LEN);
        meta.fence();
    }

    /// Reads one commit-record slot; `None` if its CRC does not match.
    fn read_commit_slot(dev: &NvmDevice, slot: usize) -> Option<CommitRecord> {
        let meta = dev.meta();
        let rec = CommitRecord {
            version: meta.read_u64(slot + global_meta::REC_VERSION),
            root_oroot: meta.read_u64(slot + global_meta::REC_ROOT_OROOT),
            ckpt_count: meta.read_u64(slot + global_meta::REC_COUNT),
        };
        (meta.read_u32(slot + global_meta::REC_CRC) == rec.crc()).then_some(rec)
    }

    /// Validates both slots and picks the newest valid record, reporting
    /// whether a torn newer record forced a fallback to generation N-1.
    fn validate_commit_records(dev: &NvmDevice) -> (CommitRecord, CommitRecovery) {
        let slots = [global_meta::COMMIT_SLOT0_OFF, global_meta::COMMIT_SLOT1_OFF];
        let decoded = slots.map(|s| Self::read_commit_slot(dev, s));
        let invalid_slots = decoded.iter().filter(|d| d.is_none()).count() as u32;
        let best = decoded.iter().flatten().max_by_key(|r| r.version).copied();
        match best {
            Some(rec) => {
                // A fallback happened iff the *other* slot — the one the
                // in-flight generation `rec.version + 1` would have used —
                // holds torn (nonzero but invalid) bytes.
                let other_off = global_meta::slot_off(rec.version + 1);
                let other_valid = Self::read_commit_slot(dev, other_off).is_some();
                let mut raw = [0u8; global_meta::COMMIT_SLOT_LEN];
                dev.meta().read_bytes(other_off, &mut raw);
                let fell_back = !other_valid && raw.iter().any(|&b| b != 0);
                (rec, CommitRecovery { fell_back, invalid_slots })
            }
            None => {
                // Both records corrupt: nothing trustworthy to restore.
                // Degrade to generation 0 and report, rather than panic.
                let rec = CommitRecord { version: 0, root_oroot: u64::MAX, ckpt_count: 0 };
                (rec, CommitRecovery { fell_back: true, invalid_slots })
            }
        }
    }

    /// Reattaches after a power failure: replays the allocator journal and
    /// reloads the version mirror. The caller (restore path) then rebuilds
    /// the runtime tree.
    pub fn recover(
        dev: Arc<NvmDevice>,
        nvm_frames: u32,
        backups: ShardedStore<BackupObject>,
        oroots: ShardedStore<ORoot>,
    ) -> Arc<Self> {
        assert_eq!(
            dev.meta().read_u64(global_meta::MAGIC_OFF),
            global_meta::MAGIC,
            "device was never formatted as TreeSLS NVM"
        );
        let layout = AllocLayout::for_device(0, nvm_frames);
        let alloc = Arc::new(PmemAllocator::recover(Arc::clone(&dev), layout));
        let (rec, commit_recovery) = Self::validate_commit_records(&dev);
        let (recorder, tail) =
            FlightRecorder::recover(&dev, layout.recorder_off, layout.recorder_slots);
        Arc::new(Self {
            dev,
            alloc,
            backups,
            oroots,
            cached_version: AtomicU64::new(rec.version),
            staged_root: AtomicU64::new(rec.root_oroot),
            cached_count: AtomicU64::new(rec.ckpt_count),
            commit_recovery,
            recorder,
            recovered_tail: Mutex::new(tail),
        })
    }

    /// Commit-record validation outcome of the recovery that produced this
    /// state (all-zero for a freshly formatted device).
    pub fn commit_recovery(&self) -> CommitRecovery {
        self.commit_recovery
    }

    /// The persistent flight recorder (see `treesls-obs`): a CRC-tagged
    /// event ring in the metadata arena that survives crashes.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Drains the flight-recorder events that survived the last crash
    /// (empty on a fresh format, and after the first call). The restore
    /// path publishes them in its `RecoveryReport` for forensics.
    pub fn take_recovered_events(&self) -> Vec<FlightEvent> {
        std::mem::take(&mut self.recovered_tail.lock())
    }

    /// Re-validates both commit-record slots against NVM *now*, returning
    /// the number with invalid CRCs (0, 1 or 2). Used by the scrub pass to
    /// catch media faults that landed after recovery.
    pub fn scrub_commit_records(&self) -> u32 {
        let (_, recovery) = Self::validate_commit_records(&self.dev);
        recovery.invalid_slots
    }

    /// The committed checkpoint count.
    pub fn checkpoint_count(&self) -> u64 {
        self.cached_count.load(Ordering::Acquire)
    }

    /// The committed global checkpoint version.
    #[inline]
    pub fn global_version(&self) -> u64 {
        self.cached_version.load(Ordering::Acquire)
    }

    /// Commits checkpoint `version`: writes the CRC-tagged commit record
    /// into its ping-pong slot — the atomic commit point of the whole
    /// checkpoint (step ❹ of Figure 5).
    ///
    /// Ordering: a `persist_barrier` first drains every pending line
    /// (backup pages, journal, rings) so the record never points at data
    /// that is still volatile; then the record fields land as aligned
    /// stores with the CRC last, followed by its own flush + fence.
    pub fn commit_version(&self, version: u64) {
        self.dev.persist_barrier();
        treesls_nvm::crash_site!(self.dev.crash_schedule(), "pers.pre_commit");
        let rec = CommitRecord {
            version,
            root_oroot: self.staged_root.load(Ordering::Acquire),
            ckpt_count: self.cached_count.load(Ordering::Acquire) + 1,
        };
        Self::write_commit_record(&self.dev, &rec);
        self.cached_version.store(version, Ordering::Release);
        self.cached_count.store(rec.ckpt_count, Ordering::Release);
        treesls_nvm::crash_site!(self.dev.crash_schedule(), "pers.post_commit");
    }

    /// Stages the root cap group's ORoot for the next commit record (set
    /// once, at the first checkpoint; durable only when that commits).
    pub fn set_root_oroot(&self, id: crate::types::OrootId) {
        self.staged_root.store(id.to_raw(), Ordering::Release);
    }

    /// Reads the root cap group's ORoot, if one was ever recorded.
    pub fn root_oroot(&self) -> Option<crate::types::OrootId> {
        let raw = self.staged_root.load(Ordering::Acquire);
        if raw == u64::MAX {
            None
        } else {
            Some(crate::types::OrootId::from_raw(raw))
        }
    }
}

/// The per-round epoch fence of partial quiescence.
///
/// While a checkpoint's copy phase is in progress, cores outside the
/// round's stop set — under the default epoch-concurrent flip, *every*
/// core — keep running. A conflicting write to a page whose round image
/// has not been preserved yet must not destroy that image: the fault
/// path consults this fence and preserves the image in-line — a small
/// write (≤ 64 B changed) appends a record-level undo entry to the
/// page's in-line log, a large one captures the whole pre-write page
/// (see `fault.rs`). Nobody ever waits the fence out.
///
/// Armed by the checkpoint leader once the stop set (possibly empty) has
/// parked, disarmed right after the commit record lands (from then on
/// the ordinary post-commit CoW path preserves images correctly).
#[derive(Debug, Default)]
pub struct EpochFence {
    active: AtomicBool,
    inflight: AtomicU64,
    /// Monotonic arm counter (starts at 1 on first arm, never reused).
    /// Captures are keyed to the round, not the version tag: an aborted
    /// round leaves stale captures carrying the same in-flight version,
    /// and the next round must not mistake them for its own.
    round: AtomicU64,
    /// Epoch-flip seal. While the fence is armed but *unsealed* the
    /// leader is still defining the round's page images (step grace +
    /// `mark_readonly` + queue cut), so a program step that started
    /// *after* the arm must not write yet: its first write spins until
    /// the seal (see `write_page_slot`), which makes every step land
    /// entirely before or entirely after the flip image — step-granular
    /// atomicity without parking any core. Steps that started before
    /// the arm write through freely; the leader's grace period waits
    /// them out before marking. `arm` seals immediately (the historical
    /// partial-quiescence protocol, where parking provides atomicity);
    /// only the epoch-concurrent flip uses [`arm_unsealed`]/[`seal`].
    ///
    /// [`arm_unsealed`]: Self::arm_unsealed
    /// [`seal`]: Self::seal
    sealed: AtomicBool,
    /// `true` while the armed round runs the no-park flip protocol
    /// ([`arm_unsealed`](Self::arm_unsealed)): core steps whose latched
    /// round predates the arm bypass the capture gate entirely — the
    /// leader's grace period waits them out, so their writes order as
    /// pre-flip. Under the parked protocols ([`arm`](Self::arm)) no
    /// grace period runs and every fence-window write must capture.
    flip: AtomicBool,
}

impl EpochFence {
    /// Arms the fence for the round checkpointing version `inflight`,
    /// already sealed: captures fire from the first post-arm write.
    pub fn arm(&self, inflight: u64) {
        self.inflight.store(inflight, Ordering::Release);
        self.sealed.store(true, Ordering::SeqCst);
        self.flip.store(false, Ordering::SeqCst);
        self.round.fetch_add(1, Ordering::SeqCst);
        self.active.store(true, Ordering::SeqCst);
    }

    /// Arms the fence unsealed (epoch-concurrent flip): post-arm steps
    /// hold their first write until [`seal`](Self::seal). SeqCst so the
    /// arm totally orders against every core's step-start fence load —
    /// a step that missed the arm is provably visible to the leader's
    /// subsequent grace scan.
    pub fn arm_unsealed(&self, inflight: u64) {
        self.inflight.store(inflight, Ordering::Release);
        self.sealed.store(false, Ordering::SeqCst);
        self.flip.store(true, Ordering::SeqCst);
        self.round.fetch_add(1, Ordering::SeqCst);
        self.active.store(true, Ordering::SeqCst);
    }

    /// Returns `true` while the armed round uses the no-park flip
    /// protocol (pre-arm core steps write through; see
    /// [`arm_unsealed`](Self::arm_unsealed)).
    #[inline]
    pub fn flip_protocol(&self) -> bool {
        self.flip.load(Ordering::SeqCst)
    }

    /// Seals the flip: the round's images are all preserved (or capture-
    /// protected), held first writes may proceed into conflict capture.
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::SeqCst);
    }

    /// Returns `true` once the armed round's flip images are defined
    /// (always `true` for [`arm`](Self::arm)ed rounds).
    #[inline]
    pub fn sealed(&self) -> bool {
        self.sealed.load(Ordering::SeqCst)
    }

    /// The round counter if the fence is armed, else 0 (never a valid
    /// round: arming starts at 1). Step starts latch this with SeqCst
    /// ordering against their step-sequence publication.
    #[inline]
    pub fn active_round(&self) -> u64 {
        if self.active.load(Ordering::SeqCst) {
            self.round.load(Ordering::SeqCst)
        } else {
            0
        }
    }

    /// Disarms the fence (round committed or aborted). Also seals, so a
    /// write held at an aborted unsealed flip is released.
    pub fn disarm(&self) {
        self.active.store(false, Ordering::SeqCst);
        self.sealed.store(true, Ordering::SeqCst);
    }

    /// Returns `true` while a partial-quiescence round is in flight.
    #[inline]
    pub fn active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// The version the in-flight round will commit as.
    #[inline]
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Acquire)
    }

    /// The current arm counter (0 before the first arm, ≥1 after).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::Acquire)
    }
}

/// The volatile kernel: runtime capability tree plus derived state.
#[derive(Debug)]
pub struct Kernel {
    /// Persistent state (shared with the checkpoint manager).
    pub pers: Arc<Persistent>,
    /// The volatile DRAM pool (hot-page cache).
    pub dram: Arc<DramPool>,
    /// Runtime object store: the nodes of the runtime capability tree.
    pub objects: RwLock<ObjectStore<Arc<KObject>>>,
    /// The root cap group, from which every object is reachable.
    pub root_cap_group: Mutex<Option<ObjId>>,
    /// The run queue.
    pub sched: Scheduler,
    /// Registered programs (the "executables on disk").
    pub programs: ProgramRegistry,
    /// Page-fault bookkeeping shared with the checkpoint manager.
    pub tracker: PageTracker,
    /// Per-round dirty object queue: `mark_dirty`'s false→true edge
    /// pushes here, the checkpoint leader drains it (O(changes) walk).
    pub dirty_queue: Arc<DirtyQueue>,
    /// Forces the next checkpoint to run a full reachability walk (set
    /// after restore, when the queue describes a dead runtime tree).
    pub force_full_next: AtomicBool,
    /// Checkpoint rounds since the last full walk (drives the periodic
    /// cycle-collecting walk of `KernelConfig::full_walk_interval`).
    pub rounds_since_full: AtomicU64,
    /// ORoots tombstoned but not yet reclaimed; the post-commit sweep
    /// drains this instead of scanning the whole ORoot table
    /// (O(deletions), volatile — restore re-derives deletions from
    /// reachability, so losing it is safe).
    pub pending_sweep: Mutex<Vec<OrootId>>,
    /// Per-round epoch fence consulted by the write-fault path while a
    /// partial-quiescence pause is in flight.
    pub fence: EpochFence,
    /// Per-core step-boundary publication for the epoch flip's no-park
    /// grace period (see [`crate::cores::StepTracker`]).
    pub steps: crate::cores::StepTracker,
    /// Page slots that took a whole-page epoch capture or an in-line undo
    /// log during the current round's fence window. The leader folds the
    /// committed captures into the pairs right after commit (and the CoW
    /// fault path folds any stragglers lazily); volatile — restore
    /// re-derives everything from the per-slot persistent state.
    pub epoch_captures: Mutex<Vec<Arc<crate::pmo::PageSlot>>>,
    /// Fault/copy counters and timers (Figure 10 / Table 4).
    pub stats: KernelStats,
    /// Cross-cutting metrics registry (see `treesls-obs`), shared with the
    /// checkpoint manager and the external-synchrony layer.
    pub metrics: Arc<MetricsRegistry>,
    /// IRQ line → IrqNotification object (volatile; rebuilt on restore).
    pub irq_lines: Mutex<HashMap<u32, ObjId>>,
    /// Boot configuration.
    pub config: KernelConfig,
}

impl Kernel {
    /// Boots a fresh machine: formats NVM and creates the root cap group.
    pub fn boot(config: KernelConfig) -> Arc<Kernel> {
        let pers = Persistent::format(&config);
        let kernel = Self::from_parts(pers, config);
        let root = kernel.insert_object(ObjectBody::CapGroup(CapGroupBody::new("root")));
        *kernel.root_cap_group.lock() = Some(root.id());
        kernel
    }

    /// Assembles a kernel around existing persistent state (boot and
    /// restore paths). The runtime tree starts empty; the restore path
    /// fills it.
    pub fn from_parts(pers: Arc<Persistent>, config: KernelConfig) -> Arc<Kernel> {
        Arc::new(Kernel {
            pers,
            dram: Arc::new(DramPool::new(config.dram_pages)),
            objects: RwLock::new(ObjectStore::new()),
            root_cap_group: Mutex::new(None),
            sched: Scheduler::new(),
            programs: ProgramRegistry::new(),
            tracker: PageTracker::new(),
            dirty_queue: Arc::new(DirtyQueue::new()),
            force_full_next: AtomicBool::new(false),
            rounds_since_full: AtomicU64::new(0),
            pending_sweep: Mutex::new(Vec::new()),
            fence: EpochFence::default(),
            steps: crate::cores::StepTracker::default(),
            epoch_captures: Mutex::new(Vec::new()),
            stats: KernelStats::new(),
            metrics: Arc::new(MetricsRegistry::new()),
            irq_lines: Mutex::new(HashMap::new()),
            config,
        })
    }

    /// The root cap group id.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has not finished boot/restore.
    pub fn root(&self) -> ObjId {
        self.root_cap_group.lock().expect("kernel not fully booted")
    }

    /// Inserts a new object into the runtime store.
    pub fn insert_object(&self, body: ObjectBody) -> Arc<KObject> {
        let obj = KObject::new(body);
        let id = self.objects.write().insert(Arc::clone(&obj));
        obj.set_id(id);
        obj.install_dirty_sink(Arc::clone(&self.dirty_queue));
        // Objects are born with the dirty flag already set, so the
        // mark_dirty edge can never fire for them — enqueue explicitly.
        self.dirty_queue.push(id);
        obj
    }

    /// Looks up a runtime object.
    pub fn object(&self, id: ObjId) -> Result<Arc<KObject>, KernelError> {
        self.objects.read().get(id).cloned().ok_or(KernelError::DeadObject)
    }

    /// Looks up an object expecting a specific type.
    pub fn typed_object(&self, id: ObjId, otype: ObjType) -> Result<Arc<KObject>, KernelError> {
        let o = self.object(id)?;
        if o.otype != otype {
            return Err(KernelError::BadCapability);
        }
        Ok(o)
    }

    /// Resolves capability `slot` of `cap_group` requiring `needed` rights.
    pub fn lookup_cap(
        &self,
        cap_group: ObjId,
        slot: CapSlot,
        needed: CapRights,
    ) -> Result<Capability, KernelError> {
        let group = self.typed_object(cap_group, ObjType::CapGroup)?;
        let body = group.body.read();
        match &*body {
            ObjectBody::CapGroup(g) => g.lookup_with(slot, needed),
            _ => unreachable!("typed_object checked CapGroup"),
        }
    }

    /// Installs a capability for `obj` into `cap_group`.
    pub fn install_cap(
        &self,
        cap_group: ObjId,
        obj: ObjId,
        rights: CapRights,
    ) -> Result<CapSlot, KernelError> {
        let group = self.typed_object(cap_group, ObjType::CapGroup)?;
        let mut body = group.body.write();
        let slot = match &mut *body {
            ObjectBody::CapGroup(g) => g.install(Capability { obj, rights }),
            _ => unreachable!(),
        };
        group.mark_dirty();
        Ok(slot)
    }

    // ---- object creation -------------------------------------------------

    /// Creates a process cap group and installs it in the root cap group.
    pub fn create_cap_group(&self, name: &str) -> Result<ObjId, KernelError> {
        let obj = self.insert_object(ObjectBody::CapGroup(CapGroupBody::new(name)));
        self.install_cap(self.root(), obj.id(), CapRights::ALL)?;
        Ok(obj.id())
    }

    /// Creates a VM space owned by `cap_group`.
    pub fn create_vmspace(&self, cap_group: ObjId) -> Result<ObjId, KernelError> {
        let obj = self.insert_object(ObjectBody::VmSpace(VmSpaceBody::new()));
        self.install_cap(cap_group, obj.id(), CapRights::ALL)?;
        Ok(obj.id())
    }

    /// Creates a PMO of `npages` pages owned by `cap_group`.
    ///
    /// Eternal PMOs (§5 of the paper) are fully materialized at creation:
    /// their pages must exist before the first checkpoint so that a restore
    /// can hand them back *unmodified* — ring buffers and driver state are
    /// fixed-size structures, so eager allocation is the natural shape.
    pub fn create_pmo(
        &self,
        cap_group: ObjId,
        npages: u64,
        kind: PmoKind,
    ) -> Result<ObjId, KernelError> {
        let mut pmo = Pmo::new(npages, kind);
        if kind == PmoKind::Eternal {
            for idx in 0..npages {
                let frame = self.pers.alloc.alloc_page()?;
                self.pers.dev.zero_page(frame);
                let slot = crate::pmo::PageSlot::new(idx, frame);
                slot.meta.lock().eternal = true;
                pmo.insert(idx, slot);
            }
        }
        let obj = self.insert_object(ObjectBody::Pmo(pmo));
        self.install_cap(cap_group, obj.id(), CapRights::ALL)?;
        Ok(obj.id())
    }

    /// Creates a notification owned by `cap_group`.
    pub fn create_notification(&self, cap_group: ObjId) -> Result<ObjId, KernelError> {
        let obj = self.insert_object(ObjectBody::Notification(NotifBody::new()));
        self.install_cap(cap_group, obj.id(), CapRights::ALL)?;
        Ok(obj.id())
    }

    /// Creates an IRQ notification bound to `line`, owned by `cap_group`.
    pub fn create_irq_notification(
        &self,
        cap_group: ObjId,
        line: u32,
    ) -> Result<ObjId, KernelError> {
        let obj = self.insert_object(ObjectBody::IrqNotification(IrqNotifBody::new(line)));
        self.install_cap(cap_group, obj.id(), CapRights::ALL)?;
        self.irq_lines.lock().insert(line, obj.id());
        Ok(obj.id())
    }

    /// Creates an IPC connection, installing capabilities in both the
    /// server and client cap groups. Returns the object id; each side
    /// receives its own slot.
    pub fn create_ipc_conn(
        &self,
        server_group: ObjId,
        client_group: ObjId,
    ) -> Result<(ObjId, CapSlot, CapSlot), KernelError> {
        let obj = self.insert_object(ObjectBody::IpcConnection(IpcConnBody::new()));
        let server_slot = self.install_cap(server_group, obj.id(), CapRights::ALL)?;
        let client_slot = if client_group == server_group {
            server_slot
        } else {
            self.install_cap(client_group, obj.id(), CapRights::READ.union(CapRights::WRITE))?
        };
        Ok((obj.id(), server_slot, client_slot))
    }

    /// Creates a thread and enqueues it.
    pub fn create_thread(
        &self,
        cap_group: ObjId,
        vmspace: ObjId,
        program: &str,
        ctx: ThreadContext,
    ) -> Result<ObjId, KernelError> {
        if self.programs.get(program).is_none() {
            return Err(KernelError::InvalidState("program not registered"));
        }
        let obj = self.insert_object(ObjectBody::Thread(ThreadBody {
            ctx,
            state: ThreadState::Runnable,
            program: program.to_string(),
            cap_group,
            vmspace,
            on_cpu: false,
        }));
        self.install_cap(cap_group, obj.id(), CapRights::ALL)?;
        self.sched.enqueue(obj.id());
        Ok(obj.id())
    }

    /// Maps `npages` of `pmo` (starting at page `pmo_off`) at virtual page
    /// `base` in `vmspace`.
    pub fn map_region(
        &self,
        vmspace: ObjId,
        base: Vpn,
        npages: u64,
        pmo: ObjId,
        pmo_off: u64,
        perm: CapRights,
    ) -> Result<(), KernelError> {
        let vs = self.typed_object(vmspace, ObjType::VmSpace)?;
        // Validate the PMO exists and the range fits.
        let p = self.typed_object(pmo, ObjType::Pmo)?;
        {
            let pb = p.body.read();
            if let ObjectBody::Pmo(pmo_body) = &*pb {
                if pmo_off + npages > pmo_body.npages {
                    return Err(KernelError::InvalidState("region exceeds PMO capacity"));
                }
            }
        }
        let mut body = vs.body.write();
        let ok = match &mut *body {
            ObjectBody::VmSpace(v) => {
                v.map_region(VmRegion { base, npages, pmo, pmo_off, perm })
            }
            _ => unreachable!(),
        };
        if !ok {
            return Err(KernelError::InvalidState("region overlaps existing mapping"));
        }
        vs.mark_dirty();
        Ok(())
    }

    /// Unmaps the region starting at `base` from `vmspace`, dropping its
    /// page-table entries.
    ///
    /// The backing PMO and its pages are untouched (a PMO may be mapped in
    /// several spaces); drop the PMO's capability to delete the object.
    pub fn unmap_region(&self, vmspace: ObjId, base: Vpn) -> Result<(), KernelError> {
        let vs = self.typed_object(vmspace, ObjType::VmSpace)?;
        let mut body = vs.body.write();
        let ObjectBody::VmSpace(v) = &mut *body else { unreachable!() };
        let region = v
            .unmap_region(base)
            .ok_or(KernelError::InvalidState("no region at that base"))?;
        for vpn in region.base.0..region.base.0 + region.npages {
            v.page_table.remove(Vpn(vpn));
        }
        vs.mark_dirty();
        Ok(())
    }

    /// Removes one materialized page from a PMO.
    ///
    /// The NVM frames are *not* freed here: the backup capability tree may
    /// still need them to restore the last committed checkpoint. The next
    /// checkpoint tombstones the page in the backup radix tree and a later
    /// one reclaims the frames — the deferred reclamation of §4.1's
    /// "reuse the radix tree in subsequent checkpoints" bookkeeping.
    pub fn pmo_remove_page(&self, pmo: ObjId, index: u64) -> Result<bool, KernelError> {
        let p = self.typed_object(pmo, ObjType::Pmo)?;
        let mut body = p.body.write();
        let ObjectBody::Pmo(pb) = &mut *body else { unreachable!() };
        if pb.kind == crate::pmo::PmoKind::Eternal {
            return Err(KernelError::InvalidState("eternal PMOs never shrink"));
        }
        let removed = pb.remove(index).is_some();
        if removed {
            p.mark_dirty();
        }
        Ok(removed)
    }

    /// Revokes capability `slot` from `cap_group`.
    ///
    /// If this was the last reference, the object becomes unreachable and
    /// the next checkpoint marks it deleted; the sweep after the following
    /// commit reclaims its backups (§4.1 deletion handling).
    pub fn revoke_cap(&self, cap_group: ObjId, slot: CapSlot) -> Result<(), KernelError> {
        let group = self.typed_object(cap_group, ObjType::CapGroup)?;
        let mut body = group.body.write();
        let ObjectBody::CapGroup(g) = &mut *body else { unreachable!() };
        g.revoke(slot)?;
        group.mark_dirty();
        Ok(())
    }

    // ---- thread wake/block helpers ----------------------------------------

    /// Marks `tid` runnable and enqueues it unless it is currently on a
    /// core (the core re-enqueues it at step end — see `ThreadBody::on_cpu`).
    pub fn wake_thread(&self, tid: ObjId) {
        let Ok(th) = self.typed_object(tid, ObjType::Thread) else { return };
        let mut body = th.body.write();
        if let ObjectBody::Thread(t) = &mut *body {
            if t.state == ThreadState::Exited {
                return;
            }
            t.state = ThreadState::Runnable;
            th.mark_dirty();
            if !t.on_cpu {
                self.sched.enqueue(tid);
            }
        }
    }

    fn block_thread(&self, tid: ObjId, on: BlockedOn) -> Result<(), KernelError> {
        let th = self.typed_object(tid, ObjType::Thread)?;
        let mut body = th.body.write();
        if let ObjectBody::Thread(t) = &mut *body {
            t.state = ThreadState::Blocked(on);
            th.mark_dirty();
        }
        Ok(())
    }

    // ---- notification syscalls --------------------------------------------

    /// `notif_wait`: consume a signal or block.
    pub fn notif_wait(
        &self,
        thread: ObjId,
        cap_group: ObjId,
        slot: CapSlot,
    ) -> Result<bool, KernelError> {
        let cap = self.lookup_cap(cap_group, slot, CapRights::READ)?;
        let notif = self.object(cap.obj)?;
        // Registration and self-blocking must be atomic under the
        // notification lock: if the lock were released in between, a
        // signal could wake the thread before it marks itself blocked and
        // the self-block would overwrite the wake (lost-wakeup deadlock).
        let mut body = notif.body.write();
        let acquired = match &mut *body {
            ObjectBody::Notification(n) => n.wait(thread),
            ObjectBody::IrqNotification(irq) => irq.inner.wait(thread),
            _ => return Err(KernelError::BadCapability),
        };
        notif.mark_dirty();
        if !acquired {
            // Lock order: notification body → thread body.
            self.block_thread(thread, BlockedOn::Notification(cap.obj))?;
        }
        Ok(acquired)
    }

    /// `notif_signal`: signal, waking one waiter if present.
    pub fn notif_signal(&self, cap_group: ObjId, slot: CapSlot) -> Result<(), KernelError> {
        let cap = self.lookup_cap(cap_group, slot, CapRights::WRITE)?;
        self.signal_object(cap.obj)
    }

    /// Signals a notification object directly (kernel-internal use and the
    /// virtual IRQ path).
    pub fn signal_object(&self, notif_id: ObjId) -> Result<(), KernelError> {
        let notif = self.object(notif_id)?;
        let woken = {
            let mut body = notif.body.write();
            let woken = match &mut *body {
                ObjectBody::Notification(n) => n.signal(),
                ObjectBody::IrqNotification(irq) => irq.inner.signal(),
                _ => return Err(KernelError::BadCapability),
            };
            notif.mark_dirty();
            woken
        };
        if let Some(tid) = woken {
            self.wake_thread(tid);
        }
        Ok(())
    }

    /// Signals a batch of notification objects in one pass (doorbell
    /// fan-in): each notification's counter is bumped under its own body
    /// lock, the woken waiters are collected, and the scheduler is poked
    /// once for the whole batch instead of once per doorbell. Invalid ids
    /// in the batch are skipped — a device re-arming many queues must not
    /// lose the rest because one queue's doorbell was revoked.
    pub fn signal_objects(&self, notif_ids: &[ObjId]) {
        let mut woken = Vec::new();
        for &id in notif_ids {
            let Ok(notif) = self.object(id) else { continue };
            let mut body = notif.body.write();
            let tid = match &mut *body {
                ObjectBody::Notification(n) => n.signal(),
                ObjectBody::IrqNotification(irq) => irq.inner.signal(),
                _ => continue,
            };
            notif.mark_dirty();
            drop(body);
            if let Some(tid) = tid {
                woken.push(tid);
            }
        }
        // Mark runnable first (each under its thread lock), then hand the
        // whole batch to the scheduler with one lock acquisition.
        let mut enqueue = Vec::with_capacity(woken.len());
        for tid in woken {
            let Ok(th) = self.typed_object(tid, ObjType::Thread) else { continue };
            let mut body = th.body.write();
            if let ObjectBody::Thread(t) = &mut *body {
                if t.state == ThreadState::Exited {
                    continue;
                }
                t.state = ThreadState::Runnable;
                th.mark_dirty();
                if !t.on_cpu {
                    enqueue.push(tid);
                }
            }
        }
        self.sched.enqueue_batch(&enqueue);
    }

    /// Raises virtual interrupt `line`, signalling its IRQ notification.
    pub fn raise_irq(&self, line: u32) -> Result<(), KernelError> {
        let id = self
            .irq_lines
            .lock()
            .get(&line)
            .copied()
            .ok_or(KernelError::InvalidState("no IRQ notification bound to line"))?;
        self.signal_object(id)
    }

    // ---- IPC syscalls ------------------------------------------------------

    /// `ipc_call`: enqueue a request and block awaiting the reply.
    pub fn ipc_call(
        &self,
        thread: ObjId,
        cap_group: ObjId,
        slot: CapSlot,
        data: Vec<u8>,
    ) -> Result<(), KernelError> {
        let cap = self.lookup_cap(cap_group, slot, CapRights::WRITE)?;
        let conn = self.typed_object(cap.obj, ObjType::IpcConnection)?;
        // The request becomes visible to the server the moment the
        // connection lock drops, so the client must already be marked
        // blocked by then — otherwise a fast server could reply and wake
        // the client before its self-block, which would then overwrite
        // the wake (lost-wakeup deadlock).
        let wake = {
            let mut body = conn.body.write();
            let wake = match &mut *body {
                ObjectBody::IpcConnection(c) => c.call(thread, data)?,
                _ => unreachable!(),
            };
            conn.mark_dirty();
            // Lock order: connection body → thread body.
            self.block_thread(thread, BlockedOn::IpcReply(cap.obj))?;
            wake
        };
        if let Some(server) = wake {
            self.wake_thread(server);
        }
        Ok(())
    }

    /// `ipc_recv`: dequeue the next request or block as recv waiter.
    pub fn ipc_recv(
        &self,
        thread: ObjId,
        cap_group: ObjId,
        slot: CapSlot,
    ) -> Result<Option<(u64, Vec<u8>)>, KernelError> {
        let cap = self.lookup_cap(cap_group, slot, CapRights::READ)?;
        let conn = self.typed_object(cap.obj, ObjType::IpcConnection)?;
        // Register-as-waiter and self-block are atomic under the
        // connection lock (see ipc_call for the lost-wakeup hazard).
        let mut body = conn.body.write();
        let msg = match &mut *body {
            ObjectBody::IpcConnection(c) => c.recv(thread)?,
            _ => unreachable!(),
        };
        conn.mark_dirty();
        match msg {
            Some(m) => Ok(Some((m.from.to_raw(), m.data))),
            None => {
                // Lock order: connection body → thread body.
                self.block_thread(thread, BlockedOn::IpcRecv(cap.obj))?;
                Ok(None)
            }
        }
    }

    /// `ipc_reply`: stage the reply and wake the blocked client.
    pub fn ipc_reply(
        &self,
        cap_group: ObjId,
        slot: CapSlot,
        client_token: u64,
        data: Vec<u8>,
    ) -> Result<(), KernelError> {
        let client = ObjId::from_raw(client_token);
        let cap = self.lookup_cap(cap_group, slot, CapRights::WRITE)?;
        let conn = self.typed_object(cap.obj, ObjType::IpcConnection)?;
        {
            let mut body = conn.body.write();
            match &mut *body {
                ObjectBody::IpcConnection(c) => c.reply(client, data)?,
                _ => unreachable!(),
            }
            conn.mark_dirty();
        }
        self.wake_thread(client);
        Ok(())
    }

    /// Consumes the staged reply for `thread` on the connection in `slot`.
    pub fn ipc_take_reply(
        &self,
        thread: ObjId,
        cap_group: ObjId,
        slot: CapSlot,
    ) -> Result<Option<Vec<u8>>, KernelError> {
        let cap = self.lookup_cap(cap_group, slot, CapRights::READ)?;
        let conn = self.typed_object(cap.obj, ObjType::IpcConnection)?;
        let mut body = conn.body.write();
        let r = match &mut *body {
            ObjectBody::IpcConnection(c) => c.take_reply(thread),
            _ => unreachable!(),
        };
        if r.is_some() {
            conn.mark_dirty();
        }
        Ok(r)
    }

    // ---- census (Table 2) --------------------------------------------------

    /// Counts live runtime objects by type.
    pub fn census(&self) -> HashMap<ObjType, usize> {
        let mut counts: HashMap<ObjType, usize> = HashMap::new();
        for (_, obj) in self.objects.read().iter() {
            *counts.entry(obj.otype).or_insert(0) += 1;
        }
        counts
    }

    /// Total materialized application memory in bytes (Table 2 "App").
    pub fn app_memory_bytes(&self) -> u64 {
        let mut pages = 0u64;
        for (_, obj) in self.objects.read().iter() {
            if obj.otype == ObjType::Pmo {
                if let ObjectBody::Pmo(p) = &*obj.body.read() {
                    pages += p.materialized() as u64;
                }
            }
        }
        pages * treesls_nvm::PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> KernelConfig {
        KernelConfig { nvm_frames: 512, dram_pages: 32, ..KernelConfig::default() }
    }

    #[test]
    fn boot_creates_root_group() {
        let k = Kernel::boot(small());
        let root = k.root();
        let obj = k.object(root).unwrap();
        assert_eq!(obj.otype, ObjType::CapGroup);
        assert_eq!(k.census()[&ObjType::CapGroup], 1);
    }

    #[test]
    fn process_scaffolding_reachable_from_root() {
        let k = Kernel::boot(small());
        let g = k.create_cap_group("proc").unwrap();
        let vs = k.create_vmspace(g).unwrap();
        let pmo = k.create_pmo(g, 16, PmoKind::Data).unwrap();
        let n = k.create_notification(g).unwrap();
        k.map_region(vs, Vpn(0), 16, pmo, 0, CapRights::ALL).unwrap();
        let census = k.census();
        assert_eq!(census[&ObjType::CapGroup], 2);
        assert_eq!(census[&ObjType::VmSpace], 1);
        assert_eq!(census[&ObjType::Pmo], 1);
        assert_eq!(census[&ObjType::Notification], 1);
        // All created objects distinct.
        assert_ne!(vs, pmo);
        assert_ne!(pmo, n);
    }

    #[test]
    fn map_region_validates_pmo_capacity() {
        let k = Kernel::boot(small());
        let g = k.create_cap_group("p").unwrap();
        let vs = k.create_vmspace(g).unwrap();
        let pmo = k.create_pmo(g, 4, PmoKind::Data).unwrap();
        assert!(matches!(
            k.map_region(vs, Vpn(0), 5, pmo, 0, CapRights::ALL),
            Err(KernelError::InvalidState(_))
        ));
        k.map_region(vs, Vpn(0), 4, pmo, 0, CapRights::ALL).unwrap();
        // Overlap rejected.
        assert!(k.map_region(vs, Vpn(3), 1, pmo, 0, CapRights::ALL).is_err());
    }

    #[test]
    fn notification_wait_signal_across_threads() {
        let k = Kernel::boot(small());
        let g = k.create_cap_group("p").unwrap();
        let n = k.create_notification(g).unwrap();
        // Find the cap slot for the notification in g.
        let group = k.object(g).unwrap();
        let slot = {
            let b = group.body.read();
            match &*b {
                ObjectBody::CapGroup(cg) => {
                    cg.iter().find(|(_, c)| c.obj == n).map(|(s, _)| s).unwrap()
                }
                _ => unreachable!(),
            }
        };
        // Two fake threads (objects in the store so ids are live).
        let vs = k.create_vmspace(g).unwrap();
        k.programs.register("idle", Arc::new(crate::cores::IdleProgram));
        let t1 = k.create_thread(g, vs, "idle", ThreadContext::new()).unwrap();
        // Signal first: wait consumes without blocking.
        k.notif_signal(g, slot).unwrap();
        assert!(k.notif_wait(t1, g, slot).unwrap());
        // Now wait blocks...
        assert!(!k.notif_wait(t1, g, slot).unwrap());
        let th = k.typed_object(t1, ObjType::Thread).unwrap();
        if let ObjectBody::Thread(t) = &*th.body.read() {
            assert!(matches!(t.state, ThreadState::Blocked(BlockedOn::Notification(_))));
        }
        // ...and signal wakes it.
        k.notif_signal(g, slot).unwrap();
        if let ObjectBody::Thread(t) = &*th.body.read() {
            assert_eq!(t.state, ThreadState::Runnable);
        };
    }

    #[test]
    fn ipc_call_recv_reply_flow() {
        let k = Kernel::boot(small());
        let g = k.create_cap_group("srv").unwrap();
        let vs = k.create_vmspace(g).unwrap();
        k.programs.register("idle", Arc::new(crate::cores::IdleProgram));
        let server = k.create_thread(g, vs, "idle", ThreadContext::new()).unwrap();
        let client = k.create_thread(g, vs, "idle", ThreadContext::new()).unwrap();
        let (_conn, sslot, cslot) = k.create_ipc_conn(g, g).unwrap();
        assert_eq!(sslot, cslot); // same group

        // Server receives: nothing pending → blocks.
        assert!(k.ipc_recv(server, g, sslot).unwrap().is_none());
        // Client calls → server wakes with the message next recv.
        k.ipc_call(client, g, cslot, b"ping".to_vec()).unwrap();
        let (tok, data) = k.ipc_recv(server, g, sslot).unwrap().unwrap();
        assert_eq!(data, b"ping");
        assert_eq!(tok, client.to_raw());
        // Reply wakes the client, which takes the reply.
        k.ipc_reply(g, sslot, tok, b"pong".to_vec()).unwrap();
        assert_eq!(k.ipc_take_reply(client, g, cslot).unwrap(), Some(b"pong".to_vec()));
    }

    #[test]
    fn rights_enforced_by_syscalls() {
        let k = Kernel::boot(small());
        let g = k.create_cap_group("p").unwrap();
        let n = k.create_notification(g).unwrap();
        // Install a read-only alias capability.
        let ro_slot = k.install_cap(g, n, CapRights::READ).unwrap();
        assert_eq!(k.notif_signal(g, ro_slot), Err(KernelError::PermissionDenied));
    }

    #[test]
    fn irq_raise_signals_bound_notification() {
        let k = Kernel::boot(small());
        let g = k.create_cap_group("drv").unwrap();
        let irq = k.create_irq_notification(g, 7).unwrap();
        k.raise_irq(7).unwrap();
        let o = k.object(irq).unwrap();
        if let ObjectBody::IrqNotification(b) = &*o.body.read() {
            assert_eq!(b.inner.count, 1);
        }
        assert!(k.raise_irq(9).is_err());
    }

    #[test]
    fn global_version_roundtrip() {
        let k = Kernel::boot(small());
        assert_eq!(k.pers.global_version(), 0);
        k.pers.commit_version(7);
        assert_eq!(k.pers.global_version(), 7);
        // Version 7 lands in slot 1 with a valid CRC; slot 0 still holds
        // the genesis record.
        let meta = k.pers.dev.meta();
        let slot = global_meta::slot_off(7);
        assert_eq!(slot, global_meta::COMMIT_SLOT1_OFF);
        assert_eq!(meta.read_u64(slot + global_meta::REC_VERSION), 7);
        assert_eq!(meta.read_u64(slot + global_meta::REC_COUNT), 1);
        assert_eq!(meta.read_u64(global_meta::COMMIT_SLOT0_OFF + global_meta::REC_VERSION), 0);
        assert_eq!(k.pers.checkpoint_count(), 1);
    }

    #[test]
    fn torn_commit_record_falls_back_a_generation() {
        let k = Kernel::boot(small());
        k.pers.commit_version(1);
        k.pers.commit_version(2);
        // Tear the in-flight record for version 3: write garbage into
        // slot 1 without a matching CRC.
        let meta = k.pers.dev.meta();
        let slot = global_meta::slot_off(3);
        meta.write_u64(slot + global_meta::REC_VERSION, 3);
        let (rec, info) = Persistent::validate_commit_records(&k.pers.dev);
        assert_eq!(rec.version, 2, "recovery lands on generation N-1");
        assert!(info.fell_back);
        assert_eq!(info.invalid_slots, 1);
    }
}
