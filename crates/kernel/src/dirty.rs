//! The per-round dirty object queue: the O(changes) walk's work list.
//!
//! The paper's incremental checkpointing "skips state intact since the
//! last checkpoint" — but skipping the *copy* is not enough: a leader
//! that still *visits* every object pays O(live objects) per pause. The
//! dirty queue makes the visit itself proportional to the write set:
//! [`KObject::mark_dirty`] pushes the object id on the flag's false→true
//! edge (at most one enqueue per object per round, no matter how many
//! times it is mutated), and the checkpoint leader drains the queue
//! during the pause instead of re-walking the reachability graph.
//!
//! The queue is a Treiber stack: `push` is a lock-free CAS on the head
//! pointer, and `drain` detaches the whole list with one `swap`. Because
//! nodes are only ever pushed (never popped individually), the classic
//! ABA hazard of Treiber pops does not arise.
//!
//! [`KObject::mark_dirty`]: crate::object::KObject::mark_dirty

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use crate::types::ObjId;

struct Node {
    id: ObjId,
    next: *mut Node,
}

/// Lock-free multi-producer / single-drainer stack of dirty object ids.
///
/// Producers are syscall paths calling `mark_dirty`; the single drainer
/// is the checkpoint leader inside the stop-the-world pause. Entries may
/// be stale (an object can be checkpointed by a full walk without the
/// queue being drained); consumers must therefore re-check the object's
/// dirty flag — a stale entry costs one flag load, not a copy.
#[derive(Debug)]
pub struct DirtyQueue {
    head: AtomicPtr<Node>,
    /// Approximate depth (pushes minus drains), exported as a gauge.
    depth: AtomicU64,
}

// The raw node pointers are only ever exchanged through the atomic head;
// ownership of a detached chain is unique to the drainer.
unsafe impl Send for DirtyQueue {}
unsafe impl Sync for DirtyQueue {}

impl Default for DirtyQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl DirtyQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { head: AtomicPtr::new(ptr::null_mut()), depth: AtomicU64::new(0) }
    }

    /// Pushes one object id (lock-free; called on `mark_dirty`'s
    /// false→true edge and at object insertion).
    pub fn push(&self, id: ObjId) {
        let node = Box::into_raw(Box::new(Node { id, next: ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // Safety: we own `node` until the CAS publishes it.
            unsafe { (*node).next = head };
            match self.head.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Detaches the whole queue and returns its ids (LIFO order; callers
    /// deduplicate by round anyway). One atomic `swap`, then a private
    /// walk of the detached chain.
    pub fn drain(&self) -> Vec<ObjId> {
        let mut p = self.head.swap(ptr::null_mut(), Ordering::AcqRel);
        let mut out = Vec::new();
        while !p.is_null() {
            // Safety: the chain was detached atomically; we own it.
            let node = unsafe { Box::from_raw(p) };
            out.push(node.id);
            p = node.next;
        }
        self.depth.fetch_sub(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Discards all pending entries (restore path: the queue describes a
    /// runtime tree that no longer exists).
    pub fn clear(&self) {
        let _ = self.drain();
    }

    /// Approximate number of pending entries (obs gauge).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }
}

impl Drop for DirtyQueue {
    fn drop(&mut self) {
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_drain_roundtrip() {
        let q = DirtyQueue::new();
        q.push(ObjId::from_raw(1));
        q.push(ObjId::from_raw(2));
        assert_eq!(q.depth(), 2);
        let mut ids = q.drain();
        ids.sort();
        assert_eq!(ids, vec![ObjId::from_raw(1), ObjId::from_raw(2)]);
        assert_eq!(q.depth(), 0);
        assert!(q.drain().is_empty());
    }

    #[test]
    fn concurrent_pushes_all_arrive() {
        let q = Arc::new(DirtyQueue::new());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        q.push(ObjId::from_raw(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let ids = q.drain();
        assert_eq!(ids.len(), 4000);
        let set: std::collections::HashSet<_> = ids.into_iter().collect();
        assert_eq!(set.len(), 4000);
    }

    #[test]
    fn clear_discards_pending() {
        let q = DirtyQueue::new();
        for i in 0..10 {
            q.push(ObjId::from_raw(i));
        }
        q.clear();
        assert_eq!(q.depth(), 0);
        assert!(q.drain().is_empty());
    }
}
