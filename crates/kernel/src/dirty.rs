//! The per-round dirty object queue: the O(changes) walk's work list.
//!
//! The paper's incremental checkpointing "skips state intact since the
//! last checkpoint" — but skipping the *copy* is not enough: a leader
//! that still *visits* every object pays O(live objects) per pause. The
//! dirty queue makes the visit itself proportional to the write set:
//! [`KObject::mark_dirty`] pushes the object id on the flag's false→true
//! edge (at most one enqueue per object per round, no matter how many
//! times it is mutated), and the checkpoint leader drains the queue
//! during the pause instead of re-walking the reachability graph.
//!
//! The queue is a Treiber stack: `push` is a lock-free CAS on the head
//! pointer, and `drain` detaches the whole list with one `swap`. Because
//! nodes are only ever pushed (never popped individually), the classic
//! ABA hazard of Treiber pops does not arise.
//!
//! [`KObject::mark_dirty`]: crate::object::KObject::mark_dirty

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use crate::types::ObjId;

/// Core tag for pushes from threads that are not kernel cores (host
/// drivers, the checkpoint leader, tests). Such pushes never add a core
/// to the round's stop set: state mutated off-core is protected by
/// per-object locks, not by quiescence.
pub const NO_CORE: u32 = u32::MAX;

struct Node {
    id: ObjId,
    core: u32,
    next: *mut Node,
}

/// Lock-free multi-producer / single-drainer stack of dirty object ids.
///
/// Producers are syscall paths calling `mark_dirty`; the single drainer
/// is the checkpoint leader inside the stop-the-world pause. Entries may
/// be stale (an object can be checkpointed by a full walk without the
/// queue being drained); consumers must therefore re-check the object's
/// dirty flag — a stale entry costs one flag load, not a copy.
#[derive(Debug)]
pub struct DirtyQueue {
    head: AtomicPtr<Node>,
    /// Approximate depth (pushes minus drains), exported as a gauge.
    depth: AtomicU64,
    /// Bitmask of cores that produced a push (or re-dirtied an already
    /// queued object) since the last [`take_owner_mask`]. Bit `i` = core
    /// `i`; cores ≥ 64 fold onto bit 63 (conservative: they are always
    /// treated as dirty-owning). The checkpoint leader takes this mask to
    /// decide which cores actually need to quiesce for the round.
    ///
    /// [`take_owner_mask`]: DirtyQueue::take_owner_mask
    owner_mask: AtomicU64,
}

// The raw node pointers are only ever exchanged through the atomic head;
// ownership of a detached chain is unique to the drainer.
unsafe impl Send for DirtyQueue {}
unsafe impl Sync for DirtyQueue {}

/// A detached dirty-queue chain: the O(1) result of an epoch-flip cut
/// ([`DirtyQueue::take_cut`]). Owns its nodes; dropping it without
/// [`DirtyQueue::collect`] frees them (but loses the depth adjustment,
/// which is only a gauge).
#[derive(Debug)]
pub struct DirtyCut {
    head: *mut Node,
}

// Ownership of the detached chain is unique to the holder.
unsafe impl Send for DirtyCut {}

impl Drop for DirtyCut {
    fn drop(&mut self) {
        let mut p = self.head;
        while !p.is_null() {
            // Safety: the chain was detached atomically; we own it.
            let node = unsafe { Box::from_raw(p) };
            p = node.next;
        }
    }
}

impl Default for DirtyQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl DirtyQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            head: AtomicPtr::new(ptr::null_mut()),
            depth: AtomicU64::new(0),
            owner_mask: AtomicU64::new(0),
        }
    }

    /// Pushes one object id with no owning core (off-core producers:
    /// host drivers, object insertion, tests).
    pub fn push(&self, id: ObjId) {
        self.push_from(id, NO_CORE);
    }

    /// Pushes one object id tagged with the core that dirtied it
    /// (lock-free; called on `mark_dirty`'s false→true edge).
    pub fn push_from(&self, id: ObjId, core: u32) {
        self.note_owner(core);
        let node = Box::into_raw(Box::new(Node { id, core, next: ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // Safety: we own `node` until the CAS publishes it.
            unsafe { (*node).next = head };
            match self.head.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Records that `core` dirtied some object this interval, without
    /// pushing a node (the object was already queued). Keeps the owner
    /// mask exact even when a second core re-writes a queued object.
    #[inline]
    pub fn note_owner(&self, core: u32) {
        if core != NO_CORE {
            let bit = (core as u64).min(63);
            self.owner_mask.fetch_or(1 << bit, Ordering::AcqRel);
        }
    }

    /// Detaches and returns the accumulated owner bitmask. Called by the
    /// checkpoint leader when computing the round's stop set; producers
    /// racing with the take re-set their bit and are caught by the
    /// leader's fixed-point re-check.
    pub fn take_owner_mask(&self) -> u64 {
        self.owner_mask.swap(0, Ordering::AcqRel)
    }

    /// Current owner bitmask without clearing it (fixed-point re-check
    /// and observability).
    pub fn owner_mask(&self) -> u64 {
        self.owner_mask.load(Ordering::Acquire)
    }

    /// Detaches the whole queue and returns its ids (LIFO order; callers
    /// deduplicate by round anyway). One atomic `swap`, then a private
    /// walk of the detached chain.
    pub fn drain(&self) -> Vec<ObjId> {
        self.drain_tagged().into_iter().map(|(id, _)| id).collect()
    }

    /// [`drain`](DirtyQueue::drain), keeping each entry's owning-core tag
    /// (used by the tree walk to report how many distinct cores owned the
    /// round's write set).
    pub fn drain_tagged(&self) -> Vec<(ObjId, u32)> {
        let cut = self.take_cut();
        self.collect(cut)
    }

    /// Detaches the queue in O(1) — one atomic `swap`, no chain walk.
    ///
    /// This is the epoch flip's dirty-queue cut: the leader snips the
    /// round's work list inside the stop window without paying a visit
    /// per entry, then walks it *after* resuming the world via
    /// [`collect`](DirtyQueue::collect). New pushes land on the emptied
    /// head and belong to the next round.
    pub fn take_cut(&self) -> DirtyCut {
        DirtyCut { head: self.head.swap(ptr::null_mut(), Ordering::AcqRel) }
    }

    /// Walks a detached [`DirtyCut`] chain, freeing it and returning the
    /// tagged entries (LIFO order). Runs outside the pause, concurrent
    /// with mutators pushing next-round entries.
    pub fn collect(&self, cut: DirtyCut) -> Vec<(ObjId, u32)> {
        let mut p = cut.head;
        std::mem::forget(cut);
        let mut out = Vec::new();
        while !p.is_null() {
            // Safety: the chain was detached atomically; we own it.
            let node = unsafe { Box::from_raw(p) };
            out.push((node.id, node.core));
            p = node.next;
        }
        self.depth.fetch_sub(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Discards all pending entries (restore path: the queue describes a
    /// runtime tree that no longer exists).
    pub fn clear(&self) {
        let _ = self.drain();
        self.owner_mask.store(0, Ordering::Release);
    }

    /// Approximate number of pending entries (obs gauge).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }
}

impl Drop for DirtyQueue {
    fn drop(&mut self) {
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_drain_roundtrip() {
        let q = DirtyQueue::new();
        q.push(ObjId::from_raw(1));
        q.push(ObjId::from_raw(2));
        assert_eq!(q.depth(), 2);
        let mut ids = q.drain();
        ids.sort();
        assert_eq!(ids, vec![ObjId::from_raw(1), ObjId::from_raw(2)]);
        assert_eq!(q.depth(), 0);
        assert!(q.drain().is_empty());
    }

    #[test]
    fn concurrent_pushes_all_arrive() {
        let q = Arc::new(DirtyQueue::new());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        q.push(ObjId::from_raw(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let ids = q.drain();
        assert_eq!(ids.len(), 4000);
        let set: std::collections::HashSet<_> = ids.into_iter().collect();
        assert_eq!(set.len(), 4000);
    }

    #[test]
    fn core_tags_and_owner_mask_roundtrip() {
        let q = DirtyQueue::new();
        q.push_from(ObjId::from_raw(1), 0);
        q.push_from(ObjId::from_raw(2), 3);
        q.push(ObjId::from_raw(3)); // off-core: no mask bit
        assert_eq!(q.owner_mask(), 0b1001);
        let mask = q.take_owner_mask();
        assert_eq!(mask, 0b1001);
        assert_eq!(q.owner_mask(), 0);
        let mut tagged = q.drain_tagged();
        tagged.sort();
        assert_eq!(
            tagged,
            vec![
                (ObjId::from_raw(1), 0),
                (ObjId::from_raw(2), 3),
                (ObjId::from_raw(3), NO_CORE)
            ]
        );
        // A re-dirty note without a push still lands in the mask.
        q.note_owner(1);
        assert_eq!(q.take_owner_mask(), 0b10);
        // Cores beyond the mask width fold onto the top bit.
        q.note_owner(200);
        assert_eq!(q.take_owner_mask(), 1 << 63);
    }

    #[test]
    fn cut_freezes_entries_and_later_pushes_land_next_round() {
        let q = DirtyQueue::new();
        q.push_from(ObjId::from_raw(1), 0);
        q.push_from(ObjId::from_raw(2), 1);
        let cut = q.take_cut();
        q.push_from(ObjId::from_raw(3), 2); // after the flip: next round
        let mut frozen = q.collect(cut);
        frozen.sort();
        assert_eq!(frozen, vec![(ObjId::from_raw(1), 0), (ObjId::from_raw(2), 1)]);
        assert_eq!(q.drain_tagged(), vec![(ObjId::from_raw(3), 2)]);
        assert_eq!(q.depth(), 0);
        // An uncollected cut frees its chain on drop.
        q.push(ObjId::from_raw(9));
        drop(q.take_cut());
    }

    #[test]
    fn clear_discards_pending() {
        let q = DirtyQueue::new();
        for i in 0..10 {
            q.push(ObjId::from_raw(i));
        }
        q.clear();
        assert_eq!(q.depth(), 0);
        assert!(q.drain().is_empty());
    }
}
