//! The re-entrant program model and the user-space syscall surface.
//!
//! TreeSLS checkpoints threads by saving their trapped register context;
//! after a crash the whole system resumes from the last checkpoint with no
//! application involvement. To reproduce that honestly in a user-space
//! simulation, applications are written as *step machines*: every piece of
//! mutable application state lives either in process memory (checkpointed
//! page by page) or in the simulated register file ([`ThreadContext`],
//! checkpointed with the Thread object). The [`Program`] value itself is
//! immutable shared code — the equivalent of the program text, which the
//! paper's system also does not need to checkpoint (it lives in PMOs).
//!
//! A program's [`step`] is invoked repeatedly by a core; each invocation is
//! the span between two kernel entries, so the stop-the-world IPI (§3,
//! Figure 5 step ❶) interrupts threads only at step boundaries — exactly
//! the paper's "interrupted either from the user space or at the boundaries
//! of syscalls".
//!
//! [`step`]: Program::step
//! [`ThreadContext`]: crate::thread::ThreadContext

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::kernel::Kernel;
use crate::thread::ThreadContext;
use crate::types::{CapSlot, KernelError, ObjId, Vaddr};

/// What a program step tells the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// More work immediately available: run another step within the slice.
    Ready,
    /// Voluntarily yield the core (end of slice).
    Yielded,
    /// The thread blocked inside a syscall (IPC/notification); the kernel
    /// has already updated its state, do not re-enqueue.
    Blocked,
    /// The thread finished; never schedule again.
    Exited,
}

/// Application code: immutable, shareable, re-entrant.
///
/// Implementations must keep **all mutable state** in the register file and
/// process memory reachable through [`UserCtx`]; the `&self` receiver
/// enforces freedom from hidden Rust-side state, which is what makes
/// crash-restore exact.
pub trait Program: Send + Sync + 'static {
    /// Executes one step (user-space span between kernel entries).
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome;
}

/// The registry mapping program names to code.
///
/// Plays the role of executable files: thread backups record the program
/// *name*, and the restore path re-binds revived threads to the registered
/// code, as a reboot reloads binaries from storage.
#[derive(Default)]
pub struct ProgramRegistry {
    map: RwLock<HashMap<String, Arc<dyn Program>>>,
}

impl std::fmt::Debug for ProgramRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.map.read().keys().cloned().collect();
        f.debug_struct("ProgramRegistry").field("programs", &names).finish()
    }
}

impl ProgramRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `program` under `name`, replacing any previous entry.
    pub fn register(&self, name: impl Into<String>, program: Arc<dyn Program>) {
        self.map.write().insert(name.into(), program);
    }

    /// Looks up a program by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Program>> {
        self.map.read().get(name).cloned()
    }

    /// Names of all registered programs.
    pub fn names(&self) -> Vec<String> {
        self.map.read().keys().cloned().collect()
    }
}

/// The syscall surface handed to a program step: simulated registers plus
/// the kernel entry points of the owning thread.
pub struct UserCtx<'a> {
    kernel: &'a Kernel,
    thread: ObjId,
    cap_group: ObjId,
    vmspace: ObjId,
    /// The thread's register file, mutated in place during the step.
    pub ctx: &'a mut ThreadContext,
}

impl<'a> UserCtx<'a> {
    /// Builds the context for one step. Used by the core run loop.
    pub fn new(
        kernel: &'a Kernel,
        thread: ObjId,
        cap_group: ObjId,
        vmspace: ObjId,
        ctx: &'a mut ThreadContext,
    ) -> Self {
        Self { kernel, thread, cap_group, vmspace, ctx }
    }

    /// The running thread's id as an opaque token.
    pub fn thread_token(&self) -> u64 {
        self.thread.to_raw()
    }

    /// The committed global checkpoint version.
    ///
    /// Exposed to user space so external-synchrony services can tag
    /// outgoing messages with the checkpoint interval that produced them
    /// (§5 of the paper).
    pub fn global_version(&self) -> u64 {
        self.kernel.pers.global_version()
    }

    /// Drains every pending NVM store to media (the `clwb`+`sfence`
    /// sequence a driver issues at an ordering point). A no-op under eADR.
    pub fn persist_barrier(&self) {
        self.kernel.pers.dev.persist_barrier();
    }

    /// Crash-injection hook: forwards a named `crash_site!` marker to the
    /// device's crash schedule, so fault enumerations can cut execution
    /// between any two stores of in-SLS driver code (e.g. a server
    /// publishing a ring slot). Free when no schedule is armed.
    pub fn crash_site(&self, site: &'static str) {
        self.kernel.pers.dev.crash_schedule().site(site);
    }

    /// The kernel's metrics registry, so in-SLS runtime code (the
    /// poll-mode NIC loops) can attribute per-shard counters without a
    /// side channel. Recording is feature-gated to a no-op when the
    /// `metrics` feature is off.
    pub fn metrics(&self) -> &treesls_obs::MetricsRegistry {
        &self.kernel.metrics
    }

    /// The kernel's flight recorder, so in-SLS services can log
    /// structured events (e.g. a transaction commit) into the same
    /// NVM-resident ring the checkpoint manager uses.
    pub fn recorder(&self) -> &treesls_obs::FlightRecorder {
        self.kernel.pers.recorder()
    }

    // ---- registers -------------------------------------------------------

    /// Reads general-purpose register `i`.
    pub fn reg(&self, i: usize) -> u64 {
        self.ctx.regs[i]
    }

    /// Writes general-purpose register `i`.
    pub fn set_reg(&mut self, i: usize, v: u64) {
        self.ctx.regs[i] = v;
    }

    /// The program counter (program-defined phase).
    pub fn pc(&self) -> u64 {
        self.ctx.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u64) {
        self.ctx.pc = pc;
    }

    // ---- memory ----------------------------------------------------------

    /// Reads process memory at `addr` into `buf`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
        self.kernel.vm_read(self.vmspace, Vaddr(addr), buf)
    }

    /// Writes `data` to process memory at `addr`.
    pub fn write(&self, addr: u64, data: &[u8]) -> Result<(), KernelError> {
        self.kernel.vm_write(self.vmspace, Vaddr(addr), data)
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: u64) -> Result<u64, KernelError> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&self, addr: u64, v: u64) -> Result<(), KernelError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: u64) -> Result<u32, KernelError> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&self, addr: u64, v: u32) -> Result<(), KernelError> {
        self.write(addr, &v.to_le_bytes())
    }

    // ---- IPC -------------------------------------------------------------

    /// Sends a request on the IPC connection in capability `slot` and
    /// blocks the thread until the reply arrives.
    ///
    /// The program must return [`StepOutcome::Blocked`] immediately after
    /// a successful send; the reply is fetched with
    /// [`ipc_take_reply`](Self::ipc_take_reply) in a later step.
    pub fn ipc_call(&self, slot: CapSlot, data: Vec<u8>) -> Result<(), KernelError> {
        self.kernel.ipc_call(self.thread, self.cap_group, slot, data)
    }

    /// Consumes the staged reply for this thread, if it has arrived.
    pub fn ipc_take_reply(&self, slot: CapSlot) -> Result<Option<Vec<u8>>, KernelError> {
        self.kernel.ipc_take_reply(self.thread, self.cap_group, slot)
    }

    /// Receives the next request on the connection in `slot`.
    ///
    /// `Ok(None)` means no request was pending and the thread is now
    /// blocked as the recv waiter; return [`StepOutcome::Blocked`].
    pub fn ipc_recv(&self, slot: CapSlot) -> Result<Option<(u64, Vec<u8>)>, KernelError> {
        self.kernel.ipc_recv(self.thread, self.cap_group, slot)
    }

    /// Replies to the client identified by `client_token` (from
    /// [`ipc_recv`](Self::ipc_recv)).
    pub fn ipc_reply(
        &self,
        slot: CapSlot,
        client_token: u64,
        data: Vec<u8>,
    ) -> Result<(), KernelError> {
        self.kernel.ipc_reply(self.cap_group, slot, client_token, data)
    }

    // ---- notifications ---------------------------------------------------

    /// Waits on the notification in `slot`.
    ///
    /// Returns `Ok(true)` if a signal was consumed (continue running) or
    /// `Ok(false)` if the thread is now blocked; in the latter case return
    /// [`StepOutcome::Blocked`].
    pub fn notif_wait(&self, slot: CapSlot) -> Result<bool, KernelError> {
        self.kernel.notif_wait(self.thread, self.cap_group, slot)
    }

    /// Signals the notification in `slot`.
    pub fn notif_signal(&self, slot: CapSlot) -> Result<(), KernelError> {
        self.kernel.notif_signal(self.cap_group, slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Program for Nop {
        fn step(&self, _ctx: &mut UserCtx<'_>) -> StepOutcome {
            StepOutcome::Exited
        }
    }

    #[test]
    fn registry_roundtrip() {
        let r = ProgramRegistry::new();
        assert!(r.get("nop").is_none());
        r.register("nop", Arc::new(Nop));
        assert!(r.get("nop").is_some());
        assert_eq!(r.names(), vec!["nop".to_string()]);
        // Replacement is allowed.
        r.register("nop", Arc::new(Nop));
        assert_eq!(r.names().len(), 1);
    }

    #[test]
    fn registry_debug_lists_names() {
        let r = ProgramRegistry::new();
        r.register("abc", Arc::new(Nop));
        assert!(format!("{r:?}").contains("abc"));
    }
}
