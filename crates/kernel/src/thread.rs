//! Thread objects: register context, scheduling state.
//!
//! "To checkpoint a Thread object, TreeSLS allocates space and copies the
//! thread context (e.g., registers and scheduling state) to the backup
//! tree. As all CPU cores are trapped in the kernel when taking the
//! checkpoint, all state of user-space threads has been consistently saved"
//! (§4.1). In this reproduction, programs are re-entrant step machines (see
//! [`crate::program`]): the *entire* mutable per-thread state outside
//! process memory lives in the [`ThreadContext`] register file, so copying
//! it at a step boundary checkpoints the thread exactly as saving trapped
//! registers does on real hardware.

use crate::types::ObjId;

/// Number of general-purpose registers in the simulated context.
pub const NUM_REGS: usize = 16;

/// The architectural state of a thread: what a real kernel saves on trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadContext {
    /// General-purpose registers; programs use them as persistent locals.
    pub regs: [u64; NUM_REGS],
    /// Program counter: the program-defined phase/step the thread is in.
    pub pc: u64,
}

impl Default for ThreadContext {
    fn default() -> Self {
        Self { regs: [0; NUM_REGS], pc: 0 }
    }
}

impl ThreadContext {
    /// A fresh context with all registers zeroed.
    pub fn new() -> Self {
        Self::default()
    }
}

/// What a blocked thread is waiting on (runtime object ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedOn {
    /// Waiting in `notif_wait` for a signal.
    Notification(ObjId),
    /// Server waiting in `ipc_recv` for a request.
    IpcRecv(ObjId),
    /// Client waiting in `ipc_call` for the reply.
    IpcReply(ObjId),
}

impl BlockedOn {
    /// The object the thread is blocked on.
    pub fn object(&self) -> ObjId {
        match *self {
            BlockedOn::Notification(o) | BlockedOn::IpcRecv(o) | BlockedOn::IpcReply(o) => o,
        }
    }
}

/// Scheduling state of a thread.
///
/// The scheduler's run queue is *derived* state: the paper recovers it
/// "from the capability tree, e.g., adding all threads to the scheduler's
/// queue" — here, by re-enqueueing every `Runnable` thread after restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run (possibly currently running on a core).
    Runnable,
    /// Blocked on an IPC connection or notification.
    Blocked(BlockedOn),
    /// Finished; never scheduled again.
    Exited,
}

/// Runtime body of a Thread object.
#[derive(Debug, Clone)]
pub struct ThreadBody {
    /// Saved register context (valid whenever the thread is not mid-step).
    pub ctx: ThreadContext,
    /// Scheduling state.
    pub state: ThreadState,
    /// Key into the program registry: which code this thread runs.
    pub program: String,
    /// Owning cap group (the thread's process).
    pub cap_group: ObjId,
    /// The VM space the thread runs in.
    pub vmspace: ObjId,
    /// Runtime-only: the thread is currently executing a step on a core.
    ///
    /// A waker that finds `on_cpu == true` must *not* enqueue the thread
    /// (the running core re-enqueues it when the step finishes and it
    /// observes the `Runnable` state); this closes the wake-while-running
    /// race without a global scheduler lock. Never checkpointed: during a
    /// stop-the-world pause no thread is on a core.
    pub on_cpu: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesls_nvm::SlotId;

    #[test]
    fn fresh_context_is_zeroed() {
        let c = ThreadContext::new();
        assert_eq!(c.regs, [0; NUM_REGS]);
        assert_eq!(c.pc, 0);
    }

    #[test]
    fn blocked_on_object_extraction() {
        let id = SlotId::INVALID;
        assert_eq!(BlockedOn::Notification(id).object(), id);
        assert_eq!(BlockedOn::IpcRecv(id).object(), id);
        assert_eq!(BlockedOn::IpcReply(id).object(), id);
    }

    #[test]
    fn states_compare() {
        assert_ne!(ThreadState::Runnable, ThreadState::Exited);
    }
}
