//! The soft-MMU memory path: translation, minor faults, copy-on-write.
//!
//! Every application memory access goes through [`Kernel::vm_read`] /
//! [`Kernel::vm_write`], which play the role of the hardware MMU plus the
//! kernel's page-fault handler:
//!
//! * a **minor fault** materializes a page on first touch (allocating a
//!   zeroed NVM frame) or re-establishes a translation after restore (the
//!   paper's "page accesses from applications will trigger page faults and
//!   the handler will ... find the physical page from the recovered VM
//!   Space's ... PMO, and add the mapping to the page table");
//! * a **write fault** on a read-only page runs the copy-on-write handler
//!   of Figure 5 step ❻: duplicate the page into its backup slot tagged
//!   with the current global version (§4.2 case ❶), make the runtime page
//!   writable again, and bump the hotness counter that drives hybrid copy
//!   (§4.3.2).
//!
//! The fault handler's time and the page-copy time are measured separately
//! because Figure 10 of the paper breaks runtime overhead into exactly
//! those two components.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use treesls_nvm::PAGE_SIZE;

use crate::cap::CapRights;
use crate::kernel::Kernel;
use crate::object::{ObjType, ObjectBody};
use crate::pmo::{
    apply_undo_records, encode_undo_record, parse_undo_records, undo_record_size, InlineLog,
    PageMeta, PagePtr, PageSlot, PhysLoc, INLINE_LOG_CAP, INLINE_MAX_DATA, UNDO_HEADER,
};
use crate::types::{KernelError, ObjId, Vaddr, Vpn};
use crate::vm::PteCache;

/// Fault-path counters (Figure 10 / Table 4 inputs).
#[derive(Debug, Default)]
pub struct KernelStats {
    /// Copy-on-write (write-permission) faults.
    pub write_faults: AtomicU64,
    /// Translation misses (first touch or post-restore rebuild).
    pub minor_faults: AtomicU64,
    /// Pages actually copied by the CoW handler.
    pub cow_copies: AtomicU64,
    /// Nanoseconds spent inside fault handling (excluding the page copy).
    pub fault_ns: AtomicU64,
    /// Nanoseconds spent copying pages in the CoW handler.
    pub memcpy_ns: AtomicU64,
    /// Epoch-fence conflict captures: writes from cores outside a partial
    /// pause's stop set that hit a page whose round image was not yet
    /// preserved (see [`Kernel::write_page_slot`]).
    pub epoch_conflicts: AtomicU64,
}

impl KernelStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all counters as plain values.
    pub fn snapshot(&self) -> KernelStatsSnapshot {
        KernelStatsSnapshot {
            write_faults: self.write_faults.load(Ordering::Relaxed),
            minor_faults: self.minor_faults.load(Ordering::Relaxed),
            cow_copies: self.cow_copies.load(Ordering::Relaxed),
            fault_ns: self.fault_ns.load(Ordering::Relaxed),
            memcpy_ns: self.memcpy_ns.load(Ordering::Relaxed),
            epoch_conflicts: self.epoch_conflicts.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`KernelStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStatsSnapshot {
    /// Copy-on-write faults.
    pub write_faults: u64,
    /// Translation misses.
    pub minor_faults: u64,
    /// CoW page copies.
    pub cow_copies: u64,
    /// Fault-handler time (ns).
    pub fault_ns: u64,
    /// CoW copy time (ns).
    pub memcpy_ns: u64,
    /// Epoch-fence conflict captures.
    pub epoch_conflicts: u64,
}

impl KernelStatsSnapshot {
    /// Field-wise difference `self - earlier`.
    pub fn since(&self, earlier: &KernelStatsSnapshot) -> KernelStatsSnapshot {
        KernelStatsSnapshot {
            write_faults: self.write_faults - earlier.write_faults,
            minor_faults: self.minor_faults - earlier.minor_faults,
            cow_copies: self.cow_copies - earlier.cow_copies,
            fault_ns: self.fault_ns - earlier.fault_ns,
            memcpy_ns: self.memcpy_ns - earlier.memcpy_ns,
            epoch_conflicts: self.epoch_conflicts - earlier.epoch_conflicts,
        }
    }
}

/// Fault-path bookkeeping consumed by the checkpoint manager.
#[derive(Debug, Default)]
pub struct PageTracker {
    /// Pages that became writable since the last checkpoint and must be
    /// re-marked read-only during the next stop-the-world pause (the "VM
    /// Space" marking cost of Figure 9b).
    pub dirty_list: Mutex<Vec<Arc<PageSlot>>>,
    /// The dual-function active page list of §4.3.2: hot pages that are
    /// (or are about to be) DRAM-cached and stop-and-copied by non-leader
    /// cores during the pause.
    pub active_list: Mutex<Vec<Arc<PageSlot>>>,
}

impl PageTracker {
    /// Creates empty tracking lists.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the current dirty list, leaving it empty.
    pub fn take_dirty(&self) -> Vec<Arc<PageSlot>> {
        std::mem::take(&mut *self.dirty_list.lock())
    }

    /// Current length of the active list.
    pub fn active_len(&self) -> usize {
        self.active_list.lock().len()
    }
}

impl Kernel {
    /// Translates `vpn` in `vmspace`, handling minor faults.
    ///
    /// Returns the cached translation entry (shared page slot + region
    /// permissions).
    pub fn translate(&self, vmspace: ObjId, vpn: Vpn) -> Result<PteCache, KernelError> {
        let vs = self.typed_object(vmspace, ObjType::VmSpace)?;
        let pt = {
            let body = vs.body.read();
            match &*body {
                ObjectBody::VmSpace(v) => Arc::clone(&v.page_table),
                _ => unreachable!("typed_object checked VmSpace"),
            }
        };
        if let Some(pte) = pt.get(vpn) {
            return Ok(pte);
        }
        // Minor fault.
        let t0 = Instant::now();
        self.stats.minor_faults.fetch_add(1, Ordering::Relaxed);
        let (pmo_id, pidx, perm) = {
            let body = vs.body.read();
            match &*body {
                ObjectBody::VmSpace(v) => {
                    let r = v.region_for(vpn).ok_or(KernelError::UnmappedAddress(vpn.base().0))?;
                    (r.pmo, r.pmo_index(vpn).expect("region_for covers vpn"), r.perm)
                }
                _ => unreachable!(),
            }
        };
        let pmo_obj = self.typed_object(pmo_id, ObjType::Pmo)?;
        let slot = {
            let mut body = pmo_obj.body.write();
            match &mut *body {
                ObjectBody::Pmo(p) => {
                    if let Some(s) = p.get(pidx) {
                        Arc::clone(s)
                    } else {
                        // First touch: materialize a zeroed NVM page.
                        let eternal = p.kind == crate::pmo::PmoKind::Eternal;
                        let frame = self.pers.alloc.alloc_page()?;
                        self.pers.dev.zero_page(frame);
                        let s = PageSlot::new(pidx, frame);
                        s.meta.lock().eternal = eternal;
                        p.insert(pidx, Arc::clone(&s));
                        pmo_obj.mark_dirty();
                        // The new page is writable; the next checkpoint
                        // must mark it read-only. Eternal pages are never
                        // marked read-only (§5: not rolled back).
                        if !eternal {
                            self.tracker.dirty_list.lock().push(Arc::clone(&s));
                        }
                        s
                    }
                }
                _ => unreachable!(),
            }
        };
        let pte = PteCache { slot, perm, pmo: pmo_id };
        pt.insert(vpn, pte.clone());
        self.stats.fault_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(pte)
    }

    /// Reads process memory, spanning pages as needed.
    pub fn vm_read(&self, vmspace: ObjId, addr: Vaddr, buf: &mut [u8]) -> Result<(), KernelError> {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr.add_bytes(done as u64);
            let off = a.page_off();
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            let pte = self.translate(vmspace, a.vpn())?;
            if !pte.perm.allows(CapRights::READ) {
                return Err(KernelError::PermissionDenied);
            }
            let meta = pte.slot.meta.lock();
            match meta.runtime_loc() {
                PhysLoc::Nvm(f) => self.pers.dev.read(f, off, &mut buf[done..done + n]),
                PhysLoc::Dram(d) => self.dram.read(d, off, &mut buf[done..done + n]),
            }
            done += n;
        }
        Ok(())
    }

    /// Writes process memory, running the CoW fault handler as needed.
    pub fn vm_write(&self, vmspace: ObjId, addr: Vaddr, data: &[u8]) -> Result<(), KernelError> {
        let mut done = 0usize;
        while done < data.len() {
            let a = addr.add_bytes(done as u64);
            let off = a.page_off();
            let n = (PAGE_SIZE - off).min(data.len() - done);
            let pte = self.translate(vmspace, a.vpn())?;
            if !pte.perm.allows(CapRights::WRITE) {
                return Err(KernelError::PermissionDenied);
            }
            if self.write_page_slot(&pte.slot, off, &data[done..done + n])? {
                // The page transitioned writable (CoW or epoch capture):
                // its content diverges from the last committed image, so
                // the owning PMO must re-enter the ORoot dirty queue —
                // otherwise an O(changes) walk (and anything derived from
                // it, e.g. a shipped replication delta) would miss the
                // round's fresh page images and manifest.
                self.typed_object(pte.pmo, ObjType::Pmo)?.mark_dirty();
            }
            done += n;
        }
        Ok(())
    }

    /// Writes a span within one page slot, faulting if read-only.
    ///
    /// While the kernel's [`EpochFence`] is armed (an epoch-concurrent or
    /// partial-quiescence round is copying concurrently with this write),
    /// the round's frozen page image must not be destroyed. No write ever
    /// waits; every first conflicting write preserves the image in-line:
    ///
    /// * **migrated pages** whose in-flight image is not yet preserved get
    ///   an inline pre-write capture into the speculative-copy slot (the
    ///   "conflict CoW" of partial quiescence) — the hybrid worker then
    ///   skips the slot;
    /// * **non-migrated read-only pages** capture in-line too: a small
    ///   write (≤ one cache line of changed bytes) appends a pre-write
    ///   undo record to the page's in-line log, while a big write (or a
    ///   log overflow) escalates to a whole-page epoch capture into a
    ///   fresh frame — the previous committed image stays anchored in
    ///   `pairs` untouched, so no third copy is ever at risk;
    /// * **non-migrated writable pages** write through — their runtime
    ///   frame only becomes the round's image when `mark_readonly`
    ///   freezes it, after which the write lands in the capture branch
    ///   (the accepted fuzzy boundary of the flip).
    ///
    /// Returns `true` when this write is the page's first content change
    /// of the round — a CoW fault, an epoch conflict capture or first
    /// undo-log append, or the clean→dirty flip of a DRAM-migrated page
    /// (whose stores never fault again). In every case the page's content
    /// now diverges from its last committed image and the owning PMO's
    /// backup record must be rewritten by the next checkpoint. Callers
    /// that know the owning PMO (the `vm_write` path) use this to mark it
    /// dirty.
    ///
    /// [`EpochFence`]: crate::kernel::EpochFence
    pub fn write_page_slot(
        &self,
        slot: &Arc<PageSlot>,
        off: usize,
        data: &[u8],
    ) -> Result<bool, KernelError> {
        // Epoch-flip seal wait: a program step that *started after* the
        // fence armed (its latched round matches) must not write while
        // the flip is still defining the round's images — hold its
        // first write here, outside every lock, until the leader seals
        // (or the round aborts). Pre-arm in-flight steps have a stale
        // latch and write through; the leader's grace period waits them
        // out before marking. Off-core writers (hosts, services) never
        // latch, so each of their writes is a single-page pre-flip
        // store — the same semantics they had under parked flips.
        if self.fence.active() && !self.fence.sealed() {
            let core = crate::cores::current_core();
            if core != crate::cores::NO_CORE
                && crate::cores::current_step_round() == self.fence.round()
            {
                self.steps.set_blocked(core, true);
                while self.fence.active() && !self.fence.sealed() {
                    std::thread::yield_now();
                }
                self.steps.set_blocked(core, false);
            }
        }
        // A core step that was already in flight when a no-park flip
        // armed keeps *pre-arm* write semantics for its whole duration:
        // its latched round predates the fence's, the leader's grace
        // period waits the step out before marking, and every one of its
        // writes — including ones landing after the next round armed, if
        // the step straddled a commit — must join the pre-flip image
        // rather than capture. Without this, a step's first write could
        // be excluded from round N (logged) and its second excluded from
        // round N+1, splitting one atomic step across two recovery
        // points. Parked protocols (`arm`) run no grace period, so there
        // the gate applies to every fence-window write as before.
        let pre_arm_step = self.fence.flip_protocol() && {
            let core = crate::cores::current_core();
            core != crate::cores::NO_CORE
                && crate::cores::current_step_round() != self.fence.round()
        };
        let mut meta = slot.meta.lock();
        let inflight = self.fence.inflight();
        let mut duplicated = false;
        // The fence only governs the pre-commit window: once the round's
        // commit record lands (global == inflight), ordinary CoW
        // semantics preserve images correctly even before disarm.
        if self.fence.active()
            && !pre_arm_step
            && !meta.eternal
            && self.pers.global_version() < inflight
        {
            if meta.is_migrated() {
                // Keyed to the fence *round*, not the version tag: an
                // aborted round leaves captures carrying the same
                // in-flight version, and this round must re-capture.
                if meta.epoch_round != self.fence.round() {
                    let dst = meta.sac_dst(inflight - 1);
                    self.epoch_capture_locked(&mut meta, inflight, dst)?;
                    duplicated = true;
                }
            } else if !meta.writable && meta.epoch_round != self.fence.round() {
                // epoch_round == round means a whole-page capture already
                // preserved this round's image: write through. Otherwise
                // log or capture the pre-write bytes first.
                duplicated =
                    self.epoch_conflict_locked(slot, &mut meta, inflight, off, data.len())?;
            }
        } else if !meta.writable {
            self.cow_fault_locked(slot, &mut meta)?;
            duplicated = true;
        }
        match meta.runtime_loc() {
            PhysLoc::Nvm(f) => self.pers.dev.write(f, off, data),
            PhysLoc::Dram(d) => {
                self.dram.write(d, off, data);
                // First store into a clean migrated page this round:
                // the stop-and-copy will capture it, so the record
                // rewrite must ride the same round's dirty queue.
                if !meta.dirty {
                    meta.dirty = true;
                    duplicated = true;
                }
            }
        }
        meta.idle_rounds = 0;
        Ok(duplicated)
    }

    /// Epoch-fence conflict capture (called with the slot lock held): a
    /// write from a free core is about to modify a migrated page whose
    /// in-flight round image has not been preserved yet. Capture the
    /// pre-write DRAM content into the speculative-copy slot, tagged with
    /// the in-flight version, exactly as the hybrid worker would have —
    /// whichever of the two runs first wins, the other skips.
    fn epoch_capture_locked(
        &self,
        meta: &mut crate::pmo::PageMeta,
        inflight: u64,
        dst: usize,
    ) -> Result<(), KernelError> {
        let t0 = Instant::now();
        self.stats.write_faults.fetch_add(1, Ordering::Relaxed);
        let frame = match meta.pairs[dst] {
            Some(p) => p.frame,
            None => self.pers.alloc.alloc_page()?,
        };
        let d = meta.runtime_dram.expect("epoch capture is for migrated pages");
        treesls_nvm::crash_site!(self.pers.dev.crash_schedule(), "stw.clean_core_cow");
        let tc = Instant::now();
        self.pers.dev.copy_from_dram(&self.dram, d, frame);
        self.stats.memcpy_ns.fetch_add(tc.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let crc = self.pers.dev.page_crc(frame);
        meta.pairs[dst] = Some(PagePtr::backup(frame, inflight, crc));
        meta.epoch_round = self.fence.round();
        self.stats.epoch_conflicts.fetch_add(1, Ordering::Relaxed);
        self.metrics.record_backup_page(inflight);
        self.metrics.record_epoch_conflict();
        self.pers.recorder().record(
            treesls_obs::EventKind::HybridSacCopy,
            [frame.0 as u64, inflight, d.0 as u64, 1, 0, 0],
        );
        self.stats.fault_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Zeroes and persists an in-line log's first record header, so any
    /// future parse of the frame yields no records. Must run *after* the
    /// state the log protected is durable elsewhere (a materialized fold
    /// image or a whole-page capture) — a crash between the two must find
    /// either the log or its replacement.
    fn kill_inline_log(&self, log: &InlineLog) {
        self.pers.dev.write(log.frame, 0, &[0u8; UNDO_HEADER]);
        self.pers.dev.flush_frame(log.frame, 0, UNDO_HEADER);
        self.pers.dev.fence();
    }

    /// Reads the page image "runtime ⊖ reverse(log records)": the frozen
    /// window-start content of a page whose window writes were undo-logged.
    fn undo_applied_image(&self, meta: &PageMeta, log: &InlineLog) -> Box<[u8; PAGE_SIZE]> {
        let rt = meta.pairs[1].expect("logged pages are non-migrated").frame;
        let mut img = Box::new([0u8; PAGE_SIZE]);
        self.pers.dev.read_page(rt, &mut img);
        let mut raw = vec![0u8; log.used as usize];
        self.pers.dev.read(log.frame, 0, &mut raw);
        let recs = parse_undo_records(&raw);
        apply_undo_records(&mut img, &recs);
        img
    }

    /// Reads a non-migrated page's runtime frame into a fresh buffer.
    fn runtime_image(&self, meta: &PageMeta) -> Box<[u8; PAGE_SIZE]> {
        let rt = meta.pairs[1].expect("non-migrated page has a runtime NVM frame").frame;
        let mut img = Box::new([0u8; PAGE_SIZE]);
        self.pers.dev.read_page(rt, &mut img);
        img
    }

    /// Writes `img` into a freshly allocated frame, makes it durable and
    /// returns a backup pointer tagged `version`.
    fn persist_image(&self, img: &[u8; PAGE_SIZE], version: u64) -> Result<PagePtr, KernelError> {
        let dst = self.pers.alloc.alloc_page()?;
        let tc = Instant::now();
        self.pers.dev.write(dst, 0, &img[..]);
        self.pers.dev.flush_frame(dst, 0, PAGE_SIZE);
        self.pers.dev.fence();
        self.stats.memcpy_ns.fetch_add(tc.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let crc = self.pers.dev.page_crc(dst);
        Ok(PagePtr::backup(dst, version, crc))
    }

    /// First conflicting write of the epoch window to a non-migrated
    /// read-only page (called with the slot lock held; the generalized
    /// form of [`epoch_capture_locked`](Self::epoch_capture_locked) that
    /// lets *every* core keep running through the copy phase).
    ///
    /// A small write (≤ [`INLINE_MAX_DATA`] bytes) appends a pre-write
    /// undo record to the page's in-line log — the round image stays
    /// reconstructible as runtime ⊖ reverse(records) while the write
    /// itself lands directly on the runtime frame. A big write, or a log
    /// overflow, escalates to a whole-page capture of the window image
    /// into a fresh frame ([`PageMeta::epoch_capture`]); the previous
    /// committed image anchored in `pairs` is never touched.
    ///
    /// Stale capture state from an aborted earlier window (same in-flight
    /// version, different fence arm) is folded first: its content *is*
    /// the committed image — frozen pages take no writes between windows
    /// without a CoW fold — so it re-anchors into `pairs[0]` before this
    /// window captures anything.
    ///
    /// Returns `true` on the page's first preserved conflict of the round
    /// (the PMO must re-enter the dirty queue for the *next* round).
    fn epoch_conflict_locked(
        &self,
        slot: &Arc<PageSlot>,
        meta: &mut PageMeta,
        inflight: u64,
        off: usize,
        len: usize,
    ) -> Result<bool, KernelError> {
        let t0 = Instant::now();
        self.stats.write_faults.fetch_add(1, Ordering::Relaxed);
        let round = self.fence.round();
        let global = self.pers.global_version();
        let mut first = true;

        // Fold a stale whole-page capture (aborted earlier window).
        if let Some(c) = meta.epoch_capture.take() {
            if global > 0 {
                let old = meta.pairs[0];
                meta.pairs[0] =
                    Some(PagePtr { frame: c.frame, version: c.version.min(global), crc: c.crc });
                if let Some(p) = old {
                    if p.frame != c.frame {
                        let _ = self.pers.alloc.free_page(p.frame);
                    }
                }
            } else {
                let _ = self.pers.alloc.free_page(c.frame);
            }
        }
        // Fold a stale in-line log the same way (undo back to the
        // committed image, durably, before the log dies), then reuse its
        // frame for this window.
        if let Some(log) = meta.inline_log {
            if log.arm != round {
                if log.round >= global && global > 0 && log.used > 0 {
                    let img = self.undo_applied_image(meta, &log);
                    let ptr = self.persist_image(&img, global)?;
                    let old = meta.pairs[0];
                    meta.pairs[0] = Some(ptr);
                    if let Some(p) = old {
                        let _ = self.pers.alloc.free_page(p.frame);
                    }
                }
                self.kill_inline_log(&log);
                meta.inline_log =
                    Some(InlineLog { frame: log.frame, round: inflight, used: 0, arm: round });
            } else {
                // This window already logged: the slot is registered and
                // the PMO already rides the next round's queue.
                first = false;
            }
        }

        if len <= INLINE_MAX_DATA {
            let mut log = match meta.inline_log {
                Some(l) => l,
                None => {
                    let frame = self.pers.alloc.alloc_page()?;
                    self.pers.dev.zero_page(frame);
                    InlineLog { frame, round: inflight, used: 0, arm: round }
                }
            };
            if log.used as usize + undo_record_size(len) <= INLINE_LOG_CAP {
                treesls_nvm::crash_site!(self.pers.dev.crash_schedule(), "ckpt.inline_log_capture");
                let rt = meta.pairs[1].expect("non-migrated page has a runtime NVM frame").frame;
                let mut pre = vec![0u8; len];
                self.pers.dev.read(rt, off, &mut pre);
                let rec = encode_undo_record(inflight, off as u16, &pre);
                self.pers.dev.write(log.frame, log.used as usize, &rec);
                self.pers.dev.flush_frame(log.frame, log.used as usize, rec.len());
                self.pers.dev.fence();
                log.used += rec.len() as u32;
                meta.inline_log = Some(log);
                self.metrics.record_inline_log(rec.len() as u64);
                self.pers.recorder().record(
                    treesls_obs::EventKind::InlineLog,
                    [log.frame.0 as u64, inflight, off as u64, len as u64, log.used as u64, 0],
                );
                if first {
                    self.stats.epoch_conflicts.fetch_add(1, Ordering::Relaxed);
                    self.metrics.record_epoch_conflict();
                    self.epoch_captures.lock().push(Arc::clone(slot));
                }
                self.stats.fault_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                return Ok(first);
            }
            meta.inline_log = Some(log);
        }

        // Whole-page escalation: the window image is the runtime frame
        // with this window's logged writes undone (or the runtime itself
        // when nothing was logged). The capture must be durable *before*
        // the log dies.
        treesls_nvm::crash_site!(self.pers.dev.crash_schedule(), "stw.clean_core_cow");
        let img = match meta.inline_log {
            Some(l) if l.arm == round && l.used > 0 => self.undo_applied_image(meta, &l),
            _ => self.runtime_image(meta),
        };
        let ptr = self.persist_image(&img, inflight)?;
        meta.epoch_capture = Some(ptr);
        meta.epoch_round = round;
        if let Some(log) = meta.inline_log.take() {
            self.kill_inline_log(&log);
            let _ = self.pers.alloc.free_page(log.frame);
        }
        self.metrics.record_backup_page(inflight);
        self.pers.recorder().record(
            treesls_obs::EventKind::HybridSacCopy,
            [ptr.frame.0 as u64, inflight, 0, 2, 0, 0],
        );
        if first {
            self.stats.epoch_conflicts.fetch_add(1, Ordering::Relaxed);
            self.metrics.record_epoch_conflict();
            self.epoch_captures.lock().push(Arc::clone(slot));
        }
        self.stats.fault_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(first)
    }

    /// Post-commit eager fold (leader, after the commit record lands and
    /// the fence disarms): every whole-page capture tagged with the
    /// just-committed version becomes the page's `pairs[0]` backup, and
    /// the page turns writable again — its runtime divergence was already
    /// queued for the next round when the capture happened. In-line-logged
    /// pages are left alone: the log *is* their durable image, and the
    /// next CoW fault folds it lazily. Returns the number folded.
    pub fn fold_epoch_captures(&self, committed: u64) -> u64 {
        let slots = std::mem::take(&mut *self.epoch_captures.lock());
        let mut folded = 0u64;
        for slot in slots {
            let mut meta = slot.meta.lock();
            let Some(c) = meta.epoch_capture else { continue };
            if c.version != committed {
                continue; // aborted leftover: the lazy CoW fold handles it
            }
            meta.epoch_capture = None;
            let old = meta.pairs[0];
            meta.pairs[0] = Some(c);
            if let Some(p) = old {
                if p.frame != c.frame {
                    let _ = self.pers.alloc.free_page(p.frame);
                }
            }
            meta.writable = true;
            drop(meta);
            self.tracker.dirty_list.lock().push(slot);
            folded += 1;
        }
        folded
    }

    /// Abort fold: the round armed for the fence's in-flight version died
    /// before committing (in-process error path). Leftover captures and
    /// logs carry a version tag that a *re-run* of the same version would
    /// mistake for its own at eager-fold time, so they are folded down to
    /// the committed version now: a capture's content is the committed
    /// image (frozen pages take no writes between windows), and a logged
    /// page's committed image is runtime ⊖ its records. Crash aborts
    /// don't need this — restore normalizes the capture state itself.
    pub fn fold_epoch_captures_aborted(&self) {
        let global = self.pers.global_version();
        let slots = std::mem::take(&mut *self.epoch_captures.lock());
        for slot in slots {
            let mut meta = slot.meta.lock();
            let mut diverged = false;
            if let Some(c) = meta.epoch_capture.take() {
                if c.version > global {
                    if global > 0 {
                        let old = meta.pairs[0];
                        meta.pairs[0] =
                            Some(PagePtr { frame: c.frame, version: global, crc: c.crc });
                        if let Some(p) = old {
                            if p.frame != c.frame {
                                let _ = self.pers.alloc.free_page(p.frame);
                            }
                        }
                    } else {
                        let _ = self.pers.alloc.free_page(c.frame);
                    }
                    diverged = true;
                } else {
                    meta.epoch_capture = Some(c);
                }
            }
            if let Some(log) = meta.inline_log.take() {
                if log.round > global {
                    if log.used > 0 && global > 0 {
                        let img = self.undo_applied_image(&meta, &log);
                        if let Ok(ptr) = self.persist_image(&img, global) {
                            let old = meta.pairs[0];
                            meta.pairs[0] = Some(ptr);
                            if let Some(p) = old {
                                let _ = self.pers.alloc.free_page(p.frame);
                            }
                        }
                    }
                    self.kill_inline_log(&log);
                    let _ = self.pers.alloc.free_page(log.frame);
                    diverged = true;
                } else {
                    meta.inline_log = Some(log);
                }
            }
            if diverged {
                meta.writable = true;
                drop(meta);
                self.tracker.dirty_list.lock().push(slot);
            }
        }
    }

    /// The classic CoW duplicate (called with the slot lock held): copy
    /// the runtime frame into `pairs[0]` tagged with the committed global
    /// version, durable before the fault returns.
    fn plain_cow_locked(&self, meta: &mut PageMeta, global: u64) -> Result<(), KernelError> {
        let runtime = meta.pairs[1].expect("non-migrated page has a runtime NVM frame").frame;
        let dst = match meta.pairs[0] {
            Some(p) => p.frame,
            None => self.pers.alloc.alloc_page()?,
        };
        let tc = Instant::now();
        self.pers.dev.copy_frame(runtime, dst);
        // Ordering point (ADR): the duplicate is the only version-N
        // image once the triggering store lands on the runtime page,
        // so it must be durable *before* this fault returns. A no-op
        // under eADR.
        self.pers.dev.flush_frame(dst, 0, treesls_nvm::PAGE_SIZE);
        self.pers.dev.fence();
        self.stats.memcpy_ns.fetch_add(tc.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats.cow_copies.fetch_add(1, Ordering::Relaxed);
        let crc = self.pers.dev.page_crc(dst);
        meta.pairs[0] = Some(PagePtr::backup(dst, global, crc));
        self.metrics.record_backup_page(global);
        self.pers.recorder().record(
            treesls_obs::EventKind::CowFault,
            [dst.0 as u64, global, runtime.0 as u64, 0, 0, 0],
        );
        Ok(())
    }

    /// The copy-on-write fault handler (called with the slot lock held).
    ///
    /// Figure 5 step ❻: "the memory page will be duplicated to the backup
    /// capability tree, finishing the copy-on-write procedure".
    fn cow_fault_locked(
        &self,
        slot: &Arc<PageSlot>,
        meta: &mut crate::pmo::PageMeta,
    ) -> Result<(), KernelError> {
        let t0 = Instant::now();
        debug_assert!(!meta.eternal, "eternal pages are never marked read-only");
        self.stats.write_faults.fetch_add(1, Ordering::Relaxed);
        let global = self.pers.global_version();
        if meta.runtime_dram.is_none() && self.config.do_copy {
            if let Some(c) = meta.epoch_capture.take() {
                // Lazy fold of an epoch capture (committed round not yet
                // eagerly folded, or an aborted round): the capture *is*
                // the page's best committed image — anchor it in
                // `pairs[0]` instead of copying anything. A tag above the
                // committed version retags down to it (the content is the
                // frozen committed image either way).
                if global > 0 {
                    let old = meta.pairs[0];
                    meta.pairs[0] = Some(PagePtr {
                        frame: c.frame,
                        version: c.version.min(global),
                        crc: c.crc,
                    });
                    if let Some(p) = old {
                        if p.frame != c.frame {
                            let _ = self.pers.alloc.free_page(p.frame);
                        }
                    }
                } else {
                    let _ = self.pers.alloc.free_page(c.frame);
                }
                // An escalation leftover log is stale by construction.
                if let Some(log) = meta.inline_log.take() {
                    self.kill_inline_log(&log);
                    let _ = self.pers.alloc.free_page(log.frame);
                }
            } else if let Some(log) = meta.inline_log.take() {
                if log.round >= global && global > 0 && log.used > 0 {
                    // The committed image is runtime ⊖ the logged window
                    // writes; materialize it durably before the log dies.
                    let img = self.undo_applied_image(meta, &log);
                    let ptr = self.persist_image(&img, global)?;
                    self.stats.cow_copies.fetch_add(1, Ordering::Relaxed);
                    let old = meta.pairs[0];
                    meta.pairs[0] = Some(ptr);
                    if let Some(p) = old {
                        let _ = self.pers.alloc.free_page(p.frame);
                    }
                    self.metrics.record_backup_page(global);
                } else {
                    // A stale log of an older committed round: the
                    // runtime page has been the image since — plain CoW.
                    self.plain_cow_locked(meta, global)?;
                }
                self.kill_inline_log(&log);
                let _ = self.pers.alloc.free_page(log.frame);
            } else {
                self.plain_cow_locked(meta, global)?;
            }
        }
        meta.writable = true;
        meta.hotness = meta.hotness.saturating_add(1);
        meta.idle_rounds = 0;
        if self.config.hybrid_copy
            && meta.hotness >= self.config.hot_threshold
            && !meta.on_active_list
        {
            meta.on_active_list = true;
            self.tracker.active_list.lock().push(Arc::clone(slot));
        }
        // Re-mark read-only at the next checkpoint.
        self.tracker.dirty_list.lock().push(Arc::clone(slot));
        self.stats
            .fault_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use crate::pmo::PmoKind;

    fn setup() -> (Arc<Kernel>, ObjId, ObjId) {
        let k = Kernel::boot(KernelConfig {
            nvm_frames: 1024,
            dram_pages: 64,
            ..KernelConfig::default()
        });
        let g = k.create_cap_group("p").unwrap();
        let vs = k.create_vmspace(g).unwrap();
        let pmo = k.create_pmo(g, 64, PmoKind::Data).unwrap();
        k.map_region(vs, Vpn(0), 64, pmo, 0, CapRights::ALL).unwrap();
        (k, vs, pmo)
    }

    #[test]
    fn read_of_untouched_page_is_zero() {
        let (k, vs, _) = setup();
        let mut buf = [0xFFu8; 64];
        k.vm_read(vs, Vaddr(100), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
        assert_eq!(k.stats.snapshot().minor_faults, 1);
    }

    #[test]
    fn write_read_roundtrip_cross_page() {
        let (k, vs, _) = setup();
        let data: Vec<u8> = (0..=255).collect();
        // Spans the page-0/page-1 boundary.
        k.vm_write(vs, Vaddr(4000), &data).unwrap();
        let mut buf = vec![0u8; 256];
        k.vm_read(vs, Vaddr(4000), &mut buf).unwrap();
        assert_eq!(buf, data);
        // Two pages materialized.
        assert_eq!(k.stats.snapshot().minor_faults, 2);
    }

    #[test]
    fn unmapped_access_fails() {
        let (k, vs, _) = setup();
        let mut buf = [0u8; 4];
        assert!(matches!(
            k.vm_read(vs, Vaddr(64 * 4096), &mut buf),
            Err(KernelError::UnmappedAddress(_))
        ));
        assert!(matches!(
            k.vm_write(vs, Vaddr(1 << 40), &buf),
            Err(KernelError::UnmappedAddress(_))
        ));
    }

    #[test]
    fn new_pages_do_not_cow_fault() {
        let (k, vs, _) = setup();
        k.vm_write(vs, Vaddr(0), b"x").unwrap();
        // Fresh page is writable: no write fault, no copy.
        let s = k.stats.snapshot();
        assert_eq!(s.write_faults, 0);
        assert_eq!(s.cow_copies, 0);
    }

    #[test]
    fn read_only_page_faults_and_copies_on_write() {
        let (k, vs, pmo) = setup();
        k.vm_write(vs, Vaddr(0), b"before").unwrap();
        // Simulate the checkpoint marking pages read-only.
        let pmo_obj = k.object(pmo).unwrap();
        let slot = {
            let b = pmo_obj.body.read();
            match &*b {
                ObjectBody::Pmo(p) => Arc::clone(p.get(0).unwrap()),
                _ => unreachable!(),
            }
        };
        slot.meta.lock().writable = false;
        k.pers.commit_version(1);

        k.vm_write(vs, Vaddr(0), b"after!").unwrap();
        let s = k.stats.snapshot();
        assert_eq!(s.write_faults, 1);
        assert_eq!(s.cow_copies, 1);
        // The backup holds the pre-write image tagged with version 1.
        let m = slot.meta.lock();
        let backup = m.pairs[0].expect("backup created");
        assert_eq!(backup.version, 1);
        let mut page = [0u8; 6];
        k.pers.dev.read(backup.frame, 0, &mut page);
        assert_eq!(&page, b"before");
        // Runtime page holds the new data.
        let PhysLoc::Nvm(rt) = m.runtime_loc() else { panic!("not migrated") };
        let mut page = [0u8; 6];
        k.pers.dev.read(rt, 0, &mut page);
        assert_eq!(&page, b"after!");
    }

    #[test]
    fn second_fault_reuses_backup_frame() {
        let (k, vs, pmo) = setup();
        k.vm_write(vs, Vaddr(0), b"v0").unwrap();
        let pmo_obj = k.object(pmo).unwrap();
        let slot = {
            let b = pmo_obj.body.read();
            match &*b {
                ObjectBody::Pmo(p) => Arc::clone(p.get(0).unwrap()),
                _ => unreachable!(),
            }
        };
        slot.meta.lock().writable = false;
        k.pers.commit_version(1);
        k.vm_write(vs, Vaddr(0), b"v1").unwrap();
        let f1 = slot.meta.lock().pairs[0].unwrap().frame;
        slot.meta.lock().writable = false;
        k.pers.commit_version(2);
        k.vm_write(vs, Vaddr(0), b"v2").unwrap();
        let p0 = slot.meta.lock().pairs[0].unwrap();
        assert_eq!(p0.frame, f1, "backup frame is reused");
        assert_eq!(p0.version, 2);
        let mut b = [0u8; 2];
        k.pers.dev.read(p0.frame, 0, &mut b);
        assert_eq!(&b, b"v1");
    }

    #[test]
    fn hotness_crosses_threshold_onto_active_list() {
        let (k, vs, pmo) = setup();
        k.vm_write(vs, Vaddr(0), b"x").unwrap();
        let pmo_obj = k.object(pmo).unwrap();
        let slot = {
            let b = pmo_obj.body.read();
            match &*b {
                ObjectBody::Pmo(p) => Arc::clone(p.get(0).unwrap()),
                _ => unreachable!(),
            }
        };
        for v in 1..=k.config.hot_threshold as u64 {
            slot.meta.lock().writable = false;
            k.pers.commit_version(v);
            k.vm_write(vs, Vaddr(0), b"y").unwrap();
        }
        assert_eq!(k.tracker.active_len(), 1);
        assert!(slot.meta.lock().on_active_list);
        // Further faults do not duplicate the entry.
        slot.meta.lock().writable = false;
        k.vm_write(vs, Vaddr(0), b"z").unwrap();
        assert_eq!(k.tracker.active_len(), 1);
    }

    #[test]
    fn dirty_list_collects_writable_pages() {
        let (k, vs, _) = setup();
        k.vm_write(vs, Vaddr(0), b"a").unwrap();
        k.vm_write(vs, Vaddr(4096), b"b").unwrap();
        let dirty = k.tracker.take_dirty();
        assert_eq!(dirty.len(), 2);
        assert!(k.tracker.take_dirty().is_empty());
    }

    #[test]
    fn permission_bits_enforced() {
        let k = Kernel::boot(KernelConfig {
            nvm_frames: 256,
            dram_pages: 16,
            ..KernelConfig::default()
        });
        let g = k.create_cap_group("p").unwrap();
        let vs = k.create_vmspace(g).unwrap();
        let pmo = k.create_pmo(g, 4, PmoKind::Data).unwrap();
        k.map_region(vs, Vpn(0), 4, pmo, 0, CapRights::READ).unwrap();
        let mut buf = [0u8; 4];
        k.vm_read(vs, Vaddr(0), &mut buf).unwrap();
        assert_eq!(
            k.vm_write(vs, Vaddr(0), &buf),
            Err(KernelError::PermissionDenied)
        );
    }

    #[test]
    fn do_copy_false_skips_memcpy_but_counts_fault() {
        let k = Kernel::boot(KernelConfig {
            nvm_frames: 256,
            dram_pages: 16,
            do_copy: false,
            ..KernelConfig::default()
        });
        let g = k.create_cap_group("p").unwrap();
        let vs = k.create_vmspace(g).unwrap();
        let pmo = k.create_pmo(g, 4, PmoKind::Data).unwrap();
        k.map_region(vs, Vpn(0), 4, pmo, 0, CapRights::ALL).unwrap();
        k.vm_write(vs, Vaddr(0), b"x").unwrap();
        let pmo_obj = k.object(pmo).unwrap();
        let slot = {
            let b = pmo_obj.body.read();
            match &*b {
                ObjectBody::Pmo(p) => Arc::clone(p.get(0).unwrap()),
                _ => unreachable!(),
            }
        };
        slot.meta.lock().writable = false;
        k.vm_write(vs, Vaddr(0), b"y").unwrap();
        let s = k.stats.snapshot();
        assert_eq!(s.write_faults, 1);
        assert_eq!(s.cow_copies, 0);
    }
}
