//! Notification and IRQ-notification objects.
//!
//! Notifications are TreeSLS's synchronization primitive ("for
//! synchronization (like semaphores)", Table 1); IRQ notifications model "a
//! hardware signal sent to the processor". Both are small objects that the
//! checkpoint simply copies (§4.1, "IPC Connection, Notification and IRQ
//! Notification ... We directly copy them to the backup capability tree").

use std::collections::VecDeque;

use crate::types::ObjId;

/// Runtime body of a Notification object (a counting semaphore).
#[derive(Debug, Clone, Default)]
pub struct NotifBody {
    /// Pending signal count.
    pub count: u64,
    /// Threads blocked waiting for a signal, FIFO.
    pub waiters: VecDeque<ObjId>,
}

impl NotifBody {
    /// Creates a notification with no pending signals.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a signal; returns the thread to wake, if any.
    ///
    /// Counting-semaphore semantics: the count is incremented *and* one
    /// waiter (if any) is woken; the woken thread re-issues its wait,
    /// which then consumes the count. Transferring the signal to the
    /// waiter without counting it would lose a wakeup whenever the woken
    /// thread re-checks the condition (programs resume at their wait
    /// step), and — worse — a checkpoint between wake and re-wait would
    /// persist the token nowhere.
    pub fn signal(&mut self) -> Option<ObjId> {
        self.count += 1;
        self.waiters.pop_front()
    }

    /// Attempts to consume a signal for `thread`.
    ///
    /// Returns `true` if a signal was consumed (the thread proceeds) or
    /// `false` if the thread was queued as a waiter (it must block).
    pub fn wait(&mut self, thread: ObjId) -> bool {
        if self.count > 0 {
            self.count -= 1;
            true
        } else {
            self.waiters.push_back(thread);
            false
        }
    }

    /// Removes a thread from the waiter queue (e.g. on thread exit).
    pub fn remove_waiter(&mut self, thread: ObjId) {
        self.waiters.retain(|&t| t != thread);
    }
}

/// Runtime body of an IRQ Notification object.
///
/// A user-space driver binds one to a (virtual) interrupt line and waits on
/// it; the kernel's `raise_irq` signals it, mirroring how microkernels
/// convert hardware interrupts into IPC/notification messages.
#[derive(Debug, Clone)]
pub struct IrqNotifBody {
    /// The virtual interrupt line this object is bound to.
    pub line: u32,
    /// Pending (unconsumed) interrupt count.
    pub inner: NotifBody,
}

impl IrqNotifBody {
    /// Creates an IRQ notification bound to `line`.
    pub fn new(line: u32) -> Self {
        Self { line, inner: NotifBody::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesls_nvm::{ObjectStore, SlotId};

    fn tid(n: u32) -> ObjId {
        // Build distinct ids via a throwaway store.
        let mut s: ObjectStore<u32> = ObjectStore::new();
        let mut last = SlotId::INVALID;
        for i in 0..=n {
            last = s.insert(i);
        }
        last
    }

    #[test]
    fn signal_accumulates_without_waiters() {
        let mut n = NotifBody::new();
        assert_eq!(n.signal(), None);
        assert_eq!(n.signal(), None);
        assert_eq!(n.count, 2);
    }

    #[test]
    fn wait_consumes_pending_signal() {
        let mut n = NotifBody::new();
        n.signal();
        assert!(n.wait(tid(0)));
        assert_eq!(n.count, 0);
        assert!(n.waiters.is_empty());
    }

    #[test]
    fn wait_blocks_when_empty_then_signal_wakes_fifo() {
        let mut n = NotifBody::new();
        let (a, b) = (tid(0), tid(1));
        assert!(!n.wait(a));
        assert!(!n.wait(b));
        assert_eq!(n.signal(), Some(a));
        assert_eq!(n.signal(), Some(b));
        assert_eq!(n.signal(), None);
        // Counting semantics: every signal accumulates; the woken threads'
        // re-waits consume them.
        assert_eq!(n.count, 3);
        assert!(n.wait(a));
        assert!(n.wait(b));
        assert!(n.wait(a));
        assert!(!n.wait(a));
    }

    #[test]
    fn remove_waiter_drops_thread() {
        let mut n = NotifBody::new();
        let (a, b) = (tid(0), tid(1));
        n.wait(a);
        n.wait(b);
        n.remove_waiter(a);
        assert_eq!(n.signal(), Some(b));
        assert_eq!(n.count, 1);
    }

    #[test]
    fn irq_notification_wraps_notif() {
        let mut irq = IrqNotifBody::new(7);
        assert_eq!(irq.line, 7);
        assert_eq!(irq.inner.signal(), None);
        assert!(irq.inner.wait(tid(0)));
    }
}
