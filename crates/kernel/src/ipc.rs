//! IPC connection objects: synchronous call/recv/reply rendezvous.
//!
//! Microkernel services communicate through IPC connections (Table 1, "for
//! processes communication"). TreeSLS checkpoints the connection object —
//! including any in-flight messages buffered in kernel space — by direct
//! copy (§4.1), so a restored system resumes with exactly the requests that
//! had been issued before the checkpoint.

use std::collections::VecDeque;

use crate::types::{KernelError, ObjId};

/// Maximum bytes of an inline IPC message.
///
/// Real microkernels pass small messages in registers/kernel buffers and
/// bulk data through shared memory; 2 KiB covers a 1024-byte value plus
/// protocol framing (the paper's Redis SET benchmark uses 1024-byte
/// values), while bulk transfers still belong in shared PMOs.
pub const MAX_MSG_LEN: usize = 2048;

/// A buffered request from a client thread.
#[derive(Debug, Clone)]
pub struct IpcMsg {
    /// The calling (now blocked) client thread.
    pub from: ObjId,
    /// Message bytes.
    pub data: Vec<u8>,
}

/// Runtime body of an IPC Connection object.
#[derive(Debug, Clone, Default)]
pub struct IpcConnBody {
    /// Server thread currently blocked in `ipc_recv`, if any.
    pub recv_waiter: Option<ObjId>,
    /// Requests issued by clients and not yet received by the server.
    pub queue: VecDeque<IpcMsg>,
    /// Replies produced by the server, keyed by client thread, not yet
    /// consumed by the (blocked) client.
    pub replies: Vec<(ObjId, Vec<u8>)>,
}

impl IpcConnBody {
    /// Creates an idle connection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Client side of `ipc_call`: enqueue the request.
    ///
    /// Returns the server thread to wake if one was blocked in `recv`.
    /// The caller must then block the client until the reply arrives.
    pub fn call(&mut self, client: ObjId, data: Vec<u8>) -> Result<Option<ObjId>, KernelError> {
        if data.len() > MAX_MSG_LEN {
            return Err(KernelError::MessageTooLarge);
        }
        self.queue.push_back(IpcMsg { from: client, data });
        Ok(self.recv_waiter.take())
    }

    /// Server side of `ipc_recv`: dequeue a request or register as waiter.
    ///
    /// Returns `Some(msg)` if a request was pending, or `None` after
    /// registering `server` as the recv waiter (the caller must block it).
    pub fn recv(&mut self, server: ObjId) -> Result<Option<IpcMsg>, KernelError> {
        if let Some(msg) = self.queue.pop_front() {
            return Ok(Some(msg));
        }
        if self.recv_waiter.is_some() && self.recv_waiter != Some(server) {
            return Err(KernelError::InvalidState("connection already has a recv waiter"));
        }
        self.recv_waiter = Some(server);
        Ok(None)
    }

    /// Server side of `ipc_reply`: stage the reply for `client`.
    ///
    /// The caller wakes the client, whose next step consumes the reply via
    /// [`take_reply`](Self::take_reply).
    pub fn reply(&mut self, client: ObjId, data: Vec<u8>) -> Result<(), KernelError> {
        if data.len() > MAX_MSG_LEN {
            return Err(KernelError::MessageTooLarge);
        }
        if self.replies.iter().any(|(c, _)| *c == client) {
            return Err(KernelError::InvalidState("client already has a pending reply"));
        }
        self.replies.push((client, data));
        Ok(())
    }

    /// Consumes the staged reply for `client`, if present.
    pub fn take_reply(&mut self, client: ObjId) -> Option<Vec<u8>> {
        let idx = self.replies.iter().position(|(c, _)| *c == client)?;
        Some(self.replies.swap_remove(idx).1)
    }

    /// Total in-flight items (diagnostics / checkpoint sizing).
    pub fn in_flight(&self) -> usize {
        self.queue.len() + self.replies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesls_nvm::ObjectStore;

    fn ids(n: usize) -> Vec<ObjId> {
        let mut s: ObjectStore<usize> = ObjectStore::new();
        (0..n).map(|i| s.insert(i)).collect()
    }

    #[test]
    fn call_then_recv() {
        let t = ids(2);
        let mut c = IpcConnBody::new();
        assert_eq!(c.call(t[0], b"req".to_vec()).unwrap(), None);
        let msg = c.recv(t[1]).unwrap().expect("queued request");
        assert_eq!(msg.from, t[0]);
        assert_eq!(msg.data, b"req");
    }

    #[test]
    fn recv_blocks_then_call_wakes() {
        let t = ids(2);
        let mut c = IpcConnBody::new();
        assert!(c.recv(t[1]).unwrap().is_none());
        let wake = c.call(t[0], b"x".to_vec()).unwrap();
        assert_eq!(wake, Some(t[1]));
        // The woken server then receives the request.
        let msg = c.recv(t[1]).unwrap().expect("request after wake");
        assert_eq!(msg.from, t[0]);
    }

    #[test]
    fn reply_roundtrip() {
        let t = ids(2);
        let mut c = IpcConnBody::new();
        c.reply(t[0], b"resp".to_vec()).unwrap();
        assert_eq!(c.take_reply(t[1]), None);
        assert_eq!(c.take_reply(t[0]), Some(b"resp".to_vec()));
        assert_eq!(c.take_reply(t[0]), None);
    }

    #[test]
    fn oversized_messages_rejected() {
        let t = ids(1);
        let mut c = IpcConnBody::new();
        let big = vec![0u8; MAX_MSG_LEN + 1];
        assert_eq!(c.call(t[0], big.clone()), Err(KernelError::MessageTooLarge));
        assert_eq!(c.reply(t[0], big), Err(KernelError::MessageTooLarge));
    }

    #[test]
    fn double_reply_rejected() {
        let t = ids(1);
        let mut c = IpcConnBody::new();
        c.reply(t[0], vec![1]).unwrap();
        assert!(matches!(c.reply(t[0], vec![2]), Err(KernelError::InvalidState(_))));
    }

    #[test]
    fn fifo_ordering_of_requests() {
        let t = ids(3);
        let mut c = IpcConnBody::new();
        c.call(t[0], vec![0]).unwrap();
        c.call(t[1], vec![1]).unwrap();
        assert_eq!(c.recv(t[2]).unwrap().unwrap().from, t[0]);
        assert_eq!(c.recv(t[2]).unwrap().unwrap().from, t[1]);
        assert_eq!(c.in_flight(), 0);
    }
}
