//! Simulated CPU cores and the stop-the-world (IPI) controller.
//!
//! Figure 5 of the paper: "❶ A leader CPU core sends IPI requests to all
//! other cores to force them into a quiescent state. ... ❸ In parallel to
//! the leader core checkpointing the capability tree, other cores
//! speculatively copy a certain set of page objects. ... ❺ The leader core
//! sends IPI requests to other cores to inform them to resume execution."
//!
//! Cores here are OS worker threads running application program steps; the
//! IPI is a flag checked at every kernel entry (step boundary), matching
//! the paper's "interrupts are disabled in the kernel space, so the IPI
//! will not interrupt a core modifying object state in the kernel" — cores
//! quiesce only between steps, never mid-syscall. While parked, cores pull
//! hybrid-copy work items (step ❸) before waiting for the resume signal.
//!
//! ## Partial quiescence
//!
//! The dirty queue tags every push with its owning core, so at pause time
//! the leader knows which cores own state in the round's write set — and
//! stops **only those**. Cores outside the stop set keep running through
//! the copy phase behind the kernel's per-round [`EpochFence`]: their
//! first conflicting write to a page whose epoch image is not yet
//! preserved is routed into a CoW capture (see `fault.rs`), and their
//! scheduler pulls are restricted to their own affinity queue so an
//! unpinned thread — whose state the round is copying — can never migrate
//! onto a free core mid-pause. `KernelConfig::force_full_quiesce` keeps
//! the historical all-cores protocol as a differential oracle.
//!
//! [`EpochFence`]: crate::kernel::EpochFence

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

pub use crate::dirty::NO_CORE;
use crate::kernel::Kernel;
use crate::object::ObjectBody;
use crate::pmo::PageSlot;
use crate::program::{Program, StepOutcome, UserCtx};
use crate::thread::ThreadState;
use crate::types::ObjId;

thread_local! {
    /// The simulated core id of the calling OS thread (`NO_CORE` for
    /// threads that are not core workers: the leader, hosts, tests).
    static CURRENT_CORE: std::cell::Cell<u32> = const { std::cell::Cell::new(NO_CORE) };

    /// The epoch-fence round the calling core latched at the start of
    /// its current program step (0 between steps or when the fence was
    /// unarmed at step start). `write_page_slot` compares this against
    /// the live fence round to tell pre-arm in-flight steps — which
    /// write through and are waited out by the leader's grace period —
    /// from post-arm steps, which hold their first write until the flip
    /// seals.
    static CURRENT_STEP_ROUND: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The core id of the calling thread (`NO_CORE` off-core). Used by
/// `mark_dirty` to tag dirty pushes with their owning core.
#[inline]
pub fn current_core() -> u32 {
    CURRENT_CORE.with(|c| c.get())
}

/// Declares the calling thread to be core `core` (called once per core
/// worker at spawn; tests may use it to impersonate a core).
pub fn set_current_core(core: u32) {
    CURRENT_CORE.with(|c| c.set(core));
}

/// The fence round the calling core's current program step latched at
/// its start (0 off-step / off-core / pre-arm).
#[inline]
pub fn current_step_round() -> u64 {
    CURRENT_STEP_ROUND.with(|r| r.get())
}

/// Per-core program-step publication: the shared half of the epoch
/// flip's no-park atomicity protocol (the private half is the
/// [`current_step_round`] latch).
///
/// Each core bumps its sequence word around every program step — odd
/// while mid-step, even between steps — with SeqCst ordering against
/// the fence-round latch taken at step start. The flip leader arms the
/// fence unsealed and then runs [`wait_step_grace`]: any core whose
/// step predates the arm is still odd-and-unchanged in the scan, so the
/// leader waits (the step is at most microseconds; the core never
/// parks). A core whose step postdates the arm either finishes without
/// writing, or publishes [`blocked`] and spins at its first write until
/// the seal — both let the scan pass it. After the grace period every
/// write the leader can race belongs to a whole step on exactly one
/// side of the flip.
///
/// [`wait_step_grace`]: Self::wait_step_grace
/// [`blocked`]: Self::set_blocked
#[derive(Debug)]
pub struct StepTracker {
    /// Per-core step sequence (odd = mid-step). Indexed by core id,
    /// matching the 64-bit owner/stop masks' core-id space.
    seqs: [AtomicU64; 64],
    /// Cores currently spinning at the fence seal inside their first
    /// write — mid-step by definition, but safe for the grace scan to
    /// pass: the held write has not executed, and it will land in a
    /// conflict capture once sealed.
    blocked: [AtomicBool; 64],
}

impl Default for StepTracker {
    fn default() -> Self {
        Self {
            seqs: [const { AtomicU64::new(0) }; 64],
            blocked: [const { AtomicBool::new(false) }; 64],
        }
    }
}

impl StepTracker {
    /// Marks the calling core mid-step and latches `fence_round` (the
    /// fence's [`active_round`] read *after* the sequence bump — the
    /// SeqCst pairing the grace scan relies on).
    ///
    /// [`active_round`]: crate::kernel::EpochFence::active_round
    #[inline]
    pub fn begin_step(&self, core: u32, fence_round: u64) {
        if let Some(seq) = self.seqs.get(core as usize) {
            seq.fetch_add(1, Ordering::SeqCst);
        }
        CURRENT_STEP_ROUND.with(|r| r.set(fence_round));
    }

    /// Marks the calling core between steps and clears its round latch.
    #[inline]
    pub fn end_step(&self, core: u32) {
        CURRENT_STEP_ROUND.with(|r| r.set(0));
        if let Some(seq) = self.seqs.get(core as usize) {
            seq.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Publishes whether the calling core is spinning at the fence seal.
    #[inline]
    pub fn set_blocked(&self, core: u32, blocked: bool) {
        if let Some(b) = self.blocked.get(core as usize) {
            b.store(blocked, Ordering::SeqCst);
        }
    }

    /// Leader: waits until no program step that started before the
    /// (just-armed, unsealed) fence is still executing. A core passes
    /// the scan once it is between steps, has advanced to a new step
    /// (which then latched the armed round), or is spinning at the
    /// seal. Bounded by one program step per core; no core parks.
    pub fn wait_step_grace(&self) {
        let snap: Vec<u64> = self.seqs.iter().map(|s| s.load(Ordering::SeqCst)).collect();
        loop {
            let settled = self.seqs.iter().enumerate().all(|(i, s)| {
                let cur = s.load(Ordering::SeqCst);
                cur.is_multiple_of(2) || cur != snap[i] || self.blocked[i].load(Ordering::SeqCst)
            });
            if settled {
                return;
            }
            std::thread::yield_now();
        }
    }
}

/// The per-slot closure a [`HybridWork`] batch runs on each worker core.
pub type SlotRunner = Box<dyn Fn(&Arc<PageSlot>) + Send + Sync>;

/// A deferred task fed to quiescent cores through the auxiliary queue
/// (leader-offloaded backup-record builds).
pub type AuxTask = Box<dyn FnOnce() + Send>;

/// A batch of hybrid-copy work executed by quiescent cores during the
/// stop-the-world pause.
///
/// Two kinds of work flow through one batch:
///
/// * **page items** — the active-list snapshot, claimed lock-free by index
///   (Figure 5 step ❸). The vector is taken from the page tracker by
///   pointer swap and given back at compaction, so building the batch
///   allocates nothing proportional to the list.
/// * **auxiliary tasks** — closures the leader publishes *mid-pause*
///   (backup-record build chunks). Cores that finish their page items poll
///   the aux queue until the leader closes it, so the quiesced cores keep
///   absorbing leader work for the whole tree-walk phase.
pub struct HybridWork {
    /// Page items; behind a mutex only so the compactor can take the
    /// vector back — claiming locks just long enough to clone one `Arc`.
    items: Mutex<Vec<Arc<PageSlot>>>,
    /// Item count, fixed at construction (lock-free `is_done`).
    count: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    runner: SlotRunner,
    /// Leader-published deferred tasks.
    aux: Mutex<VecDeque<AuxTask>>,
    /// Once set, no further aux tasks will arrive; pollers may leave.
    aux_closed: AtomicBool,
    /// Aux tasks published but not yet finished executing.
    aux_pending: AtomicUsize,
    /// Nanoseconds spent by all cores processing page items (two
    /// timestamps per core per round, not two per item).
    busy_ns: AtomicU64,
    /// Nanoseconds spent by all cores executing aux tasks (two timestamps
    /// per task chunk).
    aux_busy_ns: AtomicU64,
}

impl std::fmt::Debug for HybridWork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridWork")
            .field("items", &self.count)
            .field("done", &self.done.load(Ordering::Relaxed))
            .field("aux_pending", &self.aux_pending.load(Ordering::Relaxed))
            .finish()
    }
}

impl HybridWork {
    /// Creates a work batch over `items` processed by `runner`, with the
    /// aux queue already closed (pure page batch — the historical shape,
    /// still used by tests driving `stop_world` directly).
    pub fn new(
        items: Vec<Arc<PageSlot>>,
        runner: impl Fn(&Arc<PageSlot>) + Send + Sync + 'static,
    ) -> Arc<Self> {
        let w = Self::with_offload(items, runner);
        w.close_aux();
        w
    }

    /// Creates a work batch whose aux queue is open: cores finishing their
    /// page items keep polling for leader-published tasks until
    /// [`close_aux`](Self::close_aux) is called. The checkpoint path uses
    /// this to offload backup-record builds to the quiesced cores.
    pub fn with_offload(
        items: Vec<Arc<PageSlot>>,
        runner: impl Fn(&Arc<PageSlot>) + Send + Sync + 'static,
    ) -> Arc<Self> {
        let count = items.len();
        Arc::new(Self {
            items: Mutex::new(items),
            count,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            runner: Box::new(runner),
            aux: Mutex::new(VecDeque::new()),
            aux_closed: AtomicBool::new(false),
            aux_pending: AtomicUsize::new(0),
            busy_ns: AtomicU64::new(0),
            aux_busy_ns: AtomicU64::new(0),
        })
    }

    /// Claims and processes page items until the batch is exhausted, then
    /// drains the aux queue until it is closed.
    pub fn run_available(&self) {
        let t0 = Instant::now();
        let mut claimed = 0usize;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                break;
            }
            let slot = self.items.lock().get(i).map(Arc::clone);
            if let Some(slot) = slot {
                (self.runner)(&slot);
            }
            claimed += 1;
            self.done.fetch_add(1, Ordering::Release);
        }
        if claimed > 0 {
            self.busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        self.drain_aux();
    }

    /// Publishes a deferred task for any quiescent core (or the leader via
    /// [`drain_aux`](Self::drain_aux)) to execute.
    ///
    /// # Panics
    ///
    /// Panics if the aux queue was already closed.
    pub fn push_aux(&self, task: AuxTask) {
        assert!(!self.aux_closed.load(Ordering::Acquire), "push_aux after close");
        self.aux_pending.fetch_add(1, Ordering::AcqRel);
        self.aux.lock().push_back(task);
    }

    /// Closes the aux queue: pollers drain what remains and leave.
    /// Idempotent.
    pub fn close_aux(&self) {
        self.aux_closed.store(true, Ordering::Release);
    }

    /// Returns `true` while the aux queue accepts tasks.
    pub fn aux_open(&self) -> bool {
        !self.aux_closed.load(Ordering::Acquire)
    }

    /// Executes aux tasks until the queue is both empty and closed.
    pub fn drain_aux(&self) {
        loop {
            let task = self.aux.lock().pop_front();
            match task {
                Some(t) => {
                    let t0 = Instant::now();
                    t();
                    self.aux_busy_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    self.aux_pending.fetch_sub(1, Ordering::AcqRel);
                }
                None => {
                    if self.aux_closed.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Leader: closes the queue is assumed already; helps drain and then
    /// blocks until every published task (including ones claimed by other
    /// cores) has finished. Call after [`close_aux`](Self::close_aux).
    pub fn join_aux(&self) {
        self.drain_aux();
        while self.aux_pending.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
    }

    /// Returns `true` once every aux task has finished and the queue is
    /// closed.
    pub fn aux_done(&self) -> bool {
        self.aux_closed.load(Ordering::Acquire)
            && self.aux_pending.load(Ordering::Acquire) == 0
    }

    /// Returns `true` once every page item and aux task has been processed.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.count && self.aux_done()
    }

    /// Nanoseconds cores spent processing page items.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed)
    }

    /// Nanoseconds cores spent executing offloaded aux tasks.
    pub fn aux_busy_ns(&self) -> u64 {
        self.aux_busy_ns.load(Ordering::Relaxed)
    }

    /// Takes the page-item vector back out (active-list give-back after
    /// the batch has drained). Subsequent claims see missing items and
    /// skip them.
    pub fn take_items(&self) -> Vec<Arc<PageSlot>> {
        std::mem::take(&mut *self.items.lock())
    }

    /// Number of page items in the batch.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if the batch has no page items.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// The stop-the-world controller: the simulated IPI fabric.
#[derive(Debug, Default)]
pub struct StwController {
    pending: AtomicBool,
    /// Copy-phase gate: set by the leader only once every core *in the
    /// round's stop set* is parked. A core arriving at the quiescence
    /// gate early must not touch the hybrid batch before this — other
    /// stopped cores may still be mid-step, and copying a page
    /// concurrently with program writes captures a torn image into the
    /// checkpoint. (Cores outside the stop set are handled by the epoch
    /// fence instead, see `fault.rs`.)
    go: AtomicBool,
    registered: AtomicUsize,
    quiescent: AtomicUsize,
    epoch: Mutex<u64>,
    cv: Condvar,
    work: Mutex<Option<Arc<HybridWork>>>,
    /// Bitmask of cores required to park this round (valid while
    /// `pending`; all-ones in full-quiesce mode).
    stop_mask: AtomicU64,
    /// Number of registered cores in `stop_mask` — the quiescence target.
    stop_count: AtomicUsize,
    /// Cores currently executing a slice of an *unpinned* thread. The
    /// leader waits for this to reach zero after requesting a pause:
    /// unpinned threads belong to the round's copy set even when the core
    /// running them does not, and such slices break at their next step
    /// boundary — so the wait is at most one program step long.
    unpinned_active: AtomicUsize,
    /// Aggregate nanoseconds cores spent parked in `participate` since
    /// the last [`take_paused_ns`] — the per-core pause the partial
    /// protocol shrinks. (Wall pause time divides the same tree-copy work
    /// over both modes; this sums only actually-parked core time.)
    ///
    /// [`take_paused_ns`]: Self::take_paused_ns
    paused_ns: AtomicU64,
    /// Instant [`resume_world`] last released the gate. Parked-time
    /// accounting charges a core up to this release instant, not until
    /// the host OS actually reschedules its thread: the post-release
    /// wake-up latency is simulation-host noise (acute on single-CPU
    /// hosts, where the leader's concurrent copy keeps the CPU busy),
    /// not part of the checkpoint protocol's pause.
    ///
    /// [`resume_world`]: Self::resume_world
    released_at: Mutex<Option<Instant>>,
}

impl StwController {
    /// Creates a controller with no cores registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `n` additional cores (called by [`CoreSet::start`]).
    pub fn add_cores(&self, n: usize) {
        self.registered.fetch_add(n, Ordering::SeqCst);
    }

    /// Unregisters `n` cores (called when a core set stops).
    pub fn remove_cores(&self, n: usize) {
        self.registered.fetch_sub(n, Ordering::SeqCst);
    }

    /// Number of registered cores.
    pub fn cores(&self) -> usize {
        self.registered.load(Ordering::SeqCst)
    }

    /// Returns `true` if a stop-the-world pause is requested or active.
    #[inline]
    pub fn pending(&self) -> bool {
        self.pending.load(Ordering::Acquire)
    }

    /// Returns `true` if `core` must park for the current pause: a pause
    /// is pending and the core is in the round's stop set. Off-core
    /// callers (`NO_CORE`) conservatively report `true` while a pause is
    /// pending, preserving the historical `pending()` semantics for
    /// direct `run_slice` drivers.
    #[inline]
    pub fn should_park(&self, core: u32) -> bool {
        self.pending.load(Ordering::Acquire)
            && (core == NO_CORE
                || (self.stop_mask.load(Ordering::Acquire) >> core.min(63)) & 1 == 1)
    }

    /// Number of cores the current (or last) round actually stopped — the
    /// partial-quiescence gauge.
    pub fn stopped_cores(&self) -> usize {
        self.stop_count.load(Ordering::Acquire)
    }

    /// The current round's stop bitmask (zero outside a pause).
    pub fn stop_mask(&self) -> u64 {
        self.stop_mask.load(Ordering::Acquire)
    }

    /// Bitmask of cores covered by all registered cores.
    fn registered_mask(total: usize) -> u64 {
        if total >= 64 {
            u64::MAX
        } else {
            (1u64 << total) - 1
        }
    }

    /// Leader: requests quiescence and waits for the stop set to park.
    ///
    /// In partial mode (the default) the stop set is the set of cores that
    /// dirtied state since the last round, taken from the dirty queue's
    /// owner mask; `KernelConfig::force_full_quiesce` restores the
    /// historical all-cores protocol. `work` is the hybrid-copy batch the
    /// parked cores will execute (Figure 5 step ❸). Returns the IPI
    /// round-trip time — the Figure 9a "IPI" component.
    ///
    /// # Panics
    ///
    /// Panics if a pause is already in progress.
    pub fn stop_world(&self, work: Option<Arc<HybridWork>>, kernel: &Kernel) -> Duration {
        assert!(!self.pending(), "nested stop_world");
        // Drain stragglers from the previous round: a core still inside
        // `participate`'s exit path would otherwise be double-counted
        // toward this round's (possibly smaller) quiescence target.
        while self.quiescent.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        *self.work.lock() = work;
        let t0 = Instant::now();
        let total = self.registered.load(Ordering::SeqCst);
        let reg_mask = Self::registered_mask(total);
        let mask = if kernel.config.force_full_quiesce {
            reg_mask
        } else if kernel.config.epoch_concurrent {
            // Epoch-concurrent flip: *no* core parks, dirty owners
            // included. Step atomicity against the flip image comes from
            // the unsealed-fence protocol instead of parking: the leader
            // arms the fence unsealed, [`StepTracker::wait_step_grace`]
            // drains pre-arm in-flight steps (cores keep running), and
            // post-arm steps hold their first write at the seal — so the
            // quiescence handshake, whose serialized per-core park
            // latency dominated the flip on small hosts, buys nothing.
            // The owner mask is still drained so per-round ownership
            // bookkeeping restarts cleanly.
            let _ = kernel.dirty_queue.take_owner_mask();
            0
        } else {
            // Owner bits set *after* this take belong to cores that reach
            // their next step boundary inside the window; such cores
            // either park (they are in the mask from earlier activity) or
            // run on behind the epoch fence — both are safe, so no
            // fixed-point chase is needed.
            kernel.dirty_queue.take_owner_mask() & reg_mask
        };
        let target = mask.count_ones() as usize;
        self.stop_mask.store(mask, Ordering::SeqCst);
        self.stop_count.store(target, Ordering::SeqCst);
        self.pending.store(true, Ordering::SeqCst);
        // Kick sleeping cores so they reach the gate promptly, then
        // yield-spin on the quiescent count: handing the CPU straight to
        // a runnable core beats a condvar round-trip per parker (the
        // epoch flip's dominant cost on single-CPU hosts). Re-kick only
        // sparingly — hammering `wake_all` floods idle cores with
        // wakeups whose processing then steals the CPU from the leader
        // in the middle of the flip window.
        kernel.sched.wake_all();
        let mut spins = 0u32;
        while self.quiescent.load(Ordering::SeqCst) < target {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(1024) {
                kernel.sched.wake_all();
            }
            std::thread::yield_now();
        }
        // A free core may have pulled an unpinned thread just before the
        // pause became visible; its slice breaks at the very next step
        // boundary. Wait it out so no unpinned thread executes a step
        // after this returns.
        while self.unpinned_active.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        // Every stopped core is parked: open the copy phase. Not before —
        // a core that reached the gate early would otherwise start
        // stop-and-copy while a late core is still executing a program
        // step, tearing multi-word invariants inside the copied page.
        self.go.store(true, Ordering::SeqCst);
        self.cv.notify_all();
        t0.elapsed()
    }

    /// Leader: joins the hybrid-copy batch and waits for it to drain.
    ///
    /// Must be called between [`stop_world`] and [`resume_world`]; the
    /// leader contributes its own cycles once the tree copy is finished,
    /// then blocks until in-flight items complete.
    ///
    /// [`stop_world`]: Self::stop_world
    /// [`resume_world`]: Self::resume_world
    pub fn finish_hybrid_work(&self) {
        let work = self.work.lock().clone();
        if let Some(w) = work {
            w.run_available();
            while !w.is_done() {
                // Another core is finishing its last item; yield the CPU
                // (essential on single-CPU hosts where spinning would
                // starve that very core).
                std::thread::yield_now();
            }
        }
    }

    /// Leader: releases all cores (Figure 5 step ❺).
    pub fn resume_world(&self) {
        let mut gate = self.epoch.lock();
        *self.released_at.lock() = Some(Instant::now());
        *self.work.lock() = None;
        self.go.store(false, Ordering::SeqCst);
        self.pending.store(false, Ordering::SeqCst);
        self.stop_mask.store(0, Ordering::SeqCst);
        *gate += 1;
        self.cv.notify_all();
    }

    /// Blocks until every core that parked for the last round has left
    /// `participate` (so [`take_paused_ns`] reads a complete round).
    ///
    /// [`take_paused_ns`]: Self::take_paused_ns
    pub fn wait_all_resumed(&self) {
        while self.quiescent.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
    }

    /// Detaches the aggregate core-parked nanoseconds accumulated since
    /// the last call (bench instrumentation).
    pub fn take_paused_ns(&self) -> u64 {
        self.paused_ns.swap(0, Ordering::AcqRel)
    }

    /// Core: parks at the quiescence gate until resumed, contributing to
    /// the hybrid-copy batch while parked.
    pub fn participate(&self) {
        let t0 = Instant::now();
        let mut gate = self.epoch.lock();
        let entry_epoch = *gate;
        self.quiescent.fetch_add(1, Ordering::SeqCst);
        self.cv.notify_all();
        // Wait for the leader to declare full quiescence before touching
        // the copy batch: arriving early means another core may still be
        // running user steps, and hybrid copy must never overlap them.
        while *gate == entry_epoch && self.pending() && !self.go.load(Ordering::SeqCst) {
            self.cv.wait_for(&mut gate, Duration::from_millis(1));
        }
        let copy_open = *gate == entry_epoch && self.pending();
        // Pull speculative-copy work (outside the gate lock).
        drop(gate);
        if copy_open {
            let work = self.work.lock().clone();
            if let Some(w) = work {
                w.run_available();
            }
        }
        gate = self.epoch.lock();
        while *gate == entry_epoch && self.pending() {
            self.cv.wait_for(&mut gate, Duration::from_millis(1));
        }
        // Charge this core up to the leader's release instant. The next
        // round's `stop_world` drains `quiescent` before it can resume
        // again, so the stored instant is still this round's release —
        // and it cannot predate `t0` by more than a racing fast round
        // (which the saturating subtraction clamps to zero).
        let parked = self
            .released_at
            .lock()
            .map(|r| r.saturating_duration_since(t0))
            .unwrap_or_else(|| t0.elapsed());
        self.quiescent.fetch_sub(1, Ordering::SeqCst);
        drop(gate);
        self.paused_ns.fetch_add(parked.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Runs up to `max_steps` program steps of thread `tid` on the calling
/// core, honouring the stop-the-world flag at every step boundary.
///
/// During a pause, the slice breaks when the calling core is in the
/// round's stop set — or when the thread is not pinned to this core: an
/// unpinned thread's state is (being) copied by the round, so a free core
/// must not keep executing it behind the fence.
pub fn run_slice(kernel: &Kernel, tid: ObjId, max_steps: usize, stw: &StwController) {
    let core = current_core();
    let pinned_here = core != NO_CORE && kernel.sched.affinity(tid) == Some(core);
    // Advertise this slice before checking the pause flag. The SeqCst
    // pairing with `stop_world` guarantees: either the leader sees our
    // increment and waits the slice out, or we see `pending` here and bail
    // before touching the thread at all. Either way no unpinned thread is
    // mutated after the leader opens the copy phase.
    struct SliceGuard<'a>(&'a StwController);
    impl Drop for SliceGuard<'_> {
        fn drop(&mut self) {
            self.0.unpinned_active.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let _unpinned = (core != NO_CORE && !pinned_here).then(|| {
        stw.unpinned_active.fetch_add(1, Ordering::SeqCst);
        SliceGuard(stw)
    });
    if core != NO_CORE && !pinned_here && stw.pending() {
        // Pause in progress and this thread belongs to the round's copy
        // set: hand it back to the queue untouched.
        kernel.sched.enqueue(tid);
        return;
    }
    let Ok(th) = kernel.object(tid) else { return };
    // Enter "user space": mark on-CPU and copy the context out.
    let (mut ctx, prog_name, cap_group, vmspace) = {
        let mut body = th.body.write();
        match &mut *body {
            ObjectBody::Thread(t) => {
                if t.state != ThreadState::Runnable {
                    // Stale queue entry (e.g. woken then exited); skip.
                    return;
                }
                t.on_cpu = true;
                (t.ctx, t.program.clone(), t.cap_group, t.vmspace)
            }
            _ => return,
        }
    };
    let program = kernel.programs.get(&prog_name);
    let mut outcome = StepOutcome::Exited;
    if let Some(program) = program {
        outcome = StepOutcome::Yielded;
        // Publishes the step boundary for the epoch flip's grace scan;
        // the guard keeps the sequence even if an injected crash unwinds
        // mid-step.
        struct StepGuard<'a>(&'a StepTracker, u32);
        impl Drop for StepGuard<'_> {
            fn drop(&mut self) {
                self.0.end_step(self.1);
            }
        }
        for _ in 0..max_steps {
            if stw.pending() && (!pinned_here || stw.should_park(core)) {
                break;
            }
            let _step = (core != NO_CORE).then(|| {
                // Latch the fence round *after* the sequence bump: the
                // SeqCst pair guarantees the leader's post-arm grace
                // scan sees this step if the latch missed the arm.
                kernel.steps.begin_step(core, kernel.fence.active_round());
                StepGuard(&kernel.steps, core)
            });
            let mut uc = UserCtx::new(kernel, tid, cap_group, vmspace, &mut ctx);
            outcome = program.step(&mut uc);
            if outcome != StepOutcome::Ready {
                break;
            }
        }
    }
    // Leave "user space": write the context back and decide re-enqueue.
    let re_enqueue = {
        let mut body = th.body.write();
        match &mut *body {
            ObjectBody::Thread(t) => {
                t.ctx = ctx;
                t.on_cpu = false;
                th.mark_dirty();
                match outcome {
                    StepOutcome::Exited => {
                        t.state = ThreadState::Exited;
                        false
                    }
                    // A wake may have raced with a Blocked outcome; the
                    // state is authoritative.
                    _ => t.state == ThreadState::Runnable,
                }
            }
            _ => false,
        }
    };
    if re_enqueue {
        kernel.sched.enqueue(tid);
    }
}

/// A program that yields forever (scheduler/test filler).
#[derive(Debug)]
pub struct IdleProgram;

impl Program for IdleProgram {
    fn step(&self, _ctx: &mut UserCtx<'_>) -> StepOutcome {
        StepOutcome::Yielded
    }
}

/// A set of running core worker threads.
#[derive(Debug)]
pub struct CoreSet {
    handles: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    stw: Arc<StwController>,
    n: usize,
}

impl CoreSet {
    /// Spawns `n` cores executing the scheduler loop with `quantum` steps
    /// per slice.
    pub fn start(
        kernel: Arc<Kernel>,
        stw: Arc<StwController>,
        n: usize,
        quantum: usize,
    ) -> CoreSet {
        stw.add_cores(n);
        let shutdown = Arc::new(AtomicBool::new(false));
        let handles = (0..n)
            .map(|i| {
                let kernel = Arc::clone(&kernel);
                let stw = Arc::clone(&stw);
                let shutdown = Arc::clone(&shutdown);
                std::thread::Builder::new()
                    .name(format!("core-{i}"))
                    .spawn(move || core_loop(&kernel, &stw, &shutdown, quantum, i as u32))
                    .expect("spawn core thread")
            })
            .collect();
        CoreSet { handles, shutdown, stw, n }
    }

    /// Number of cores in the set.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the set has no cores.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Stops all cores and waits for them to exit.
    ///
    /// Must not be called while a stop-the-world pause is in progress.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            h.thread().unpark();
            h.join().expect("core thread panicked");
        }
        self.stw.remove_cores(self.n);
        self.n = 0;
    }
}

impl Drop for CoreSet {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.shutdown.store(true, Ordering::SeqCst);
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
            self.stw.remove_cores(self.n);
        }
    }
}

fn core_loop(
    kernel: &Kernel,
    stw: &StwController,
    shutdown: &AtomicBool,
    quantum: usize,
    core: u32,
) {
    set_current_core(core);
    while !shutdown.load(Ordering::SeqCst) {
        if stw.should_park(core) {
            stw.participate();
            continue;
        }
        // Outside the stop set during a pause: run on, but only threads
        // pinned to this core — the global queue holds threads whose
        // state the round is copying.
        let restricted = stw.pending();
        match kernel.sched.next_for(core, restricted) {
            Some(tid) => run_slice(kernel, tid, quantum, stw),
            None => kernel.sched.park(Duration::from_micros(200)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cap::CapRights;
    use crate::kernel::KernelConfig;
    use crate::pmo::PmoKind;
    use crate::thread::ThreadContext;
    use crate::types::{Vaddr, Vpn};

    fn kernel() -> Arc<Kernel> {
        Kernel::boot(KernelConfig { nvm_frames: 1024, dram_pages: 64, ..KernelConfig::default() })
    }

    /// A program that increments a memory counter `regs[1]` times, one per
    /// step, then exits.
    struct Counter;
    impl Program for Counter {
        fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
            let target = ctx.reg(1);
            let done = ctx.reg(2);
            if done >= target {
                return StepOutcome::Exited;
            }
            let v = ctx.read_u64(0).unwrap();
            ctx.write_u64(0, v + 1).unwrap();
            ctx.set_reg(2, done + 1);
            StepOutcome::Ready
        }
    }

    fn spawn_counter(k: &Arc<Kernel>, count: u64) -> (ObjId, ObjId) {
        k.programs.register("counter", Arc::new(Counter));
        let g = k.create_cap_group("p").unwrap();
        let vs = k.create_vmspace(g).unwrap();
        let pmo = k.create_pmo(g, 4, PmoKind::Data).unwrap();
        k.map_region(vs, Vpn(0), 4, pmo, 0, CapRights::ALL).unwrap();
        let mut ctx = ThreadContext::new();
        ctx.regs[1] = count;
        let tid = k.create_thread(g, vs, "counter", ctx).unwrap();
        (tid, vs)
    }

    #[test]
    fn cores_run_threads_to_completion() {
        let k = kernel();
        let stw = Arc::new(StwController::new());
        let (tid, vs) = spawn_counter(&k, 100);
        let cores = CoreSet::start(Arc::clone(&k), Arc::clone(&stw), 2, 8);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let th = k.object(tid).unwrap();
            let exited = matches!(
                &*th.body.read(),
                ObjectBody::Thread(t) if t.state == ThreadState::Exited
            );
            if exited {
                break;
            }
            assert!(Instant::now() < deadline, "thread never finished");
            std::thread::sleep(Duration::from_millis(1));
        }
        cores.stop();
        let mut buf = [0u8; 8];
        k.vm_read(vs, Vaddr(0), &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 100);
    }

    #[test]
    fn stop_world_quiesces_and_resumes() {
        let k = kernel();
        let stw = Arc::new(StwController::new());
        let (_tid, vs) = spawn_counter(&k, u64::MAX); // runs forever
        let cores = CoreSet::start(Arc::clone(&k), Arc::clone(&stw), 2, 4);

        // Let it run a bit.
        std::thread::sleep(Duration::from_millis(10));
        let ipi = stw.stop_world(None, &k);
        assert!(ipi < Duration::from_secs(1));
        // World is stopped: the counter must not advance.
        let mut buf = [0u8; 8];
        k.vm_read(vs, Vaddr(0), &mut buf).unwrap();
        let v1 = u64::from_le_bytes(buf);
        std::thread::sleep(Duration::from_millis(20));
        k.vm_read(vs, Vaddr(0), &mut buf).unwrap();
        let v2 = u64::from_le_bytes(buf);
        assert_eq!(v1, v2, "counter advanced during stop-the-world");
        stw.finish_hybrid_work();
        stw.resume_world();
        // It advances again.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            k.vm_read(vs, Vaddr(0), &mut buf).unwrap();
            if u64::from_le_bytes(buf) > v2 {
                break;
            }
            assert!(Instant::now() < deadline, "counter never resumed");
            std::thread::sleep(Duration::from_millis(1));
        }
        cores.stop();
    }

    #[test]
    fn hybrid_work_is_shared_between_cores_and_leader() {
        let k = kernel();
        let stw = Arc::new(StwController::new());
        let cores = CoreSet::start(Arc::clone(&k), Arc::clone(&stw), 3, 4);
        let items: Vec<_> =
            (0..64).map(|i| crate::pmo::PageSlot::new(i, treesls_nvm::FrameId(0))).collect();
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let work = HybridWork::new(items, move |_slot| {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        stw.stop_world(Some(Arc::clone(&work)), &k);
        stw.finish_hybrid_work();
        assert!(work.is_done());
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        stw.resume_world();
        cores.stop();
    }

    #[test]
    fn repeated_pauses_do_not_deadlock() {
        let k = kernel();
        let stw = Arc::new(StwController::new());
        let (_tid, _vs) = spawn_counter(&k, u64::MAX);
        let cores = CoreSet::start(Arc::clone(&k), Arc::clone(&stw), 2, 4);
        for _ in 0..50 {
            stw.stop_world(None, &k);
            stw.finish_hybrid_work();
            stw.resume_world();
        }
        cores.stop();
    }

    #[test]
    fn stop_world_with_no_cores_is_immediate() {
        let k = kernel();
        let stw = StwController::new();
        let d = stw.stop_world(None, &k);
        assert!(d < Duration::from_millis(100));
        stw.finish_hybrid_work();
        stw.resume_world();
    }

    #[test]
    fn partial_pause_stops_only_dirty_owning_cores() {
        // PR 6 parked partial quiescence — the epoch-concurrent flip
        // (the default) parks nobody, so pin the parked protocol.
        let k = Kernel::boot(KernelConfig {
            nvm_frames: 1024,
            dram_pages: 64,
            epoch_concurrent: false,
            ..KernelConfig::default()
        });
        let stw = Arc::new(StwController::new());
        let (tid, vs) = spawn_counter(&k, u64::MAX); // runs forever
        k.sched.set_affinity(tid, Some(0));
        let cores = CoreSet::start(Arc::clone(&k), Arc::clone(&stw), 2, 4);
        std::thread::sleep(Duration::from_millis(10));
        stw.stop_world(None, &k);
        assert_eq!(stw.stopped_cores(), 1, "only the dirty-owning core parks");
        // The dirty-owning core is parked: the counter must be frozen even
        // though core 1 keeps running.
        let mut buf = [0u8; 8];
        k.vm_read(vs, Vaddr(0), &mut buf).unwrap();
        let v1 = u64::from_le_bytes(buf);
        std::thread::sleep(Duration::from_millis(20));
        k.vm_read(vs, Vaddr(0), &mut buf).unwrap();
        assert_eq!(v1, u64::from_le_bytes(buf), "counter advanced during partial pause");
        stw.finish_hybrid_work();
        stw.resume_world();
        stw.wait_all_resumed();
        assert!(stw.take_paused_ns() > 0, "parked core accrued pause time");
        cores.stop();
    }

    #[test]
    fn quiet_partial_pause_parks_nobody() {
        let k = kernel();
        let stw = Arc::new(StwController::new());
        let cores = CoreSet::start(Arc::clone(&k), Arc::clone(&stw), 2, 4);
        std::thread::sleep(Duration::from_millis(5));
        let d = stw.stop_world(None, &k);
        assert_eq!(stw.stopped_cores(), 0, "no dirty owners, no parked cores");
        assert!(d < Duration::from_millis(100));
        stw.finish_hybrid_work();
        stw.resume_world();
        cores.stop();
    }

    #[test]
    fn force_full_quiesce_parks_every_core() {
        let k = Kernel::boot(KernelConfig {
            nvm_frames: 1024,
            dram_pages: 64,
            force_full_quiesce: true,
            ..KernelConfig::default()
        });
        let stw = Arc::new(StwController::new());
        let cores = CoreSet::start(Arc::clone(&k), Arc::clone(&stw), 3, 4);
        stw.stop_world(None, &k);
        assert_eq!(stw.stopped_cores(), 3, "oracle mode stops all cores");
        stw.finish_hybrid_work();
        stw.resume_world();
        cores.stop();
    }

    #[test]
    fn blocked_threads_leave_cores_idle_but_quiescable() {
        let k = kernel();
        k.programs.register("idle", Arc::new(IdleProgram));
        let stw = Arc::new(StwController::new());
        let cores = CoreSet::start(Arc::clone(&k), Arc::clone(&stw), 2, 4);
        // No runnable threads at all: STW still completes.
        let d = stw.stop_world(None, &k);
        assert!(d < Duration::from_secs(1));
        stw.finish_hybrid_work();
        stw.resume_world();
        cores.stop();
    }
}
