//! A radix tree mapping page indexes to values.
//!
//! "PMO records a set of physical memory pages organized by a radix tree"
//! (§4.1). TreeSLS checkpoints the tree once in full and then reuses it —
//! the asymmetry behind the paper's Table 3, where a full PMO checkpoint
//! costs milliseconds but an incremental one costs 0.03 µs. This module
//! implements a 64-ary radix tree so those costs have the same shape here.

/// Fan-out of each radix node (64 children, 6 bits per level).
pub const RADIX_BITS: u32 = 6;
/// Number of children per node.
pub const RADIX_FANOUT: usize = 1 << RADIX_BITS;

#[derive(Debug, Clone)]
enum Node<T> {
    Inner(Box<[Option<Node<T>>; RADIX_FANOUT]>),
    Leaf(T),
}

fn empty_children<T>() -> Box<[Option<Node<T>>; RADIX_FANOUT]> {
    // `Default` is not implemented for arrays this large; build via Vec.
    let v: Vec<Option<Node<T>>> = (0..RADIX_FANOUT).map(|_| None).collect();
    v.into_boxed_slice().try_into().unwrap_or_else(|_| unreachable!())
}

/// A radix tree keyed by `u64` page indexes.
#[derive(Debug, Clone)]
pub struct Radix<T> {
    root: Option<Node<T>>,
    /// Number of levels below the root (0 = root is a leaf for key 0).
    height: u32,
    len: usize,
}

impl<T> Default for Radix<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Radix<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self { root: None, height: 0, len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn capacity_of_height(height: u32) -> u64 {
        if height as u64 * RADIX_BITS as u64 >= 64 {
            u64::MAX
        } else {
            1u64 << (height * RADIX_BITS)
        }
    }

    /// Grows the tree until `key` fits.
    fn grow_for(&mut self, key: u64) {
        while key >= Self::capacity_of_height(self.height) {
            let old = self.root.take();
            if let Some(old) = old {
                let mut children = empty_children();
                children[0] = Some(old);
                self.root = Some(Node::Inner(children));
            }
            self.height += 1;
        }
    }

    /// Inserts `val` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, val: T) -> Option<T> {
        self.grow_for(key);
        if self.root.is_none() {
            if self.height == 0 {
                // key must be 0 here.
                self.root = Some(Node::Leaf(val));
                self.len = 1;
                return None;
            }
            self.root = Some(Node::Inner(empty_children()));
        }
        let mut level = self.height;
        let mut node = self.root.as_mut().expect("root exists");
        loop {
            match node {
                Node::Leaf(v) => {
                    debug_assert_eq!(level, 0);
                    let old = std::mem::replace(v, val);
                    return Some(old);
                }
                Node::Inner(children) => {
                    level -= 1;
                    let idx = ((key >> (level * RADIX_BITS)) as usize) & (RADIX_FANOUT - 1);
                    let slot = &mut children[idx];
                    if slot.is_none() {
                        if level == 0 {
                            *slot = Some(Node::Leaf(val));
                            self.len += 1;
                            return None;
                        }
                        *slot = Some(Node::Inner(empty_children()));
                    } else if level == 0 {
                        if let Some(Node::Leaf(v)) = slot.as_mut() {
                            let old = std::mem::replace(v, val);
                            return Some(old);
                        }
                        unreachable!("level 0 child must be a leaf");
                    }
                    node = slot.as_mut().expect("slot just ensured");
                }
            }
        }
    }

    /// Looks up the value at `key`.
    pub fn get(&self, key: u64) -> Option<&T> {
        if key >= Self::capacity_of_height(self.height) {
            return None;
        }
        let mut level = self.height;
        let mut node = self.root.as_ref()?;
        loop {
            match node {
                Node::Leaf(v) => return Some(v),
                Node::Inner(children) => {
                    level -= 1;
                    let idx = ((key >> (level * RADIX_BITS)) as usize) & (RADIX_FANOUT - 1);
                    node = children[idx].as_ref()?;
                }
            }
        }
    }

    /// Looks up the value at `key` mutably.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        if key >= Self::capacity_of_height(self.height) {
            return None;
        }
        let mut level = self.height;
        let mut node = self.root.as_mut()?;
        loop {
            match node {
                Node::Leaf(v) => return Some(v),
                Node::Inner(children) => {
                    level -= 1;
                    let idx = ((key >> (level * RADIX_BITS)) as usize) & (RADIX_FANOUT - 1);
                    node = children[idx].as_mut()?;
                }
            }
        }
    }

    /// Removes and returns the value at `key`.
    ///
    /// Interior nodes are not eagerly pruned; PMOs shrink rarely and the
    /// paper likewise reuses tree structure across checkpoints.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        if key >= Self::capacity_of_height(self.height) {
            return None;
        }
        fn rec<T>(node: &mut Option<Node<T>>, key: u64, level: u32) -> Option<T> {
            match node {
                None => None,
                Some(Node::Leaf(_)) => {
                    if let Some(Node::Leaf(v)) = node.take() {
                        Some(v)
                    } else {
                        unreachable!()
                    }
                }
                Some(Node::Inner(children)) => {
                    let idx = ((key >> ((level - 1) * RADIX_BITS)) as usize) & (RADIX_FANOUT - 1);
                    rec(&mut children[idx], key, level - 1)
                }
            }
        }
        let removed = if self.height == 0 {
            match self.root.take() {
                Some(Node::Leaf(v)) => Some(v),
                other => {
                    self.root = other;
                    None
                }
            }
        } else {
            rec(&mut self.root, key, self.height)
        };
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Iterates over `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> RadixIter<'_, T> {
        let mut iter = RadixIter { stack: Vec::new() };
        if let Some(root) = &self.root {
            iter.stack.push((root, 0, self.height, 0));
        }
        iter
    }

    /// Calls `f` for every `(key, value)` pair.
    pub fn for_each(&self, mut f: impl FnMut(u64, &T)) {
        for (k, v) in self.iter() {
            f(k, v);
        }
    }

    /// Number of interior + leaf nodes (used for checkpoint cost modelling).
    pub fn node_count(&self) -> usize {
        fn rec<T>(node: &Node<T>) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Inner(children) => {
                    1 + children.iter().flatten().map(rec).sum::<usize>()
                }
            }
        }
        self.root.as_ref().map_or(0, rec)
    }
}

/// Iterator over a radix tree.
pub struct RadixIter<'a, T> {
    // (node, key prefix, level, next child index)
    stack: Vec<(&'a Node<T>, u64, u32, usize)>,
}

impl<'a, T> Iterator for RadixIter<'a, T> {
    type Item = (u64, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, prefix, level, next_idx)) = self.stack.pop() {
            match node {
                Node::Leaf(v) => return Some((prefix, v)),
                Node::Inner(children) => {
                    for i in next_idx..RADIX_FANOUT {
                        if let Some(child) = &children[i] {
                            // Re-push self to resume after the child.
                            self.stack.push((node, prefix, level, i + 1));
                            let child_prefix = (prefix << RADIX_BITS) | i as u64;
                            self.stack.push((child, child_prefix, level - 1, 0));
                            break;
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: Radix<u32> = Radix::new();
        assert!(t.is_empty());
        assert_eq!(t.get(0), None);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn single_key_zero() {
        let mut t = Radix::new();
        assert_eq!(t.insert(0, "a"), None);
        assert_eq!(t.get(0), Some(&"a"));
        assert_eq!(t.insert(0, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(0), Some("b"));
        assert!(t.is_empty());
    }

    #[test]
    fn sparse_keys() {
        let mut t = Radix::new();
        for &k in &[0u64, 1, 63, 64, 65, 4095, 4096, 1 << 30] {
            t.insert(k, k * 2);
        }
        for &k in &[0u64, 1, 63, 64, 65, 4095, 4096, 1 << 30] {
            assert_eq!(t.get(k), Some(&(k * 2)), "key {k}");
        }
        assert_eq!(t.get(2), None);
        assert_eq!(t.get(1 << 40), None);
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn iteration_in_key_order() {
        let mut t = Radix::new();
        let keys = [5u64, 100, 3, 4096, 64, 0];
        for &k in &keys {
            t.insert(k, k);
        }
        let collected: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(collected, vec![0, 3, 5, 64, 100, 4096]);
        // Keys equal values.
        for (k, v) in t.iter() {
            assert_eq!(k, *v);
        }
    }

    #[test]
    fn dense_range() {
        let mut t = Radix::new();
        for k in 0..1000u64 {
            t.insert(k, k as u32);
        }
        assert_eq!(t.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(t.get(k), Some(&(k as u32)));
        }
        assert_eq!(t.iter().count(), 1000);
        // Remove evens.
        for k in (0..1000u64).step_by(2) {
            assert_eq!(t.remove(k), Some(k as u32));
        }
        assert_eq!(t.len(), 500);
        for k in 0..1000u64 {
            if k % 2 == 0 {
                assert_eq!(t.get(k), None);
            } else {
                assert_eq!(t.get(k), Some(&(k as u32)));
            }
        }
    }

    #[test]
    fn get_mut_updates() {
        let mut t = Radix::new();
        t.insert(42, vec![1]);
        t.get_mut(42).unwrap().push(2);
        assert_eq!(t.get(42), Some(&vec![1, 2]));
        assert!(t.get_mut(41).is_none());
    }

    #[test]
    fn node_count_grows_with_entries() {
        let mut t = Radix::new();
        t.insert(0, ());
        let small = t.node_count();
        for k in 0..10_000u64 {
            t.insert(k * 7, ());
        }
        assert!(t.node_count() > small);
    }

    #[test]
    fn remove_missing_is_none() {
        let mut t: Radix<u8> = Radix::new();
        assert_eq!(t.remove(9), None);
        t.insert(9, 1);
        assert_eq!(t.remove(10), None);
        assert_eq!(t.remove(1 << 50), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clone_is_deep() {
        let mut t = Radix::new();
        t.insert(1, 10);
        let mut c = t.clone();
        c.insert(1, 99);
        assert_eq!(t.get(1), Some(&10));
        assert_eq!(c.get(1), Some(&99));
    }
}
