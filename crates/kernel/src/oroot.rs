//! ORoots and backup object records: the persistent half of the
//! capability tree.
//!
//! "Since an object can be referred by multiple cap groups, TreeSLS
//! maintains a capability object root (ORoot) structure for each unique
//! object to avoid redundant checkpointing. ORoot records the addresses of
//! the runtime object and the corresponding backup objects (if present)"
//! (§4.1). Backup capabilities point at ORoots rather than at backup
//! objects directly, so a restored runtime tree can be rebuilt by mapping
//! each ORoot to its freshly revived runtime object.
//!
//! Non-PMO objects keep **two** versioned backup slots: the checkpoint
//! writes the slot the restore rule would *not* currently pick (see
//! [`ORoot::ckpt_dst`]), so a crash mid-checkpoint always leaves the last
//! committed image intact. PMOs keep a single backup record whose page
//! data is versioned per page ([`crate::pmo::PageMeta`]); its radix tree
//! entries are versioned with add/remove tags ([`BkPageEntry`]) so that
//! structural changes also commit atomically with the global version bump.

use std::sync::Arc;

use crate::cap::CapRights;
use crate::object::ObjType;
use crate::pmo::{PageSlot, PmoKind};
use crate::radix::Radix;
use crate::thread::ThreadContext;
use crate::types::{BackupId, ObjId, OrootId};

/// One versioned backup slot of an ORoot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionedBackup {
    /// The backup record in the persistent backup store.
    pub slot: BackupId,
    /// Version of the checkpoint that wrote this backup.
    pub version: u64,
    /// NVM slab space accounting for the record `(address, byte size)`.
    pub slab: Option<(treesls_pmem_alloc::NvmAddr, u32)>,
}

/// The persistent per-object root record.
#[derive(Debug, Clone)]
pub struct ORoot {
    /// Object type (fixed for the ORoot's lifetime).
    pub otype: ObjType,
    /// The runtime object, when one exists. Volatile hint: stale after a
    /// crash; restore rewrites it while reviving the tree.
    pub runtime: Option<ObjId>,
    /// Up to two versioned backups. PMOs use only slot 0.
    pub backups: [Option<VersionedBackup>; 2],
    /// Checkpoint round tag: equals the in-flight version when the object
    /// has already been processed this round (handles objects referenced
    /// from multiple cap groups).
    pub ckpt_round: u64,
    /// Version of the checkpoint at which the object was observed deleted;
    /// the record is swept once a later checkpoint commits.
    pub deleted_at: Option<u64>,
    /// Incoming ORoot references counted over the *newest* backup edges
    /// (how many backup records currently point at this ORoot). The
    /// dirty-queue walk maintains it by diffing each rewritten record's
    /// edge multiset, and tombstones ORoots whose count drains to zero —
    /// O(deletions) instead of a whole-table reachability sweep. The root
    /// cap group is pinned regardless of its count. Reference *cycles*
    /// never drain; the periodic full walk (and any restore) collects
    /// them, so a leaked cycle is bounded, never restore-visible.
    pub inrefs: u32,
}

impl ORoot {
    /// Creates an ORoot for a newly checkpointed runtime object.
    pub fn new(otype: ObjType, runtime: ObjId) -> Self {
        Self {
            otype,
            runtime: Some(runtime),
            backups: [None, None],
            ckpt_round: 0,
            deleted_at: None,
            inrefs: 0,
        }
    }

    /// Picks the backup slot holding the committed image for `global`.
    ///
    /// The highest version not exceeding the committed global version wins;
    /// in-flight tags (`> global`) are ignored, mirroring the page rule in
    /// [`crate::pmo::PageMeta::restore_pick`].
    ///
    /// PMOs are the exception: they keep a *single* backup record whose
    /// radix entries and page pairs carry their own per-item version tags
    /// (the record is updated in place every round), so the record is
    /// always the restore source regardless of its own stamp — an
    /// interrupted checkpoint merely leaves in-flight item tags inside it,
    /// which the per-item rules already filter.
    pub fn restore_pick(&self, global: u64) -> Option<usize> {
        if self.otype == ObjType::Pmo {
            return self.backups[0].map(|_| 0);
        }
        let cand = |i: usize| self.backups[i].filter(|b| b.version <= global);
        match (cand(0), cand(1)) {
            (Some(a), Some(b)) => Some(if a.version >= b.version { 0 } else { 1 }),
            (Some(_), None) => Some(0),
            (None, Some(_)) => Some(1),
            (None, None) => None,
        }
    }

    /// The backup slot index a checkpoint must (over)write: the one not
    /// protecting the committed image.
    pub fn ckpt_dst(&self, global: u64) -> usize {
        match self.restore_pick(global) {
            Some(keep) => 1 - keep,
            None => 0,
        }
    }

    /// Returns `true` if this object should be revived when restoring to
    /// `global` (not deleted by a committed checkpoint).
    pub fn live_at(&self, global: u64) -> bool {
        self.deleted_at.is_none_or(|d| d > global)
    }
}

/// A backup capability: ORoot reference plus rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BkCap {
    /// The referenced object's ORoot.
    pub oroot: OrootId,
    /// Rights carried by the capability.
    pub rights: CapRights,
}

/// A backup VM region (PMO referenced through its ORoot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BkRegion {
    /// First virtual page.
    pub base: u64,
    /// Length in pages.
    pub npages: u64,
    /// Backing PMO's ORoot.
    pub pmo: OrootId,
    /// Page offset within the PMO.
    pub pmo_off: u64,
    /// Permissions.
    pub perm: CapRights,
}

/// Backup thread scheduling state (references via ORoots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BkThreadState {
    /// Was runnable: restore re-enqueues it.
    Runnable,
    /// Was blocked waiting on a notification.
    BlockedNotification(OrootId),
    /// Was blocked in `ipc_recv`.
    BlockedIpcRecv(OrootId),
    /// Was blocked in `ipc_call` awaiting a reply.
    BlockedIpcReply(OrootId),
    /// Had exited.
    Exited,
}

/// A versioned entry of a backup PMO radix tree.
///
/// Structural changes to PMOs (pages materialized or removed) are synced
/// into the backup tree during the stop-the-world pause but only become
/// restore-visible once the global version reaches their tag, so a crash
/// before commit cannot leak post-checkpoint pages into the restored image.
#[derive(Debug, Clone)]
pub struct BkPageEntry {
    /// The shared page slot (page data + CPP versioning).
    pub slot: Arc<PageSlot>,
    /// Version of the checkpoint that added this page.
    pub added: u64,
    /// Version of the checkpoint that observed the page removed, if any.
    pub removed: Option<u64>,
}

impl BkPageEntry {
    /// Returns `true` if the page belongs to the image of version `global`.
    pub fn live_at(&self, global: u64) -> bool {
        self.added <= global && self.removed.is_none_or(|r| r > global)
    }
}

/// Type-specific backup record contents.
#[derive(Debug, Clone)]
pub enum BackupObject {
    /// Cap group: name + capability table with ORoot references.
    CapGroup {
        /// Process/service name.
        name: String,
        /// Capability table; indexes match the runtime table.
        caps: Vec<Option<BkCap>>,
    },
    /// Thread: full context copy.
    Thread {
        /// Saved registers.
        ctx: ThreadContext,
        /// Scheduling state with ORoot references.
        state: BkThreadState,
        /// Program registry key.
        program: String,
        /// Owning cap group.
        cap_group: OrootId,
        /// The thread's VM space.
        vmspace: OrootId,
    },
    /// VM space: the region list (page table deliberately omitted).
    VmSpace {
        /// Regions with ORoot PMO references.
        regions: Vec<BkRegion>,
    },
    /// PMO: the backup radix tree with versioned entries.
    Pmo {
        /// Capacity in pages.
        npages: u64,
        /// Data vs. eternal.
        kind: PmoKind,
        /// Versioned page index.
        pages: Radix<BkPageEntry>,
        /// The runtime `structure_tick` value at the last sync, for
        /// skipping structurally unchanged PMOs.
        synced_tick: u64,
    },
    /// IPC connection: buffered messages copied verbatim.
    IpcConnection {
        /// Blocked server (recv waiter), if any.
        recv_waiter: Option<OrootId>,
        /// Pending requests `(client thread ORoot, bytes)`.
        queue: Vec<(OrootId, Vec<u8>)>,
        /// Staged replies `(client thread ORoot, bytes)`.
        replies: Vec<(OrootId, Vec<u8>)>,
    },
    /// Notification: count + waiter list.
    Notification {
        /// Pending signal count.
        count: u64,
        /// Blocked waiter threads (ORoots), FIFO order.
        waiters: Vec<OrootId>,
    },
    /// IRQ notification: line + embedded notification state.
    IrqNotification {
        /// Bound interrupt line.
        line: u32,
        /// Pending count.
        count: u64,
        /// Blocked waiter threads (ORoots).
        waiters: Vec<OrootId>,
    },
}

impl BackupObject {
    /// The object type of this record.
    pub fn otype(&self) -> ObjType {
        match self {
            BackupObject::CapGroup { .. } => ObjType::CapGroup,
            BackupObject::Thread { .. } => ObjType::Thread,
            BackupObject::VmSpace { .. } => ObjType::VmSpace,
            BackupObject::Pmo { .. } => ObjType::Pmo,
            BackupObject::IpcConnection { .. } => ObjType::IpcConnection,
            BackupObject::Notification { .. } => ObjType::Notification,
            BackupObject::IrqNotification { .. } => ObjType::IrqNotification,
        }
    }

    /// Approximate NVM bytes this record occupies (slab accounting).
    pub fn approx_size(&self) -> usize {
        match self {
            BackupObject::CapGroup { name, caps } => 32 + name.len() + caps.len() * 16,
            BackupObject::Thread { program, .. } => 192 + program.len(),
            BackupObject::VmSpace { regions } => 32 + regions.len() * 40,
            BackupObject::Pmo { .. } => 64,
            BackupObject::IpcConnection { queue, replies, .. } => {
                48 + queue.iter().map(|(_, d)| 16 + d.len()).sum::<usize>()
                    + replies.iter().map(|(_, d)| 16 + d.len()).sum::<usize>()
            }
            BackupObject::Notification { waiters, .. } => 24 + waiters.len() * 8,
            BackupObject::IrqNotification { waiters, .. } => 32 + waiters.len() * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesls_nvm::ObjectStore;

    fn oid() -> ObjId {
        let mut s: ObjectStore<u8> = ObjectStore::new();
        s.insert(0)
    }

    fn vb(slot_seed: u8, version: u64) -> Option<VersionedBackup> {
        let mut s: ObjectStore<u8> = ObjectStore::new();
        let mut slot = s.insert(0);
        for _ in 0..slot_seed {
            slot = s.insert(0);
        }
        Some(VersionedBackup { slot, version, slab: None })
    }

    #[test]
    fn restore_pick_prefers_highest_committed() {
        let mut o = ORoot::new(ObjType::Thread, oid());
        assert_eq!(o.restore_pick(10), None);
        o.backups[0] = vb(0, 4);
        assert_eq!(o.restore_pick(10), Some(0));
        o.backups[1] = vb(1, 7);
        assert_eq!(o.restore_pick(10), Some(1));
        // In-flight tag beyond global is ignored.
        o.backups[0] = vb(0, 11);
        assert_eq!(o.restore_pick(10), Some(1));
    }

    #[test]
    fn ckpt_dst_avoids_keeper() {
        let mut o = ORoot::new(ObjType::Thread, oid());
        assert_eq!(o.ckpt_dst(5), 0);
        o.backups[0] = vb(0, 5);
        assert_eq!(o.ckpt_dst(5), 1);
        o.backups[1] = vb(1, 6);
        // Slot 1 is in-flight (version 6 > global 5): keeper is slot 0,
        // destination is slot 1 (safe to overwrite).
        assert_eq!(o.ckpt_dst(5), 1);
    }

    #[test]
    fn liveness_with_deletion() {
        let mut o = ORoot::new(ObjType::Pmo, oid());
        assert!(o.live_at(3));
        o.deleted_at = Some(5);
        assert!(o.live_at(4)); // deleted at ckpt 5 ⇒ still alive in image 4
        assert!(!o.live_at(5));
        assert!(!o.live_at(9));
    }

    #[test]
    fn bk_page_entry_visibility() {
        let slot = PageSlot::new(0, treesls_nvm::FrameId(0));
        let e = BkPageEntry { slot, added: 3, removed: Some(7) };
        assert!(!e.live_at(2));
        assert!(e.live_at(3));
        assert!(e.live_at(6));
        assert!(!e.live_at(7));
    }

    #[test]
    fn backup_types_and_sizes() {
        let b = BackupObject::Notification { count: 1, waiters: vec![] };
        assert_eq!(b.otype(), ObjType::Notification);
        assert!(b.approx_size() >= 24);
        let cg = BackupObject::CapGroup { name: "x".into(), caps: vec![None; 10] };
        assert!(cg.approx_size() > b.approx_size());
    }
}
