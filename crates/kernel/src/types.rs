//! Shared identifier and error types for the kernel.

use std::fmt;

use treesls_nvm::SlotId;

/// Identifier of a *runtime* kernel object (volatile object store).
///
/// Runtime ids do not survive crashes; persistent references between
/// objects always go through [`OrootId`]s instead, as in the paper ("the
/// backup capability stores the pointer to the corresponding ORoot").
pub type ObjId = SlotId;

/// Identifier of an ORoot record (persistent store; survives crashes).
pub type OrootId = SlotId;

/// Identifier of a backup object record (persistent store).
pub type BackupId = SlotId;

/// A capability slot index within a cap group's capability table.
pub type CapSlot = usize;

/// Virtual page number within a process address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vpn(pub u64);

/// A virtual address within a process address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vaddr(pub u64);

impl Vaddr {
    /// The page containing this address.
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 / treesls_nvm::PAGE_SIZE as u64)
    }

    /// Byte offset within the page.
    pub fn page_off(self) -> usize {
        (self.0 % treesls_nvm::PAGE_SIZE as u64) as usize
    }

    /// Address `self + n` bytes, panicking on overflow in debug builds.
    pub fn add_bytes(self, n: u64) -> Vaddr {
        Vaddr(self.0 + n)
    }
}

impl Vpn {
    /// First address of this page.
    pub fn base(self) -> Vaddr {
        Vaddr(self.0 * treesls_nvm::PAGE_SIZE as u64)
    }
}

/// Errors surfaced by kernel operations ("syscalls").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A capability lookup failed: empty slot or wrong object type.
    BadCapability,
    /// The capability exists but lacks the required rights.
    PermissionDenied,
    /// A virtual address is not covered by any VM region.
    UnmappedAddress(u64),
    /// Out of NVM or DRAM memory.
    OutOfMemory,
    /// A referenced object no longer exists.
    DeadObject,
    /// The operation is invalid in the object's current state.
    InvalidState(&'static str),
    /// An IPC message exceeded the connection's buffer capacity.
    MessageTooLarge,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::BadCapability => write!(f, "bad capability"),
            KernelError::PermissionDenied => write!(f, "permission denied"),
            KernelError::UnmappedAddress(a) => write!(f, "unmapped address {a:#x}"),
            KernelError::OutOfMemory => write!(f, "out of memory"),
            KernelError::DeadObject => write!(f, "dead object"),
            KernelError::InvalidState(s) => write!(f, "invalid state: {s}"),
            KernelError::MessageTooLarge => write!(f, "IPC message too large"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<treesls_pmem_alloc::AllocError> for KernelError {
    fn from(e: treesls_pmem_alloc::AllocError) -> Self {
        match e {
            treesls_pmem_alloc::AllocError::OutOfMemory => KernelError::OutOfMemory,
            _ => KernelError::InvalidState("allocator rejected operation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vaddr_decomposition() {
        let a = Vaddr(4096 * 3 + 17);
        assert_eq!(a.vpn(), Vpn(3));
        assert_eq!(a.page_off(), 17);
        assert_eq!(Vpn(3).base(), Vaddr(4096 * 3));
    }

    #[test]
    fn errors_display() {
        assert!(KernelError::UnmappedAddress(0x1000).to_string().contains("0x1000"));
    }

    #[test]
    fn alloc_error_conversion() {
        let k: KernelError = treesls_pmem_alloc::AllocError::OutOfMemory.into();
        assert_eq!(k, KernelError::OutOfMemory);
    }
}
