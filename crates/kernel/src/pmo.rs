//! Physical memory objects (PMOs) and per-page checkpoint versioning.
//!
//! A PMO "records a set of physical memory pages organized by a radix
//! tree" (§4.1). Each materialized page owns a [`PageSlot`] whose
//! [`PageMeta`] carries the *checkpointed page pair* (CPP) of §4.3.3: up to
//! two NVM backup pages with version numbers. The runtime page is either
//! the second pair entry itself (version 0, the "runtime page is treated as
//! the second backup with version zero" rule of the paper) or a volatile
//! DRAM page when hybrid copy has migrated the page (§4.3).
//!
//! ## Restore rule
//!
//! §4.3.3 states: a backup whose version equals the global version is used;
//! otherwise the second backup if its version is zero; otherwise the higher
//! version. We additionally *ignore* any pair entry whose version exceeds
//! the committed global version: such tags are written by an in-flight
//! checkpoint that never committed, and following the paper's literal rule
//! they could otherwise be selected (e.g. pair versions `{V-1, V+1}` after
//! a crash between a speculative copy and the commit of checkpoint `V+1`
//! when the page skipped checkpoint `V`), rolling a single page forward to
//! an uncommitted state. The filter preserves the paper's behaviour in all
//! committed cases and closes that window; see DESIGN.md.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use treesls_nvm::{crc32, DramId, FrameId, PAGE_SIZE};

use crate::radix::Radix;

/// Where a page's runtime (writable) copy currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysLoc {
    /// An NVM frame (the default; doubles as checkpoint data).
    Nvm(FrameId),
    /// A volatile DRAM page (hot page migrated by hybrid copy).
    Dram(DramId),
}

/// One entry of a checkpointed page pair: an NVM frame plus the version of
/// the checkpoint whose data it holds (0 = "this is the runtime page").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagePtr {
    /// The NVM frame holding the data.
    pub frame: FrameId,
    /// Checkpoint version of the data; 0 marks the runtime NVM page.
    pub version: u64,
    /// CRC-32 of the frame content, recorded when a checkpoint copy wrote
    /// it (CoW backup, hybrid migrate-in or speculative stop-and-copy).
    /// `None` for runtime pages, whose content keeps changing.
    pub crc: Option<u32>,
}

impl PagePtr {
    /// A pointer to the live runtime NVM page (version 0, no checksum).
    pub fn runtime(frame: FrameId) -> Self {
        Self { frame, version: 0, crc: None }
    }

    /// A pointer to an immutable backup image of checkpoint `version`,
    /// integrity-tagged with the CRC of the bytes that were copied.
    pub fn backup(frame: FrameId, version: u64, crc: u32) -> Self {
        Self { frame, version, crc: Some(crc) }
    }
}

/// Maximum payload of one in-line undo record: one cache line of changed
/// bytes (Cohen et al., In-Cache-Line Logging). Bigger writes escalate to
/// a whole-page epoch capture.
pub const INLINE_MAX_DATA: usize = 64;

/// Fixed header size of one in-line undo record.
pub const UNDO_HEADER: usize = 16;

/// Capacity of a page's in-line undo log: one NVM frame.
pub const INLINE_LOG_CAP: usize = PAGE_SIZE;

/// On-NVM size of an undo record with `len` payload bytes (header plus
/// payload padded to 8 bytes, so headers stay naturally aligned).
pub const fn undo_record_size(len: usize) -> usize {
    UNDO_HEADER + ((len + 7) & !7)
}

/// One parsed in-line undo record: the pre-write image of `data.len()`
/// bytes at `offset` within the page, captured during round `version`'s
/// epoch window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoRecord {
    /// The in-flight round whose epoch window captured this undo image.
    pub version: u64,
    /// Byte offset of the span within the page.
    pub offset: u16,
    /// Pre-write bytes (1..=[`INLINE_MAX_DATA`]).
    pub data: Vec<u8>,
}

/// Encodes one undo record (little-endian header, CRC over the header
/// minus the CRC field plus the payload, payload zero-padded to 8 bytes):
///
/// ```text
/// [0..8)  version u64    round that captured the image (never 0)
/// [8..10) offset  u16    byte offset within the page
/// [10..12) len    u16    payload length, 1..=64
/// [12..16) crc    u32    crc32(bytes[0..12] ++ data)
/// [16..)  data           payload, zero-padded to a multiple of 8
/// ```
pub fn encode_undo_record(version: u64, offset: u16, data: &[u8]) -> Vec<u8> {
    assert!(!data.is_empty() && data.len() <= INLINE_MAX_DATA);
    assert_ne!(version, 0, "round versions start at 1");
    let mut buf = vec![0u8; undo_record_size(data.len())];
    buf[0..8].copy_from_slice(&version.to_le_bytes());
    buf[8..10].copy_from_slice(&offset.to_le_bytes());
    buf[10..12].copy_from_slice(&(data.len() as u16).to_le_bytes());
    let crc = treesls_nvm::crc32_update(crc32(&buf[0..12]), data);
    buf[12..16].copy_from_slice(&crc.to_le_bytes());
    buf[UNDO_HEADER..UNDO_HEADER + data.len()].copy_from_slice(data);
    buf
}

/// Parses the valid prefix of an in-line undo log image.
///
/// Walks records from offset 0 and stops at the first terminator: a zero
/// version (empty tail, or a durably killed log), a zero or oversized
/// length, a span that would cross the page end, a CRC mismatch (torn
/// append), or a version that differs from the first record's (a stale
/// tail left over from an earlier, killed round — rounds only grow, and a
/// live log holds exactly one round's records). Everything before the
/// terminator is intact by CRC and is returned in append order.
pub fn parse_undo_records(buf: &[u8]) -> Vec<UndoRecord> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + UNDO_HEADER <= buf.len() {
        let version = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
        if version == 0 {
            break;
        }
        let offset = u16::from_le_bytes(buf[pos + 8..pos + 10].try_into().unwrap());
        let len = u16::from_le_bytes(buf[pos + 10..pos + 12].try_into().unwrap()) as usize;
        if len == 0 || len > INLINE_MAX_DATA || offset as usize + len > PAGE_SIZE {
            break;
        }
        if pos + undo_record_size(len) > buf.len() {
            break;
        }
        let crc = u32::from_le_bytes(buf[pos + 12..pos + 16].try_into().unwrap());
        let data = &buf[pos + UNDO_HEADER..pos + UNDO_HEADER + len];
        let want = treesls_nvm::crc32_update(crc32(&buf[pos..pos + 12]), data);
        if crc != want {
            break;
        }
        if out.first().is_some_and(|f: &UndoRecord| f.version != version) {
            break;
        }
        out.push(UndoRecord { version, offset, data: data.to_vec() });
        pos += undo_record_size(len);
    }
    out
}

/// Applies parsed undo records to a page image, newest first, recovering
/// the pre-window content. Idempotent: re-applying after a crash mid-way
/// converges on the same image.
pub fn apply_undo_records(page: &mut [u8; PAGE_SIZE], records: &[UndoRecord]) {
    for r in records.iter().rev() {
        let off = r.offset as usize;
        page[off..off + r.data.len()].copy_from_slice(&r.data);
    }
}

/// Per-page in-line undo log state: a lazily allocated NVM frame holding
/// [`UndoRecord`]s for exactly one round's epoch window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InlineLog {
    /// The NVM frame holding the records.
    pub frame: FrameId,
    /// The in-flight *version* whose first-write undo images the log
    /// holds (matches the records' version tags; persistent).
    pub round: u64,
    /// Bytes appended so far (next append offset).
    pub used: u32,
    /// The `EpochFence` arm counter of the window that wrote the records.
    /// Volatile (meaningless after restore): distinguishes a live window's
    /// log from a stale one left by an aborted round that re-armed with
    /// the same in-flight version — the stale log must be folded before
    /// the new window logs anything.
    pub arm: u64,
}

/// The image source [`PageMeta::restore_image`] selects for a page at a
/// given committed global version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreImage {
    /// A whole-page epoch capture frame holds the committed image.
    Capture(PagePtr),
    /// `pairs[i]` holds the image (the classic CPP rule).
    Pair(usize),
    /// The image is the runtime NVM frame with the in-line undo log
    /// applied newest-first (the page only took small logged writes
    /// during the epoch window).
    Log(InlineLog),
    /// No recoverable data.
    None,
}

/// Persistent + volatile per-page state.
///
/// The `pairs` array is persistent checkpoint metadata; the remaining
/// fields are runtime-only and are reset by restore (the DRAM cache, CoW
/// write-permission bit, hotness and dirtiness tracking).
#[derive(Debug, Clone)]
pub struct PageMeta {
    /// The checkpointed page pair. Invariant for non-migrated pages:
    /// `pairs[1]` is `Some` with version 0 and is the runtime page.
    pub pairs: [Option<PagePtr>; 2],
    /// DRAM copy when the page is migrated (hybrid copy); `None` otherwise.
    pub runtime_dram: Option<DramId>,
    /// Soft-MMU write permission: `false` means the next write faults
    /// (copy-on-write pending).
    pub writable: bool,
    /// Write-fault counter driving hot-page detection.
    pub hotness: u32,
    /// For DRAM-cached pages: modified since the last stop-and-copy.
    pub dirty: bool,
    /// The page is on the dual-function active page list.
    pub on_active_list: bool,
    /// Consecutive checkpoints without modification (drives DRAM→NVM
    /// eviction).
    pub idle_rounds: u32,
    /// Page of an eternal PMO (§5): never marked read-only, never copied,
    /// never migrated; survives restore with its at-crash content.
    pub eternal: bool,
    /// Epoch-fence round (`EpochFence::round`) whose conflict capture
    /// already preserved this page's image; 0 = none. Volatile (reset by
    /// restore) — rounds start at 1 and are never reused, so a stale value
    /// from an aborted round can never match the live round.
    pub epoch_round: u64,
    /// Whole-page epoch capture for non-migrated pages: the pre-write
    /// round image preserved by the first big conflicting write of an
    /// epoch window (version = the in-flight round). Persistent: restore
    /// prefers it over the pairs when its version matches the committed
    /// global. Folded into `pairs[0]` after commit (eagerly by the leader
    /// or lazily by the next CoW fault) and the frame is then reused.
    pub epoch_capture: Option<PagePtr>,
    /// In-line undo log for small hot writes during an epoch window:
    /// instead of a whole-page copy, each ≤[`INLINE_MAX_DATA`]-byte first
    /// write appends a pre-write undo record. Persistent: restore
    /// reconstructs the round image as runtime ⊖ reverse(records).
    pub inline_log: Option<InlineLog>,
}

impl PageMeta {
    /// Creates the metadata for a freshly materialized page backed by
    /// `frame`.
    ///
    /// New pages are writable (no backup exists, and the page is not yet in
    /// any backup radix tree, so a crash simply discards it).
    pub fn new_runtime(frame: FrameId) -> Self {
        Self {
            pairs: [None, Some(PagePtr::runtime(frame))],
            runtime_dram: None,
            writable: true,
            hotness: 0,
            dirty: false,
            on_active_list: false,
            idle_rounds: 0,
            eternal: false,
            epoch_round: 0,
            epoch_capture: None,
            inline_log: None,
        }
    }

    /// The current runtime location of the page.
    pub fn runtime_loc(&self) -> PhysLoc {
        match self.runtime_dram {
            Some(d) => PhysLoc::Dram(d),
            None => PhysLoc::Nvm(
                self.pairs[1].expect("non-migrated page has a runtime NVM frame").frame,
            ),
        }
    }

    /// Returns `true` if the page is migrated to DRAM.
    pub fn is_migrated(&self) -> bool {
        self.runtime_dram.is_some()
    }

    /// Picks the pair index holding the committed checkpoint data for
    /// `global` (the committed global version at recovery time).
    ///
    /// Returns `None` only for pages with no recoverable data (never
    /// checkpointed and no runtime NVM page — not reachable from a backup
    /// tree in practice).
    pub fn restore_pick(&self, global: u64) -> Option<usize> {
        let cand = |i: usize| self.pairs[i].filter(|p| p.version <= global);
        let (a, b) = (cand(0), cand(1));
        // Case ❶: a backup created by the page-fault handler (or a
        // committed speculative copy) in the committed interval.
        if a.is_some_and(|p| p.version == global) {
            return Some(0);
        }
        if b.is_some_and(|p| p.version == global) {
            return Some(1);
        }
        // Case ❷/❸: the runtime NVM page (version 0) is unmodified since
        // the last checkpoint and is itself the checkpoint data.
        if b.is_some_and(|p| p.version == 0) {
            return Some(1);
        }
        // Migrated pages with two real backups: the higher committed one.
        match (a, b) {
            (Some(pa), Some(pb)) => Some(if pa.version >= pb.version { 0 } else { 1 }),
            (Some(_), None) => Some(0),
            (None, Some(_)) => Some(1),
            (None, None) => None,
        }
    }

    /// The pair index a speculative stop-and-copy must write into: the one
    /// the restore rule would *not* pick at the current committed version,
    /// so a torn copy can never destroy the recoverable image.
    pub fn sac_dst(&self, global: u64) -> usize {
        match self.restore_pick(global) {
            Some(keep) => 1 - keep,
            None => 0,
        }
    }

    /// Picks the image source for the committed version `global`,
    /// generalizing [`restore_pick`](Self::restore_pick) to the
    /// epoch-concurrent capture state. Preference order:
    ///
    /// 1. an epoch capture tagged exactly `global` (the round committed
    ///    but the capture was not folded yet — the runtime page is already
    ///    dirtier than the image);
    /// 2. a pair slot tagged exactly `global` (the classic CPP case ❶);
    /// 3. an epoch capture tagged `> global` (the window's round aborted,
    ///    but the capture content *is* the last committed image: captures
    ///    only happen on read-only pages, frozen since their last commit).
    ///    A capture beats a same-round log because escalation stops
    ///    logging — post-escalation writes are only undone by the capture;
    /// 4. the in-line log when its round is `>= global` (the page took
    ///    only small logged writes during the window; undoing them
    ///    newest-first recovers the frozen image from the runtime frame);
    /// 5. the classic pairs fallback (v0 runtime page / best committed
    ///    backup).
    pub fn restore_image(&self, global: u64) -> RestoreImage {
        if self.epoch_capture.is_some_and(|c| c.version == global) {
            return RestoreImage::Capture(self.epoch_capture.unwrap());
        }
        if self.pairs[0].is_some_and(|p| p.version != 0 && p.version == global) {
            return RestoreImage::Pair(0);
        }
        if self.pairs[1].is_some_and(|p| p.version != 0 && p.version == global) {
            return RestoreImage::Pair(1);
        }
        if self.epoch_capture.is_some_and(|c| c.version > global) {
            return RestoreImage::Capture(self.epoch_capture.unwrap());
        }
        if let Some(log) = self.inline_log {
            if log.round >= global && !self.is_migrated() {
                return RestoreImage::Log(log);
            }
        }
        match self.restore_pick(global) {
            Some(i) => RestoreImage::Pair(i),
            None => RestoreImage::None,
        }
    }
}

/// A shared, individually locked page slot.
///
/// Slots are shared between the runtime PMO radix tree and the backup PMO
/// radix tree (both reference the same `Arc`), which is how the paper's
/// "reuse the radix tree in subsequent checkpoints" manifests here. The
/// slot itself is persistent state.
#[derive(Debug)]
pub struct PageSlot {
    /// Page index within the PMO.
    pub index: u64,
    /// The versioning metadata, guarded for concurrent fault handling and
    /// parallel hybrid copy.
    pub meta: Mutex<PageMeta>,
}

impl PageSlot {
    /// Creates a slot for a freshly materialized page.
    pub fn new(index: u64, frame: FrameId) -> Arc<Self> {
        Arc::new(Self { index, meta: Mutex::new(PageMeta::new_runtime(frame)) })
    }
}

/// The kind of a PMO, controlling restore behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmoKind {
    /// Normal data: rolled back to the last checkpoint on restore.
    Data,
    /// Eternal PMO (§5): pages are *not* rolled back; used by drivers for
    /// ring buffers and hardware state that must survive recovery as-is.
    Eternal,
}

/// Runtime body of a PMO object.
#[derive(Debug)]
pub struct Pmo {
    /// Capacity in pages (addresses beyond this fault permanently).
    pub npages: u64,
    /// Data vs. eternal.
    pub kind: PmoKind,
    /// Runtime radix tree: page index → shared page slot. Volatile; the
    /// backup tree (in the checkpoint manager) mirrors it at each
    /// checkpoint.
    pub pages: Radix<Arc<PageSlot>>,
    /// Monotone counter of structural changes (inserts/removes) used for
    /// incremental backup-tree synchronization.
    pub structure_tick: Arc<AtomicU64>,
}

impl Pmo {
    /// Creates an empty PMO of `npages` pages.
    pub fn new(npages: u64, kind: PmoKind) -> Self {
        Self { npages, kind, pages: Radix::new(), structure_tick: Arc::new(AtomicU64::new(0)) }
    }

    /// Looks up the slot for `index`.
    pub fn get(&self, index: u64) -> Option<&Arc<PageSlot>> {
        self.pages.get(index)
    }

    /// Inserts a slot, bumping the structure tick.
    pub fn insert(&mut self, index: u64, slot: Arc<PageSlot>) {
        self.pages.insert(index, slot);
        self.structure_tick.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes a slot, bumping the structure tick.
    pub fn remove(&mut self, index: u64) -> Option<Arc<PageSlot>> {
        let r = self.pages.remove(index);
        if r.is_some() {
            self.structure_tick.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Number of materialized pages.
    pub fn materialized(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(frame: u32, version: u64) -> Option<PagePtr> {
        Some(PagePtr { frame: FrameId(frame), version, crc: None })
    }

    #[test]
    fn fresh_page_is_runtime_second_pair() {
        let m = PageMeta::new_runtime(FrameId(7));
        assert_eq!(m.runtime_loc(), PhysLoc::Nvm(FrameId(7)));
        assert!(m.writable);
        assert!(!m.is_migrated());
        // Case ❸: never checkpointed → restore uses the runtime page.
        assert_eq!(m.restore_pick(5), Some(1));
    }

    #[test]
    fn restore_case1_backup_equals_global() {
        // Fault handler saved the backup at version 5; page then modified.
        let mut m = PageMeta::new_runtime(FrameId(1));
        m.pairs[0] = pp(2, 5);
        assert_eq!(m.restore_pick(5), Some(0));
    }

    #[test]
    fn restore_case2_stale_backup_uses_runtime() {
        // Backup version 3 < global 5: runtime page unmodified since ckpt.
        let mut m = PageMeta::new_runtime(FrameId(1));
        m.pairs[0] = pp(2, 3);
        assert_eq!(m.restore_pick(5), Some(1));
    }

    #[test]
    fn restore_case3_no_backup_uses_runtime() {
        let m = PageMeta::new_runtime(FrameId(1));
        assert_eq!(m.restore_pick(5), Some(1));
    }

    #[test]
    fn restore_migrated_picks_higher_committed() {
        // Migrated page: two real backups, versions 7 and 8, global 20.
        let m = PageMeta {
            pairs: [pp(1, 7), pp(2, 8)],
            runtime_dram: Some(DramId(0)),
            writable: true,
            hotness: 9,
            dirty: false,
            on_active_list: true,
            idle_rounds: 0,
            eternal: false,
            epoch_round: 0,
            epoch_capture: None,
            inline_log: None,
        };
        assert_eq!(m.restore_pick(20), Some(1));
        let m2 = PageMeta { pairs: [pp(1, 9), pp(2, 8)], ..m.clone() };
        assert_eq!(m2.restore_pick(20), Some(0));
    }

    #[test]
    fn restore_ignores_uncommitted_inflight_tag() {
        // Crash between a speculative copy tagged V+1 and its commit while
        // the other slot holds V-1 (page skipped checkpoint V): the literal
        // higher-version rule would pick the uncommitted V+1 data.
        let m = PageMeta {
            pairs: [pp(1, 4), pp(2, 6)],
            runtime_dram: Some(DramId(0)),
            writable: true,
            hotness: 5,
            dirty: true,
            on_active_list: true,
            idle_rounds: 0,
            eternal: false,
            epoch_round: 0,
            epoch_capture: None,
            inline_log: None,
        };
        assert_eq!(m.restore_pick(5), Some(0), "must ignore version 6 > global 5");
    }

    #[test]
    fn restore_equal_global_beats_zero_rule() {
        // Both a version==global backup and a v0 runtime page exist: the
        // backup holds the checkpoint image (runtime was modified after).
        let mut m = PageMeta::new_runtime(FrameId(9));
        m.pairs[0] = pp(3, 5);
        assert_eq!(m.restore_pick(5), Some(0));
    }

    #[test]
    fn sac_dst_never_targets_the_keeper() {
        for global in 0..10u64 {
            let cases = [
                [pp(1, 3), pp(2, 0)],
                [pp(1, global), pp(2, 0)],
                [None, pp(2, 0)],
                [pp(1, 3), pp(2, 4)],
                [pp(1, 9), pp(2, 4)],
            ];
            for pairs in cases {
                let m = PageMeta {
                    pairs,
                    runtime_dram: None,
                    writable: false,
                    hotness: 0,
                    dirty: false,
                    on_active_list: false,
                    idle_rounds: 0,
                    eternal: false,
                    epoch_round: 0,
                    epoch_capture: None,
                    inline_log: None,
                };
                if let Some(keep) = m.restore_pick(global) {
                    assert_ne!(m.sac_dst(global), keep, "global={global} pairs={pairs:?}");
                }
            }
        }
    }

    #[test]
    fn pmo_structure_tick_counts_changes() {
        let mut p = Pmo::new(100, PmoKind::Data);
        assert_eq!(p.materialized(), 0);
        p.insert(3, PageSlot::new(3, FrameId(1)));
        p.insert(4, PageSlot::new(4, FrameId(2)));
        assert_eq!(p.structure_tick.load(Ordering::Relaxed), 2);
        assert!(p.remove(3).is_some());
        assert!(p.remove(3).is_none());
        assert_eq!(p.structure_tick.load(Ordering::Relaxed), 3);
        assert_eq!(p.materialized(), 1);
    }

    #[test]
    fn eternal_kind_is_distinct() {
        assert_ne!(PmoKind::Data, PmoKind::Eternal);
    }

    #[test]
    fn undo_record_roundtrip_and_padding() {
        let rec = encode_undo_record(7, 100, b"hello");
        assert_eq!(rec.len(), undo_record_size(5));
        assert_eq!(rec.len() % 8, 0);
        let parsed = parse_undo_records(&rec);
        assert_eq!(
            parsed,
            vec![UndoRecord { version: 7, offset: 100, data: b"hello".to_vec() }]
        );
    }

    #[test]
    fn undo_parse_stops_at_terminators() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&encode_undo_record(3, 0, &[1u8; 64]));
        buf.extend_from_slice(&encode_undo_record(3, 64, &[2u8; 8]));
        // Torn third record: corrupt one payload byte after encoding.
        let mut torn = encode_undo_record(3, 128, &[3u8; 8]);
        torn[UNDO_HEADER] ^= 0xFF;
        buf.extend_from_slice(&torn);
        let parsed = parse_undo_records(&buf);
        assert_eq!(parsed.len(), 2, "CRC-torn tail record dropped");

        // A stale tail from an older killed round terminates the walk.
        let mut buf = Vec::new();
        buf.extend_from_slice(&encode_undo_record(9, 0, &[1u8; 8]));
        buf.extend_from_slice(&encode_undo_record(4, 8, &[2u8; 8]));
        assert_eq!(parse_undo_records(&buf).len(), 1);

        // A durably killed log (zeroed header) parses as empty.
        let mut buf = encode_undo_record(5, 0, &[1u8; 8]);
        buf[..UNDO_HEADER].fill(0);
        assert!(parse_undo_records(&buf).is_empty());
    }

    #[test]
    fn apply_undo_is_newest_first() {
        // Two records touching the same span: the *first* write of the
        // window holds the pre-window image, so applying newest-first
        // must leave record 0's data in place.
        let recs = vec![
            UndoRecord { version: 2, offset: 0, data: vec![0xAA; 4] },
            UndoRecord { version: 2, offset: 2, data: vec![0xBB; 4] },
        ];
        let mut page = [0u8; PAGE_SIZE];
        apply_undo_records(&mut page, &recs);
        assert_eq!(&page[0..4], &[0xAA; 4]);
        assert_eq!(&page[4..6], &[0xBB; 2]);
    }

    #[test]
    fn restore_image_prefers_capture_at_global() {
        let mut m = PageMeta::new_runtime(FrameId(1));
        m.pairs[0] = pp(2, 5);
        m.epoch_capture = Some(PagePtr::backup(FrameId(3), 5, 0));
        assert!(matches!(m.restore_image(5), RestoreImage::Capture(c) if c.frame == FrameId(3)));
        // Exact pair match beats a future-round capture.
        m.epoch_capture = Some(PagePtr::backup(FrameId(3), 6, 0));
        assert_eq!(m.restore_image(5), RestoreImage::Pair(0));
    }

    #[test]
    fn restore_image_aborted_round_capture_beats_log_and_runtime() {
        // Crash during window 6 (global stayed 5): the capture holds the
        // frozen committed image; the runtime page is dirtier.
        let mut m = PageMeta::new_runtime(FrameId(1));
        m.epoch_capture = Some(PagePtr::backup(FrameId(3), 6, 0));
        m.inline_log = Some(InlineLog { frame: FrameId(4), round: 6, used: 24, arm: 1 });
        assert!(matches!(m.restore_image(5), RestoreImage::Capture(c) if c.version == 6));
        // Without the capture, the log reconstructs the image.
        m.epoch_capture = None;
        assert!(matches!(m.restore_image(5), RestoreImage::Log(l) if l.round == 6));
        // Without either, the classic rule falls back to the runtime page.
        m.inline_log = None;
        assert_eq!(m.restore_image(5), RestoreImage::Pair(1));
    }

    #[test]
    fn restore_image_matches_classic_rule_without_capture_state() {
        let mut m = PageMeta::new_runtime(FrameId(1));
        m.pairs[0] = pp(2, 3);
        assert_eq!(m.restore_image(5), RestoreImage::Pair(1));
        m.pairs[0] = pp(2, 5);
        assert_eq!(m.restore_image(5), RestoreImage::Pair(0));
    }
}
