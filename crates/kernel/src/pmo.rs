//! Physical memory objects (PMOs) and per-page checkpoint versioning.
//!
//! A PMO "records a set of physical memory pages organized by a radix
//! tree" (§4.1). Each materialized page owns a [`PageSlot`] whose
//! [`PageMeta`] carries the *checkpointed page pair* (CPP) of §4.3.3: up to
//! two NVM backup pages with version numbers. The runtime page is either
//! the second pair entry itself (version 0, the "runtime page is treated as
//! the second backup with version zero" rule of the paper) or a volatile
//! DRAM page when hybrid copy has migrated the page (§4.3).
//!
//! ## Restore rule
//!
//! §4.3.3 states: a backup whose version equals the global version is used;
//! otherwise the second backup if its version is zero; otherwise the higher
//! version. We additionally *ignore* any pair entry whose version exceeds
//! the committed global version: such tags are written by an in-flight
//! checkpoint that never committed, and following the paper's literal rule
//! they could otherwise be selected (e.g. pair versions `{V-1, V+1}` after
//! a crash between a speculative copy and the commit of checkpoint `V+1`
//! when the page skipped checkpoint `V`), rolling a single page forward to
//! an uncommitted state. The filter preserves the paper's behaviour in all
//! committed cases and closes that window; see DESIGN.md.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use treesls_nvm::{DramId, FrameId};

use crate::radix::Radix;

/// Where a page's runtime (writable) copy currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysLoc {
    /// An NVM frame (the default; doubles as checkpoint data).
    Nvm(FrameId),
    /// A volatile DRAM page (hot page migrated by hybrid copy).
    Dram(DramId),
}

/// One entry of a checkpointed page pair: an NVM frame plus the version of
/// the checkpoint whose data it holds (0 = "this is the runtime page").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagePtr {
    /// The NVM frame holding the data.
    pub frame: FrameId,
    /// Checkpoint version of the data; 0 marks the runtime NVM page.
    pub version: u64,
    /// CRC-32 of the frame content, recorded when a checkpoint copy wrote
    /// it (CoW backup, hybrid migrate-in or speculative stop-and-copy).
    /// `None` for runtime pages, whose content keeps changing.
    pub crc: Option<u32>,
}

impl PagePtr {
    /// A pointer to the live runtime NVM page (version 0, no checksum).
    pub fn runtime(frame: FrameId) -> Self {
        Self { frame, version: 0, crc: None }
    }

    /// A pointer to an immutable backup image of checkpoint `version`,
    /// integrity-tagged with the CRC of the bytes that were copied.
    pub fn backup(frame: FrameId, version: u64, crc: u32) -> Self {
        Self { frame, version, crc: Some(crc) }
    }
}

/// Persistent + volatile per-page state.
///
/// The `pairs` array is persistent checkpoint metadata; the remaining
/// fields are runtime-only and are reset by restore (the DRAM cache, CoW
/// write-permission bit, hotness and dirtiness tracking).
#[derive(Debug, Clone)]
pub struct PageMeta {
    /// The checkpointed page pair. Invariant for non-migrated pages:
    /// `pairs[1]` is `Some` with version 0 and is the runtime page.
    pub pairs: [Option<PagePtr>; 2],
    /// DRAM copy when the page is migrated (hybrid copy); `None` otherwise.
    pub runtime_dram: Option<DramId>,
    /// Soft-MMU write permission: `false` means the next write faults
    /// (copy-on-write pending).
    pub writable: bool,
    /// Write-fault counter driving hot-page detection.
    pub hotness: u32,
    /// For DRAM-cached pages: modified since the last stop-and-copy.
    pub dirty: bool,
    /// The page is on the dual-function active page list.
    pub on_active_list: bool,
    /// Consecutive checkpoints without modification (drives DRAM→NVM
    /// eviction).
    pub idle_rounds: u32,
    /// Page of an eternal PMO (§5): never marked read-only, never copied,
    /// never migrated; survives restore with its at-crash content.
    pub eternal: bool,
    /// Epoch-fence round (`EpochFence::round`) whose conflict capture
    /// already preserved this page's image; 0 = none. Volatile (reset by
    /// restore) — rounds start at 1 and are never reused, so a stale value
    /// from an aborted round can never match the live round.
    pub epoch_round: u64,
}

impl PageMeta {
    /// Creates the metadata for a freshly materialized page backed by
    /// `frame`.
    ///
    /// New pages are writable (no backup exists, and the page is not yet in
    /// any backup radix tree, so a crash simply discards it).
    pub fn new_runtime(frame: FrameId) -> Self {
        Self {
            pairs: [None, Some(PagePtr::runtime(frame))],
            runtime_dram: None,
            writable: true,
            hotness: 0,
            dirty: false,
            on_active_list: false,
            idle_rounds: 0,
            eternal: false,
            epoch_round: 0,
        }
    }

    /// The current runtime location of the page.
    pub fn runtime_loc(&self) -> PhysLoc {
        match self.runtime_dram {
            Some(d) => PhysLoc::Dram(d),
            None => PhysLoc::Nvm(
                self.pairs[1].expect("non-migrated page has a runtime NVM frame").frame,
            ),
        }
    }

    /// Returns `true` if the page is migrated to DRAM.
    pub fn is_migrated(&self) -> bool {
        self.runtime_dram.is_some()
    }

    /// Picks the pair index holding the committed checkpoint data for
    /// `global` (the committed global version at recovery time).
    ///
    /// Returns `None` only for pages with no recoverable data (never
    /// checkpointed and no runtime NVM page — not reachable from a backup
    /// tree in practice).
    pub fn restore_pick(&self, global: u64) -> Option<usize> {
        let cand = |i: usize| self.pairs[i].filter(|p| p.version <= global);
        let (a, b) = (cand(0), cand(1));
        // Case ❶: a backup created by the page-fault handler (or a
        // committed speculative copy) in the committed interval.
        if a.is_some_and(|p| p.version == global) {
            return Some(0);
        }
        if b.is_some_and(|p| p.version == global) {
            return Some(1);
        }
        // Case ❷/❸: the runtime NVM page (version 0) is unmodified since
        // the last checkpoint and is itself the checkpoint data.
        if b.is_some_and(|p| p.version == 0) {
            return Some(1);
        }
        // Migrated pages with two real backups: the higher committed one.
        match (a, b) {
            (Some(pa), Some(pb)) => Some(if pa.version >= pb.version { 0 } else { 1 }),
            (Some(_), None) => Some(0),
            (None, Some(_)) => Some(1),
            (None, None) => None,
        }
    }

    /// The pair index a speculative stop-and-copy must write into: the one
    /// the restore rule would *not* pick at the current committed version,
    /// so a torn copy can never destroy the recoverable image.
    pub fn sac_dst(&self, global: u64) -> usize {
        match self.restore_pick(global) {
            Some(keep) => 1 - keep,
            None => 0,
        }
    }
}

/// A shared, individually locked page slot.
///
/// Slots are shared between the runtime PMO radix tree and the backup PMO
/// radix tree (both reference the same `Arc`), which is how the paper's
/// "reuse the radix tree in subsequent checkpoints" manifests here. The
/// slot itself is persistent state.
#[derive(Debug)]
pub struct PageSlot {
    /// Page index within the PMO.
    pub index: u64,
    /// The versioning metadata, guarded for concurrent fault handling and
    /// parallel hybrid copy.
    pub meta: Mutex<PageMeta>,
}

impl PageSlot {
    /// Creates a slot for a freshly materialized page.
    pub fn new(index: u64, frame: FrameId) -> Arc<Self> {
        Arc::new(Self { index, meta: Mutex::new(PageMeta::new_runtime(frame)) })
    }
}

/// The kind of a PMO, controlling restore behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmoKind {
    /// Normal data: rolled back to the last checkpoint on restore.
    Data,
    /// Eternal PMO (§5): pages are *not* rolled back; used by drivers for
    /// ring buffers and hardware state that must survive recovery as-is.
    Eternal,
}

/// Runtime body of a PMO object.
#[derive(Debug)]
pub struct Pmo {
    /// Capacity in pages (addresses beyond this fault permanently).
    pub npages: u64,
    /// Data vs. eternal.
    pub kind: PmoKind,
    /// Runtime radix tree: page index → shared page slot. Volatile; the
    /// backup tree (in the checkpoint manager) mirrors it at each
    /// checkpoint.
    pub pages: Radix<Arc<PageSlot>>,
    /// Monotone counter of structural changes (inserts/removes) used for
    /// incremental backup-tree synchronization.
    pub structure_tick: Arc<AtomicU64>,
}

impl Pmo {
    /// Creates an empty PMO of `npages` pages.
    pub fn new(npages: u64, kind: PmoKind) -> Self {
        Self { npages, kind, pages: Radix::new(), structure_tick: Arc::new(AtomicU64::new(0)) }
    }

    /// Looks up the slot for `index`.
    pub fn get(&self, index: u64) -> Option<&Arc<PageSlot>> {
        self.pages.get(index)
    }

    /// Inserts a slot, bumping the structure tick.
    pub fn insert(&mut self, index: u64, slot: Arc<PageSlot>) {
        self.pages.insert(index, slot);
        self.structure_tick.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes a slot, bumping the structure tick.
    pub fn remove(&mut self, index: u64) -> Option<Arc<PageSlot>> {
        let r = self.pages.remove(index);
        if r.is_some() {
            self.structure_tick.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Number of materialized pages.
    pub fn materialized(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(frame: u32, version: u64) -> Option<PagePtr> {
        Some(PagePtr { frame: FrameId(frame), version, crc: None })
    }

    #[test]
    fn fresh_page_is_runtime_second_pair() {
        let m = PageMeta::new_runtime(FrameId(7));
        assert_eq!(m.runtime_loc(), PhysLoc::Nvm(FrameId(7)));
        assert!(m.writable);
        assert!(!m.is_migrated());
        // Case ❸: never checkpointed → restore uses the runtime page.
        assert_eq!(m.restore_pick(5), Some(1));
    }

    #[test]
    fn restore_case1_backup_equals_global() {
        // Fault handler saved the backup at version 5; page then modified.
        let mut m = PageMeta::new_runtime(FrameId(1));
        m.pairs[0] = pp(2, 5);
        assert_eq!(m.restore_pick(5), Some(0));
    }

    #[test]
    fn restore_case2_stale_backup_uses_runtime() {
        // Backup version 3 < global 5: runtime page unmodified since ckpt.
        let mut m = PageMeta::new_runtime(FrameId(1));
        m.pairs[0] = pp(2, 3);
        assert_eq!(m.restore_pick(5), Some(1));
    }

    #[test]
    fn restore_case3_no_backup_uses_runtime() {
        let m = PageMeta::new_runtime(FrameId(1));
        assert_eq!(m.restore_pick(5), Some(1));
    }

    #[test]
    fn restore_migrated_picks_higher_committed() {
        // Migrated page: two real backups, versions 7 and 8, global 20.
        let m = PageMeta {
            pairs: [pp(1, 7), pp(2, 8)],
            runtime_dram: Some(DramId(0)),
            writable: true,
            hotness: 9,
            dirty: false,
            on_active_list: true,
            idle_rounds: 0,
            eternal: false,
            epoch_round: 0,
        };
        assert_eq!(m.restore_pick(20), Some(1));
        let m2 = PageMeta { pairs: [pp(1, 9), pp(2, 8)], ..m.clone() };
        assert_eq!(m2.restore_pick(20), Some(0));
    }

    #[test]
    fn restore_ignores_uncommitted_inflight_tag() {
        // Crash between a speculative copy tagged V+1 and its commit while
        // the other slot holds V-1 (page skipped checkpoint V): the literal
        // higher-version rule would pick the uncommitted V+1 data.
        let m = PageMeta {
            pairs: [pp(1, 4), pp(2, 6)],
            runtime_dram: Some(DramId(0)),
            writable: true,
            hotness: 5,
            dirty: true,
            on_active_list: true,
            idle_rounds: 0,
            eternal: false,
            epoch_round: 0,
        };
        assert_eq!(m.restore_pick(5), Some(0), "must ignore version 6 > global 5");
    }

    #[test]
    fn restore_equal_global_beats_zero_rule() {
        // Both a version==global backup and a v0 runtime page exist: the
        // backup holds the checkpoint image (runtime was modified after).
        let mut m = PageMeta::new_runtime(FrameId(9));
        m.pairs[0] = pp(3, 5);
        assert_eq!(m.restore_pick(5), Some(0));
    }

    #[test]
    fn sac_dst_never_targets_the_keeper() {
        for global in 0..10u64 {
            let cases = [
                [pp(1, 3), pp(2, 0)],
                [pp(1, global), pp(2, 0)],
                [None, pp(2, 0)],
                [pp(1, 3), pp(2, 4)],
                [pp(1, 9), pp(2, 4)],
            ];
            for pairs in cases {
                let m = PageMeta {
                    pairs,
                    runtime_dram: None,
                    writable: false,
                    hotness: 0,
                    dirty: false,
                    on_active_list: false,
                    idle_rounds: 0,
                    eternal: false,
                    epoch_round: 0,
                };
                if let Some(keep) = m.restore_pick(global) {
                    assert_ne!(m.sac_dst(global), keep, "global={global} pairs={pairs:?}");
                }
            }
        }
    }

    #[test]
    fn pmo_structure_tick_counts_changes() {
        let mut p = Pmo::new(100, PmoKind::Data);
        assert_eq!(p.materialized(), 0);
        p.insert(3, PageSlot::new(3, FrameId(1)));
        p.insert(4, PageSlot::new(4, FrameId(2)));
        assert_eq!(p.structure_tick.load(Ordering::Relaxed), 2);
        assert!(p.remove(3).is_some());
        assert!(p.remove(3).is_none());
        assert_eq!(p.structure_tick.load(Ordering::Relaxed), 3);
        assert_eq!(p.materialized(), 1);
    }

    #[test]
    fn eternal_kind_is_distinct() {
        assert_ne!(PmoKind::Data, PmoKind::Eternal);
    }
}
