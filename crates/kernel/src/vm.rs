//! VM spaces, regions, and the DRAM-resident soft page table.
//!
//! "VM Space records a list of accessible virtual memory regions and a page
//! table structure for the space. Each virtual memory region is backed by a
//! physical memory object (PMO)" (§4.1). TreeSLS checkpoints the region
//! list but *not* the page table: "the page tables can be rebuilt after
//! recovery ... TreeSLS puts the page tables on DRAM as they do not need to
//! be persisted". The soft page table here is exactly that: a volatile
//! vpn → page-slot cache that is dropped on crash and repopulated by soft
//! page faults after restore.
//!
//! Write protection deliberately does NOT live in the cached translation.
//! A [`PteCache`] entry carries only the region permissions from map time;
//! the per-checkpoint CoW state (`writable`, migration, the in-line undo
//! log) lives in the shared [`PageSlot`]'s `PageMeta`, which every write
//! takes a lock on. That split is what lets the epoch flip's
//! `mark_readonly` pass stay O(dirty pages) with no shootdown analog: the
//! leader flips `meta.writable` under each slot lock and every cached
//! translation — on every core — observes it on its next write, so there
//! is no per-core TLB/PTE invalidation step to add to the O(1) stop
//! window (DESIGN.md "Epoch-concurrent checkpointing: the no-park flip").

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cap::CapRights;
use crate::pmo::PageSlot;
use crate::types::{ObjId, Vpn};

/// A contiguous virtual memory region backed by (part of) a PMO.
#[derive(Debug, Clone)]
pub struct VmRegion {
    /// First virtual page of the region.
    pub base: Vpn,
    /// Length in pages.
    pub npages: u64,
    /// Backing PMO (runtime object id).
    pub pmo: ObjId,
    /// Page offset within the PMO where this region starts.
    pub pmo_off: u64,
    /// Access permissions.
    pub perm: CapRights,
}

impl VmRegion {
    /// Returns the PMO page index backing `vpn`, if the region covers it.
    pub fn pmo_index(&self, vpn: Vpn) -> Option<u64> {
        if vpn >= self.base && vpn.0 < self.base.0 + self.npages {
            Some(self.pmo_off + (vpn.0 - self.base.0))
        } else {
            None
        }
    }
}

/// A cached translation: the shared page slot plus region permissions.
///
/// Checkpoint-epoch write-protection state is *not* cached here — it is
/// read from the slot's `PageMeta` under its lock on every write, so a
/// flip never has to find or invalidate these entries (see the module
/// docs).
#[derive(Debug, Clone)]
pub struct PteCache {
    /// The shared page slot holding the page's physical state.
    pub slot: Arc<PageSlot>,
    /// Region permissions at map time.
    pub perm: CapRights,
    /// The backing PMO (needed by the fault handler for bookkeeping).
    pub pmo: ObjId,
}

/// The volatile soft page table of one VM space.
///
/// Lives in DRAM; never checkpointed. After restore every translation
/// misses and is re-established through the region list — the paper's
/// "empty page table is created for each process" recovery behaviour.
#[derive(Debug, Default)]
pub struct PageTable {
    map: Mutex<HashMap<Vpn, PteCache>>,
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a cached translation.
    pub fn get(&self, vpn: Vpn) -> Option<PteCache> {
        self.map.lock().get(&vpn).cloned()
    }

    /// Installs a translation.
    pub fn insert(&self, vpn: Vpn, pte: PteCache) {
        self.map.lock().insert(vpn, pte);
    }

    /// Drops a translation (region unmap, page removal).
    pub fn remove(&self, vpn: Vpn) -> Option<PteCache> {
        self.map.lock().remove(&vpn)
    }

    /// Drops every translation (used at restore to model the rebuilt,
    /// initially empty page table).
    pub fn clear(&self) {
        self.map.lock().clear();
    }

    /// Number of cached translations.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Returns `true` if no translations are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Runtime body of a VM Space object.
#[derive(Debug)]
pub struct VmSpaceBody {
    /// Mapped regions, kept sorted by base vpn.
    pub regions: Vec<VmRegion>,
    /// The volatile soft page table.
    pub page_table: Arc<PageTable>,
}

impl Default for VmSpaceBody {
    fn default() -> Self {
        Self::new()
    }
}

impl VmSpaceBody {
    /// Creates an empty VM space.
    pub fn new() -> Self {
        Self { regions: Vec::new(), page_table: Arc::new(PageTable::new()) }
    }

    /// Maps a region; regions must not overlap.
    ///
    /// Returns `false` (and maps nothing) on overlap.
    pub fn map_region(&mut self, region: VmRegion) -> bool {
        let new_start = region.base.0;
        let new_end = region.base.0 + region.npages;
        for r in &self.regions {
            let s = r.base.0;
            let e = r.base.0 + r.npages;
            if new_start < e && s < new_end {
                return false;
            }
        }
        let pos = self.regions.partition_point(|r| r.base.0 < new_start);
        self.regions.insert(pos, region);
        true
    }

    /// Unmaps the region starting exactly at `base`, returning it.
    pub fn unmap_region(&mut self, base: Vpn) -> Option<VmRegion> {
        let pos = self.regions.iter().position(|r| r.base == base)?;
        Some(self.regions.remove(pos))
    }

    /// Finds the region covering `vpn` (binary search over sorted bases).
    pub fn region_for(&self, vpn: Vpn) -> Option<&VmRegion> {
        let idx = self.regions.partition_point(|r| r.base.0 <= vpn.0);
        let r = self.regions.get(idx.checked_sub(1)?)?;
        if vpn.0 < r.base.0 + r.npages {
            Some(r)
        } else {
            None
        }
    }

    /// Total mapped pages across regions.
    pub fn mapped_pages(&self) -> u64 {
        self.regions.iter().map(|r| r.npages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesls_nvm::{FrameId, ObjectStore};

    fn pmo_id() -> ObjId {
        let mut s: ObjectStore<u8> = ObjectStore::new();
        s.insert(0)
    }

    fn region(base: u64, npages: u64) -> VmRegion {
        VmRegion { base: Vpn(base), npages, pmo: pmo_id(), pmo_off: 0, perm: CapRights::ALL }
    }

    #[test]
    fn map_and_find() {
        let mut vs = VmSpaceBody::new();
        assert!(vs.map_region(region(10, 5)));
        assert!(vs.map_region(region(0, 4)));
        assert!(vs.map_region(region(100, 1)));
        assert_eq!(vs.region_for(Vpn(0)).unwrap().base, Vpn(0));
        assert_eq!(vs.region_for(Vpn(3)).unwrap().base, Vpn(0));
        assert!(vs.region_for(Vpn(4)).is_none());
        assert_eq!(vs.region_for(Vpn(12)).unwrap().base, Vpn(10));
        assert!(vs.region_for(Vpn(15)).is_none());
        assert_eq!(vs.region_for(Vpn(100)).unwrap().base, Vpn(100));
        assert_eq!(vs.mapped_pages(), 10);
    }

    #[test]
    fn overlap_rejected() {
        let mut vs = VmSpaceBody::new();
        assert!(vs.map_region(region(10, 5)));
        assert!(!vs.map_region(region(14, 1)));
        assert!(!vs.map_region(region(5, 6)));
        assert!(!vs.map_region(region(12, 1)));
        assert!(vs.map_region(region(15, 1)));
        assert_eq!(vs.regions.len(), 2);
    }

    #[test]
    fn unmap_by_base() {
        let mut vs = VmSpaceBody::new();
        vs.map_region(region(10, 5));
        assert!(vs.unmap_region(Vpn(11)).is_none());
        let r = vs.unmap_region(Vpn(10)).unwrap();
        assert_eq!(r.npages, 5);
        assert!(vs.region_for(Vpn(12)).is_none());
    }

    #[test]
    fn pmo_index_math() {
        let mut r = region(10, 5);
        r.pmo_off = 100;
        assert_eq!(r.pmo_index(Vpn(10)), Some(100));
        assert_eq!(r.pmo_index(Vpn(14)), Some(104));
        assert_eq!(r.pmo_index(Vpn(15)), None);
        assert_eq!(r.pmo_index(Vpn(9)), None);
    }

    #[test]
    fn page_table_cache_roundtrip() {
        let pt = PageTable::new();
        assert!(pt.is_empty());
        let slot = PageSlot::new(0, FrameId(1));
        pt.insert(
            Vpn(7),
            PteCache { slot: Arc::clone(&slot), perm: CapRights::ALL, pmo: pmo_id() },
        );
        assert_eq!(pt.len(), 1);
        assert!(Arc::ptr_eq(&pt.get(Vpn(7)).unwrap().slot, &slot));
        assert!(pt.get(Vpn(8)).is_none());
        pt.clear();
        assert!(pt.get(Vpn(7)).is_none());
    }
}
