//! Runtime kernel objects: the nodes of the capability tree.
//!
//! Table 1 of the paper lists the seven capability-referred object kinds;
//! [`ObjectBody`] is their runtime representation. Every object carries a
//! dirty flag (set on mutation, cleared by the checkpoint) that drives the
//! paper's incremental checkpointing — "skipping state intact since the
//! last checkpoint" (§3) — and a lazily assigned [`ORoot`] id linking it to
//! its backups (§4.1).
//!
//! [`ORoot`]: crate::oroot::ORoot

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::cap::CapGroupBody;
use crate::dirty::DirtyQueue;
use crate::ipc::IpcConnBody;
use crate::notif::{IrqNotifBody, NotifBody};
use crate::pmo::Pmo;
use crate::thread::ThreadBody;
use crate::types::{ObjId, OrootId};
use crate::vm::VmSpaceBody;

/// The seven kernel object kinds of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjType {
    /// A group of capabilities (a process).
    CapGroup,
    /// A thread: register context and scheduling state.
    Thread,
    /// A list of virtual memory regions.
    VmSpace,
    /// A set of physical memory pages.
    Pmo,
    /// Inter-process communication endpoint.
    IpcConnection,
    /// Synchronization primitive (like a semaphore).
    Notification,
    /// A hardware signal sent to the processor.
    IrqNotification,
}

impl ObjType {
    /// All object types, in Table 1 order.
    pub const ALL: [ObjType; 7] = [
        ObjType::CapGroup,
        ObjType::Thread,
        ObjType::VmSpace,
        ObjType::Pmo,
        ObjType::IpcConnection,
        ObjType::Notification,
        ObjType::IrqNotification,
    ];

    /// Short display name (used in the Table 2 census).
    pub fn short_name(self) -> &'static str {
        match self {
            ObjType::CapGroup => "C.G.",
            ObjType::Thread => "Thread",
            ObjType::VmSpace => "VMS",
            ObjType::Pmo => "PMO",
            ObjType::IpcConnection => "IPC",
            ObjType::Notification => "Noti.",
            ObjType::IrqNotification => "IRQ",
        }
    }
}

/// Type-specific runtime state of a kernel object.
#[derive(Debug)]
pub enum ObjectBody {
    /// See [`CapGroupBody`].
    CapGroup(CapGroupBody),
    /// See [`ThreadBody`].
    Thread(ThreadBody),
    /// See [`VmSpaceBody`].
    VmSpace(VmSpaceBody),
    /// See [`Pmo`].
    Pmo(Pmo),
    /// See [`IpcConnBody`].
    IpcConnection(IpcConnBody),
    /// See [`NotifBody`].
    Notification(NotifBody),
    /// See [`IrqNotifBody`].
    IrqNotification(IrqNotifBody),
}

impl ObjectBody {
    /// The object's type tag.
    pub fn otype(&self) -> ObjType {
        match self {
            ObjectBody::CapGroup(_) => ObjType::CapGroup,
            ObjectBody::Thread(_) => ObjType::Thread,
            ObjectBody::VmSpace(_) => ObjType::VmSpace,
            ObjectBody::Pmo(_) => ObjType::Pmo,
            ObjectBody::IpcConnection(_) => ObjType::IpcConnection,
            ObjectBody::Notification(_) => ObjType::Notification,
            ObjectBody::IrqNotification(_) => ObjType::IrqNotification,
        }
    }
}

/// A runtime kernel object.
///
/// Objects are shared via `Arc` (capabilities in several cap groups may
/// reference the same object); the body is behind an `RwLock` for
/// concurrent syscalls, and the per-object `dirty` flag and `oroot` link
/// are lock-free.
#[derive(Debug)]
pub struct KObject {
    /// The object's runtime store id (set once at insertion).
    id: OnceLock<ObjId>,
    /// Type tag (redundant with the body, but readable without locking).
    pub otype: ObjType,
    /// Link to the persistent ORoot; `u64::MAX` until the first checkpoint
    /// assigns one (the paper initializes ORoots lazily, §4.1).
    oroot: AtomicU64,
    /// Set on mutation; cleared when checkpointed (incremental ckpt).
    dirty: AtomicBool,
    /// The kernel's dirty queue, installed at insertion. `mark_dirty`
    /// pushes the object id here on the flag's false→true edge, so the
    /// checkpoint leader can visit only mutated objects (O(changes) walk).
    sink: OnceLock<Arc<DirtyQueue>>,
    /// The type-specific state.
    pub body: RwLock<ObjectBody>,
}

const NO_OROOT: u64 = u64::MAX;

impl KObject {
    /// Wraps a body into a new (dirty, oroot-less) object.
    pub fn new(body: ObjectBody) -> Arc<Self> {
        Arc::new(Self {
            id: OnceLock::new(),
            otype: body.otype(),
            oroot: AtomicU64::new(NO_OROOT),
            dirty: AtomicBool::new(true),
            sink: OnceLock::new(),
            body: RwLock::new(body),
        })
    }

    /// Installs the dirty-queue sink (called once at insertion, after
    /// [`set_id`](Self::set_id)). Objects are born dirty, so the inserter
    /// pushes the id itself; later `mark_dirty` edges push here.
    pub fn install_dirty_sink(&self, sink: Arc<DirtyQueue>) {
        let _ = self.sink.set(sink);
    }

    /// Records the runtime store id. Called exactly once at insertion.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn set_id(&self, id: ObjId) {
        self.id.set(id).expect("KObject id set twice");
    }

    /// The runtime store id.
    ///
    /// # Panics
    ///
    /// Panics if the object was never inserted into a store.
    pub fn id(&self) -> ObjId {
        *self.id.get().expect("KObject not yet inserted")
    }

    /// The ORoot assigned by the checkpoint manager, if any.
    pub fn oroot(&self) -> Option<OrootId> {
        let raw = self.oroot.load(Ordering::Acquire);
        if raw == NO_OROOT {
            None
        } else {
            Some(OrootId::from_raw(raw))
        }
    }

    /// Assigns the ORoot (first checkpoint of this object).
    pub fn set_oroot(&self, id: OrootId) {
        self.oroot.store(id.to_raw(), Ordering::Release);
    }

    /// Race-safe ORoot assignment for parallel record builders: CASes the
    /// link from `expected` (`None` = never assigned, or a stale id whose
    /// ORoot was swept) to `id`. Returns the winning id — `id` if this
    /// call installed it, or the value another core installed first (the
    /// loser must release its speculative ORoot record and retry).
    pub fn reset_oroot_race(&self, expected: Option<OrootId>, id: OrootId) -> OrootId {
        match self.oroot.compare_exchange(
            expected.map_or(NO_OROOT, |e| e.to_raw()),
            id.to_raw(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => id,
            Err(winner) => OrootId::from_raw(winner),
        }
    }

    /// Marks the object modified since the last checkpoint.
    ///
    /// On the false→true edge the object id is pushed to the kernel's
    /// dirty queue — at most one push per object per checkpoint round, no
    /// matter how many syscalls touch it. Every call (edge or not) notes
    /// the calling core in the queue's owner mask, so the checkpoint
    /// leader knows exactly which cores own state in the round's write
    /// set and can quiesce only those (partial quiescence).
    #[inline]
    pub fn mark_dirty(&self) {
        let core = crate::cores::current_core();
        if !self.dirty.swap(true, Ordering::AcqRel) {
            if let (Some(sink), Some(id)) = (self.sink.get(), self.id.get()) {
                sink.push_from(*id, core);
                return;
            }
        }
        if let Some(sink) = self.sink.get() {
            sink.note_owner(core);
        }
    }

    /// Reads and clears the dirty flag (checkpoint path).
    pub fn take_dirty(&self) -> bool {
        self.dirty.swap(false, Ordering::AcqRel)
    }

    /// Reads the dirty flag without clearing.
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesls_nvm::ObjectStore;

    #[test]
    fn body_type_tags() {
        assert_eq!(ObjectBody::Notification(NotifBody::new()).otype(), ObjType::Notification);
        assert_eq!(
            ObjectBody::CapGroup(CapGroupBody::new("x")).otype(),
            ObjType::CapGroup
        );
    }

    #[test]
    fn new_objects_are_dirty_without_oroot() {
        let o = KObject::new(ObjectBody::Notification(NotifBody::new()));
        assert!(o.is_dirty());
        assert!(o.oroot().is_none());
        assert!(o.take_dirty());
        assert!(!o.is_dirty());
        o.mark_dirty();
        assert!(o.is_dirty());
    }

    #[test]
    fn id_set_once() {
        let o = KObject::new(ObjectBody::Notification(NotifBody::new()));
        let mut store: ObjectStore<Arc<KObject>> = ObjectStore::new();
        let id = store.insert(Arc::clone(&o));
        o.set_id(id);
        assert_eq!(o.id(), id);
    }

    #[test]
    #[should_panic(expected = "id set twice")]
    fn double_id_set_panics() {
        let o = KObject::new(ObjectBody::Notification(NotifBody::new()));
        let mut store: ObjectStore<Arc<KObject>> = ObjectStore::new();
        let id = store.insert(Arc::clone(&o));
        o.set_id(id);
        o.set_id(id);
    }

    #[test]
    fn oroot_roundtrip() {
        let o = KObject::new(ObjectBody::Notification(NotifBody::new()));
        let mut store: ObjectStore<u8> = ObjectStore::new();
        let oroot = store.insert(1);
        o.set_oroot(oroot);
        assert_eq!(o.oroot(), Some(oroot));
    }

    #[test]
    fn all_types_listed_once() {
        let set: std::collections::HashSet<_> = ObjType::ALL.iter().collect();
        assert_eq!(set.len(), 7);
        for t in ObjType::ALL {
            assert!(!t.short_name().is_empty());
        }
    }
}
