//! Property-based tests for kernel data structures and the page
//! versioning rules.

use proptest::prelude::*;

use treesls_kernel::pmo::{PageMeta, PagePtr};
use treesls_kernel::radix::Radix;
use treesls_nvm::FrameId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The radix tree behaves exactly like a BTreeMap under random
    /// insert/remove/get sequences with sparse 64-bit keys.
    #[test]
    fn radix_matches_btreemap(
        ops in proptest::collection::vec(
            (0u8..3, 0u64..1 << 40, any::<u32>()), 1..300),
    ) {
        let mut tree: Radix<u32> = Radix::new();
        let mut model = std::collections::BTreeMap::new();
        for (kind, key, val) in ops {
            match kind {
                0 => {
                    prop_assert_eq!(tree.insert(key, val), model.insert(key, val));
                }
                1 => {
                    prop_assert_eq!(tree.remove(key), model.remove(&key));
                }
                _ => {
                    prop_assert_eq!(tree.get(key), model.get(&key));
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        // Iteration order and contents match.
        let got: Vec<(u64, u32)> = tree.iter().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(u64, u32)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// §4.2/§4.3.3 versioning: for every committed global version, the
    /// restore pick (a) exists whenever any pair entry has a committed
    /// version, (b) never selects an uncommitted (in-flight) tag, and
    /// (c) the speculative-copy destination never targets the pick.
    #[test]
    fn restore_pick_is_safe(
        v0 in proptest::option::of(0u64..20),
        v1 in proptest::option::of(0u64..20),
        global in 0u64..20,
        migrated in any::<bool>(),
    ) {
        let meta = PageMeta {
            pairs: [
                v0.map(|v| PagePtr { frame: FrameId(1), version: v, crc: None }),
                v1.map(|v| PagePtr { frame: FrameId(2), version: v, crc: None }),
            ],
            runtime_dram: migrated.then_some(treesls_nvm::DramId(0)),
            writable: false,
            hotness: 0,
            dirty: false,
            on_active_list: false,
            idle_rounds: 0,
            eternal: false,
            epoch_round: 0,
            epoch_capture: None,
            inline_log: None,
        };
        let pick = meta.restore_pick(global);
        let committed_exists =
            v0.is_some_and(|v| v <= global) || v1.is_some_and(|v| v <= global);
        if committed_exists {
            let p = pick.expect("committed data must be recoverable");
            let chosen = meta.pairs[p].expect("picked entry exists");
            prop_assert!(chosen.version <= global,
                "picked uncommitted tag {} > global {global}", chosen.version);
            // The stop-and-copy destination must differ from the pick.
            prop_assert_ne!(meta.sac_dst(global), p);
        }
        // Paper rule case ❶: an exact-version backup always wins.
        if v0 == Some(global) {
            prop_assert_eq!(pick, Some(0));
        } else if v1 == Some(global) {
            prop_assert_eq!(pick, Some(1));
        } else if v1 == Some(0) {
            // Case ❷/❸: the runtime NVM page (version 0) is used when no
            // exact backup exists.
            prop_assert_eq!(pick, Some(1));
        }
    }
}

/// Simulates the page lifecycle (CoW faults, speculative copies,
/// migrations, commits, crashes) against a model of "content at each
/// committed version" and checks restore always yields the committed
/// image.
#[test]
fn page_version_lifecycle_model() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // frame id -> content tag
        let mut frames: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut next_frame = 1u32;
        let mut alloc = |frames: &mut std::collections::HashMap<u32, u64>| {
            let f = next_frame;
            next_frame += 1;
            frames.insert(f, u64::MAX);
            f
        };
        let home = alloc(&mut frames);
        let mut meta = PageMeta::new_runtime(FrameId(home));
        let mut runtime_content = 0u64; // content tag of the runtime page
        frames.insert(home, 0);
        let mut global = 0u64;
        // content at each committed version
        let mut committed: Vec<u64> = vec![0];
        // The version of the first checkpoint that included this page: a
        // page is only reachable from backup trees of that version onward
        // (earlier restores simply do not contain it), so content checks
        // only apply from here.
        let mut first_ckpt: Option<u64> = None;

        for _ in 0..200 {
            match rng.gen_range(0..3) {
                // Write (with CoW fault if armed).
                0 => {
                    if !meta.writable && !meta.is_migrated() {
                        // Fault: copy runtime into pairs[0] tagged global.
                        let rt = meta.pairs[1].unwrap().frame.0;
                        let dst = match meta.pairs[0] {
                            Some(p) => p.frame.0,
                            None => alloc(&mut frames),
                        };
                        let content = frames[&rt];
                        frames.insert(dst, content);
                        meta.pairs[0] =
                            Some(PagePtr { frame: FrameId(dst), version: global, crc: None });
                        meta.writable = true;
                    }
                    runtime_content = global + 1; // "content of next version"
                    if let Some(p) = meta.pairs[1] {
                        if !meta.is_migrated() {
                            frames.insert(p.frame.0, runtime_content);
                        }
                    }
                    meta.dirty = true;
                }
                // Checkpoint (STW): mark R/O, maybe speculative copy, commit.
                1 => {
                    let inflight = global + 1;
                    if meta.is_migrated() && meta.dirty {
                        let dst_idx = meta.sac_dst(global);
                        let dst = match meta.pairs[dst_idx] {
                            Some(p) => p.frame.0,
                            None => alloc(&mut frames),
                        };
                        frames.insert(dst, runtime_content);
                        meta.pairs[dst_idx] =
                            Some(PagePtr { frame: FrameId(dst), version: inflight, crc: None });
                        meta.dirty = false;
                    } else if !meta.is_migrated() {
                        meta.writable = false;
                        meta.dirty = false;
                    }
                    global = inflight;
                    committed.push(runtime_content);
                    first_ckpt.get_or_insert(global);
                }
                // Crash + restore to the committed version. Only
                // meaningful once the page is part of a committed backup
                // tree (before that, a restore simply omits the page).
                _ => {
                    let Some(first) = first_ckpt else { continue };
                    assert!(global >= first);
                    let pick = meta.restore_pick(global).expect("recoverable");
                    let chosen = meta.pairs[pick].unwrap();
                    let content = frames[&chosen.frame.0];
                    assert_eq!(
                        content, committed[global as usize],
                        "seed {seed}: restored content {content} != committed \
                         {} at version {global}",
                        committed[global as usize]
                    );
                    // Normalize as the restore path does.
                    if pick == 0 {
                        meta.pairs.swap(0, 1);
                    }
                    let c = meta.pairs[1].unwrap();
                    meta.pairs[1] = Some(PagePtr { frame: c.frame, version: 0, crc: None });
                    if let Some(p) = meta.pairs[0].as_mut() {
                        p.version = 0;
                    }
                    meta.runtime_dram = None;
                    meta.writable = false;
                    meta.dirty = false;
                    runtime_content = content;
                    // History beyond the restore point is gone.
                    committed.truncate(global as usize + 1);
                }
            }
        }
    }
}
