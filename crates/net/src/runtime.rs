//! The poll-mode server runtime: one service loop per queue.
//!
//! A [`PollServer`] is the in-SLS half of a NIC queue — a re-entrant
//! step-machine program pinned to one emulated core, draining its RX ring
//! in batches and dispatching each request to a registered [`Service`].
//! It is the DPDK-style shape: the loop *polls* while work is queued and
//! parks on the queue's doorbell notification (the virtual MSI) only when
//! the ring runs dry, so an idle queue costs no cycles but a busy one
//! never takes an interrupt.
//!
//! The data path is zero-copy and round-batched:
//!
//! * requests are read with [`ring::read_into`] into a per-queue scratch
//!   buffer and handed to the service as a borrowed `&[u8]` view — no
//!   per-request `Vec`;
//! * responses are encoded by the service into a second reusable buffer
//!   and *staged* into TX slots with [`ring::stage_at`];
//! * the whole round is then released by ONE [`ring::publish`] — a single
//!   persistence barrier and a single writer store for up to `batch`
//!   responses, which the checkpoint callback later makes visible under
//!   the cross-queue commit barrier.
//!
//! Crash discipline: staged slots are unpublished until the writer store,
//! and the RX cursor advances only after the publish — so a crash at any
//! boundary re-serves the whole round (at-least-once) and the host dedups
//! duplicate responses by sequence number. The cursor lives in ordinary
//! rolled-back memory; the rings are eternal.

use parking_lot::Mutex;
use treesls_extsync::port::PortLayout;
use treesls_extsync::ring::{self, hdr, MemIo};
use treesls_kernel::program::{Program, StepOutcome, UserCtx};
use treesls_kernel::types::CapSlot;

/// Fatal service failure: the serving thread exits and the queue goes
/// dead (recoverable state stays in the eternal rings). Deliberately
/// opaque — protocol-level errors travel in the response payload, not
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceError;

/// An application protocol served by a [`PollServer`].
///
/// Implementations live in `treesls-apps` (KV table, LSM tree); the
/// runtime stays protocol-agnostic. Handlers are zero-copy on both
/// sides: the request arrives as a borrowed view into the queue's
/// scratch buffer and the response is appended to a reusable output
/// buffer owned by the poll loop.
pub trait Service: Send + Sync + std::fmt::Debug {
    /// One-time in-SLS initialization (first boot only — a restored
    /// thread resumes past it and re-attaches inside [`Service::handle`]).
    fn init(&self, ctx: &mut UserCtx<'_>) -> Result<(), ServiceError>;

    /// Handles one request payload, appending the response payload to
    /// `out` (cleared by the caller before each request). `Err` is fatal
    /// and exits the serving thread.
    fn handle(
        &self,
        ctx: &mut UserCtx<'_>,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), ServiceError>;
}

/// Register allocation of the poll loop (shared with `treesls-apps`
/// conventions: `DONE` counts served requests).
pub mod regs {
    /// Requests served so far.
    pub const DONE: usize = 2;
}

/// Reusable request/response buffers for one queue's poll loop: allocated
/// once, grown to the ring's payload capacity, reused every round.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Request bytes read out of the RX ring ([`ring::read_into`]).
    pub req: Vec<u8>,
    /// Response bytes the service encodes into ([`Service::handle`]).
    pub resp: Vec<u8>,
}

/// One queue's poll-mode service loop (see the module docs).
#[derive(Debug)]
pub struct PollServer {
    /// The queue's ring pair and RX cursor.
    pub port: PortLayout,
    /// The application protocol behind this queue.
    pub service: std::sync::Arc<dyn Service>,
    /// Requests served per step (syscall-boundary granularity); also the
    /// maximum round size released per TX publish.
    pub batch: usize,
    /// Capability slot of the queue's doorbell notification.
    pub doorbell_slot: CapSlot,
    /// The queue index this loop serves (= the service shard it owns),
    /// used to attribute per-shard metrics.
    pub queue: usize,
    /// Per-queue scratch buffers (a `Mutex` only because `step` takes
    /// `&self`; the loop is single-threaded per queue, so the lock is
    /// always uncontended).
    pub scratch: Mutex<Scratch>,
}

impl Program for PollServer {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        if ctx.pc() == 0 {
            if self.service.init(ctx).is_err() {
                return StepOutcome::Exited;
            }
            ctx.set_pc(1);
            return StepOutcome::Ready;
        }
        let mut scratch = self.scratch.lock();
        let Scratch { req, resp } = &mut *scratch;
        let Ok(cursor) = ctx.mem_read_u64(self.port.rx_cursor_addr) else {
            return StepOutcome::Exited;
        };
        let Ok(rx_writer) = ring::header(ctx, &self.port.rx, hdr::WRITER) else {
            return StepOutcome::Exited;
        };
        if cursor >= rx_writer {
            // Ring dry: park on the doorbell rather than spinning.
            return match ctx.notif_wait(self.doorbell_slot) {
                Ok(true) => StepOutcome::Ready, // re-check the ring
                Ok(false) => StepOutcome::Blocked,
                Err(_) => StepOutcome::Exited,
            };
        }
        // One round: TX state is read once, every response is staged
        // against the snapshotted ack, and the batch is published with a
        // single flush + writer store.
        let Ok(tx_writer) = ring::header(ctx, &self.port.tx, hdr::WRITER) else {
            return StepOutcome::Exited;
        };
        let Ok(tx_ack) = ring::header(ctx, &self.port.tx, hdr::ACK) else {
            return StepOutcome::Exited;
        };
        let budget = (rx_writer - cursor).min(self.batch.max(1) as u64);
        let mut staged = 0u64;
        let mut tx_full = false;
        while staged < budget {
            // Capacity check BEFORE handling, so a full TX ring never
            // applies a request whose response it cannot stage.
            let Some(in_use) = (tx_writer + staged).checked_sub(tx_ack) else {
                return StepOutcome::Exited; // corrupt header: ack ahead of writer
            };
            if in_use >= self.port.tx.nslots {
                tx_full = true;
                break;
            }
            let Ok(info) = ring::read_into(ctx, &self.port.rx, cursor + staged, req) else {
                return StepOutcome::Exited;
            };
            resp.clear();
            if self.service.handle(ctx, &req[..info.len], resp).is_err() {
                return StepOutcome::Exited;
            }
            if ring::stage_at(ctx, &self.port.tx, tx_writer + staged, tx_ack, info.seq, resp)
                .is_err()
            {
                return StepOutcome::Exited;
            }
            staged += 1;
        }
        if staged > 0 {
            // The batch's linearization point: one barrier, one store.
            if ring::publish(ctx, &self.port.tx, tx_writer + staged).is_err() {
                return StepOutcome::Exited;
            }
            // The responses are published (tagged, not yet visible) but
            // the cursor still points at the round's first request: a
            // crash here re-serves the whole round and the host drops the
            // duplicate responses by seq.
            ctx.crash_site("net.tx_published");
            if ctx.mem_write_u64(self.port.rx_cursor_addr, cursor + staged).is_err() {
                return StepOutcome::Exited;
            }
            let done = ctx.reg(regs::DONE);
            ctx.set_reg(regs::DONE, done + staged);
            ctx.metrics().record_net_batch(self.queue, staged);
        }
        if tx_full {
            // Published what fit; let consumers drain before retrying.
            return StepOutcome::Yielded;
        }
        StepOutcome::Ready
    }
}
