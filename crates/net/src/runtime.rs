//! The poll-mode server runtime: one service loop per queue.
//!
//! A [`PollServer`] is the in-SLS half of a NIC queue — a re-entrant
//! step-machine program pinned to one emulated core, draining its RX ring
//! in batches and dispatching each request to a registered [`Service`].
//! It is the DPDK-style shape: the loop *polls* while work is queued and
//! parks on the queue's doorbell notification (the virtual MSI) only when
//! the ring runs dry, so an idle queue costs no cycles but a busy one
//! never takes an interrupt.
//!
//! Crash discipline: the loop peeks, processes, replies, and only then
//! advances its RX cursor — so a crash at any step boundary re-processes
//! the request (at-least-once) and the host dedups the duplicate response
//! by sequence number. The cursor lives in ordinary rolled-back memory;
//! the rings are eternal.

use treesls_extsync::port::{server_reply, PortLayout};
use treesls_extsync::ring::{self, hdr, MemIo};
use treesls_kernel::program::{Program, StepOutcome, UserCtx};
use treesls_kernel::types::CapSlot;

/// Fatal service failure: the serving thread exits and the queue goes
/// dead (recoverable state stays in the eternal rings). Deliberately
/// opaque — protocol-level errors travel in the response payload, not
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceError;

/// An application protocol served by a [`PollServer`].
///
/// Implementations live in `treesls-apps` (KV table, LSM tree); the
/// runtime stays protocol-agnostic.
pub trait Service: Send + Sync + std::fmt::Debug {
    /// One-time in-SLS initialization (first boot only — a restored
    /// thread resumes past it and re-attaches inside [`Service::handle`]).
    fn init(&self, ctx: &mut UserCtx<'_>) -> Result<(), ServiceError>;

    /// Handles one request payload, returning the response payload.
    /// `Err` is fatal and exits the serving thread.
    fn handle(&self, ctx: &mut UserCtx<'_>, payload: &[u8]) -> Result<Vec<u8>, ServiceError>;
}

/// Register allocation of the poll loop (shared with `treesls-apps`
/// conventions: `DONE` counts served requests).
pub mod regs {
    /// Requests served so far.
    pub const DONE: usize = 2;
}

/// One queue's poll-mode service loop (see the module docs).
#[derive(Debug)]
pub struct PollServer {
    /// The queue's ring pair and RX cursor.
    pub port: PortLayout,
    /// The application protocol behind this queue.
    pub service: std::sync::Arc<dyn Service>,
    /// Requests served per step (syscall-boundary granularity).
    pub batch: usize,
    /// Capability slot of the queue's doorbell notification.
    pub doorbell_slot: CapSlot,
}

impl Program for PollServer {
    fn step(&self, ctx: &mut UserCtx<'_>) -> StepOutcome {
        if ctx.pc() == 0 {
            if self.service.init(ctx).is_err() {
                return StepOutcome::Exited;
            }
            ctx.set_pc(1);
            return StepOutcome::Ready;
        }
        for _ in 0..self.batch.max(1) {
            // Peek-process-advance so a full TX ring retries the same
            // request next step instead of dropping it.
            let Ok(cursor) = ctx.mem_read_u64(self.port.rx_cursor_addr) else {
                return StepOutcome::Exited;
            };
            let Ok(writer) = ring::header(ctx, &self.port.rx, hdr::WRITER) else {
                return StepOutcome::Exited;
            };
            if cursor >= writer {
                // Ring dry: park on the doorbell rather than spinning.
                return match ctx.notif_wait(self.doorbell_slot) {
                    Ok(true) => StepOutcome::Ready, // re-check the ring
                    Ok(false) => StepOutcome::Blocked,
                    Err(_) => StepOutcome::Exited,
                };
            }
            let Ok(msg) = ring::read_at(ctx, &self.port.rx, cursor) else {
                return StepOutcome::Exited;
            };
            let Ok(resp) = self.service.handle(ctx, &msg.payload) else {
                return StepOutcome::Exited;
            };
            if server_reply(ctx, &self.port, msg.seq, &resp).is_err() {
                // TX full: retry this request next step.
                return StepOutcome::Yielded;
            }
            // The response is published (tagged, not yet visible) but the
            // cursor still points at the request: a crash here re-serves
            // it and the host drops the duplicate response.
            ctx.crash_site("net.tx_published");
            if ctx.mem_write_u64(self.port.rx_cursor_addr, cursor + 1).is_err() {
                return StepOutcome::Exited;
            }
            let done = ctx.reg(regs::DONE);
            ctx.set_reg(regs::DONE, done + 1);
        }
        StepOutcome::Ready
    }
}
