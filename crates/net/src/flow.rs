//! RSS-style flow steering: a stateless hash spreads flows over queues.
//!
//! Real NICs hash the connection 5-tuple into an indirection table so one
//! flow always lands on one queue (ordering within a flow) while distinct
//! flows spread across queues (parallelism). The emulated NIC keys the
//! same decision off an opaque 64-bit flow id chosen by the client — a
//! connection id, a key hash, whatever identifies "one conversation".

/// Mixes a flow id into a well-distributed 64-bit hash (the finalizer of
/// SplitMix64 — full avalanche, so adjacent flow ids land on unrelated
/// queues).
pub fn flow_hash(flow: u64) -> u64 {
    let mut z = flow.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The queue a flow is steered to, for a NIC with `queues` queues.
pub fn queue_for(flow: u64, queues: usize) -> usize {
    debug_assert!(queues > 0, "a NIC has at least one queue");
    (flow_hash(flow) % queues.max(1) as u64) as usize
}

/// Derives a flow id from a record key's bytes (FNV-1a 64).
///
/// This is the RSS/shard alignment contract: a client that sends a
/// request for key `k` with `flow = key_flow(k)` lands on queue
/// `queue_for(key_flow(k), n)`, and a service sharded with
/// [`shard_for`]`(k, n)` owns exactly that queue — so a queue's requests
/// never touch another shard's state and the hot path takes no
/// cross-shard lock. Both functions are deterministic over the same key
/// bytes; neither side needs to coordinate.
pub fn key_flow(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The service shard that owns `key` in an `shards`-way partition.
///
/// Defined as `queue_for(key_flow(key), shards)` so the shard function
/// and the RSS steering decision are the same function of the same key
/// bytes (see [`key_flow`]).
pub fn shard_for(key: &[u8], shards: usize) -> usize {
    queue_for(key_flow(key), shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steering_is_stable() {
        for flow in 0..64u64 {
            assert_eq!(queue_for(flow, 4), queue_for(flow, 4));
        }
    }

    #[test]
    fn flows_spread_over_queues() {
        let queues = 4;
        let mut hits = vec![0u32; queues];
        for flow in 0..1024u64 {
            hits[queue_for(flow, queues)] += 1;
        }
        for (q, &h) in hits.iter().enumerate() {
            assert!(
                h > 128,
                "queue {q} got only {h}/1024 flows — hash is not spreading"
            );
        }
    }

    #[test]
    fn single_queue_takes_everything() {
        for flow in [0u64, 1, u64::MAX] {
            assert_eq!(queue_for(flow, 1), 0);
        }
    }

    #[test]
    fn shard_and_queue_agree_on_key_bytes() {
        // The RSS/shard alignment contract: for every key, the queue the
        // client's flow id steers to IS the shard that owns the key.
        for id in 0..512u64 {
            let mut key = [0u8; 16];
            key[..4].copy_from_slice(b"user");
            key[4..12].copy_from_slice(&id.to_le_bytes());
            for shards in [1usize, 2, 4, 8, 16] {
                assert_eq!(
                    shard_for(&key, shards),
                    queue_for(key_flow(&key), shards),
                    "key {id} shards {shards}"
                );
            }
        }
    }

    #[test]
    fn key_flow_spreads_shards() {
        let shards = 8;
        let mut hits = vec![0u32; shards];
        for id in 0..4096u64 {
            let mut key = [0u8; 16];
            key[..4].copy_from_slice(b"user");
            key[4..12].copy_from_slice(&id.to_le_bytes());
            hits[shard_for(&key, shards)] += 1;
        }
        for (s, &h) in hits.iter().enumerate() {
            assert!(h > 256, "shard {s} got only {h}/4096 keys");
        }
    }
}
