//! RSS-style flow steering: a stateless hash spreads flows over queues.
//!
//! Real NICs hash the connection 5-tuple into an indirection table so one
//! flow always lands on one queue (ordering within a flow) while distinct
//! flows spread across queues (parallelism). The emulated NIC keys the
//! same decision off an opaque 64-bit flow id chosen by the client — a
//! connection id, a key hash, whatever identifies "one conversation".

/// Mixes a flow id into a well-distributed 64-bit hash (the finalizer of
/// SplitMix64 — full avalanche, so adjacent flow ids land on unrelated
/// queues).
pub fn flow_hash(flow: u64) -> u64 {
    let mut z = flow.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The queue a flow is steered to, for a NIC with `queues` queues.
pub fn queue_for(flow: u64, queues: usize) -> usize {
    debug_assert!(queues > 0, "a NIC has at least one queue");
    (flow_hash(flow) % queues.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steering_is_stable() {
        for flow in 0..64u64 {
            assert_eq!(queue_for(flow, 4), queue_for(flow, 4));
        }
    }

    #[test]
    fn flows_spread_over_queues() {
        let queues = 4;
        let mut hits = vec![0u32; queues];
        for flow in 0..1024u64 {
            hits[queue_for(flow, queues)] += 1;
        }
        for (q, &h) in hits.iter().enumerate() {
            assert!(
                h > 128,
                "queue {q} got only {h}/1024 flows — hash is not spreading"
            );
        }
    }

    #[test]
    fn single_queue_takes_everything() {
        for flow in [0u64, 1, u64::MAX] {
            assert_eq!(queue_for(flow, 1), 0);
        }
    }
}
