//! Spawning a NIC-backed service process inside the SLS.
//!
//! One deployment is one process: a data heap (ordinary rolled-back
//! memory holding the service's tables and the per-queue RX cursors), an
//! eternal PMO holding every queue's ring pair, one doorbell notification
//! and one [`PollServer`] thread per queue, and a [`VirtualNic`] whose
//! checkpoint/restore callbacks are registered with the checkpoint
//! manager.

use std::sync::Arc;

use treesls_checkpoint::CheckpointManager;
use treesls_kernel::cap::CapRights;
use treesls_kernel::object::ObjectBody;
use treesls_kernel::pmo::PmoKind;
use treesls_kernel::program::Program;
use treesls_kernel::thread::ThreadContext;
use treesls_kernel::types::{CapSlot, KernelError, ObjId, Vpn};
use treesls_kernel::Kernel;

use crate::nic::{NicConfig, NicLayout, VirtualNic};
use crate::runtime::{PollServer, Service};

/// Finds the capability slot of `obj` in `group`.
pub fn cap_slot_of(kernel: &Kernel, group: ObjId, obj: ObjId) -> CapSlot {
    let g = kernel.object(group).expect("group exists");
    let body = g.body.read();
    let ObjectBody::CapGroup(cg) = &*body else { panic!("not a cap group") };
    let slot = cg.iter().find(|(_, c)| c.obj == obj).map(|(s, _)| s).expect("cap installed");
    slot
}

/// What to build: process shape + NIC behaviour.
#[derive(Debug, Clone)]
pub struct DeploySpec {
    /// Cap-group and program-name prefix (queue `q`'s program is
    /// `"{name}-q{q}"`).
    pub name: String,
    /// Pages of ordinary data heap mapped at address 0 (tables +
    /// cursors). The eternal ring PMO is mapped 16 pages above it.
    pub heap_pages: u64,
    /// Address of queue 0's RX cursor (must lie inside the heap).
    pub cursor_base: u64,
    /// Byte stride between consecutive queues' cursors.
    pub cursor_stride: u64,
    /// NIC behaviour (queue count, ring geometry, credits, ext-sync,
    /// wire faults).
    pub cfg: NicConfig,
    /// Requests each server loop serves per step (and the maximum round
    /// size a queue releases per batched TX publish).
    pub batch: usize,
    /// When `Some(n)`, pin queue `q`'s server thread to simulated core
    /// `q % n`, aligning the service shard with the core that owns its
    /// dirty pages (partial quiescence then parks exactly the cores
    /// whose shards wrote). `None` leaves scheduling unconstrained.
    pub pin_cores: Option<u32>,
}

/// A running NIC-backed deployment.
pub struct NicDeployment {
    /// The server process VM space.
    pub vmspace: ObjId,
    /// The NIC serving all queues.
    pub nic: Arc<VirtualNic>,
    /// Server thread ids, one per queue.
    pub server_threads: Vec<ObjId>,
}

/// Builds the process, rings, doorbells and server loops described by
/// `spec`, instantiating queue `q`'s protocol via `service(q)`.
pub fn deploy(
    kernel: &Arc<Kernel>,
    manager: &CheckpointManager,
    spec: &DeploySpec,
    mut service: impl FnMut(usize) -> Arc<dyn Service>,
) -> Result<NicDeployment, KernelError> {
    let g = kernel.create_cap_group(&spec.name)?;
    let vs = kernel.create_vmspace(g)?;

    // Data heap: service tables + per-queue RX cursors (rolled back).
    let pmo = kernel.create_pmo(g, spec.heap_pages, PmoKind::Data)?;
    kernel.map_region(vs, Vpn(0), spec.heap_pages, pmo, 0, CapRights::ALL)?;

    // Eternal ring area above the heap: one eternal PMO *per queue*, so
    // each shard's ring pair is its own checkpoint object. A queue's
    // request traffic then dirties only its own PMO — the dirty queue
    // attributes ring writes per shard, partial quiescence parks only the
    // cores whose shards produced, and the address map is unchanged
    // (queue `q` still lands at `ring_base + q·2·ring_len`).
    let ring_base_vpn = spec.heap_pages + 16;
    let layout =
        NicLayout::new(&spec.cfg, ring_base_vpn * 4096, spec.cursor_base, spec.cursor_stride);
    let pages_per_queue = 2 * layout.ring_len() / 4096;
    for q in 0..spec.cfg.queues as u64 {
        let epmo = kernel.create_pmo(g, pages_per_queue, PmoKind::Eternal)?;
        kernel.map_region(
            vs,
            Vpn(ring_base_vpn + q * pages_per_queue),
            pages_per_queue,
            epmo,
            0,
            CapRights::ALL,
        )?;
    }

    let nic = VirtualNic::new(Arc::clone(kernel), vs, layout, &spec.cfg)?;
    let mut server_threads = Vec::new();
    for q in 0..spec.cfg.queues {
        let doorbell = kernel.create_notification(g)?;
        nic.set_doorbell(q, doorbell);
        let prog = format!("{}-q{q}", spec.name);
        kernel.programs.register(
            prog.clone(),
            Arc::new(PollServer {
                port: layout.port(q),
                service: service(q),
                batch: spec.batch,
                doorbell_slot: cap_slot_of(kernel, g, doorbell),
                queue: q,
                scratch: Default::default(),
            }) as Arc<dyn Program>,
        );
        let tid = kernel.create_thread(g, vs, &prog, ThreadContext::new())?;
        if let Some(n) = spec.pin_cores {
            kernel.sched.set_affinity(tid, Some(q as u32 % n.max(1)));
        }
        server_threads.push(tid);
    }
    manager.register_callback(Arc::clone(&nic) as _);
    Ok(NicDeployment { vmspace: vs, nic, server_threads })
}
