//! `treesls-net` — the multi-queue virtual NIC and poll-mode server
//! runtime with commit-gated TX.
//!
//! The paper's §5 network server is a single boundary where external
//! synchrony is enforced: responses leave the machine only after the
//! checkpoint covering their producing state commits. This crate scales
//! that boundary out to a device: a [`VirtualNic`] with N queues
//! (RSS-style flow steering, per-queue doorbells, per-queue credit
//! admission), a [`PollServer`] runtime running one service loop per
//! queue, and **one** commit-time visibility barrier that releases every
//! queue's held-back responses together.
//!
//! Layering: `extsync` provides the version-tagged rings and the
//! host-side DMA view; this crate provides the *device* built from them;
//! `apps` plugs protocol [`Service`]s into the runtime.
//!
//! * [`flow`] — RSS-style flow→queue steering.
//! * [`fault`] — deterministic drop/duplicate/reorder wire model,
//!   composable with a [`treesls_nvm::CrashSchedule`].
//! * [`nic`] — the NIC device: queues, credits, doorbells, and the
//!   checkpoint/restore callbacks (visibility barrier, uniform re-arm).
//! * [`runtime`] — the poll-mode server loop and the [`Service`] trait.
//! * [`deploy`](mod@deploy) — spawning a NIC-backed service process inside the SLS.
//! * [`repl`] — the checkpoint-shipping replication channel: a dedicated
//!   delta/ack queue pair between a primary and each replica, with the
//!   same wire-fault model, plus the [`ReleaseGate`] the NIC consults to
//!   bound TX visibility at the quorum-durable round.

#![deny(missing_docs)]

pub mod deploy;
pub mod fault;
pub mod flow;
pub mod nic;
pub mod repl;
pub mod runtime;

pub use deploy::{deploy, DeploySpec, NicDeployment};
pub use fault::{FaultState, NetFaultConfig, Perturbation};
pub use flow::{flow_hash, key_flow, queue_for, shard_for};
pub use nic::{CallError, CallOutcome, NetError, NicConfig, NicLayout, VirtualNic};
pub use repl::{HeapMem, ReleaseGate, ReplChannel, ShipError};
pub use runtime::{PollServer, Scratch, Service, ServiceError};
