//! The multi-queue virtual NIC with commit-gated TX.
//!
//! A [`VirtualNic`] owns N queues, each a pair of version-tagged rings in
//! eternal PMOs (RX requests in, TX responses out) plus a doorbell
//! notification (the virtual MSI vector) that wakes the queue's server
//! thread. The host side plays the external clients and the DMA engine;
//! the SLS side runs one poll-mode server loop per queue (see
//! [`crate::runtime`]).
//!
//! External synchrony (§5 of the paper) is enforced *per NIC, per
//! commit*: when a checkpoint commits, the checkpoint callback advances
//! every queue's `visible_writer` and then issues **one** persistence
//! barrier — the cross-queue visibility barrier. No response on any queue
//! is released to a client before the checkpoint covering its producing
//! state is durable. On restore the callback truncates every queue's
//! rolled-back responses under a single barrier and uniformly re-arms the
//! doorbell of every queue with undrained requests (the interrupt edge
//! died with the power; the eternal RX contents did not).
//!
//! Admission control is a per-queue credit budget bounding the *server's
//! unconsumed RX backlog*: a queue whose server is `credits` requests
//! behind sheds new work with an explicit [`NetError::Busy`] instead of
//! queueing unboundedly. Credits are consumed at admission and
//! re-derived from the ring itself (`rx_writer − rx_cursor`) at every
//! pump, commit barrier and doorbell re-arm — a request stops holding a
//! credit as soon as the server has consumed it, not only when its
//! commit-gated response finally drains, so checkpoint latency never
//! eats the admission budget.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use treesls_checkpoint::CkptCallback;
use treesls_extsync::port::{HostIo, PortLayout};
use treesls_extsync::ring::{self, hdr, MemIo, RingError, RingLayout};
use treesls_kernel::types::{KernelError, ObjId};
use treesls_kernel::Kernel;

use crate::fault::{FaultState, NetFaultConfig, Perturbation};
use crate::flow::queue_for;
use crate::repl::ReleaseGate;

/// Behavioural configuration of a NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicConfig {
    /// Number of queues (ring pairs + doorbells + server loops).
    pub queues: usize,
    /// Slots per ring.
    pub nslots: u64,
    /// Bytes per slot (including the slot header).
    pub slot_size: u64,
    /// Per-queue admission budget: requests admitted beyond this while
    /// the server's RX backlog has not drained are shed with
    /// [`NetError::Busy`].
    pub credits: u64,
    /// Whether TX visibility is gated on checkpoint commits.
    pub ext_sync: bool,
    /// Wire perturbation model (defaults to a perfect wire).
    pub fault: NetFaultConfig,
    /// Overall deadline for [`VirtualNic::call_checked`]: past it the
    /// call surfaces [`CallError::TimedOut`] instead of retrying forever
    /// (clients of a dead or failed-over primary must give up and move).
    pub call_timeout: Duration,
}

impl Default for NicConfig {
    fn default() -> Self {
        Self {
            queues: 1,
            nslots: 256,
            slot_size: 1280,
            credits: 8,
            ext_sync: true,
            fault: NetFaultConfig::default(),
            call_timeout: Duration::from_secs(5),
        }
    }
}

/// Placement of a NIC's rings and cursors inside the service's address
/// space.
///
/// Queue `q`'s ring pair occupies `[ring_base + q·2·ring_len, …)` (RX then
/// TX, each padded to whole pages) in an *eternal* PMO; its RX cursor
/// lives at `cursor_base + q·cursor_stride` in ordinary rolled-back
/// memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicLayout {
    /// Base address of queue 0's RX ring (eternal, page-aligned).
    pub ring_base: u64,
    /// Address of queue 0's RX cursor (ordinary process memory).
    pub cursor_base: u64,
    /// Byte stride between consecutive queues' cursors.
    pub cursor_stride: u64,
    /// Slots per ring.
    pub nslots: u64,
    /// Bytes per slot.
    pub slot_size: u64,
    /// Number of queues.
    pub queues: usize,
}

impl NicLayout {
    /// Derives the placement from a config, ring base and cursor placement.
    pub fn new(cfg: &NicConfig, ring_base: u64, cursor_base: u64, cursor_stride: u64) -> Self {
        Self {
            ring_base,
            cursor_base,
            cursor_stride,
            nslots: cfg.nslots,
            slot_size: cfg.slot_size,
            queues: cfg.queues,
        }
    }

    /// Bytes one ring occupies, padded to whole pages.
    pub fn ring_len(&self) -> u64 {
        (hdr::SIZE + self.nslots * self.slot_size).div_ceil(4096) * 4096
    }

    /// Total bytes of the ring region (all queues, RX + TX).
    pub fn span(&self) -> u64 {
        self.queues as u64 * 2 * self.ring_len()
    }

    /// The ring pair and cursor of queue `q`.
    pub fn port(&self, q: usize) -> PortLayout {
        debug_assert!(q < self.queues);
        let rl = self.ring_len();
        let base = self.ring_base + q as u64 * 2 * rl;
        PortLayout {
            rx: RingLayout { base, nslots: self.nslots, slot_size: self.slot_size },
            tx: RingLayout { base: base + rl, nslots: self.nslots, slot_size: self.slot_size },
            rx_cursor_addr: self.cursor_base + q as u64 * self.cursor_stride,
        }
    }
}

/// Errors surfaced to NIC clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Admission control shed the request (credit budget exhausted or the
    /// RX ring is full). Retryable; the server state is untouched.
    Busy,
    /// A non-retryable ring failure (corruption, bad memory access).
    Ring(RingError),
}

/// Outcome of a blocking [`VirtualNic::call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallOutcome {
    /// The response payload.
    Reply(Vec<u8>),
    /// Shed by admission control before entering the system.
    Busy,
    /// No response within the deadline (the request is abandoned; a late
    /// duplicate response is dropped by the host dedup).
    TimedOut,
}

impl CallOutcome {
    /// The payload, if the call got a reply.
    pub fn reply(self) -> Option<Vec<u8>> {
        match self {
            CallOutcome::Reply(p) => Some(p),
            _ => None,
        }
    }
}

/// Error surfaced by [`VirtualNic::call_checked`]: the fallible variant
/// of [`CallOutcome`] that client fleets can propagate with `?` instead
/// of looping on an outcome enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    /// Shed by admission control (credits exhausted, ring full, or the
    /// release gate is degraded). Retryable after backoff.
    Busy,
    /// No response within the NIC's configured `call_timeout`.
    TimedOut,
    /// The NIC was closed (its system stopped or failed over); no
    /// response will ever arrive. Move to the new primary.
    Closed,
    /// Non-retryable ring failure.
    Ring(RingError),
}

/// A request awaiting its response, keyed by NIC-global sequence number.
#[derive(Debug)]
struct Pending {
    queue: usize,
    resp: Option<Vec<u8>>,
}

/// Host-side per-queue state.
#[derive(Debug)]
struct QueueState {
    /// Doorbell notification (virtual MSI vector) of this queue.
    doorbell: Mutex<Option<ObjId>>,
    /// Credit consumption: an over-approximation of the server's
    /// unconsumed RX backlog, bumped at admission and clamped back down
    /// to the observed `rx_writer − rx_cursor` by
    /// [`VirtualNic::resync_credits`].
    inflight: AtomicU64,
    /// TX writer snapshot taken by `on_epoch` inside the checkpoint
    /// pause; `u64::MAX` when no snapshot is armed (full quiescence or
    /// no checkpoint in flight). Caps the commit barrier's visibility
    /// advance so responses produced by clean cores *after* the pause
    /// wait for the commit that covers their producing state.
    epoch_tx_writer: AtomicU64,
    /// RX cursor sample taken at the previous checkpoint; a lower bound
    /// on the *checkpointed* cursor, so those request slots are safe to
    /// release for reuse.
    prev_cursor_sample: AtomicU64,
    /// Serializes RX-ring appends: `ring::push` is read-modify-write on
    /// the writer header, and concurrent client threads landing on the
    /// same queue would otherwise claim the same slot (one request
    /// silently overwritten, its caller stuck until timeout).
    dma: Mutex<()>,
}

/// A packet sitting on the emulated wire (reorder window).
#[derive(Debug)]
struct WirePacket {
    queue: usize,
    seq: u64,
    data: Vec<u8>,
}

/// The multi-queue virtual NIC (see the module docs).
pub struct VirtualNic {
    io: HostIo,
    layout: NicLayout,
    ext_sync: AtomicBool,
    credits: u64,
    call_timeout: Duration,
    next_seq: AtomicU64,
    pending: Mutex<HashMap<u64, Pending>>,
    cv: Condvar,
    pump_lock: Mutex<()>,
    queues: Vec<QueueState>,
    fault: Option<FaultState>,
    wire: Mutex<VecDeque<WirePacket>>,
    /// Set when the NIC's system is stopped or failed over: blocked
    /// callers unblock immediately instead of burning their full timeout
    /// against a primary that will never answer.
    closed: AtomicBool,
    /// Optional replication gate: bounds commit-time TX visibility to
    /// rounds durable on a quorum and sheds writes while degraded.
    gate: Mutex<Option<Arc<dyn ReleaseGate>>>,
}

impl VirtualNic {
    /// Creates a NIC and initializes every queue's rings and cursor.
    pub fn new(
        kernel: Arc<Kernel>,
        vmspace: ObjId,
        layout: NicLayout,
        cfg: &NicConfig,
    ) -> Result<Arc<Self>, KernelError> {
        let io = HostIo::new(kernel, vmspace);
        for q in 0..layout.queues {
            let port = layout.port(q);
            ring::init(&io, &port.rx)?;
            ring::init(&io, &port.tx)?;
            io.mem_write_u64(port.rx_cursor_addr, 0)?;
        }
        Ok(Self::from_io(io, layout, cfg))
    }

    /// Reattaches to existing rings after a restore, *without*
    /// reinitializing them — the rings are eternal and their contents must
    /// survive; the restore callback does the reconciliation.
    ///
    /// `next_seq` must be beyond any previously used sequence number so
    /// retransmitted and fresh requests never collide.
    pub fn attach(
        kernel: Arc<Kernel>,
        vmspace: ObjId,
        layout: NicLayout,
        cfg: &NicConfig,
        next_seq: u64,
    ) -> Arc<Self> {
        let nic = Self::from_io(HostIo::new(kernel, vmspace), layout, cfg);
        nic.next_seq.store(next_seq, Ordering::SeqCst);
        nic
    }

    fn from_io(io: HostIo, layout: NicLayout, cfg: &NicConfig) -> Arc<Self> {
        debug_assert_eq!(layout.queues, cfg.queues);
        let queues = (0..layout.queues)
            .map(|_| QueueState {
                doorbell: Mutex::new(None),
                inflight: AtomicU64::new(0),
                epoch_tx_writer: AtomicU64::new(u64::MAX),
                prev_cursor_sample: AtomicU64::new(0),
                dma: Mutex::new(()),
            })
            .collect();
        Arc::new(Self {
            io,
            layout,
            ext_sync: AtomicBool::new(cfg.ext_sync),
            credits: cfg.credits.max(1),
            call_timeout: cfg.call_timeout,
            next_seq: AtomicU64::new(1),
            pending: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            pump_lock: Mutex::new(()),
            queues,
            fault: cfg.fault.is_active().then(|| FaultState::new(cfg.fault)),
            wire: Mutex::new(VecDeque::new()),
            closed: AtomicBool::new(false),
            gate: Mutex::new(None),
        })
    }

    /// The NIC's ring/cursor placement (e.g. to re-attach after restore).
    pub fn layout(&self) -> NicLayout {
        self.layout
    }

    /// The ring pair of queue `q` (for tests and direct ring inspection).
    pub fn port(&self, q: usize) -> PortLayout {
        self.layout.port(q)
    }

    /// Number of queues.
    pub fn queues(&self) -> usize {
        self.layout.queues
    }

    /// The queue flow `flow` is steered to.
    pub fn queue_for(&self, flow: u64) -> usize {
        queue_for(flow, self.layout.queues)
    }

    /// Binds the doorbell notification of queue `q`.
    pub fn set_doorbell(&self, q: usize, notif: ObjId) {
        *self.queues[q].doorbell.lock() = Some(notif);
    }

    /// Enables or disables commit-gated TX visibility.
    pub fn set_ext_sync(&self, on: bool) {
        self.ext_sync.store(on, Ordering::SeqCst);
    }

    /// Installs (or clears) the replication release gate consulted at
    /// admission and at every commit barrier.
    pub fn set_release_gate(&self, gate: Option<Arc<dyn ReleaseGate>>) {
        *self.gate.lock() = gate;
    }

    /// Marks the NIC closed (system stopped / failed over) and wakes every
    /// blocked caller so they fail fast instead of waiting out a timeout
    /// against a dead primary.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Whether [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Whether TX visibility is gated on checkpoint commits.
    pub fn ext_sync(&self) -> bool {
        self.ext_sync.load(Ordering::SeqCst)
    }

    /// The committed global checkpoint version (for external-synchrony
    /// oracles: a response must never be observed at a version ≤ the one
    /// current when its request was sent).
    pub fn committed_version(&self) -> u64 {
        self.io.version()
    }

    fn metrics(&self) -> &treesls_obs::MetricsRegistry {
        &self.io.kernel().metrics
    }

    /// Sends a request on the queue its flow hashes to; returns the
    /// sequence number to await.
    pub fn send_request(&self, flow: u64, data: &[u8]) -> Result<u64, NetError> {
        self.send_to_queue(self.queue_for(flow), data)
    }

    /// Sends a request on an explicit queue (tests steering specific
    /// queues; production traffic goes through [`Self::send_request`]).
    pub fn send_to_queue(&self, q: usize, data: &[u8]) -> Result<u64, NetError> {
        assert!(q < self.layout.queues, "queue {q} out of range");
        // Replication admission: while the quorum is lost the gate sheds
        // new state-mutating work (reads stay admitted — their responses
        // simply wait behind the durability bound).
        if let Some(gate) = self.gate.lock().clone() {
            if !gate.admit(data) {
                self.metrics().record_net_shed();
                return Err(NetError::Busy);
            }
        }
        let credits = self.credits;
        if self.queues[q]
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| (c < credits).then_some(c + 1))
            .is_err()
        {
            self.metrics().record_net_shed();
            return Err(NetError::Busy);
        }
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        self.pending.lock().insert(seq, Pending { queue: q, resp: None });
        self.metrics().record_net_request();
        match self.transmit(q, seq, data) {
            Ok(()) => Ok(seq),
            Err(e) => {
                self.abandon(seq);
                if e == NetError::Busy {
                    self.metrics().record_net_shed();
                }
                Err(e)
            }
        }
    }

    /// Retransmits a still-unanswered request (same sequence number, so a
    /// duplicate arrival is re-processed idempotently and deduplicated on
    /// response). Returns `false` if the request is no longer pending.
    pub fn retransmit(&self, seq: u64, data: &[u8]) -> Result<bool, NetError> {
        let q = {
            let pending = self.pending.lock();
            match pending.get(&seq) {
                Some(p) if p.resp.is_none() => p.queue,
                _ => return Ok(false),
            }
        };
        self.transmit(q, seq, data)?;
        Ok(true)
    }

    /// Runs one packet through the wire model and (maybe) into the RX
    /// ring.
    fn transmit(&self, q: usize, seq: u64, data: &[u8]) -> Result<(), NetError> {
        match self.fault.as_ref().map(|f| f.next()).unwrap_or(Perturbation::Deliver) {
            Perturbation::Drop => {
                // Lost on the wire; the client's retransmission recovers.
                self.metrics().record_net_faults(1, 0, 0);
                Ok(())
            }
            Perturbation::Duplicate => {
                self.metrics().record_net_faults(0, 1, 0);
                self.enqueue_wire(q, seq, data)?;
                // The second copy is best-effort: a duplicate that finds
                // the ring full is simply lost, which is indistinguishable
                // from it never having been duplicated.
                let _ = self.enqueue_wire(q, seq, data);
                Ok(())
            }
            Perturbation::Deliver => self.enqueue_wire(q, seq, data),
        }
    }

    /// Hands a packet to the (possibly reordering) wire.
    fn enqueue_wire(&self, q: usize, seq: u64, data: &[u8]) -> Result<(), NetError> {
        let window = self.fault.as_ref().map(|f| f.cfg().reorder_window).unwrap_or(0);
        if window <= 1 {
            return self.deliver(q, seq, data);
        }
        let release = {
            let mut wire = self.wire.lock();
            wire.push_back(WirePacket { queue: q, seq, data: data.to_vec() });
            if wire.len() >= window {
                let idx = self.fault.as_ref().map(|f| f.pick(wire.len())).unwrap_or(0);
                if idx != 0 {
                    self.metrics().record_net_faults(0, 0, 1);
                }
                wire.remove(idx)
            } else {
                None
            }
        };
        match release {
            Some(p) => self.deliver(p.queue, p.seq, &p.data),
            None => Ok(()),
        }
    }

    /// Drains the reorder window onto the rings (in seeded-permuted
    /// order). Called by timed-out/retrying clients and by quiescing
    /// scenarios so no packet is stranded on the wire.
    pub fn flush_wire(&self) {
        loop {
            let pkt = {
                let mut wire = self.wire.lock();
                if wire.is_empty() {
                    return;
                }
                let idx = self.fault.as_ref().map(|f| f.pick(wire.len())).unwrap_or(0);
                if idx != 0 {
                    self.metrics().record_net_faults(0, 0, 1);
                }
                wire.remove(idx)
            };
            if let Some(p) = pkt {
                if self.deliver(p.queue, p.seq, &p.data).is_err() {
                    // A full ring at flush time loses the packet, exactly
                    // like a wire drop; the retransmission recovers it.
                    self.metrics().record_net_faults(1, 0, 0);
                }
            }
        }
    }

    /// DMAs a packet into queue `q`'s RX ring and rings its doorbell.
    fn deliver(&self, q: usize, seq: u64, data: &[u8]) -> Result<(), NetError> {
        let port = self.layout.port(q);
        let _dma = self.queues[q].dma.lock();
        match ring::push(&self.io, &port.rx, seq, data) {
            Ok(_) => {
                if let Some(n) = *self.queues[q].doorbell.lock() {
                    let _ = self.io.kernel().signal_object(n);
                }
                Ok(())
            }
            Err(RingError::Full) => Err(NetError::Busy),
            Err(e) => Err(NetError::Ring(e)),
        }
    }

    /// Drains visible responses from every queue's TX ring into the
    /// pending map (one "NIC interrupt" worth of work). Safe to call
    /// concurrently.
    pub fn pump(&self) {
        let _g = self.pump_lock.lock();
        let limit = if self.ext_sync() { hdr::VISIBLE_WRITER } else { hdr::WRITER };
        let mut any = false;
        for q in 0..self.layout.queues {
            let port = self.layout.port(q);
            while let Ok(Some(msg)) = ring::pop_below(&self.io, &port.tx, limit) {
                let mut pending = self.pending.lock();
                // Duplicate responses (server re-processed after restore,
                // or a duplicated request) hit an absent or fulfilled
                // entry and are dropped.
                if let Some(p) = pending.get_mut(&msg.seq) {
                    if p.resp.is_none() {
                        p.resp = Some(msg.payload);
                        any = true;
                    }
                }
            }
            // Return credits for everything the server has consumed by
            // now — with commit-gated TX the response drain above lags a
            // whole checkpoint interval behind consumption, and holding
            // credits that long starves admission at steady load.
            self.resync_credits(q);
            // Release consumed TX slots for reuse.
            if let Ok(reader) = ring::header(&self.io, &port.tx, hdr::READER) {
                let _ = ring::set_header(&self.io, &port.tx, hdr::ACK, reader);
            }
            // Without external synchrony no durability is promised for
            // requests, so consumed RX slots are released eagerly (with
            // ext-sync the checkpoint callback does this conservatively).
            if !self.ext_sync() {
                if let Ok(cursor) = self.io.mem_read_u64(port.rx_cursor_addr) {
                    let _ = ring::set_header(&self.io, &port.rx, hdr::ACK, cursor);
                }
            }
        }
        if any {
            self.cv.notify_all();
        }
    }

    /// Takes a fulfilled response without blocking.
    pub fn try_take(&self, seq: u64) -> Option<Vec<u8>> {
        let mut pending = self.pending.lock();
        match pending.get(&seq) {
            Some(p) if p.resp.is_some() => pending.remove(&seq).and_then(|p| p.resp),
            _ => None,
        }
    }

    /// Abandons a pending request (timeout): removes the entry. Its
    /// credit is not returned here — credits track the server backlog and
    /// are re-derived from the ring at the next resync point, which also
    /// reclaims the credit of a request lost on the wire (one that never
    /// reached the ring at all).
    pub fn abandon(&self, seq: u64) {
        self.pending.lock().remove(&seq);
    }

    /// Clamps queue `q`'s credit consumption down to the server's actual
    /// unconsumed RX backlog (`rx_writer − rx_cursor`).
    ///
    /// The admission increment over-approximates: requests the server has
    /// already consumed (but whose responses await a commit), and
    /// requests dropped on the wire, keep holding a credit. Re-deriving
    /// the count from the ring headers returns those credits; the clamp
    /// only ever lowers the counter, so it never races an admission into
    /// a negative balance.
    fn resync_credits(&self, q: usize) {
        let port = self.layout.port(q);
        if let (Ok(writer), Ok(cursor)) = (
            ring::header(&self.io, &port.rx, hdr::WRITER),
            self.io.mem_read_u64(port.rx_cursor_addr),
        ) {
            let backlog = writer.saturating_sub(cursor);
            let _ = self.queues[q].inflight.fetch_update(
                Ordering::SeqCst,
                Ordering::SeqCst,
                |c| (c > backlog).then_some(backlog),
            );
        }
    }

    /// Sends a request on its flow's queue and waits for the response.
    ///
    /// Sheds surface as [`CallOutcome::Busy`] without blocking. On a lossy
    /// wire the call periodically flushes the reorder window and
    /// retransmits (same sequence number — safe against duplication).
    pub fn call(
        &self,
        flow: u64,
        data: &[u8],
        timeout: Duration,
    ) -> Result<CallOutcome, RingError> {
        let seq = match self.send_request(flow, data) {
            Ok(s) => s,
            Err(NetError::Busy) => return Ok(CallOutcome::Busy),
            Err(NetError::Ring(e)) => return Err(e),
        };
        let deadline = Instant::now() + timeout;
        let lossy = self.fault.is_some();
        // Exponential poll backoff (50 µs → 1 ms): commit-gated replies
        // arrive at checkpoint cadence, and a fleet of callers spinning at
        // a fixed fine grain can starve the cores that produce the very
        // responses they poll for.
        let mut wait = Duration::from_micros(50);
        // Deterministic per-call jitter (xorshift seeded from the sequence
        // number): every caller capping at exactly 1 ms otherwise phase-
        // locks the fleet into synchronized poll bursts at commit cadence,
        // and the caller that keeps missing the commit edge by a hair
        // pays a full extra period at the tail.
        let mut rng = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut since_recovery = Duration::ZERO;
        loop {
            self.pump();
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            // Sleep in [wait, 1.5·wait).
            let sleep =
                wait + Duration::from_nanos(wait.as_nanos() as u64 * ((rng >> 33) % 512) / 1024);
            {
                let mut pending = self.pending.lock();
                if pending.get(&seq).is_some_and(|p| p.resp.is_some()) {
                    return Ok(CallOutcome::Reply(
                        pending.remove(&seq).and_then(|p| p.resp).unwrap_or_default(),
                    ));
                }
                if self.is_closed() || Instant::now() >= deadline {
                    drop(pending);
                    self.abandon(seq);
                    return Ok(CallOutcome::TimedOut);
                }
                self.cv.wait_for(&mut pending, sleep);
            }
            since_recovery += sleep;
            wait = (wait * 2).min(Duration::from_millis(1));
            // ~2ms between recovery attempts on a faulty wire.
            if lossy && since_recovery >= Duration::from_millis(2) {
                since_recovery = Duration::ZERO;
                self.flush_wire();
                let _ = self.retransmit(seq, data);
            }
        }
    }

    /// [`Self::call`] with the NIC's *configured* overall timeout and a
    /// fallible result: sheds are `Err(Busy)`, expiry is `Err(TimedOut)`,
    /// and a closed NIC (stopped or failed-over primary) is
    /// `Err(Closed)` — the signal for a client to move to the promoted
    /// replica instead of retrying here forever.
    pub fn call_checked(&self, flow: u64, data: &[u8]) -> Result<Vec<u8>, CallError> {
        if self.is_closed() {
            return Err(CallError::Closed);
        }
        match self.call(flow, data, self.call_timeout) {
            Ok(CallOutcome::Reply(p)) => Ok(p),
            Ok(CallOutcome::Busy) => Err(CallError::Busy),
            Ok(CallOutcome::TimedOut) => {
                if self.is_closed() {
                    Err(CallError::Closed)
                } else {
                    Err(CallError::TimedOut)
                }
            }
            Err(e) => Err(CallError::Ring(e)),
        }
    }

    /// Number of requests awaiting responses across all queues.
    pub fn in_flight(&self) -> usize {
        self.pending.lock().values().filter(|p| p.resp.is_none()).count()
    }

    /// Point-in-time cursor/header snapshot of queue `q` (host-side
    /// observability; all values are free-running counts).
    pub fn queue_stats(&self, q: usize) -> QueueStats {
        let port = self.layout.port(q);
        QueueStats {
            rx_cursor: self.io.mem_read_u64(port.rx_cursor_addr).unwrap_or(0),
            rx_writer: ring::header(&self.io, &port.rx, hdr::WRITER).unwrap_or(0),
            rx_ack: ring::header(&self.io, &port.rx, hdr::ACK).unwrap_or(0),
            tx_writer: ring::header(&self.io, &port.tx, hdr::WRITER).unwrap_or(0),
            tx_visible: ring::header(&self.io, &port.tx, hdr::VISIBLE_WRITER).unwrap_or(0),
            tx_reader: ring::header(&self.io, &port.tx, hdr::READER).unwrap_or(0),
            tx_ack: ring::header(&self.io, &port.tx, hdr::ACK).unwrap_or(0),
            credits_used: self.queues[q].inflight.load(Ordering::SeqCst),
        }
    }
}

/// Snapshot of one queue's ring positions (see
/// [`VirtualNic::queue_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Server-side RX consumption cursor (rolled-back memory).
    pub rx_cursor: u64,
    /// Eternal RX producer count.
    pub rx_writer: u64,
    /// RX slots released for reuse.
    pub rx_ack: u64,
    /// Eternal TX producer count.
    pub tx_writer: u64,
    /// Commit-gated TX visibility bound.
    pub tx_visible: u64,
    /// Host-side TX consumption cursor.
    pub tx_reader: u64,
    /// TX slots released for reuse.
    pub tx_ack: u64,
    /// Admission credits currently held by in-flight requests.
    pub credits_used: u64,
}

impl CkptCallback for VirtualNic {
    fn on_epoch(&self, _version: u64) {
        // Inside the stop window: snapshot every queue's TX writer —
        // this is the commit barrier's TX cut. Under the default
        // epoch-concurrent flip NO server parks: every core keeps
        // producing responses through the copy phase (their first
        // conflicting writes self-capture the flip image), and a
        // response appended after this cut was produced by state the
        // *next* checkpoint covers — so the commit barrier below must
        // not release it (the snapshot is the cap). The cut is sound
        // because this callback runs inside the grace-held flip window:
        // pre-arm steps have finished and post-arm steps are held at
        // their first write until the seal, so no ring append lands
        // between this read and the flip. Partial quiescence (clean
        // cores running) needs the same cap; under full quiescence
        // nothing runs between here and the commit, so the cap is
        // exactly the barrier-time writer.
        for q in 0..self.layout.queues {
            let port = self.layout.port(q);
            if let Ok(w) = ring::header(&self.io, &port.tx, hdr::WRITER) {
                self.queues[q].epoch_tx_writer.store(w, Ordering::SeqCst);
            }
        }
    }

    fn on_checkpoint(&self, version: u64) {
        let kernel = self.io.kernel();
        treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "net.pre_barrier");
        // Replication durability bound: with a gate installed, responses
        // are only released up to the round durable on a quorum of
        // replicas, never merely up to the local commit. The shipper's
        // callback runs *before* this one (registered at the front), so
        // by now `release_bound` reflects this round's replication fate.
        let bound = match self.gate.lock().clone() {
            Some(g) => g.release_bound(version),
            None => version,
        };
        let mut released = 0u64;
        let mut lag_max = 0u64;
        let mut lag_sum = 0u64;
        let mut tx_depth = 0u64;
        let mut rx_occ = 0u64;
        let mut tx_occ = 0u64;
        let mut stale_bells = Vec::new();
        for q in 0..self.layout.queues {
            let port = self.layout.port(q);
            // Release responses whose producing state is now persistent —
            // unfenced: all queues share the single barrier below. The
            // advance is capped at the TX writer snapshotted inside the
            // pause (`on_epoch`): responses appended after the pause by
            // still-running clean cores wait for the next commit.
            let cap = self.queues[q].epoch_tx_writer.swap(u64::MAX, Ordering::SeqCst);
            let before =
                ring::header(&self.io, &port.tx, hdr::VISIBLE_WRITER).unwrap_or(0);
            let visible =
                ring::advance_visible_capped_unfenced(&self.io, &port.tx, bound, cap)
                    .unwrap_or(before);
            released += visible.saturating_sub(before);
            // Double-buffered RX acknowledgement: the cursor sampled at
            // the *previous* checkpoint is ≤ the cursor captured by this
            // commit, so those request slots can never be needed again.
            if let Ok(cursor) = self.io.mem_read_u64(port.rx_cursor_addr) {
                let prev = self.queues[q].prev_cursor_sample.swap(cursor, Ordering::SeqCst);
                let _ = ring::set_header(&self.io, &port.rx, hdr::ACK, prev);
            }
            // Commit-time credit replenishment: everything the server
            // consumed during the interval stops holding admission
            // credits now, not when its response eventually drains.
            self.resync_credits(q);
            if let (Ok(writer), Ok(ack)) = (
                ring::header(&self.io, &port.tx, hdr::WRITER),
                ring::header(&self.io, &port.tx, hdr::ACK),
            ) {
                let lag = writer.saturating_sub(visible);
                let depth = writer.saturating_sub(ack);
                lag_max = lag_max.max(lag);
                lag_sum += lag;
                tx_depth += depth;
                tx_occ = tx_occ.max(depth);
            }
            if let (Ok(w), Ok(a)) = (
                ring::header(&self.io, &port.rx, hdr::WRITER),
                ring::header(&self.io, &port.rx, hdr::ACK),
            ) {
                rx_occ = rx_occ.max(w.saturating_sub(a));
                // Doorbell-coalescing watchdog: a cursor trailing the
                // writer means undelivered requests. Normally the pending
                // interrupt covers them, but a wake edge lost to a racing
                // drain would strand the queue until the next request —
                // re-ringing here is idempotent and bounds the stall to
                // one checkpoint interval.
                if let Ok(cursor) = self.io.mem_read_u64(port.rx_cursor_addr) {
                    if cursor < w {
                        if let Some(n) = *self.queues[q].doorbell.lock() {
                            stale_bells.push(n);
                        }
                    }
                }
            }
        }
        treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "net.pre_barrier_flush");
        // The cross-queue visibility barrier: one fence makes every
        // queue's new visibility bound durable together.
        self.io.flush();
        kernel.metrics.record_ring_publish();
        kernel.metrics.set_ring_gauges(tx_depth, lag_sum);
        kernel.metrics.record_net_barrier(lag_max, lag_sum, rx_occ, tx_occ);
        kernel.pers.recorder().record(
            treesls_obs::EventKind::NetBarrier,
            [version, self.layout.queues as u64, released, lag_max, lag_sum, tx_depth],
        );
        kernel.signal_objects(&stale_bells);
        self.cv.notify_all();
    }

    fn on_restore(&self, version: u64) {
        let kernel = self.io.kernel();
        treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "net.pre_restore");
        // Discard responses produced by the rolled-back interval on every
        // queue (the restored servers will re-produce them), then one
        // barrier before the system resumes producing into those slots.
        let mut truncated = 0u64;
        for q in 0..self.layout.queues {
            let port = self.layout.port(q);
            let before = ring::header(&self.io, &port.tx, hdr::WRITER).unwrap_or(0);
            let after = ring::truncate_uncommitted_unfenced(&self.io, &port.tx, version)
                .unwrap_or(before);
            truncated += before.saturating_sub(after);
            // The cursor sample is stale for the new epoch.
            self.queues[q].prev_cursor_sample.store(0, Ordering::SeqCst);
        }
        self.io.flush();
        // Uniform doorbell re-arm: every queue whose restored cursor
        // trails its eternal RX writer had requests queued when power
        // failed. The interrupt edge died with the power; without a
        // replay those servers would sleep on undelivered requests until
        // a fresh request happened to arrive.
        let mut bells = Vec::new();
        let mut rearmed = 0u64;
        for q in 0..self.layout.queues {
            let port = self.layout.port(q);
            if let (Ok(cursor), Ok(writer)) = (
                self.io.mem_read_u64(port.rx_cursor_addr),
                ring::header(&self.io, &port.rx, hdr::WRITER),
            ) {
                if cursor < writer {
                    rearmed += 1;
                    if let Some(n) = *self.queues[q].doorbell.lock() {
                        bells.push(n);
                    }
                }
            }
            // The restored cursor defines the new true backlog; any epoch
            // snapshot from a round that died with the power is stale.
            self.queues[q].epoch_tx_writer.store(u64::MAX, Ordering::SeqCst);
            self.resync_credits(q);
        }
        treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "net.pre_rearm");
        kernel.signal_objects(&bells);
        kernel.metrics.record_net_rearm(rearmed);
        kernel.pers.recorder().record(
            treesls_obs::EventKind::NetRearm,
            [version, self.layout.queues as u64, rearmed, truncated, 0, 0],
        );
        self.cv.notify_all();
    }
}

impl std::fmt::Debug for VirtualNic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualNic")
            .field("queues", &self.layout.queues)
            .field("ext_sync", &self.ext_sync())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_region_is_page_aligned_and_disjoint() {
        let cfg = NicConfig { queues: 4, nslots: 8, slot_size: 84, ..Default::default() };
        let layout = NicLayout::new(&cfg, 0x10_0000, 0x1000, 0x2000);
        assert_eq!(layout.ring_len() % 4096, 0);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for q in 0..4 {
            let p = layout.port(q);
            for ring in [p.rx, p.tx] {
                let s = (ring.base, ring.base + ring.byte_len());
                assert!(s.0 % 4096 == 0, "ring base not page aligned");
                for &(a, b) in &spans {
                    assert!(s.1 <= a || s.0 >= b, "rings overlap");
                }
                spans.push(s);
            }
            assert_eq!(p.rx_cursor_addr, 0x1000 + q as u64 * 0x2000);
        }
        assert_eq!(layout.span(), 4 * 2 * layout.ring_len());
    }

    #[test]
    fn call_outcome_reply_extraction() {
        assert_eq!(CallOutcome::Reply(vec![1]).reply(), Some(vec![1]));
        assert_eq!(CallOutcome::Busy.reply(), None);
        assert_eq!(CallOutcome::TimedOut.reply(), None);
    }
}
