//! Replication queue plumbing: the release gate and the delta channel.
//!
//! Checkpoint-shipping replication (the `treesls-repl` crate) streams each
//! round's delta from a primary kernel to replica machines and gates the
//! NIC's commit-time visibility barrier on quorum durability. Two pieces
//! live *here* because the NIC cannot depend on the replication crate:
//!
//! * [`ReleaseGate`] — the narrow interface the NIC consults at admission
//!   and at every commit barrier. The replication shipper implements it;
//!   a NIC without a gate behaves exactly as before (single-box external
//!   synchrony), which keeps `quorum = 1` as the compatibility oracle.
//! * [`ReplChannel`] — a queue pair (delta ring out, ack ring back) built
//!   from the extsync ring codec over plain host memory ([`HeapMem`]).
//!   The wire between primary and replica reuses the CRC-checked slot
//!   format (a torn or bit-flipped frame surfaces as
//!   [`RingError::Corrupt`], never as garbage data) and the deterministic
//!   [`FaultState`] drop/duplicate/reorder model, plus a partition switch
//!   for whole-link failures.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use treesls_extsync::ring::{self, hdr, MemIo, RingError, RingLayout};
use treesls_kernel::types::KernelError;

use crate::fault::{FaultState, NetFaultConfig, Perturbation};

/// The quorum gate the NIC consults (implemented by the replication
/// shipper's health state).
///
/// Without a gate the NIC releases responses as soon as the covering
/// checkpoint commits locally. With one, release is additionally bounded
/// by the highest *quorum-durable* round, and admission can shed write
/// traffic while the quorum is lost (degraded mode).
pub trait ReleaseGate: Send + Sync {
    /// The highest committed round whose responses may be released,
    /// given that round `committed` just committed locally. An
    /// implementation returns `min(committed, durable_round)` where
    /// `durable_round` is the newest round acknowledged by the quorum.
    fn release_bound(&self, committed: u64) -> u64;

    /// Whether to admit a new request carrying `payload`. Degraded mode
    /// sheds state-changing requests with `Busy` (their acks could never
    /// be released) while read traffic stays admitted — reads create no
    /// durability obligation; their responses simply wait for the quorum
    /// to return.
    fn admit(&self, _payload: &[u8]) -> bool {
        true
    }
}

/// Plain-host-memory [`MemIo`] backend for replication rings.
///
/// The replication wire is host infrastructure (like the NIC's DMA
/// engine), not SLS-persistent state: it needs the ring *codec* (slot
/// CRCs, header discipline) but no NVM semantics. The version tag stamped
/// into pushed slots is settable so delta frames carry the shipping
/// round.
#[derive(Debug)]
pub struct HeapMem {
    bytes: Mutex<Vec<u8>>,
    version: AtomicU64,
}

impl HeapMem {
    /// Allocates a zeroed arena of `len` bytes.
    pub fn new(len: usize) -> Self {
        Self { bytes: Mutex::new(vec![0; len]), version: AtomicU64::new(0) }
    }

    /// Sets the version tag stamped into subsequently pushed slots.
    pub fn set_version(&self, v: u64) {
        self.version.store(v, Ordering::SeqCst);
    }

    /// Flips one bit inside the arena (corruption injection for
    /// quarantine drills).
    pub fn corrupt_byte(&self, addr: u64) {
        let mut g = self.bytes.lock();
        let a = (addr as usize) % g.len();
        g[a] ^= 0x40;
    }
}

impl MemIo for HeapMem {
    fn mem_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
        let g = self.bytes.lock();
        let a = addr as usize;
        if a + buf.len() > g.len() {
            return Err(KernelError::UnmappedAddress(addr));
        }
        buf.copy_from_slice(&g[a..a + buf.len()]);
        Ok(())
    }

    fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), KernelError> {
        let mut g = self.bytes.lock();
        let a = addr as usize;
        if a + data.len() > g.len() {
            return Err(KernelError::UnmappedAddress(addr));
        }
        g[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }
}

/// Errors surfaced when shipping a frame into the delta ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipError {
    /// The replica has not drained enough slots; retry after backoff.
    Backpressure,
    /// The ring's header/slot state is self-inconsistent.
    Corrupt,
}

/// A dedicated queue pair between a primary and one replica: a delta ring
/// (primary → replica) and an ack ring (replica → primary), both over
/// [`HeapMem`] with the extsync slot codec.
///
/// The wire model mirrors the NIC's: seeded drop/duplicate/reorder via
/// [`FaultState`], plus a [`partition`](Self::set_partitioned) switch that
/// silently discards everything in both directions (the shipper's retry /
/// resync machinery is the recovery path, exactly as for a real link).
pub struct ReplChannel {
    delta_mem: HeapMem,
    ack_mem: HeapMem,
    delta: RingLayout,
    ack: RingLayout,
    delta_seq: AtomicU64,
    ack_seq: AtomicU64,
    fault: Option<FaultState>,
    /// Reorder window for delta frames (frames buffered on the wire).
    wire: Mutex<VecDeque<Vec<u8>>>,
    partitioned: AtomicBool,
    /// Drops counted against this channel (partition + fault model).
    pub dropped: AtomicU64,
}

impl ReplChannel {
    /// Creates a channel: `nslots` slots of `slot_size` bytes per ring
    /// (slot size includes the 24-byte slot header; size for the largest
    /// frame — a page frame carries a 4096-byte image plus its header).
    pub fn new(nslots: u64, slot_size: u64, fault: NetFaultConfig) -> Arc<Self> {
        let delta = RingLayout { base: 0, nslots, slot_size };
        let ack = RingLayout { base: 0, nslots: nslots.max(64), slot_size: 128 };
        let delta_mem = HeapMem::new(delta.byte_len() as usize);
        let ack_mem = HeapMem::new(ack.byte_len() as usize);
        ring::init(&delta_mem, &delta).expect("in-range");
        ring::init(&ack_mem, &ack).expect("in-range");
        Arc::new(Self {
            delta_mem,
            ack_mem,
            delta,
            ack,
            delta_seq: AtomicU64::new(1),
            ack_seq: AtomicU64::new(1),
            fault: fault.is_active().then(|| FaultState::new(fault)),
            wire: Mutex::new(VecDeque::new()),
            partitioned: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        })
    }

    /// Partitions or heals the link (both directions).
    pub fn set_partitioned(&self, on: bool) {
        self.partitioned.store(on, Ordering::SeqCst);
    }

    /// Whether the link is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(Ordering::SeqCst)
    }

    /// Flips a bit in the *next unread* delta slot (corruption drill: the
    /// replica's pop must surface `Corrupt`, quarantine, and resync).
    pub fn corrupt_next_delta(&self) {
        if let Ok(reader) = ring::header(&self.delta_mem, &self.delta, hdr::READER) {
            let slot = self.delta.base
                + hdr::SIZE
                + (reader % self.delta.nslots) * self.delta.slot_size;
            // Flip the first payload byte (just past the 24-byte slot
            // header) — always inside the CRC-covered region.
            self.delta_mem.corrupt_byte(slot + 24);
        }
    }

    /// Ships one delta frame toward the replica, `round` is stamped as
    /// the slot's version tag. Wire faults apply: a dropped frame simply
    /// never arrives (the replica detects the gap and resyncs).
    pub fn send_delta(&self, round: u64, frame: &[u8]) -> Result<(), ShipError> {
        if self.partitioned.load(Ordering::SeqCst) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        match self.fault.as_ref().map(|f| f.next()).unwrap_or(Perturbation::Deliver) {
            Perturbation::Drop => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Perturbation::Duplicate => {
                self.enqueue_delta(round, frame)?;
                let _ = self.enqueue_delta(round, frame);
                Ok(())
            }
            Perturbation::Deliver => self.enqueue_delta(round, frame),
        }
    }

    /// Hands a frame to the (possibly reordering) wire.
    fn enqueue_delta(&self, round: u64, frame: &[u8]) -> Result<(), ShipError> {
        let window = self.fault.as_ref().map(|f| f.cfg().reorder_window).unwrap_or(0);
        if window <= 1 {
            return self.push_delta(round, frame);
        }
        let release = {
            let mut wire = self.wire.lock();
            wire.push_back(frame.to_vec());
            if wire.len() >= window {
                let idx = self.fault.as_ref().map(|f| f.pick(wire.len())).unwrap_or(0);
                wire.remove(idx)
            } else {
                None
            }
        };
        match release {
            Some(f) => self.push_delta(round, &f),
            None => Ok(()),
        }
    }

    /// Drains the reorder window onto the ring.
    pub fn flush_wire(&self) {
        loop {
            let frame = {
                let mut wire = self.wire.lock();
                if wire.is_empty() {
                    return;
                }
                let idx = self.fault.as_ref().map(|f| f.pick(wire.len())).unwrap_or(0);
                wire.remove(idx)
            };
            if let Some(f) = frame {
                let round = self.delta_mem.version();
                if self.push_delta(round, &f).is_err() {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn push_delta(&self, round: u64, frame: &[u8]) -> Result<(), ShipError> {
        self.delta_mem.set_version(round);
        let seq = self.delta_seq.fetch_add(1, Ordering::SeqCst);
        match ring::push(&self.delta_mem, &self.delta, seq, frame) {
            Ok(_) => Ok(()),
            Err(RingError::Full) => Err(ShipError::Backpressure),
            Err(_) => Err(ShipError::Corrupt),
        }
    }

    /// Receives the next delta frame on the replica side. `Ok(None)` when
    /// the ring is drained. A corrupt slot is *consumed* (the reader
    /// advances past it) and surfaced as `Err(Corrupt)` so the replica
    /// can quarantine-and-resync instead of wedging on the bad slot.
    pub fn recv_delta(&self) -> Result<Option<(u64, Vec<u8>)>, RingError> {
        if self.partitioned.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match ring::pop_below(&self.delta_mem, &self.delta, hdr::WRITER) {
            Ok(None) => Ok(None),
            Ok(Some(msg)) => {
                self.release_consumed_delta();
                Ok(Some((msg.version, msg.payload)))
            }
            Err(e @ RingError::Corrupt(_)) => {
                // Skip the poisoned slot: reader += 1, then release it.
                let r = ring::header(&self.delta_mem, &self.delta, hdr::READER)?;
                ring::set_header(&self.delta_mem, &self.delta, hdr::READER, r + 1)?;
                self.release_consumed_delta();
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Releases consumed delta slots for reuse (ack = reader): the
    /// channel is a transport, not a durability boundary — retention is
    /// the shipper's backlog, not the ring.
    fn release_consumed_delta(&self) {
        if let Ok(r) = ring::header(&self.delta_mem, &self.delta, hdr::READER) {
            let _ = ring::set_header(&self.delta_mem, &self.delta, hdr::ACK, r);
        }
    }

    /// Sends an ack/control frame back toward the primary.
    pub fn send_ack(&self, frame: &[u8]) -> Result<(), ShipError> {
        if self.partitioned.load(Ordering::SeqCst) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let seq = self.ack_seq.fetch_add(1, Ordering::SeqCst);
        match ring::push(&self.ack_mem, &self.ack, seq, frame) {
            Ok(_) => Ok(()),
            Err(RingError::Full) => Err(ShipError::Backpressure),
            Err(_) => Err(ShipError::Corrupt),
        }
    }

    /// Receives the next ack/control frame on the primary side.
    pub fn recv_ack(&self) -> Result<Option<Vec<u8>>, RingError> {
        if self.partitioned.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match ring::pop_below(&self.ack_mem, &self.ack, hdr::WRITER) {
            Ok(None) => Ok(None),
            Ok(Some(msg)) => {
                if let Ok(r) = ring::header(&self.ack_mem, &self.ack, hdr::READER) {
                    let _ = ring::set_header(&self.ack_mem, &self.ack, hdr::ACK, r);
                }
                Ok(Some(msg.payload))
            }
            Err(e @ RingError::Corrupt(_)) => {
                // A corrupt ack is dropped; the next ack supersedes it.
                let r = ring::header(&self.ack_mem, &self.ack, hdr::READER)?;
                ring::set_header(&self.ack_mem, &self.ack, hdr::READER, r + 1)?;
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Largest frame payload the delta ring can carry.
    pub fn max_frame(&self) -> usize {
        self.delta.max_payload()
    }

    /// Delta frames currently queued and unread (for lag observability).
    pub fn delta_backlog(&self) -> u64 {
        let w = ring::header(&self.delta_mem, &self.delta, hdr::WRITER).unwrap_or(0);
        let r = ring::header(&self.delta_mem, &self.delta, hdr::READER).unwrap_or(0);
        w.saturating_sub(r)
    }
}

impl std::fmt::Debug for ReplChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplChannel")
            .field("backlog", &self.delta_backlog())
            .field("partitioned", &self.is_partitioned())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_roundtrip_carries_round_tag() {
        let ch = ReplChannel::new(8, 256, NetFaultConfig::default());
        ch.send_delta(7, b"hello").unwrap();
        ch.send_delta(7, b"world").unwrap();
        assert_eq!(ch.recv_delta().unwrap(), Some((7, b"hello".to_vec())));
        assert_eq!(ch.recv_delta().unwrap(), Some((7, b"world".to_vec())));
        assert_eq!(ch.recv_delta().unwrap(), None);
    }

    #[test]
    fn partition_discards_both_directions() {
        let ch = ReplChannel::new(8, 256, NetFaultConfig::default());
        ch.set_partitioned(true);
        ch.send_delta(1, b"x").unwrap();
        ch.send_ack(b"y").unwrap();
        ch.set_partitioned(false);
        assert_eq!(ch.recv_delta().unwrap(), None);
        assert_eq!(ch.recv_ack().unwrap(), None);
        assert_eq!(ch.dropped.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn corrupt_slot_is_consumed_and_reported() {
        let ch = ReplChannel::new(8, 256, NetFaultConfig::default());
        ch.send_delta(1, b"poisoned").unwrap();
        ch.send_delta(1, b"clean").unwrap();
        ch.corrupt_next_delta();
        assert!(matches!(ch.recv_delta(), Err(RingError::Corrupt(_))));
        // The reader moved past the bad slot; the clean frame survives.
        assert_eq!(ch.recv_delta().unwrap(), Some((1, b"clean".to_vec())));
    }

    #[test]
    fn backpressure_when_ring_full() {
        let ch = ReplChannel::new(2, 256, NetFaultConfig::default());
        ch.send_delta(1, b"a").unwrap();
        ch.send_delta(1, b"b").unwrap();
        assert_eq!(ch.send_delta(1, b"c"), Err(ShipError::Backpressure));
        assert!(ch.recv_delta().unwrap().is_some());
        ch.send_delta(1, b"c").unwrap();
    }

    #[test]
    fn acks_flow_back() {
        let ch = ReplChannel::new(8, 256, NetFaultConfig::default());
        ch.send_ack(&[1, 2, 3]).unwrap();
        assert_eq!(ch.recv_ack().unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(ch.recv_ack().unwrap(), None);
    }
}
