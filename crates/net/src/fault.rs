//! Deterministic network fault model for the virtual NIC.
//!
//! The "wire" between the external clients and the NIC's RX rings can
//! drop, duplicate or reorder packets. The model is seeded and counts
//! packets, so a given `(seed, send-order)` pair always perturbs the same
//! packets — composable with a [`treesls_nvm::CrashSchedule`]: one run can
//! pin *both* where power fails and which packets misbehave, and replay it
//! exactly.
//!
//! Recovery relies on the end-to-end contract, not a reliable wire: every
//! request carries a sequence number, clients retransmit on timeout, and
//! the host dedups responses by sequence — so drops surface as retries,
//! duplicates as idempotent re-processing, and reordering exercises the
//! server's cursor discipline.

use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of the wire between clients and the NIC.
///
/// The default (`1 in 0`, window 0) is a perfect wire; rates are expressed
/// as "one in N packets" with 0 meaning never.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultConfig {
    /// Seed for the deterministic perturbation stream.
    pub seed: u64,
    /// Drop one in this many packets (0 = never).
    pub drop_1_in: u64,
    /// Duplicate one in this many packets (0 = never).
    pub dup_1_in: u64,
    /// Reorder window: packets are buffered and released in a seeded
    /// permutation within a window of this many packets (0 = in-order).
    pub reorder_window: usize,
}

impl NetFaultConfig {
    /// Whether any perturbation is configured.
    pub fn is_active(&self) -> bool {
        self.drop_1_in != 0 || self.dup_1_in != 0 || self.reorder_window > 1
    }
}

/// What the wire decides to do with one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// Deliver normally.
    Deliver,
    /// Lose the packet (the client's retransmission recovers it).
    Drop,
    /// Deliver the packet twice (exercises host-side dedup).
    Duplicate,
}

/// Seeded per-NIC fault state: a packet counter drives a stateless mix, so
/// the decision for packet *n* depends only on `(seed, n)`.
#[derive(Debug)]
pub struct FaultState {
    cfg: NetFaultConfig,
    packet: AtomicU64,
}

impl FaultState {
    /// Creates the per-NIC fault state for `cfg` (packet counter at 0).
    pub fn new(cfg: NetFaultConfig) -> Self {
        Self { cfg, packet: AtomicU64::new(0) }
    }

    /// The configuration this state perturbs packets with.
    pub fn cfg(&self) -> &NetFaultConfig {
        &self.cfg
    }

    /// Decides the fate of the next packet. Drop wins over duplicate when
    /// both trigger (a dropped packet cannot also arrive twice).
    pub fn next(&self) -> Perturbation {
        let n = self.packet.fetch_add(1, Ordering::SeqCst);
        let h = crate::flow::flow_hash(self.cfg.seed ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d));
        if self.cfg.drop_1_in != 0 && h.is_multiple_of(self.cfg.drop_1_in) {
            return Perturbation::Drop;
        }
        if self.cfg.dup_1_in != 0 && (h >> 17).is_multiple_of(self.cfg.dup_1_in) {
            return Perturbation::Duplicate;
        }
        Perturbation::Deliver
    }

    /// Picks which of `len` buffered packets the wire releases next (the
    /// reordering permutation), again purely from `(seed, decision index)`.
    pub fn pick(&self, len: usize) -> usize {
        if len <= 1 {
            return 0;
        }
        let n = self.packet.fetch_add(1, Ordering::SeqCst);
        let h = crate::flow::flow_hash(self.cfg.seed ^ n.wrapping_mul(0x9e37_79b9));
        (h % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_wire_by_default() {
        let f = FaultState::new(NetFaultConfig::default());
        assert!(!f.cfg().is_active());
        for _ in 0..256 {
            assert_eq!(f.next(), Perturbation::Deliver);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let cfg = NetFaultConfig { seed: 42, drop_1_in: 5, dup_1_in: 7, reorder_window: 0 };
        let a = FaultState::new(cfg);
        let b = FaultState::new(cfg);
        for _ in 0..512 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let cfg = NetFaultConfig { seed: 7, drop_1_in: 4, dup_1_in: 0, reorder_window: 0 };
        let f = FaultState::new(cfg);
        let drops = (0..4096).filter(|_| f.next() == Perturbation::Drop).count();
        // 1-in-4 over 4096 packets: expect ~1024, allow wide slack.
        assert!((512..=1536).contains(&drops), "drops={drops}");
    }

    #[test]
    fn pick_stays_in_bounds_and_varies() {
        let cfg = NetFaultConfig { seed: 3, reorder_window: 4, ..Default::default() };
        let f = FaultState::new(cfg);
        let picks: Vec<usize> = (0..64).map(|_| f.pick(4)).collect();
        assert!(picks.iter().all(|&p| p < 4));
        assert!(picks.iter().any(|&p| p != 0), "window never reordered");
        assert_eq!(f.pick(1), 0);
    }
}
