//! The TreeSLS checkpoint manager: tree-structured whole-system state
//! checkpoint on NVM (§3–§4 of the paper) and the restore path (§4.2).
//!
//! [`CheckpointManager::checkpoint`] performs one whole-system checkpoint
//! following Figure 5:
//!
//! 1. ❶ the leader IPIs all cores into a quiescent state
//!    ([`treesls_kernel::cores::StwController`]);
//! 2. ❷ the leader copies the capability tree to the backup tree
//!    ([`tree::checkpoint_tree`]) and re-arms copy-on-write by marking
//!    newly-changed pages read-only ([`hybrid::mark_readonly`]);
//! 3. ❸ in parallel, the other cores run the hybrid-copy batch over the
//!    active page list ([`hybrid`]);
//! 4. ❹ the commit point: a single `u64` store bumping the global version
//!    ([`treesls_kernel::kernel::Persistent::commit_version`]);
//! 5. ❺ the leader resumes the world, then invokes the registered
//!    checkpoint callbacks (transparent external synchrony, §5).
//!
//! [`restore()`] rebuilds a whole runtime system from the backup tree after
//! a simulated power failure (step ❼).

pub mod hybrid;
pub mod restore;
pub mod stats;
pub mod tree;

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use treesls_kernel::cores::StwController;
use treesls_kernel::fault::KernelStatsSnapshot;
use treesls_kernel::object::ObjType;
use treesls_kernel::types::KernelError;
use treesls_kernel::Kernel;

pub use restore::{crash, restore, CrashImage, QuarantinedPage, RecoveryReport, RestoreReport};
pub use stats::{HybridRoundStats, MinMax, ObjectTimeTable, StwBreakdown};

/// Outcome of a [`CheckpointManager::scrub`] pass over the committed
/// checkpoint's integrity tags (§8 "Data Reliability": periodic scrubbing
/// detects silent media corruption *before* a recovery depends on it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Backup page images whose checksum was verified.
    pub pages_scanned: u64,
    /// Backup page entries carrying no checksum (runtime pages and images
    /// from checkpoints predating checksum tagging).
    pub pages_untagged: u64,
    /// `(frame, version)` of every image whose stored CRC no longer
    /// matches its contents.
    pub corrupt_pages: Vec<(treesls_nvm::FrameId, u64)>,
    /// Commit-record slots (0–2) that currently fail CRC validation. One
    /// invalid slot is expected right after a torn commit; two means the
    /// recovery anchor itself is gone.
    pub invalid_commit_slots: u32,
}

impl ScrubReport {
    /// `true` when every tagged image and the commit anchor verified.
    pub fn is_clean(&self) -> bool {
        self.corrupt_pages.is_empty() && self.invalid_commit_slots == 0
    }
}

/// Callback hooks for transparent external synchrony (§5).
///
/// User-space services (e.g. the network server) register one; the
/// checkpoint callback runs after every commit so the service can advance
/// its visible-writer pointers, and the restore callback runs at the end of
/// recovery so it can reconcile ring-buffer state with the external world.
pub trait CkptCallback: Send + Sync {
    /// Invoked after checkpoint `version` committed and the world resumed.
    fn on_checkpoint(&self, version: u64);
    /// Invoked at the end of a recovery that restored `version`.
    fn on_restore(&self, _version: u64) {}
    /// Invoked *inside* the stop-the-world pause, right after the stop set
    /// parked, for the round that will commit as `version`. Under partial
    /// quiescence cores outside the stop set keep producing state during
    /// the pause, so a service whose release barrier must match the
    /// checkpoint image (e.g. the NIC's TX visibility barrier) snapshots
    /// its cut-off here — against the epoch, not the later global resume.
    /// Must be fast and must not take checkpoint-ordered locks.
    fn on_epoch(&self, _version: u64) {}
}

/// The write set of one committed checkpoint round, captured for
/// checkpoint-shipping replication before the post-commit sweep destroys
/// the evidence (tombstoned ORoots leave the store inside the pause).
///
/// The dirty-queue drain *is* the delta: `rewritten` lists every ORoot
/// whose backup record the round (re)wrote, `tombstoned` every ORoot the
/// round deleted. A replica holding round `round − 1` plus this delta
/// holds round `round`.
#[derive(Debug, Clone, Default)]
pub struct RoundDelta {
    /// The committed version this delta produces.
    pub round: u64,
    /// ORoots whose backup record was (re)written this round.
    pub rewritten: Vec<treesls_kernel::types::OrootId>,
    /// ORoots tombstoned (deleted) this round.
    pub tombstoned: Vec<treesls_kernel::types::OrootId>,
    /// Whether the round ran a full reachability walk (a healing round
    /// rewrites every reachable record, so the delta is the whole tree).
    pub full_walk: bool,
}

/// The in-kernel checkpoint manager.
pub struct CheckpointManager {
    kernel: Arc<Kernel>,
    stw: Arc<StwController>,
    /// Table 3 aggregates.
    pub table: Mutex<ObjectTimeTable>,
    /// Figure 9a/9b breakdowns, most recent last; once 65536 records
    /// accumulate the oldest is evicted, so long runs keep the
    /// steady-state tail rather than the warm-up prefix.
    pub breakdowns: Mutex<VecDeque<StwBreakdown>>,
    /// Table 4 per-round hybrid stats, most recent last (bounded like
    /// `breakdowns`).
    pub hybrid_rounds: Mutex<VecDeque<HybridRoundStats>>,
    last_faults: Mutex<KernelStatsSnapshot>,
    callbacks: Mutex<Vec<Arc<dyn CkptCallback>>>,
    round_delta: Mutex<Option<RoundDelta>>,
}

/// Retain at most this many per-round records.
const HISTORY_CAP: usize = 65536;

/// Appends `v` to a history buffer bounded at `cap`, evicting the oldest
/// record once full (the buffer always holds the most recent `cap`
/// entries, never a frozen prefix).
fn push_capped<T>(buf: &mut VecDeque<T>, cap: usize, v: T) {
    if buf.len() >= cap {
        buf.pop_front();
    }
    buf.push_back(v);
}

impl CheckpointManager {
    /// Creates a manager for `kernel` using `stw` for quiescence.
    pub fn new(kernel: Arc<Kernel>, stw: Arc<StwController>) -> Arc<Self> {
        Arc::new(Self {
            kernel,
            stw,
            table: Mutex::new(ObjectTimeTable::default()),
            breakdowns: Mutex::new(VecDeque::new()),
            hybrid_rounds: Mutex::new(VecDeque::new()),
            last_faults: Mutex::new(KernelStatsSnapshot::default()),
            callbacks: Mutex::new(Vec::new()),
            round_delta: Mutex::new(None),
        })
    }

    /// The kernel this manager checkpoints.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The stop-the-world controller.
    pub fn stw(&self) -> &Arc<StwController> {
        &self.stw
    }

    /// Registers an external-synchrony callback.
    pub fn register_callback(&self, cb: Arc<dyn CkptCallback>) {
        self.callbacks.lock().push(cb);
    }

    /// Registers a callback at the *front* of the invocation order.
    ///
    /// Callbacks run in registration order; a replication shipper must run
    /// before the NIC's visibility barrier so the barrier observes the
    /// round's quorum-durable bound, even when the NIC was registered
    /// first (e.g. by a deployment helper).
    pub fn register_callback_front(&self, cb: Arc<dyn CkptCallback>) {
        self.callbacks.lock().insert(0, cb);
    }

    /// Takes the write set of the most recent committed round (set just
    /// before the checkpoint callbacks fire; `None` once consumed or if no
    /// round committed since). Consumed by the replication shipper.
    pub fn take_round_delta(&self) -> Option<RoundDelta> {
        self.round_delta.lock().take()
    }

    /// Invokes all restore callbacks (called by the `System` facade at the
    /// end of recovery).
    pub fn fire_restore_callbacks(&self, version: u64) {
        for cb in self.callbacks.lock().iter() {
            cb.on_restore(version);
        }
    }

    /// Takes one whole-system checkpoint (Figure 5 ❶–❺).
    ///
    /// Three quiescence modes, strongest to weakest pause:
    ///
    /// * **full quiesce** (`force_full_quiesce`): every core parks for the
    ///   whole copy phase (the paper's baseline);
    /// * **partial quiescence** (`epoch_concurrent = false`): only
    ///   dirty-owning cores park; the rest run behind the epoch fence;
    /// * **epoch-concurrent** (the default): the stop window shrinks to an
    ///   *epoch flip* — bump the round, cut the dirty queue (one pointer
    ///   swap), snapshot per-service TX writers via `on_epoch`, arm the
    ///   fence, resume — and the tree walk, record builds, and page copies
    ///   all run concurrently with mutators. Every first conflicting write
    ///   of the round preserves its page's flip image in-line
    ///   (whole-page capture or a ≤-cache-line undo-log record, see
    ///   `fault.rs`), so no core ever parks for the copy phase and the
    ///   pause is O(write-set marking), independent of heap size.
    ///
    /// On error the world is resumed without committing; the previous
    /// checkpoint remains the recovery point.
    pub fn checkpoint(&self) -> Result<StwBreakdown, KernelError> {
        let kernel = &self.kernel;
        let global = kernel.pers.global_version();
        let inflight = global + 1;

        // A previous round that aborted in-process (or a deliberately
        // interrupted test round) may have left epoch captures and in-line
        // logs tagged with this very in-flight version; fold them down to
        // the committed image *before* the new window captures anything,
        // or the post-commit eager fold would anchor stale content under a
        // now-valid tag. Near-free when the list is empty.
        kernel.fold_epoch_captures_aborted();

        let counters = Arc::new(hybrid::RoundCounters::default());
        let work = hybrid::build_work(kernel, inflight, Arc::clone(&counters));

        let sched = kernel.pers.dev.crash_schedule();
        kernel.pers.recorder().record(
            treesls_obs::EventKind::CkptBegin,
            [inflight, kernel.tracker.active_len() as u64, 0, 0, 0, 0],
        );
        let t_pause = Instant::now();
        let partial = !kernel.config.force_full_quiesce;
        let epoch_mode = partial && kernel.config.epoch_concurrent;
        // ❶ Quiesce the round's stop set — under partial quiescence only
        // the cores whose dirty pushes appear in the owner mask; the rest
        // run through the copy phase behind the fence. The cores that do
        // park start pulling hybrid-copy items (❸) and keep polling the
        // batch's aux queue for offloaded tree work. In epoch-concurrent
        // mode the batch is *not* handed to the stop set: parked cores
        // resume at the flip and the leader runs the batch itself,
        // concurrently with them.
        let ipi = self.stw.stop_world((!epoch_mode).then(|| Arc::clone(&work)), kernel);
        // Arm the epoch fence (partial mode only) *after* the stop set has
        // parked: from here until the commit record lands, writes from
        // cores outside the stop set are routed into in-line captures
        // (undo records or whole-page CoW) instead of mutating the
        // round's image (see `fault.rs`). Arming before the gate would
        // let a stopping core mid-step capture state the parked protocol
        // attributes to the pre-pause world. Free-core writes in the
        // window between the gate and this arm are safe: the round's
        // image is only cut by `mark_readonly`/the copy phase below, so
        // they order as pre-pause writes.
        //
        // Epoch-concurrent mode parks nobody, so step atomicity against
        // the flip comes from the unsealed-fence protocol instead: arm
        // unsealed, wait the step grace period out (every step in flight
        // at the arm finishes with write-through semantics — cores keep
        // running), then mark and cut while post-arm steps hold their
        // first write at the seal. Every program step thus lands entirely
        // before or entirely after the round's image.
        if epoch_mode {
            kernel.fence.arm_unsealed(inflight);
            kernel.steps.wait_step_grace();
        } else if partial {
            kernel.fence.arm(inflight);
        }
        treesls_nvm::crash_site!(sched, "ckpt.stw_stopped");
        treesls_nvm::crash_site!(sched, "stw.partial_gate");
        kernel.pers.recorder().record(
            treesls_obs::EventKind::PartialQuiesce,
            [
                inflight,
                self.stw.stopped_cores() as u64,
                self.stw.cores() as u64,
                self.stw.stop_mask(),
                u64::from(!partial),
                kernel.stats.epoch_conflicts.load(Ordering::Relaxed),
            ],
        );
        // Epoch cut-off for external-synchrony services: their release
        // barrier must match the checkpoint image, which under partial
        // quiescence is defined by this instant, not by the global resume.
        treesls_nvm::crash_site!(sched, "stw.epoch_fence");
        for cb in self.callbacks.lock().iter() {
            cb.on_epoch(inflight);
        }

        // ❷ Leader: mark newly-changed pages read-only (attributed to VM
        // Space checkpointing per the paper), then copy the capability
        // tree.
        let t_mark = Instant::now();
        hybrid::mark_readonly(kernel);
        let mark = t_mark.elapsed();
        treesls_nvm::crash_site!(sched, "ckpt.marked_ro");

        // Epoch flip (epoch-concurrent mode): cut the dirty queue with one
        // pointer swap — the frozen logical snapshot this round drains —
        // and resume the world. Everything after this point runs
        // concurrently with mutators; post-flip writes land in the live
        // queue for the next round and self-capture their flip images on
        // first conflict.
        let mut flip_pause = None;
        let cut = if epoch_mode {
            let queue_depth = kernel.dirty_queue.depth();
            let stop_mask = self.stw.stop_mask();
            let cut = kernel.dirty_queue.take_cut();
            treesls_nvm::crash_site!(sched, "stw.epoch_flip");
            // Seal after the cut: writes released from the seal push
            // their dirty entries into the fresh live queue, never into
            // the cut the drain below is walking.
            kernel.fence.seal();
            // Measure the flip *before* releasing the world: once
            // `resume_world` lands, freshly woken mutators may claim the
            // CPU ahead of this thread, and that scheduler handoff is
            // mutator runtime, not pause.
            let p = t_pause.elapsed();
            self.stw.resume_world();
            flip_pause = Some(p);
            kernel.metrics.record_epoch_flip();
            kernel.pers.recorder().record(
                treesls_obs::EventKind::EpochFlip,
                [
                    inflight,
                    kernel.fence.round(),
                    queue_depth,
                    stop_mask,
                    p.as_nanos() as u64,
                    0,
                ],
            );
            treesls_nvm::crash_site!(sched, "ckpt.concurrent_drain");
            Some(cut)
        } else {
            None
        };

        let t_conc = Instant::now();
        let t_tree = Instant::now();
        let tree_result = tree::checkpoint_tree(kernel, inflight, Some(&work), cut);
        let cap_tree = t_tree.elapsed();
        treesls_nvm::crash_site!(sched, "ckpt.tree_copied");

        // ❸ Join and drain the hybrid-copy batch. In epoch mode no core is
        // parked to share it: the leader runs the whole batch here, still
        // concurrently with mutators (first-write captures in `fault.rs`
        // have already preserved any page a mutator touched first).
        let t_hyb = Instant::now();
        if epoch_mode {
            work.run_available();
            while !work.is_done() {
                std::thread::yield_now();
            }
        } else {
            self.stw.finish_hybrid_work();
        }
        let hybrid_wait = t_hyb.elapsed();
        treesls_nvm::crash_site!(sched, "ckpt.hybrid_drained");
        counters.busy_ns.store(work.busy_ns(), Ordering::Relaxed);

        let mut outcome = match tree_result {
            Ok(o) => o,
            Err(e) => {
                // Abort: resume without committing — but still give the
                // taken active list back to the tracker. The fence drops
                // with the round; its in-flight captures are ignored by
                // restore (tags never became valid). In epoch mode the
                // world already resumed at the flip, and leftover
                // captures/logs are folded down so a committing re-run of
                // the same version cannot mistake them for its own.
                kernel.fence.disarm();
                if epoch_mode {
                    kernel.fold_epoch_captures_aborted();
                } else {
                    self.stw.resume_world();
                }
                hybrid::compact_active_list(kernel, Some(&work));
                return Err(e);
            }
        };

        // ❹ Commit point.
        let t_others = Instant::now();
        treesls_nvm::crash_site!(sched, "ckpt.pre_commit");
        kernel.pers.commit_version(inflight);
        // The round's image is committed: free-core writes now fall back
        // to ordinary CoW (which tags against the new global version), so
        // the fence has nothing left to protect.
        kernel.fence.disarm();
        treesls_nvm::crash_site!(sched, "ckpt.post_commit");
        // Eager fold: whole-page captures tagged with the just-committed
        // version become their pages' `pairs[0]` backups and the pages
        // turn writable again (in-line-logged pages fold lazily — the log
        // *is* their durable image).
        kernel.fold_epoch_captures(inflight);
        let _ = tree::sweep_deleted(kernel, inflight);
        let cached = hybrid::compact_active_list(kernel, Some(&work));
        let others = t_others.elapsed();
        treesls_nvm::crash_site!(sched, "ckpt.post_sweep");

        // ❺ Resume (epoch mode resumed at the flip; its pause is the flip
        // alone, and the copy phase's wall time is exported as a gauge).
        let total_pause = match flip_pause {
            Some(p) => {
                kernel.metrics.set_concurrent_copy_ns(t_conc.elapsed().as_nanos() as u64);
                p
            }
            None => {
                self.stw.resume_world();
                t_pause.elapsed()
            }
        };

        // Telemetry (outside the pause): one flight-recorder slot with the
        // per-phase durations, plus the registry's counters and pause
        // histogram.
        kernel.pers.recorder().record(
            treesls_obs::EventKind::CkptCommit,
            [
                inflight,
                ipi.as_nanos() as u64,
                (cap_tree + mark).as_nanos() as u64,
                others.as_nanos() as u64,
                counters.busy_ns.load(Ordering::Relaxed),
                total_pause.as_nanos() as u64,
            ],
        );
        kernel.metrics.record_checkpoint(total_pause.as_nanos() as u64);
        kernel.metrics.record_hybrid(
            counters.migrated_in.load(Ordering::Relaxed),
            counters.sac_copies.load(Ordering::Relaxed),
            counters.evicted.load(Ordering::Relaxed),
        );
        kernel.metrics.record_tree_walk(
            outcome.full_walk,
            outcome.dirty_drained as u64,
            outcome.copied as u64,
            outcome.offloaded as u64,
            outcome.tombstoned as u64,
        );
        kernel.metrics.set_ckpt_gauges(
            kernel.dirty_queue.depth(),
            kernel.pers.oroots.contention() + kernel.pers.backups.contention(),
        );
        kernel.metrics.set_quiesced_cores(self.stw.stopped_cores() as u64);
        kernel.pers.recorder().record(
            treesls_obs::EventKind::TreeWalk,
            [
                inflight,
                u64::from(outcome.full_walk),
                outcome.dirty_drained as u64,
                outcome.copied as u64,
                outcome.offloaded as u64,
                outcome.tombstoned as u64,
            ],
        );

        // Stash the round's write set for the replication shipper before
        // the callbacks run (the shipper is itself a callback). A delta
        // nobody consumed is superseded: replicas that missed it will
        // detect the round gap and resync.
        *self.round_delta.lock() = Some(RoundDelta {
            round: inflight,
            rewritten: std::mem::take(&mut outcome.rewritten),
            tombstoned: std::mem::take(&mut outcome.tombstoned_ids),
            full_walk: outcome.full_walk,
        });

        // External synchrony callbacks (outside the pause).
        treesls_nvm::crash_site!(sched, "ckpt.pre_callbacks");
        for cb in self.callbacks.lock().iter() {
            cb.on_checkpoint(inflight);
        }
        treesls_nvm::crash_site!(sched, "ckpt.post_callbacks");

        // Bookkeeping.
        let mut per_type = outcome.per_type.clone();
        *per_type.entry(ObjType::VmSpace).or_default() += mark;
        let breakdown = StwBreakdown {
            version: inflight,
            ipi,
            cap_tree: cap_tree + mark,
            per_type,
            others,
            hybrid_wait,
            hybrid_busy: std::time::Duration::from_nanos(
                counters.busy_ns.load(Ordering::Relaxed),
            ),
            total_pause,
            objects_copied: outcome.copied,
            objects_skipped: outcome.skipped,
        };
        {
            let mut table = self.table.lock();
            for (otype, full, d) in &outcome.samples {
                table.add_ckpt(*otype, *full, *d);
            }
        }
        {
            let faults_now = kernel.stats.snapshot();
            let mut last = self.last_faults.lock();
            let delta = faults_now.since(&last);
            *last = faults_now;
            let round = HybridRoundStats {
                runtime_faults: delta.write_faults,
                dirty_cached: counters.sac_copies.load(Ordering::Relaxed),
                cached: cached as u64,
                migrated_in: counters.migrated_in.load(Ordering::Relaxed),
                evicted: counters.evicted.load(Ordering::Relaxed),
            };
            push_capped(&mut self.hybrid_rounds.lock(), HISTORY_CAP, round);
        }
        push_capped(&mut self.breakdowns.lock(), HISTORY_CAP, breakdown.clone());
        Ok(breakdown)
    }

    /// Performs every step of a checkpoint *except* the commit (step ❹),
    /// simulating a power failure in the instant before the global version
    /// bump: the backup tree carries in-flight version tags that never
    /// became valid.
    ///
    /// Testing hook for the §4.2 correctness argument — a subsequent
    /// crash-and-restore must reproduce the **previous** committed version
    /// exactly, ignoring all in-flight tags. Not used by production paths.
    pub fn checkpoint_interrupted_before_commit(&self) -> Result<(), KernelError> {
        let kernel = &self.kernel;
        let partial = !kernel.config.force_full_quiesce;
        let epoch_mode = partial && kernel.config.epoch_concurrent;
        let inflight = kernel.pers.global_version() + 1;
        let counters = Arc::new(hybrid::RoundCounters::default());
        let work = hybrid::build_work(kernel, inflight, Arc::clone(&counters));
        self.stw.stop_world((!epoch_mode).then(|| Arc::clone(&work)), kernel);
        // Same ordering as `checkpoint`: unsealed arm + step grace for the
        // no-park flip (so interrupted rounds exercise the same protocol
        // the production path runs), sealed arm once the stop set has
        // parked otherwise — a stopping core could wedge in the fence's
        // wait loop and never reach the gate.
        if epoch_mode {
            kernel.fence.arm_unsealed(inflight);
            kernel.steps.wait_step_grace();
        } else if partial {
            kernel.fence.arm(inflight);
        }
        hybrid::mark_readonly(kernel);
        let cut = if epoch_mode {
            let c = kernel.dirty_queue.take_cut();
            kernel.fence.seal();
            self.stw.resume_world();
            Some(c)
        } else {
            None
        };
        let tree_result = tree::checkpoint_tree(kernel, inflight, Some(&work), cut);
        if epoch_mode {
            work.run_available();
            while !work.is_done() {
                std::thread::yield_now();
            }
        } else {
            self.stw.finish_hybrid_work();
        }
        // Power failure here: no commit, no sweep, no callbacks — but the
        // machine keeps running until the simulated crash, so the taken
        // active list must go back to the tracker. Epoch captures and
        // in-line logs are deliberately *left in place* carrying their
        // never-valid in-flight tags: restore must ignore them, and a
        // subsequent `checkpoint` folds them down before re-arming.
        kernel.fence.disarm();
        hybrid::compact_active_list(kernel, Some(&work));
        if !epoch_mode {
            self.stw.resume_world();
        }
        tree_result.map(|_| ())
    }

    /// Verifies the integrity of the committed checkpoint (§8 "Data
    /// Reliability"): every object reachable from the backup root must
    /// have a restorable backup slot, every live page entry must resolve
    /// to a valid in-range frame under the committed version, and the
    /// allocator metadata must satisfy its invariants. Returns the number
    /// of objects checked.
    ///
    /// Intended to run between checkpoints (it takes the backup locks); a
    /// production system would run it against a quiesced or shadow copy.
    pub fn verify_checkpoint(&self) -> Result<usize, String> {
        use treesls_kernel::oroot::BackupObject;
        let global = self.kernel.pers.global_version();
        let Some(root) = self.kernel.pers.root_oroot() else {
            return Err("no committed checkpoint".into());
        };
        self.kernel.pers.alloc.verify()?;
        let oroots = &self.kernel.pers.oroots;
        let backups = &self.kernel.pers.backups;
        let frame_count = self.kernel.pers.dev.frame_count() as u32;
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        let mut checked = 0usize;
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let Some((live, pick, otype)) =
                oroots.with(id, |r| (r.live_at(global), r.restore_pick(global).map(|k| r.backups[k]), r.otype))
            else {
                return Err(format!("dangling ORoot {id:?}"));
            };
            if !live {
                continue;
            }
            let vb = pick
                .flatten()
                .ok_or_else(|| format!("ORoot {id:?}: no restorable backup at v{global}"))?;
            checked += 1;
            // Page-level checks + graph edges, under the record's shard lock.
            let verdict: Option<Result<Vec<treesls_kernel::types::OrootId>, String>> =
                backups.with(vb.slot, |record| {
                    if record.otype() != otype {
                        return Err(format!("ORoot {id:?}: record type mismatch"));
                    }
                    let mut edges = Vec::new();
                    match record {
                        BackupObject::Pmo { pages, npages, .. } => {
                            let mut err = None;
                            pages.for_each(|idx, e| {
                                if err.is_some() || !e.live_at(global) {
                                    return;
                                }
                                if idx >= *npages {
                                    err = Some(format!("page index {idx} beyond PMO capacity"));
                                    return;
                                }
                                let meta = e.slot.meta.lock();
                                match meta.restore_pick(global) {
                                    None => err = Some(format!("page {idx}: unrecoverable")),
                                    Some(p) => {
                                        let frame =
                                            meta.pairs[p].expect("picked entry exists").frame;
                                        if frame.0 >= frame_count {
                                            err = Some(format!(
                                                "page {idx}: frame {} out of range",
                                                frame.0
                                            ));
                                        }
                                    }
                                }
                            });
                            if let Some(e) = err {
                                return Err(e);
                            }
                        }
                        BackupObject::CapGroup { caps, .. } => {
                            edges.extend(caps.iter().flatten().map(|c| c.oroot));
                        }
                        BackupObject::Thread { cap_group, vmspace, .. } => {
                            edges.push(*cap_group);
                            edges.push(*vmspace);
                        }
                        BackupObject::VmSpace { regions } => {
                            edges.extend(regions.iter().map(|r| r.pmo));
                        }
                        BackupObject::IpcConnection { recv_waiter, queue, replies } => {
                            edges.extend(queue.iter().map(|(t, _)| *t));
                            edges.extend(replies.iter().map(|(t, _)| *t));
                            edges.extend(*recv_waiter);
                        }
                        BackupObject::Notification { waiters, .. }
                        | BackupObject::IrqNotification { waiters, .. } => {
                            edges.extend(waiters.iter().copied());
                        }
                    }
                    Ok(edges)
                });
            match verdict {
                None => return Err(format!("ORoot {id:?}: backup record missing")),
                Some(Err(e)) => return Err(e),
                Some(Ok(edges)) => stack.extend(edges),
            }
        }
        Ok(checked)
    }

    /// Total bytes of checkpoint state currently on NVM (Table 2 "Ckpt"):
    /// backup records plus page frames that hold *backup* images (runtime
    /// pages with version 0 are counted as application memory, not
    /// checkpoint — the paper's point that NVM lets the checkpoint reuse
    /// runtime pages).
    pub fn ckpt_size_bytes(&self) -> u64 {
        use treesls_kernel::oroot::BackupObject;
        let mut bytes = 0u64;
        self.kernel.pers.backups.for_each(|_, record| {
            bytes += record.approx_size() as u64;
            if let BackupObject::Pmo { pages, .. } = record {
                pages.for_each(|_, e| {
                    let meta = e.slot.meta.lock();
                    for p in meta.pairs.iter().flatten() {
                        if p.version != 0 {
                            bytes += treesls_nvm::PAGE_SIZE as u64;
                        }
                    }
                    // Epoch-window capture and in-line-log frames are
                    // checkpoint state too (they hold or reconstruct a
                    // round image).
                    if meta.epoch_capture.is_some() {
                        bytes += treesls_nvm::PAGE_SIZE as u64;
                    }
                    if meta.inline_log.is_some() {
                        bytes += treesls_nvm::PAGE_SIZE as u64;
                    }
                });
            }
        });
        bytes
    }

    /// Scrubs the committed checkpoint's integrity tags (§8): recomputes
    /// the checksum of every committed backup page image and re-validates
    /// the commit-record slots, reporting (not repairing) every mismatch.
    ///
    /// Only *committed* images are checked (`0 < version ≤ global`):
    /// in-flight tags belong to a checkpoint that does not exist yet, and
    /// version-0 entries are runtime pages the application may be writing.
    pub fn scrub(&self) -> ScrubReport {
        use treesls_kernel::oroot::BackupObject;
        let global = self.kernel.pers.global_version();
        let dev = &self.kernel.pers.dev;
        let mut report = ScrubReport {
            invalid_commit_slots: self.kernel.pers.scrub_commit_records(),
            ..ScrubReport::default()
        };
        self.kernel.pers.backups.for_each(|_, record| {
            let BackupObject::Pmo { pages, .. } = record else { return };
            pages.for_each(|_, e| {
                let meta = e.slot.meta.lock();
                for p in meta.pairs.iter().flatten() {
                    if p.version == 0 || p.version > global {
                        continue;
                    }
                    match p.crc {
                        None => report.pages_untagged += 1,
                        Some(crc) => {
                            report.pages_scanned += 1;
                            if dev.page_crc(p.frame) != crc {
                                report.corrupt_pages.push((p.frame, p.version));
                            }
                        }
                    }
                }
            });
        });
        report
    }
}

impl std::fmt::Debug for CheckpointManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointManager")
            .field("version", &self.kernel.pers.global_version())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_evicts_oldest_not_newest() {
        let mut buf: VecDeque<u64> = VecDeque::new();
        for i in 0..10 {
            push_capped(&mut buf, 4, i);
        }
        // The last `cap` records survive; the warm-up prefix is evicted.
        assert_eq!(buf.iter().copied().collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn history_below_cap_keeps_everything() {
        let mut buf: VecDeque<u64> = VecDeque::new();
        for i in 0..3 {
            push_capped(&mut buf, 4, i);
        }
        assert_eq!(buf.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
