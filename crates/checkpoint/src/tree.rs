//! Checkpointing the capability tree (§4.1).
//!
//! The leader core walks the runtime capability tree from the root cap
//! group, creating or updating the backup record of every reachable object.
//! ORoots deduplicate shared objects ("an object can be referred by
//! multiple cap groups"); the per-round tag makes the walk linear. Objects
//! whose dirty flag is clear are skipped ("TreeSLS may also leverage the
//! runtime state of the capability tree for efficient incremental
//! checkpointing, i.e., by skipping state intact since the last
//! checkpoint").
//!
//! Object-kind strategies follow §4.1 exactly:
//! * small, frequently updated objects (threads, notifications, IPC
//!   connections, cap groups) are copied during the pause;
//! * VM spaces copy their region list and *not* their page table, plus the
//!   read-only marking of newly-changed pages (attributed to VM Space in
//!   Figure 9b);
//! * PMOs sync their backup radix tree structurally and leave page data to
//!   copy-on-write / hybrid copy.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use treesls_kernel::object::{KObject, ObjType, ObjectBody};
use treesls_kernel::oroot::{
    BackupObject, BkCap, BkPageEntry, BkRegion, BkThreadState, ORoot, VersionedBackup,
};
use treesls_kernel::radix::Radix;
use treesls_kernel::thread::{BlockedOn, ThreadState};
use treesls_kernel::types::{KernelError, ObjId, OrootId};
use treesls_kernel::Kernel;
use treesls_nvm::ObjectStore;

/// Result of one capability-tree checkpoint.
#[derive(Debug, Default)]
pub struct TreeOutcome {
    /// Leader time per object type (Figure 9b).
    pub per_type: HashMap<ObjType, Duration>,
    /// `(type, was_full, duration)` per processed object (Table 3).
    pub samples: Vec<(ObjType, bool, Duration)>,
    /// Objects copied (dirty or first-time).
    pub copied: usize,
    /// Objects skipped by incremental checkpointing.
    pub skipped: usize,
}

/// Ensures `obj` has an ORoot, creating one on first contact (§4.1: "if
/// the corresponding ORoot is absent ... TreeSLS will initialize the ORoot
/// for it").
pub fn ensure_oroot(oroots: &mut ObjectStore<ORoot>, obj: &Arc<KObject>) -> OrootId {
    if let Some(id) = obj.oroot() {
        if let Some(r) = oroots.get_mut(id) {
            r.runtime = Some(obj.id());
            return id;
        }
    }
    let id = oroots.insert(ORoot::new(obj.otype, obj.id()));
    obj.set_oroot(id);
    id
}

/// Collects the runtime object ids referenced by `obj` (capability table
/// entries plus object-internal references), defining tree reachability.
fn children(obj: &Arc<KObject>) -> Vec<ObjId> {
    let body = obj.body.read();
    match &*body {
        ObjectBody::CapGroup(g) => g.iter().map(|(_, c)| c.obj).collect(),
        ObjectBody::Thread(t) => {
            let mut v = vec![t.cap_group, t.vmspace];
            if let ThreadState::Blocked(b) = t.state {
                v.push(b.object());
            }
            v
        }
        ObjectBody::VmSpace(vs) => vs.regions.iter().map(|r| r.pmo).collect(),
        ObjectBody::Pmo(_) => Vec::new(),
        ObjectBody::IpcConnection(c) => {
            let mut v: Vec<ObjId> = c.queue.iter().map(|m| m.from).collect();
            v.extend(c.replies.iter().map(|(t, _)| *t));
            v.extend(c.recv_waiter);
            v
        }
        ObjectBody::Notification(n) => n.waiters.iter().copied().collect(),
        ObjectBody::IrqNotification(irq) => irq.inner.waiters.iter().copied().collect(),
    }
}

/// Maps a runtime object reference to its ORoot, creating one if needed.
fn oroot_of(
    kernel: &Kernel,
    oroots: &mut ObjectStore<ORoot>,
    id: ObjId,
) -> Result<OrootId, KernelError> {
    let obj = kernel.object(id)?;
    Ok(ensure_oroot(oroots, &obj))
}

/// Builds the backup record for a non-PMO object.
fn build_record(
    kernel: &Kernel,
    oroots: &mut ObjectStore<ORoot>,
    obj: &Arc<KObject>,
) -> Result<BackupObject, KernelError> {
    let body = obj.body.read();
    Ok(match &*body {
        ObjectBody::CapGroup(g) => BackupObject::CapGroup {
            name: g.name.clone(),
            caps: g
                .caps
                .iter()
                .map(|c| {
                    c.map(|c| {
                        Ok::<BkCap, KernelError>(BkCap {
                            oroot: oroot_of(kernel, oroots, c.obj)?,
                            rights: c.rights,
                        })
                    })
                    .transpose()
                })
                .collect::<Result<_, _>>()?,
        },
        ObjectBody::Thread(t) => BackupObject::Thread {
            ctx: t.ctx,
            state: match t.state {
                ThreadState::Runnable => BkThreadState::Runnable,
                ThreadState::Exited => BkThreadState::Exited,
                ThreadState::Blocked(BlockedOn::Notification(o)) => {
                    BkThreadState::BlockedNotification(oroot_of(kernel, oroots, o)?)
                }
                ThreadState::Blocked(BlockedOn::IpcRecv(o)) => {
                    BkThreadState::BlockedIpcRecv(oroot_of(kernel, oroots, o)?)
                }
                ThreadState::Blocked(BlockedOn::IpcReply(o)) => {
                    BkThreadState::BlockedIpcReply(oroot_of(kernel, oroots, o)?)
                }
            },
            program: t.program.clone(),
            cap_group: oroot_of(kernel, oroots, t.cap_group)?,
            vmspace: oroot_of(kernel, oroots, t.vmspace)?,
        },
        ObjectBody::VmSpace(vs) => BackupObject::VmSpace {
            regions: vs
                .regions
                .iter()
                .map(|r| {
                    Ok::<BkRegion, KernelError>(BkRegion {
                        base: r.base.0,
                        npages: r.npages,
                        pmo: oroot_of(kernel, oroots, r.pmo)?,
                        pmo_off: r.pmo_off,
                        perm: r.perm,
                    })
                })
                .collect::<Result<_, _>>()?,
        },
        ObjectBody::IpcConnection(c) => BackupObject::IpcConnection {
            recv_waiter: c
                .recv_waiter
                .map(|t| oroot_of(kernel, oroots, t))
                .transpose()?,
            queue: c
                .queue
                .iter()
                .map(|m| Ok::<_, KernelError>((oroot_of(kernel, oroots, m.from)?, m.data.clone())))
                .collect::<Result<_, _>>()?,
            replies: c
                .replies
                .iter()
                .map(|(t, d)| Ok::<_, KernelError>((oroot_of(kernel, oroots, *t)?, d.clone())))
                .collect::<Result<_, _>>()?,
        },
        ObjectBody::Notification(n) => BackupObject::Notification {
            count: n.count,
            waiters: n
                .waiters
                .iter()
                .map(|t| oroot_of(kernel, oroots, *t))
                .collect::<Result<_, _>>()?,
        },
        ObjectBody::IrqNotification(irq) => BackupObject::IrqNotification {
            line: irq.line,
            count: irq.inner.count,
            waiters: irq
                .inner
                .waiters
                .iter()
                .map(|t| oroot_of(kernel, oroots, *t))
                .collect::<Result<_, _>>()?,
        },
        ObjectBody::Pmo(_) => unreachable!("PMOs use sync_pmo"),
    })
}

/// Writes `record` into the checkpoint-destination backup slot of `oroot`,
/// rotating the two-slot protocol and re-accounting slab space.
fn write_backup(
    kernel: &Kernel,
    oroots: &mut ObjectStore<ORoot>,
    backups: &mut ObjectStore<BackupObject>,
    oroot: OrootId,
    record: BackupObject,
    inflight: u64,
) -> Result<(), KernelError> {
    let global = inflight - 1;
    treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "tree.pre_backup_write");
    let dst = oroots.get(oroot).expect("live oroot").ckpt_dst(global);
    // Retire the slot being overwritten.
    if let Some(old) = oroots.get(oroot).expect("live oroot").backups[dst] {
        backups.remove(old.slot);
        if let Some((addr, size)) = old.slab {
            kernel.pers.alloc.slab_free(addr, size as usize)?;
        }
    }
    let size = record.approx_size().clamp(1, 2048);
    let slab = kernel.pers.alloc.slab_alloc(size)?;
    let slot = backups.insert(record);
    oroots.get_mut(oroot).expect("live oroot").backups[dst] =
        Some(VersionedBackup { slot, version: inflight, slab: Some((slab, size as u32)) });
    Ok(())
}

/// Synchronizes a PMO's backup radix tree with its runtime tree.
///
/// Structural additions are tagged `added = inflight` and removals
/// `removed = inflight`, so they become restore-visible only at commit.
/// Entries whose removal has committed are purged and their frames freed
/// (the paper's deferred reclamation of checkpointed pages).
fn sync_pmo(
    kernel: &Kernel,
    oroots: &mut ObjectStore<ORoot>,
    backups: &mut ObjectStore<BackupObject>,
    obj: &Arc<KObject>,
    oroot: OrootId,
    inflight: u64,
) -> Result<bool, KernelError> {
    let global = inflight - 1;
    treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "tree.pre_pmo_sync");
    let body = obj.body.read();
    let ObjectBody::Pmo(pmo) = &*body else { unreachable!("sync_pmo requires a PMO") };
    let tick = pmo.structure_tick.load(std::sync::atomic::Ordering::Relaxed);

    let existing = oroots.get(oroot).expect("live oroot").backups[0];
    let full = existing.is_none();
    if full {
        // First checkpoint: build the whole backup radix tree.
        let mut pages: Radix<BkPageEntry> = Radix::new();
        pmo.pages.for_each(|idx, slot| {
            pages.insert(idx, BkPageEntry { slot: Arc::clone(slot), added: inflight, removed: None });
        });
        let record =
            BackupObject::Pmo { npages: pmo.npages, kind: pmo.kind, pages, synced_tick: tick };
        let size = record.approx_size().clamp(1, 2048);
        let slab = kernel.pers.alloc.slab_alloc(size)?;
        let slot = backups.insert(record);
        oroots.get_mut(oroot).expect("live oroot").backups[0] =
            Some(VersionedBackup { slot, version: inflight, slab: Some((slab, size as u32)) });
        return Ok(true);
    }

    let bk = existing.expect("checked");
    let Some(BackupObject::Pmo { pages, synced_tick, .. }) = backups.get_mut(bk.slot) else {
        return Err(KernelError::InvalidState("PMO backup record missing"));
    };
    // Purge committed removals first and reclaim their frames: a purged
    // index may be re-added below, and purging after the addition would
    // leak the removed page's frames.
    let mut to_purge = Vec::new();
    pages.for_each(|idx, e| {
        if e.removed.is_some_and(|r| r <= global) {
            to_purge.push(idx);
        }
    });
    for idx in to_purge {
        let entry = pages.remove(idx).expect("entry present");
        let meta = entry.slot.meta.lock();
        for p in meta.pairs.iter().flatten() {
            kernel.pers.alloc.free_page(p.frame)?;
        }
        if let Some(d) = meta.runtime_dram {
            kernel.dram.free(d);
        }
    }
    if *synced_tick != tick {
        // Additions: runtime entries missing from the backup tree.
        // (Tombstones are always committed — a page cannot be removed and
        // re-added within one round — so the purge above already cleared
        // any stale entry at a re-added index.)
        let mut to_add = Vec::new();
        pmo.pages.for_each(|idx, slot| {
            if pages.get(idx).is_none() {
                to_add.push((idx, Arc::clone(slot)));
            }
        });
        for (idx, slot) in to_add {
            let old = pages.insert(idx, BkPageEntry { slot, added: inflight, removed: None });
            debug_assert!(old.is_none(), "stale backup entry survived the purge");
        }
        // Removals: live backup entries whose page left the runtime tree.
        let mut to_remove = Vec::new();
        pages.for_each(|idx, e| {
            if e.removed.is_none() && pmo.pages.get(idx).is_none() {
                to_remove.push(idx);
            }
        });
        for idx in to_remove {
            pages.get_mut(idx).expect("entry present").removed = Some(inflight);
        }
        *synced_tick = tick;
    }
    // Stamp the record's version (cheap; keeps restore_pick uniform).
    oroots.get_mut(oroot).expect("live oroot").backups[0] =
        Some(VersionedBackup { version: inflight, ..bk });
    Ok(false)
}

/// Walks the runtime capability tree from the root, checkpointing every
/// reachable object into the backup tree (Figure 5 step ❷).
///
/// Must be called during a stop-the-world pause.
pub fn checkpoint_tree(kernel: &Kernel, inflight: u64) -> Result<TreeOutcome, KernelError> {
    let mut out = TreeOutcome::default();
    let mut oroots = kernel.pers.oroots.lock();
    let mut backups = kernel.pers.backups.lock();

    let root_obj = kernel.object(kernel.root())?;
    let root_oroot = ensure_oroot(&mut oroots, &root_obj);
    if kernel.pers.root_oroot().is_none() {
        kernel.pers.set_root_oroot(root_oroot);
    }

    let mut stack = vec![root_obj];
    while let Some(obj) = stack.pop() {
        let oroot = ensure_oroot(&mut oroots, &obj);
        {
            let r = oroots.get_mut(oroot).expect("just ensured");
            if r.ckpt_round == inflight {
                continue;
            }
            r.ckpt_round = inflight;
            // An object can reappear (e.g. a capability re-granted before
            // its deletion committed); resurrect it.
            r.deleted_at = None;
        }
        for child in children(&obj) {
            if let Ok(c) = kernel.object(child) {
                stack.push(c);
            }
        }
        let t0 = Instant::now();
        let dirty = obj.take_dirty();
        let never_backed = oroots.get(oroot).expect("live").backups.iter().all(Option::is_none);
        let full;
        if obj.otype == ObjType::Pmo {
            // PMOs always run the (cheap when unchanged) structural sync.
            full = sync_pmo(kernel, &mut oroots, &mut backups, &obj, oroot, inflight)?;
            out.copied += 1;
        } else if dirty || never_backed {
            full = never_backed;
            let record = build_record(kernel, &mut oroots, &obj)?;
            write_backup(kernel, &mut oroots, &mut backups, oroot, record, inflight)?;
            out.copied += 1;
        } else {
            full = false;
            out.skipped += 1;
        }
        let dt = t0.elapsed();
        *out.per_type.entry(obj.otype).or_default() += dt;
        if dirty || never_backed || obj.otype == ObjType::Pmo {
            out.samples.push((obj.otype, full, dt));
        }
    }

    // Deletion detection: reachable objects carry this round's tag;
    // everything else became unreachable since the last checkpoint.
    for (_, r) in oroots.iter_mut() {
        if r.ckpt_round != inflight && r.deleted_at.is_none() {
            r.deleted_at = Some(inflight);
        }
    }
    Ok(out)
}

/// Sweeps ORoots whose deletion has committed: removes their backup
/// records, frees slab space, and for PMOs frees all page frames.
///
/// Called by the checkpoint manager after the commit point.
pub fn sweep_deleted(kernel: &Kernel, committed: u64) -> Result<usize, KernelError> {
    treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "tree.pre_sweep_deleted");
    let mut oroots = kernel.pers.oroots.lock();
    let mut backups = kernel.pers.backups.lock();
    let dead: Vec<OrootId> = oroots
        .iter()
        .filter(|(_, r)| r.deleted_at.is_some_and(|d| d <= committed))
        .map(|(id, _)| id)
        .collect();
    for id in &dead {
        let r = oroots.remove(*id).expect("listed as dead");
        for vb in r.backups.into_iter().flatten() {
            if let Some(BackupObject::Pmo { pages, .. }) = backups.remove(vb.slot) {
                pages.for_each(|_, e| {
                    let meta = e.slot.meta.lock();
                    for p in meta.pairs.iter().flatten() {
                        let _ = kernel.pers.alloc.free_page(p.frame);
                    }
                    if let Some(d) = meta.runtime_dram {
                        kernel.dram.free(d);
                    }
                });
            }
            if let Some((addr, size)) = vb.slab {
                kernel.pers.alloc.slab_free(addr, size as usize)?;
            }
        }
    }
    Ok(dead.len())
}
