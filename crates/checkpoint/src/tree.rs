//! Checkpointing the capability tree (§4.1).
//!
//! Two walk strategies produce the same backup tree:
//!
//! * **Dirty-queue walk** (the default): the leader drains the kernel's
//!   per-round dirty queue and visits *only* mutated objects, so the pause
//!   cost is O(changes), not O(live objects). Deletion detection is
//!   incremental too: every rewritten record's outgoing ORoot edge multiset
//!   is diffed against the edges of the record it supersedes, maintaining a
//!   per-ORoot incoming-reference count ([`ORoot::inrefs`]); ORoots whose
//!   count drains to zero are tombstoned (O(deletions) cascade), and swept
//!   after commit from an explicit pending list instead of a whole-table
//!   filter. Independent backup-record builds are offloaded to the already
//!   quiesced non-leader cores through the [`HybridWork`] aux queue.
//! * **Full walk**: the original reachability traversal from the root cap
//!   group. It remains the differential oracle for the dirty walk, the
//!   cycle collector (reference cycles never drain their counts; the
//!   periodic full walk reclaims them), and the self-healing fallback after
//!   a restore or a failed round — in those cases it rewrites every
//!   reachable record and rebuilds all reference counts from scratch.
//!
//! Object-kind strategies follow §4.1 exactly:
//! * small, frequently updated objects (threads, notifications, IPC
//!   connections, cap groups) are copied during the pause;
//! * VM spaces copy their region list and *not* their page table, plus the
//!   read-only marking of newly-changed pages (attributed to VM Space in
//!   Figure 9b);
//! * PMOs sync their backup radix tree structurally and leave page data to
//!   copy-on-write / hybrid copy.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use treesls_kernel::cores::HybridWork;
use treesls_kernel::dirty::DirtyCut;
use treesls_kernel::object::{KObject, ObjType, ObjectBody};
use treesls_kernel::oroot::{
    BackupObject, BkCap, BkPageEntry, BkRegion, BkThreadState, ORoot, VersionedBackup,
};
use treesls_kernel::radix::Radix;
use treesls_kernel::thread::{BlockedOn, ThreadState};
use treesls_kernel::types::{BackupId, KernelError, ObjId, OrootId};
use treesls_kernel::Kernel;
use treesls_nvm::ShardedStore;

/// Minimum non-PMO dirty batch size worth offloading to quiesced cores
/// (below this the chunking overhead exceeds the build cost).
const OFFLOAD_MIN: usize = 32;
/// Objects per offloaded build chunk.
const OFFLOAD_CHUNK: usize = 16;

/// Result of one capability-tree checkpoint.
#[derive(Debug, Default)]
pub struct TreeOutcome {
    /// Leader time per object type (Figure 9b).
    pub per_type: HashMap<ObjType, Duration>,
    /// `(type, was_full, duration)` per processed object (Table 3).
    pub samples: Vec<(ObjType, bool, Duration)>,
    /// Objects copied (dirty or first-time).
    pub copied: usize,
    /// Objects skipped (clean reachable objects on a full walk; stale
    /// queue entries on a dirty walk).
    pub skipped: usize,
    /// Whether this round ran the full reachability walk.
    pub full_walk: bool,
    /// Dirty-queue entries drained this round (before dedup).
    pub dirty_drained: usize,
    /// Distinct cores owning entries in this round's write set (from the
    /// queue's per-entry core tags; off-core pushes are uncounted). This
    /// is the population partial quiescence stops instead of all cores.
    pub owner_cores: usize,
    /// Backup-record builds executed through the aux queue.
    pub offloaded: usize,
    /// ORoots tombstoned this round.
    pub tombstoned: usize,
    /// ORoots whose backup record was (re)written this round — the
    /// round's *delta*, consumed by checkpoint-shipping replication.
    pub rewritten: Vec<OrootId>,
    /// ORoots tombstoned this round, by id (the deletion half of the
    /// delta; captured here because the post-commit sweep removes them
    /// from the store before shipping runs).
    pub tombstoned_ids: Vec<OrootId>,
}

/// Ensures `obj` has a live ORoot, creating one on first contact (§4.1:
/// "if the corresponding ORoot is absent ... TreeSLS will initialize the
/// ORoot for it"). Safe to race from concurrent record builders: losers
/// release their speculative insert and adopt the winner. Also repairs a
/// stale link (the object's previous ORoot was swept while the runtime
/// object survived).
pub fn ensure_oroot(oroots: &ShardedStore<ORoot>, obj: &Arc<KObject>) -> OrootId {
    loop {
        let cur = obj.oroot();
        if let Some(id) = cur {
            if oroots.with_mut(id, |r| r.runtime = Some(obj.id())).is_some() {
                return id;
            }
        }
        let spec = oroots.insert(ORoot::new(obj.otype, obj.id()));
        let winner = obj.reset_oroot_race(cur, spec);
        if winner == spec {
            return spec;
        }
        // Lost the race: drop the speculative record and retry (the
        // winner's id may itself be stale by now, hence the loop).
        oroots.remove(spec);
    }
}

/// Collects the runtime object ids referenced by `obj` (capability table
/// entries plus object-internal references), defining tree reachability.
fn children(obj: &Arc<KObject>) -> Vec<ObjId> {
    let body = obj.body.read();
    match &*body {
        ObjectBody::CapGroup(g) => g.iter().map(|(_, c)| c.obj).collect(),
        ObjectBody::Thread(t) => {
            let mut v = vec![t.cap_group, t.vmspace];
            if let ThreadState::Blocked(b) = t.state {
                v.push(b.object());
            }
            v
        }
        ObjectBody::VmSpace(vs) => vs.regions.iter().map(|r| r.pmo).collect(),
        ObjectBody::Pmo(_) => Vec::new(),
        ObjectBody::IpcConnection(c) => {
            let mut v: Vec<ObjId> = c.queue.iter().map(|m| m.from).collect();
            v.extend(c.replies.iter().map(|(t, _)| *t));
            v.extend(c.recv_waiter);
            v
        }
        ObjectBody::Notification(n) => n.waiters.iter().copied().collect(),
        ObjectBody::IrqNotification(irq) => irq.inner.waiters.iter().copied().collect(),
    }
}

/// Maps a runtime object reference to its ORoot, creating one if needed.
fn oroot_of(
    kernel: &Kernel,
    oroots: &ShardedStore<ORoot>,
    id: ObjId,
) -> Result<OrootId, KernelError> {
    let obj = kernel.object(id)?;
    Ok(ensure_oroot(oroots, &obj))
}

/// The outgoing ORoot edge multiset of a backup record (the persistent
/// mirror of [`children`]; must stay in lockstep with
/// `restore::record_children`).
fn record_edges(record: &BackupObject) -> Vec<OrootId> {
    match record {
        BackupObject::CapGroup { caps, .. } => {
            caps.iter().flatten().map(|c| c.oroot).collect()
        }
        BackupObject::Thread { state, cap_group, vmspace, .. } => {
            let mut v = vec![*cap_group, *vmspace];
            match state {
                BkThreadState::BlockedNotification(o)
                | BkThreadState::BlockedIpcRecv(o)
                | BkThreadState::BlockedIpcReply(o) => v.push(*o),
                BkThreadState::Runnable | BkThreadState::Exited => {}
            }
            v
        }
        BackupObject::VmSpace { regions } => regions.iter().map(|r| r.pmo).collect(),
        BackupObject::Pmo { .. } => Vec::new(),
        BackupObject::IpcConnection { recv_waiter, queue, replies } => {
            let mut v: Vec<OrootId> = queue.iter().map(|(t, _)| *t).collect();
            v.extend(replies.iter().map(|(t, _)| *t));
            v.extend(*recv_waiter);
            v
        }
        BackupObject::Notification { waiters, .. } => waiters.clone(),
        BackupObject::IrqNotification { waiters, .. } => waiters.clone(),
    }
}

/// The backup slot holding the *newest* record of `r` (committed or not).
/// Its edges are the ones counted in [`ORoot::inrefs`].
fn newest_slot(r: &ORoot) -> Option<BackupId> {
    r.backups.iter().flatten().max_by_key(|b| b.version).map(|b| b.slot)
}

/// The outgoing edges of `id`'s newest record, or empty if it has none.
fn newest_edges(
    oroots: &ShardedStore<ORoot>,
    backups: &ShardedStore<BackupObject>,
    id: OrootId,
) -> Vec<OrootId> {
    oroots
        .with(id, newest_slot)
        .flatten()
        .and_then(|slot| backups.with(slot, record_edges))
        .unwrap_or_default()
}

/// Builds the backup record for a non-PMO object.
fn build_record(
    kernel: &Kernel,
    oroots: &ShardedStore<ORoot>,
    obj: &Arc<KObject>,
) -> Result<BackupObject, KernelError> {
    let body = obj.body.read();
    Ok(match &*body {
        ObjectBody::CapGroup(g) => BackupObject::CapGroup {
            name: g.name.clone(),
            caps: g
                .caps
                .iter()
                .map(|c| {
                    c.map(|c| {
                        Ok::<BkCap, KernelError>(BkCap {
                            oroot: oroot_of(kernel, oroots, c.obj)?,
                            rights: c.rights,
                        })
                    })
                    .transpose()
                })
                .collect::<Result<_, _>>()?,
        },
        ObjectBody::Thread(t) => BackupObject::Thread {
            ctx: t.ctx,
            state: match t.state {
                ThreadState::Runnable => BkThreadState::Runnable,
                ThreadState::Exited => BkThreadState::Exited,
                ThreadState::Blocked(BlockedOn::Notification(o)) => {
                    BkThreadState::BlockedNotification(oroot_of(kernel, oroots, o)?)
                }
                ThreadState::Blocked(BlockedOn::IpcRecv(o)) => {
                    BkThreadState::BlockedIpcRecv(oroot_of(kernel, oroots, o)?)
                }
                ThreadState::Blocked(BlockedOn::IpcReply(o)) => {
                    BkThreadState::BlockedIpcReply(oroot_of(kernel, oroots, o)?)
                }
            },
            program: t.program.clone(),
            cap_group: oroot_of(kernel, oroots, t.cap_group)?,
            vmspace: oroot_of(kernel, oroots, t.vmspace)?,
        },
        ObjectBody::VmSpace(vs) => BackupObject::VmSpace {
            regions: vs
                .regions
                .iter()
                .map(|r| {
                    Ok::<BkRegion, KernelError>(BkRegion {
                        base: r.base.0,
                        npages: r.npages,
                        pmo: oroot_of(kernel, oroots, r.pmo)?,
                        pmo_off: r.pmo_off,
                        perm: r.perm,
                    })
                })
                .collect::<Result<_, _>>()?,
        },
        ObjectBody::IpcConnection(c) => BackupObject::IpcConnection {
            recv_waiter: c
                .recv_waiter
                .map(|t| oroot_of(kernel, oroots, t))
                .transpose()?,
            queue: c
                .queue
                .iter()
                .map(|m| Ok::<_, KernelError>((oroot_of(kernel, oroots, m.from)?, m.data.clone())))
                .collect::<Result<_, _>>()?,
            replies: c
                .replies
                .iter()
                .map(|(t, d)| Ok::<_, KernelError>((oroot_of(kernel, oroots, *t)?, d.clone())))
                .collect::<Result<_, _>>()?,
        },
        ObjectBody::Notification(n) => BackupObject::Notification {
            count: n.count,
            waiters: n
                .waiters
                .iter()
                .map(|t| oroot_of(kernel, oroots, *t))
                .collect::<Result<_, _>>()?,
        },
        ObjectBody::IrqNotification(irq) => BackupObject::IrqNotification {
            line: irq.line,
            count: irq.inner.count,
            waiters: irq
                .inner
                .waiters
                .iter()
                .map(|t| oroot_of(kernel, oroots, *t))
                .collect::<Result<_, _>>()?,
        },
        ObjectBody::Pmo(_) => unreachable!("PMOs use sync_pmo"),
    })
}

/// Writes `record` into the checkpoint-destination backup slot of `oroot`,
/// rotating the two-slot protocol and re-accounting slab space.
fn write_backup(
    kernel: &Kernel,
    oroot: OrootId,
    record: BackupObject,
    inflight: u64,
) -> Result<(), KernelError> {
    let oroots = &kernel.pers.oroots;
    let backups = &kernel.pers.backups;
    let global = inflight - 1;
    treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "tree.pre_backup_write");
    let (dst, old) = oroots
        .with(oroot, |r| {
            let dst = r.ckpt_dst(global);
            (dst, r.backups[dst])
        })
        .expect("live oroot");
    // Retire the slot being overwritten.
    if let Some(old) = old {
        backups.remove(old.slot);
        if let Some((addr, size)) = old.slab {
            kernel.pers.alloc.slab_free(addr, size as usize)?;
        }
    }
    let size = record.approx_size().clamp(1, 2048);
    let slab = kernel.pers.alloc.slab_alloc(size)?;
    let slot = backups.insert(record);
    oroots
        .with_mut(oroot, |r| {
            r.backups[dst] =
                Some(VersionedBackup { slot, version: inflight, slab: Some((slab, size as u32)) })
        })
        .expect("live oroot");
    Ok(())
}

/// Synchronizes a PMO's backup radix tree with its runtime tree.
///
/// Structural additions are tagged `added = inflight` and removals
/// `removed = inflight`, so they become restore-visible only at commit.
/// Entries whose removal has committed are purged and their frames freed
/// (the paper's deferred reclamation of checkpointed pages). A round that
/// writes *new* removal tombstones re-marks the object dirty, so the
/// dirty-queue walk revisits it next round to purge them once committed.
fn sync_pmo(
    kernel: &Kernel,
    obj: &Arc<KObject>,
    oroot: OrootId,
    inflight: u64,
) -> Result<bool, KernelError> {
    let oroots = &kernel.pers.oroots;
    let backups = &kernel.pers.backups;
    let global = inflight - 1;
    treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "tree.pre_pmo_sync");
    let body = obj.body.read();
    let ObjectBody::Pmo(pmo) = &*body else { unreachable!("sync_pmo requires a PMO") };
    let tick = pmo.structure_tick.load(std::sync::atomic::Ordering::Relaxed);

    let existing = oroots.with(oroot, |r| r.backups[0]).expect("live oroot");
    let Some(bk) = existing else {
        // First checkpoint: build the whole backup radix tree.
        let mut pages: Radix<BkPageEntry> = Radix::new();
        pmo.pages.for_each(|idx, slot| {
            pages.insert(idx, BkPageEntry { slot: Arc::clone(slot), added: inflight, removed: None });
        });
        let record =
            BackupObject::Pmo { npages: pmo.npages, kind: pmo.kind, pages, synced_tick: tick };
        let size = record.approx_size().clamp(1, 2048);
        let slab = kernel.pers.alloc.slab_alloc(size)?;
        let slot = backups.insert(record);
        oroots
            .with_mut(oroot, |r| {
                r.backups[0] = Some(VersionedBackup {
                    slot,
                    version: inflight,
                    slab: Some((slab, size as u32)),
                })
            })
            .expect("live oroot");
        return Ok(true);
    };

    let tombstoned_new = match backups.with_mut(bk.slot, |rec| {
        let BackupObject::Pmo { pages, synced_tick, .. } = rec else {
            return Err(KernelError::InvalidState("PMO backup record is not a PMO"));
        };
        // Purge committed removals first and reclaim their frames: a purged
        // index may be re-added below, and purging after the addition would
        // leak the removed page's frames.
        let mut to_purge = Vec::new();
        pages.for_each(|idx, e| {
            if e.removed.is_some_and(|r| r <= global) {
                to_purge.push(idx);
            }
        });
        for idx in to_purge {
            let entry = pages.remove(idx).expect("entry present");
            let meta = entry.slot.meta.lock();
            for p in meta.pairs.iter().flatten() {
                kernel.pers.alloc.free_page(p.frame)?;
            }
            if let Some(c) = meta.epoch_capture {
                kernel.pers.alloc.free_page(c.frame)?;
            }
            if let Some(l) = meta.inline_log {
                kernel.pers.alloc.free_page(l.frame)?;
            }
            if let Some(d) = meta.runtime_dram {
                kernel.dram.free(d);
            }
        }
        let mut new_tombstones = false;
        if *synced_tick != tick {
            // Additions: runtime entries missing from the backup tree.
            // (Tombstones are always committed — a page cannot be removed and
            // re-added within one round — so the purge above already cleared
            // any stale entry at a re-added index.)
            let mut to_add = Vec::new();
            pmo.pages.for_each(|idx, slot| {
                if pages.get(idx).is_none() {
                    to_add.push((idx, Arc::clone(slot)));
                }
            });
            for (idx, slot) in to_add {
                let old = pages.insert(idx, BkPageEntry { slot, added: inflight, removed: None });
                debug_assert!(old.is_none(), "stale backup entry survived the purge");
            }
            // Removals: live backup entries whose page left the runtime tree.
            let mut to_remove = Vec::new();
            pages.for_each(|idx, e| {
                if e.removed.is_none() && pmo.pages.get(idx).is_none() {
                    to_remove.push(idx);
                }
            });
            new_tombstones = !to_remove.is_empty();
            for idx in to_remove {
                pages.get_mut(idx).expect("entry present").removed = Some(inflight);
            }
            *synced_tick = tick;
        }
        Ok(new_tombstones)
    }) {
        Some(r) => r?,
        None => return Err(KernelError::InvalidState("PMO backup record missing")),
    };
    // Stamp the record's version (cheap; keeps restore_pick uniform).
    oroots
        .with_mut(oroot, |r| r.backups[0] = Some(VersionedBackup { version: inflight, ..bk }))
        .expect("live oroot");
    if tombstoned_new {
        // The fresh tombstones commit this round and must be purged (frames
        // freed) next round: re-queue the object so the O(changes) walk
        // comes back to it even if no further runtime mutation happens.
        obj.mark_dirty();
    }
    Ok(false)
}

/// Checkpoints the capability tree into the backup tree (Figure 5 step ❷).
///
/// Chooses between the O(changes) dirty-queue walk and the full
/// reachability walk: the latter runs when forced by configuration, every
/// `full_walk_interval` rounds (cycle collection), or as the self-healing
/// fallback after a restore or a failed round (in which case it also
/// rewrites every reachable record, since a failed round may have consumed
/// dirty flags without persisting the corresponding records).
///
/// Must be called during a stop-the-world pause — or, in epoch-concurrent
/// mode, after the flip with `cut` holding the dirty-queue cut taken inside
/// the flip window (post-flip pushes land in the live queue for the next
/// round and are invisible to this walk). `work`, when present, is the
/// round's [`HybridWork`] batch; its aux queue is used to offload record
/// builds to the quiesced cores and is always closed before this function
/// returns.
pub fn checkpoint_tree(
    kernel: &Arc<Kernel>,
    inflight: u64,
    work: Option<&Arc<HybridWork>>,
    cut: Option<DirtyCut>,
) -> Result<TreeOutcome, KernelError> {
    use std::sync::atomic::Ordering;

    let heal = kernel.force_full_next.swap(false, Ordering::AcqRel);
    let rounds = kernel.rounds_since_full.load(Ordering::Relaxed) + 1;
    let interval = kernel.config.full_walk_interval;
    let full = kernel.config.force_full_walk || heal || (interval > 0 && rounds >= interval);
    kernel.rounds_since_full.store(if full { 0 } else { rounds }, Ordering::Relaxed);

    let result = if full {
        // The full walk visits everything reachable; a pre-taken cut only
        // needs its nodes reclaimed (and the depth gauge adjusted).
        if let Some(c) = cut {
            let _ = kernel.dirty_queue.collect(c);
        }
        full_walk(kernel, inflight, heal)
    } else {
        dirty_walk(kernel, inflight, work, cut)
    };
    if let Some(w) = work {
        // The manager's `finish_hybrid_work` barrier polls the aux queue;
        // guarantee it can terminate on every exit path.
        w.close_aux();
    }
    if result.is_err() {
        // A half-applied round leaves consumed dirty flags and partial
        // reference counts behind; the next round's healing full walk
        // rewrites all reachable records and rebuilds the counts.
        kernel.force_full_next.store(true, Ordering::Release);
    }
    result
}

/// Copies one object into the backup tree, timing it into `out`.
fn copy_object(
    kernel: &Kernel,
    obj: &Arc<KObject>,
    oroot: OrootId,
    inflight: u64,
    prebuilt: Option<(BackupObject, Duration)>,
    out: &mut TreeOutcome,
) -> Result<(), KernelError> {
    let t0 = Instant::now();
    out.rewritten.push(oroot);
    let full = if obj.otype == ObjType::Pmo {
        sync_pmo(kernel, obj, oroot, inflight)?
    } else {
        let full = kernel
            .pers
            .oroots
            .with(oroot, |r| r.backups.iter().all(Option::is_none))
            .expect("live oroot");
        let (record, built) = match prebuilt {
            Some((r, d)) => (r, d),
            None => {
                let t = Instant::now();
                let r = build_record(kernel, &kernel.pers.oroots, obj)?;
                (r, t.elapsed())
            }
        };
        write_backup(kernel, oroot, record, inflight)?;
        // Attribute offloaded build time to the object even though another
        // core spent it (Table 3 cares about per-object cost, not locus).
        let dt = t0.elapsed() + built;
        out.copied += 1;
        *out.per_type.entry(obj.otype).or_default() += dt;
        out.samples.push((obj.otype, full, dt));
        return Ok(());
    };
    let dt = t0.elapsed();
    out.copied += 1;
    *out.per_type.entry(obj.otype).or_default() += dt;
    out.samples.push((obj.otype, full, dt));
    Ok(())
}

/// The O(changes) walk: drain the dirty queue, rewrite the records of
/// queued objects (builds offloaded to quiesced cores when the batch is
/// large enough), diff each record's edge multiset against the record it
/// supersedes, and cascade tombstones from reference counts that drain to
/// zero.
fn dirty_walk(
    kernel: &Arc<Kernel>,
    inflight: u64,
    work: Option<&Arc<HybridWork>>,
    cut: Option<DirtyCut>,
) -> Result<TreeOutcome, KernelError> {
    let oroots = &kernel.pers.oroots;
    let backups = &kernel.pers.backups;
    let sched = kernel.pers.dev.crash_schedule();
    let mut out = TreeOutcome::default();

    let root_obj = kernel.object(kernel.root())?;
    let root_oroot = ensure_oroot(oroots, &root_obj);
    if kernel.pers.root_oroot().is_none() {
        kernel.pers.set_root_oroot(root_oroot);
    }

    let drained = match cut {
        Some(c) => kernel.dirty_queue.collect(c),
        None => kernel.dirty_queue.drain_tagged(),
    };
    out.dirty_drained = drained.len();
    let mut owner_bits = 0u64;
    treesls_nvm::crash_site!(sched, "tree.dirty_drained");

    // Claim the batch: dedup queue entries and consume dirty flags. An
    // entry whose flag is already clear is stale (a full walk or a failed
    // claim raced it) and skips in O(1).
    let mut seen: HashSet<ObjId> = HashSet::with_capacity(drained.len());
    let mut pmos: Vec<Arc<KObject>> = Vec::new();
    let mut plain: Vec<Arc<KObject>> = Vec::new();
    for (id, core) in drained {
        if core != treesls_kernel::cores::NO_CORE {
            owner_bits |= 1 << (core as u64).min(63);
        }
        if !seen.insert(id) {
            continue;
        }
        let Ok(obj) = kernel.object(id) else { continue };
        if !obj.take_dirty() {
            out.skipped += 1;
            continue;
        }
        if obj.otype == ObjType::Pmo {
            pmos.push(obj);
        } else {
            plain.push(obj);
        }
    }

    out.owner_cores = owner_bits.count_ones() as usize;

    // Build all non-PMO records (possibly on the quiesced cores). Builders
    // only read runtime bodies and create missing child ORoots; no backup
    // record is written until the leader-serial phase below.
    treesls_nvm::crash_site!(sched, "tree.pre_offload");
    let built = build_records(kernel, plain, work, &mut out)?;
    treesls_nvm::crash_site!(sched, "tree.aux_drained");

    // Leader-serial write phase: rotate backup slots and accumulate the
    // edge diff of every rewritten record. The superseded edge multiset
    // must be read *before* write_backup — after an aborted round the
    // destination slot can itself hold the newest record.
    let mut deltas: HashMap<OrootId, i64> = HashMap::new();
    let mut edge_targets: Vec<OrootId> = Vec::new();
    for (obj, record, built_in) in built {
        let oroot = ensure_oroot(oroots, &obj);
        let deleted = oroots.with(oroot, |r| r.deleted_at.is_some()).expect("live oroot");
        let new_edges = record_edges(&record);
        // A tombstoned object's edges are uncounted while it stays dead;
        // if a reference resurrects it, the cascade re-acquires the edges
        // of exactly this fresh record.
        let old_edges = if deleted { None } else { Some(newest_edges(oroots, backups, oroot)) };
        copy_object(kernel, &obj, oroot, inflight, Some((record, built_in)), &mut out)?;
        if let Some(old) = old_edges {
            for e in &new_edges {
                *deltas.entry(*e).or_default() += 1;
            }
            for e in old {
                *deltas.entry(e).or_default() -= 1;
            }
            edge_targets.extend(new_edges);
        }
    }
    for obj in pmos {
        let oroot = ensure_oroot(oroots, &obj);
        copy_object(kernel, &obj, oroot, inflight, None, &mut out)?;
    }

    treesls_nvm::crash_site!(sched, "tree.pre_epoch_apply");

    // A rewritten record may reference an object whose ORoot was created
    // this instant with no backup yet *and* whose dirty flag is clear (a
    // raw-id re-reference after its previous ORoot was swept). Such
    // objects must enter this round's image or the new record would dangle
    // across a crash; chase them (and anything they reference) now.
    let mut chase: Vec<OrootId> = edge_targets;
    let mut chased: HashSet<OrootId> = HashSet::new();
    while let Some(id) = chase.pop() {
        if !chased.insert(id) {
            continue;
        }
        let Some((never_backed, runtime, deleted)) = oroots
            .with(id, |r| (r.backups.iter().all(Option::is_none), r.runtime, r.deleted_at.is_some()))
        else {
            continue;
        };
        if !never_backed || deleted {
            continue;
        }
        let Some(objid) = runtime else {
            return Err(KernelError::InvalidState("never-backed ORoot without runtime object"));
        };
        let obj = kernel.object(objid)?;
        obj.take_dirty(); // its queue entry (if any) becomes a stale skip
        if obj.otype == ObjType::Pmo {
            copy_object(kernel, &obj, id, inflight, None, &mut out)?;
        } else {
            let record = build_record(kernel, oroots, &obj)?;
            let new_edges = record_edges(&record);
            copy_object(kernel, &obj, id, inflight, Some((record, Duration::ZERO)), &mut out)?;
            for e in &new_edges {
                *deltas.entry(*e).or_default() += 1;
            }
            chase.extend(new_edges);
        }
    }

    out.tombstoned_ids = apply_deltas(kernel, root_oroot, deltas, inflight);
    out.tombstoned = out.tombstoned_ids.len();
    Ok(out)
}

/// Builds the backup records for a batch of non-PMO objects, offloading
/// chunks to the quiesced cores via the aux queue when the batch is large
/// enough. Returns `(object, record, build time)` triples.
#[allow(clippy::type_complexity)]
fn build_records(
    kernel: &Arc<Kernel>,
    plain: Vec<Arc<KObject>>,
    work: Option<&Arc<HybridWork>>,
    out: &mut TreeOutcome,
) -> Result<Vec<(Arc<KObject>, BackupObject, Duration)>, KernelError> {
    let offload = work.filter(|w| w.aux_open() && plain.len() >= OFFLOAD_MIN);
    let Some(work) = offload else {
        let mut built = Vec::with_capacity(plain.len());
        for obj in plain {
            let t0 = Instant::now();
            let record = build_record(kernel, &kernel.pers.oroots, &obj)?;
            built.push((obj, record, t0.elapsed()));
        }
        return Ok(built);
    };

    type BuildSlot = Mutex<Option<Result<(BackupObject, Duration), KernelError>>>;
    let objs = Arc::new(plain);
    let results: Arc<Vec<BuildSlot>> =
        Arc::new((0..objs.len()).map(|_| Mutex::new(None)).collect());
    for start in (0..objs.len()).step_by(OFFLOAD_CHUNK) {
        let end = (start + OFFLOAD_CHUNK).min(objs.len());
        let kernel = Arc::clone(kernel);
        let objs = Arc::clone(&objs);
        let results = Arc::clone(&results);
        work.push_aux(Box::new(move || {
            for i in start..end {
                let t0 = Instant::now();
                let r = build_record(&kernel, &kernel.pers.oroots, &objs[i]);
                *results[i].lock() = Some(r.map(|rec| (rec, t0.elapsed())));
            }
        }));
    }
    work.close_aux();
    work.join_aux();
    out.offloaded = objs.len();

    let objs = Arc::try_unwrap(objs)
        .map_err(|_| KernelError::InvalidState("offload batch still shared"))?;
    let results = Arc::try_unwrap(results)
        .map_err(|_| KernelError::InvalidState("offload results still shared"))?;
    let mut built = Vec::with_capacity(objs.len());
    for (obj, cell) in objs.into_iter().zip(results) {
        let slot = cell
            .into_inner()
            .ok_or(KernelError::InvalidState("offloaded record build was lost"))?;
        let (record, dt) = slot?;
        built.push((obj, record, dt));
    }
    Ok(built)
}

/// Applies the accumulated edge diff to the reference counts, then runs
/// the tombstone/resurrect cascade over every touched ORoot. Returns the
/// ids of the ORoots tombstoned this round.
fn apply_deltas(
    kernel: &Kernel,
    root_oroot: OrootId,
    deltas: HashMap<OrootId, i64>,
    inflight: u64,
) -> Vec<OrootId> {
    let oroots = &kernel.pers.oroots;
    let backups = &kernel.pers.backups;
    let mut worklist: Vec<OrootId> = Vec::with_capacity(deltas.len());
    for (id, d) in deltas {
        if d == 0 {
            continue;
        }
        let applied = oroots.with_mut(id, |r| {
            let v = i64::from(r.inrefs) + d;
            debug_assert!(v >= 0, "ORoot inref count underflow");
            r.inrefs = v.max(0) as u32;
        });
        if applied.is_some() {
            worklist.push(id);
        }
    }

    let mut newly_dead: Vec<OrootId> = Vec::new();
    while let Some(id) = worklist.pop() {
        if id == root_oroot {
            continue; // the root cap group is pinned
        }
        let Some((inrefs, deleted)) = oroots.with(id, |r| (r.inrefs, r.deleted_at.is_some()))
        else {
            continue;
        };
        if inrefs == 0 && !deleted {
            oroots.with_mut(id, |r| r.deleted_at = Some(inflight));
            newly_dead.push(id);
            // A dead object's outgoing references no longer count.
            for e in newest_edges(oroots, backups, id) {
                if oroots
                    .with_mut(e, |r| r.inrefs = r.inrefs.saturating_sub(1))
                    .is_some()
                {
                    worklist.push(e);
                }
            }
        } else if inrefs > 0 && deleted {
            // Re-referenced before its deletion committed: resurrect, and
            // its newest record's edges count again.
            oroots.with_mut(id, |r| r.deleted_at = None);
            for e in newest_edges(oroots, backups, id) {
                if oroots.with_mut(e, |r| r.inrefs += 1).is_some() {
                    worklist.push(e);
                }
            }
        }
    }
    // A cascade can resurrect an id it tombstoned moments earlier; only
    // ids still dead at the end of the round are real deletions (the
    // sweep drops resurrected pending entries the same way).
    newly_dead.retain(|&id| {
        oroots.with(id, |r| r.deleted_at.is_some()).unwrap_or(false)
    });
    kernel.pending_sweep.lock().extend(newly_dead.iter().copied());
    newly_dead
}

/// The full reachability walk from the root cap group: the differential
/// oracle for the dirty walk, the cycle collector, and (with `copy_all`)
/// the self-healing pass that rewrites every reachable record. Rebuilds
/// all reference counts from the runtime edge multisets and tombstones
/// every unreachable ORoot.
fn full_walk(
    kernel: &Arc<Kernel>,
    inflight: u64,
    copy_all: bool,
) -> Result<TreeOutcome, KernelError> {
    let oroots = &kernel.pers.oroots;
    let mut out = TreeOutcome { full_walk: true, ..TreeOutcome::default() };

    let root_obj = kernel.object(kernel.root())?;
    let root_oroot = ensure_oroot(oroots, &root_obj);
    if kernel.pers.root_oroot().is_none() {
        kernel.pers.set_root_oroot(root_oroot);
    }

    // The dirty queue is deliberately *not* drained: a full walk consumes
    // every dirty flag, so queued entries become stale O(1) skips on the
    // next dirty round.
    let mut counts: HashMap<OrootId, u32> = HashMap::new();
    let mut visited: Vec<OrootId> = Vec::new();
    let mut stack = vec![root_obj];
    while let Some(obj) = stack.pop() {
        let oroot = ensure_oroot(oroots, &obj);
        let fresh = oroots
            .with_mut(oroot, |r| {
                if r.ckpt_round == inflight {
                    false
                } else {
                    r.ckpt_round = inflight;
                    // An object can reappear (e.g. a capability re-granted
                    // before its deletion committed); resurrect it.
                    r.deleted_at = None;
                    true
                }
            })
            .expect("just ensured");
        if !fresh {
            continue;
        }
        visited.push(oroot);
        for child in children(&obj) {
            if let Ok(c) = kernel.object(child) {
                *counts.entry(ensure_oroot(oroots, &c)).or_default() += 1;
                stack.push(c);
            }
        }
        let dirty = obj.take_dirty();
        let never_backed =
            oroots.with(oroot, |r| r.backups.iter().all(Option::is_none)).expect("live oroot");
        if obj.otype == ObjType::Pmo || dirty || never_backed || copy_all {
            copy_object(kernel, &obj, oroot, inflight, None, &mut out)?;
        } else {
            out.skipped += 1;
        }
    }

    // Reference counts are rebuilt from scratch: runtime edges equal
    // newest-record edges for every visited object (clean records mirror
    // the runtime; dirty ones were just rewritten).
    treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "tree.pre_epoch_apply");
    for id in visited {
        let n = counts.get(&id).copied().unwrap_or(0);
        oroots.with_mut(id, |r| r.inrefs = n);
    }

    // Deletion detection: reachable objects carry this round's tag;
    // everything else became unreachable since the last checkpoint.
    let mut newly_dead: Vec<OrootId> = Vec::new();
    oroots.for_each_mut(|id, r| {
        if r.ckpt_round != inflight && r.deleted_at.is_none() {
            r.deleted_at = Some(inflight);
            newly_dead.push(id);
        }
    });
    out.tombstoned = newly_dead.len();
    kernel.pending_sweep.lock().extend(newly_dead.iter().copied());
    out.tombstoned_ids = newly_dead;
    Ok(out)
}

/// Sweeps ORoots whose deletion has committed: removes their backup
/// records, frees slab space, and for PMOs frees all page frames.
///
/// O(deletions): consumes the kernel's pending-sweep list (fed by the
/// tombstone cascade and the full walk) instead of filtering the whole
/// table. Entries whose tombstone has not committed yet are put back;
/// resurrected or already-swept entries are dropped.
///
/// Called by the checkpoint manager after the commit point.
pub fn sweep_deleted(kernel: &Kernel, committed: u64) -> Result<usize, KernelError> {
    treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "tree.pre_sweep_deleted");
    let oroots = &kernel.pers.oroots;
    let backups = &kernel.pers.backups;
    let pending = std::mem::take(&mut *kernel.pending_sweep.lock());
    let mut kept: Vec<OrootId> = Vec::new();
    let mut swept = 0usize;
    for id in pending {
        match oroots.with(id, |r| r.deleted_at) {
            None => {}       // already swept (duplicate pending entry)
            Some(None) => {} // resurrected since it was tombstoned
            Some(Some(d)) if d <= committed => {
                let r = oroots.remove(id).expect("just observed live");
                for vb in r.backups.into_iter().flatten() {
                    if let Some(BackupObject::Pmo { pages, .. }) = backups.remove(vb.slot) {
                        pages.for_each(|_, e| {
                            let meta = e.slot.meta.lock();
                            for p in meta.pairs.iter().flatten() {
                                let _ = kernel.pers.alloc.free_page(p.frame);
                            }
                            if let Some(c) = meta.epoch_capture {
                                let _ = kernel.pers.alloc.free_page(c.frame);
                            }
                            if let Some(l) = meta.inline_log {
                                let _ = kernel.pers.alloc.free_page(l.frame);
                            }
                            if let Some(d) = meta.runtime_dram {
                                kernel.dram.free(d);
                            }
                        });
                    }
                    if let Some((addr, size)) = vb.slab {
                        kernel.pers.alloc.slab_free(addr, size as usize)?;
                    }
                }
                swept += 1;
            }
            Some(Some(_)) => kept.push(id), // tombstone not committed yet
        }
    }
    if !kept.is_empty() {
        kernel.pending_sweep.lock().extend(kept);
    }
    Ok(swept)
}
