//! Measurement types for checkpoint/restore costs.
//!
//! These structures carry the numbers behind the paper's evaluation:
//! Figure 9a (stop-the-world breakdown), Figure 9b (per-object-type tree
//! checkpoint time), Table 3 (incremental/full checkpoint and restore time
//! per object), and Table 4 (hybrid-copy effectiveness).

use std::collections::HashMap;
use std::time::Duration;

use treesls_kernel::object::ObjType;

/// Breakdown of one stop-the-world checkpoint (Figure 9a).
#[derive(Debug, Clone, Default)]
pub struct StwBreakdown {
    /// Committed version of this checkpoint.
    pub version: u64,
    /// Time from the IPI request until all cores were quiescent.
    pub ipi: Duration,
    /// Leader time copying the capability tree.
    pub cap_tree: Duration,
    /// Per-object-type share of `cap_tree` (Figure 9b). The paper
    /// attributes the read-only marking of newly-changed pages to VM Space
    /// checkpointing; this map follows that attribution.
    pub per_type: HashMap<ObjType, Duration>,
    /// Everything else on the leader: commit, deletion sweep.
    pub others: Duration,
    /// Wall-clock spent waiting for (and contributing to) the parallel
    /// hybrid-copy batch after the tree copy finished.
    pub hybrid_wait: Duration,
    /// Total busy time accumulated by all cores inside hybrid-copy items
    /// (runs in parallel with `cap_tree`; Figure 9a reports the maximum
    /// per-core time, approximated here by `hybrid_busy / cores`).
    pub hybrid_busy: Duration,
    /// Total pause as observed by applications.
    pub total_pause: Duration,
    /// Objects copied this round (dirty or new).
    pub objects_copied: usize,
    /// Objects skipped by incremental checkpointing.
    pub objects_skipped: usize,
}

/// Hybrid-copy effectiveness counters for one checkpoint round (Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridRoundStats {
    /// CoW page faults taken since the previous checkpoint ("# of runtime
    /// page faults").
    pub runtime_faults: u64,
    /// Dirty DRAM-cached pages speculatively copied during the pause
    /// ("# of dirty cached pages").
    pub dirty_cached: u64,
    /// Pages cached in DRAM at the end of the pause ("# of cached pages").
    pub cached: u64,
    /// Pages migrated NVM→DRAM this round.
    pub migrated_in: u64,
    /// Pages evicted DRAM→NVM this round.
    pub evicted: u64,
}

impl HybridRoundStats {
    /// Fraction of write faults eliminated by hybrid copy: dirty cached
    /// pages would each have faulted without it.
    pub fn fault_elimination_ratio(&self) -> f64 {
        let would_fault = self.runtime_faults + self.dirty_cached;
        if would_fault == 0 {
            0.0
        } else {
            self.dirty_cached as f64 / would_fault as f64
        }
    }

    /// Fraction of cached pages that were actually dirty ("dirty rate in
    /// cached pages").
    pub fn dirty_rate(&self) -> f64 {
        if self.cached == 0 {
            0.0
        } else {
            self.dirty_cached as f64 / self.cached as f64
        }
    }
}

/// Min/max aggregate of a duration-valued sample stream.
#[derive(Debug, Clone, Copy)]
pub struct MinMax {
    /// Smallest observed sample.
    pub min: Duration,
    /// Largest observed sample.
    pub max: Duration,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (for averaging).
    pub sum: Duration,
}

impl MinMax {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self { min: Duration::MAX, max: Duration::ZERO, count: 0, sum: Duration::ZERO }
    }

    /// Folds a sample in.
    pub fn add(&mut self, d: Duration) {
        self.min = self.min.min(d);
        self.max = self.max.max(d);
        self.count += 1;
        self.sum += d;
    }

    /// Mean of the samples, or zero if empty.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.sum / self.count as u32
        }
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl Default for MinMax {
    fn default() -> Self {
        Self::new()
    }
}

/// Table 3 aggregates: per object type, incremental/full checkpoint and
/// restore times.
#[derive(Debug, Clone, Default)]
pub struct ObjectTimeTable {
    /// Incremental checkpoint times per type.
    pub incr: HashMap<ObjType, MinMax>,
    /// Full (first) checkpoint times per type.
    pub full: HashMap<ObjType, MinMax>,
    /// Restore times per type.
    pub restore: HashMap<ObjType, MinMax>,
}

impl ObjectTimeTable {
    /// Records a checkpoint sample.
    pub fn add_ckpt(&mut self, otype: ObjType, full: bool, d: Duration) {
        let map = if full { &mut self.full } else { &mut self.incr };
        map.entry(otype).or_default().add(d);
    }

    /// Records a restore sample.
    pub fn add_restore(&mut self, otype: ObjType, d: Duration) {
        self.restore.entry(otype).or_default().add(d);
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: &ObjectTimeTable) {
        for (src, dst) in [
            (&other.incr, &mut self.incr),
            (&other.full, &mut self.full),
            (&other.restore, &mut self.restore),
        ] {
            for (t, mm) in src {
                let e = dst.entry(*t).or_default();
                if !mm.is_empty() {
                    e.min = e.min.min(mm.min);
                    e.max = e.max.max(mm.max);
                    e.count += mm.count;
                    e.sum += mm.sum;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_tracks_extremes() {
        let mut m = MinMax::new();
        assert!(m.is_empty());
        m.add(Duration::from_micros(5));
        m.add(Duration::from_micros(1));
        m.add(Duration::from_micros(9));
        assert_eq!(m.min, Duration::from_micros(1));
        assert_eq!(m.max, Duration::from_micros(9));
        assert_eq!(m.count, 3);
        assert_eq!(m.mean(), Duration::from_micros(5));
    }

    #[test]
    fn hybrid_ratios() {
        // Memcached row of Table 4: 182 faults, 156 dirty cached, 395
        // cached ⇒ 46% eliminated, 40% dirty rate.
        let h = HybridRoundStats {
            runtime_faults: 182,
            dirty_cached: 156,
            cached: 395,
            migrated_in: 0,
            evicted: 0,
        };
        assert!((h.fault_elimination_ratio() - 0.4615).abs() < 0.01);
        assert!((h.dirty_rate() - 0.3949).abs() < 0.01);
        let zero = HybridRoundStats::default();
        assert_eq!(zero.fault_elimination_ratio(), 0.0);
        assert_eq!(zero.dirty_rate(), 0.0);
    }

    #[test]
    fn object_table_splits_full_and_incr() {
        let mut t = ObjectTimeTable::default();
        t.add_ckpt(ObjType::Thread, true, Duration::from_micros(10));
        t.add_ckpt(ObjType::Thread, false, Duration::from_micros(1));
        t.add_restore(ObjType::Thread, Duration::from_micros(3));
        assert_eq!(t.full[&ObjType::Thread].max, Duration::from_micros(10));
        assert_eq!(t.incr[&ObjType::Thread].max, Duration::from_micros(1));
        assert_eq!(t.restore[&ObjType::Thread].count, 1);
    }

    #[test]
    fn merge_combines_tables() {
        let mut a = ObjectTimeTable::default();
        a.add_ckpt(ObjType::Pmo, true, Duration::from_micros(100));
        let mut b = ObjectTimeTable::default();
        b.add_ckpt(ObjType::Pmo, true, Duration::from_micros(300));
        a.merge(&b);
        let mm = &a.full[&ObjType::Pmo];
        assert_eq!(mm.count, 2);
        assert_eq!(mm.min, Duration::from_micros(100));
        assert_eq!(mm.max, Duration::from_micros(300));
    }
}
