//! Hybrid copy: hot-page DRAM migration and speculative stop-and-copy
//! (§4.3 of the paper).
//!
//! During the stop-the-world pause, cores other than the leader traverse
//! sub-lists of the *dual-function active page list*:
//!
//! * dirty DRAM-cached pages are **stop-and-copied** into the non-keeper
//!   NVM backup slot and tagged with the in-flight version;
//! * pages newly appended since the last checkpoint are **migrated** to
//!   DRAM;
//! * pages idle for too many checkpoints are **migrated back** to NVM and
//!   dropped from the list.
//!
//! The copy destination is always the pair slot that the restore rule would
//! *not* pick at the current committed version, so a crash mid-copy can
//! never destroy the recoverable image (see `PageMeta::sac_dst`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use treesls_kernel::cores::HybridWork;
use treesls_kernel::pmo::{PagePtr, PageSlot};
use treesls_kernel::Kernel;

/// Per-round hybrid-copy counters, shared with the worker closure.
#[derive(Debug, Default)]
pub struct RoundCounters {
    /// Dirty DRAM pages speculatively copied.
    pub sac_copies: AtomicU64,
    /// Pages migrated NVM→DRAM.
    pub migrated_in: AtomicU64,
    /// Pages migrated DRAM→NVM (evicted).
    pub evicted: AtomicU64,
    /// Total busy nanoseconds across all cores processing items.
    pub busy_ns: AtomicU64,
}

/// Builds the stop-the-world hybrid-copy batch from the active page list.
///
/// The page items are *taken* from the tracker by pointer swap — O(1), no
/// allocation proportional to the list inside the pause — and given back
/// by [`compact_active_list`] after the round. CoW faults between the take
/// and the pause land in the tracker's fresh list and are merged back at
/// compaction (their `on_active_list` flag keeps them deduplicated).
///
/// Always returns a batch (possibly with zero page items) so the
/// checkpoint leader can offload tree work to the quiesced cores even when
/// hybrid copy is disabled.
pub fn build_work(
    kernel: &Arc<Kernel>,
    inflight: u64,
    counters: Arc<RoundCounters>,
) -> Arc<HybridWork> {
    let items: Vec<Arc<PageSlot>> = if kernel.config.hybrid_copy {
        std::mem::take(&mut *kernel.tracker.active_list.lock())
    } else {
        Vec::new()
    };
    let k = Arc::clone(kernel);
    HybridWork::with_offload(items, move |slot| {
        process_slot(&k, slot, inflight, &counters);
    })
}

/// Processes one active-list entry during the pause.
pub fn process_slot(kernel: &Kernel, slot: &Arc<PageSlot>, inflight: u64, counters: &RoundCounters) {
    let global = inflight - 1;
    let mut meta = slot.meta.lock();
    if !meta.on_active_list || meta.eternal {
        meta.on_active_list = false;
        return;
    }
    if !meta.is_migrated() {
        if meta.epoch_capture.is_some() || meta.inline_log.is_some() {
            // An epoch-window conflict already captured (or is logging)
            // this page's round image against the runtime frame. Migrating
            // in would retag that frame with the in-flight version while
            // it carries post-flip writes, letting the fuzzy runtime
            // shadow the capture/log at restore. Defer: the state folds at
            // commit (or on the next CoW fault) and the page stays on the
            // active list for the next round.
            meta.idle_rounds = 0;
            return;
        }
        // Newly appended since the last checkpoint: migrate NVM→DRAM
        // ("newly appended pages since the last checkpointing are migrated
        // to DRAM", §4.3.2).
        match kernel.dram.alloc() {
            Some(d) => {
                treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "hybrid.pre_migrate_in");
                let home = meta.pairs[1].expect("non-migrated page has a home frame").frame;
                kernel.pers.dev.copy_to_dram(home, &kernel.dram, d);
                meta.runtime_dram = Some(d);
                // "TreeSLS sets the version of the runtime page in NVM ...
                // so that it becomes the latest backup page" (§4.3.3): the
                // home page holds the in-flight checkpoint image, so it is
                // tagged with the in-flight version — valid once this
                // checkpoint commits, ignored (in favour of the CoW backup
                // in pairs[0]) if the crash precedes the commit.
                let crc = kernel.pers.dev.page_crc(home);
                meta.pairs[1] = Some(PagePtr::backup(home, inflight, crc));
                meta.writable = true;
                meta.dirty = false;
                meta.idle_rounds = 0;
                counters.migrated_in.fetch_add(1, Ordering::Relaxed);
                kernel.pers.recorder().record(
                    treesls_obs::EventKind::HybridMigrateIn,
                    [home.0 as u64, inflight, d.0 as u64, 0, 0, 0],
                );
            }
            None => {
                // DRAM cache full: give up on this page.
                meta.on_active_list = false;
                meta.hotness = 0;
            }
        }
        return;
    }
    if meta.dirty {
        // Speculative stop-and-copy of the dirty DRAM page.
        let dst_idx = meta.sac_dst(global);
        if kernel.fence.active() && meta.epoch_round == kernel.fence.round() {
            // An epoch-fence conflict capture (free-core write during this
            // very pause) already preserved the round's image; the dirty
            // bit now describes *post*-epoch writes and must survive into
            // the next round. Keyed to the fence round, never the version
            // tag — an aborted round's stale capture carries the same
            // in-flight version but must be overwritten here.
            meta.idle_rounds = 0;
            return;
        }
        let frame = match meta.pairs[dst_idx] {
            Some(p) => p.frame,
            None => match kernel.pers.alloc.alloc_page() {
                Ok(f) => f,
                Err(_) => return, // out of NVM: leave dirty; CoW-less DRAM
            },
        };
        let d = meta.runtime_dram.expect("migrated page has a DRAM copy");
        treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "hybrid.pre_sac_copy");
        kernel.pers.dev.copy_from_dram(&kernel.dram, d, frame);
        let crc = kernel.pers.dev.page_crc(frame);
        meta.pairs[dst_idx] = Some(PagePtr::backup(frame, inflight, crc));
        meta.dirty = false;
        meta.idle_rounds = 0;
        counters.sac_copies.fetch_add(1, Ordering::Relaxed);
        kernel.metrics.record_backup_page(inflight);
        kernel.pers.recorder().record(
            treesls_obs::EventKind::HybridSacCopy,
            [frame.0 as u64, inflight, d.0 as u64, 0, 0, 0],
        );
    } else {
        meta.idle_rounds += 1;
        if meta.idle_rounds >= kernel.config.idle_evict_rounds {
            treesls_nvm::crash_site!(kernel.pers.dev.crash_schedule(), "hybrid.pre_evict");
            // Migrate DRAM→NVM (§4.3.3): ensure the second backup holds the
            // latest data, mark it version 0, and make it the runtime page.
            let keep = meta.restore_pick(global);
            if keep == Some(0) {
                // The committed image lives in pairs[0]; pairs[1] must be
                // (re)filled from the identical DRAM copy.
                let frame = match meta.pairs[1] {
                    Some(p) => p.frame,
                    None => match kernel.pers.alloc.alloc_page() {
                        Ok(f) => f,
                        Err(_) => return,
                    },
                };
                let d = meta.runtime_dram.expect("migrated page has a DRAM copy");
                kernel.pers.dev.copy_from_dram(&kernel.dram, d, frame);
                // Once the DRAM copy is freed below, this frame is the only
                // image of the last committed version until the in-flight
                // checkpoint commits: it must be durable before the tag
                // flips, or an ADR crash before that commit drops its
                // unfenced lines and restore serves a torn page (no-op
                // under eADR).
                kernel.pers.dev.flush_frame(frame, 0, treesls_nvm::PAGE_SIZE);
                kernel.pers.dev.fence();
                meta.pairs[1] = Some(PagePtr::runtime(frame));
            } else if let Some(p) = meta.pairs[1].as_mut() {
                p.version = 0;
                p.crc = None;
            }
            let d = meta.runtime_dram.take().expect("migrated page has a DRAM copy");
            kernel.dram.free(d);
            meta.writable = false;
            meta.on_active_list = false;
            meta.hotness = 0;
            counters.evicted.fetch_add(1, Ordering::Relaxed);
            let home = meta.pairs[1].map_or(0, |p| p.frame.0 as u64);
            kernel.pers.recorder().record(
                treesls_obs::EventKind::HybridEvict,
                [home, inflight, 0, 0, 0, 0],
            );
        }
    }
}

/// Marks every page that became writable since the last checkpoint as
/// read-only again (the copy-on-write arming that the paper attributes to
/// VM Space checkpointing). Returns the number of pages marked.
pub fn mark_readonly(kernel: &Kernel) -> usize {
    let slots = kernel.tracker.take_dirty();
    let mut marked = 0;
    for slot in slots {
        let mut meta = slot.meta.lock();
        if !meta.eternal && !meta.is_migrated() {
            meta.writable = false;
            marked += 1;
        }
    }
    marked
}

/// Compacts the active page list, dropping evicted entries, and returns
/// the number of pages currently DRAM-cached (Table 4 "# of cached pages").
///
/// When the round had a [`HybridWork`] batch, its taken items are the
/// authoritative list: they are compacted with a *single* meta lock per
/// slot (retain + cached-count folded into one pass), merged with any
/// entries CoW faults appended to the tracker meanwhile, and the vector is
/// swapped back into the tracker so its capacity is reused next round.
pub fn compact_active_list(kernel: &Kernel, work: Option<&Arc<HybridWork>>) -> usize {
    let Some(work) = work else {
        let mut list = kernel.tracker.active_list.lock();
        let mut cached = 0;
        list.retain(|s| {
            let meta = s.meta.lock();
            if meta.on_active_list {
                if meta.is_migrated() {
                    cached += 1;
                }
                true
            } else {
                false
            }
        });
        return cached;
    };
    let mut items = work.take_items();
    let mut cached = 0;
    items.retain(|s| {
        let meta = s.meta.lock();
        if meta.on_active_list {
            if meta.is_migrated() {
                cached += 1;
            }
            true
        } else {
            false
        }
    });
    let mut cur = kernel.tracker.active_list.lock();
    // Entries appended during the round (CoW faults before the pause) are
    // new DRAM-cache candidates, not yet migrated: keep them, uncounted.
    items.extend(cur.drain(..));
    std::mem::swap(&mut *cur, &mut items);
    cached
}
